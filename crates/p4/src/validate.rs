//! Structural shape checker for emitted P4.
//!
//! This is **not** a P4 front-end — it is the invariant net the
//! property-based suite throws over the emitter: whatever program the
//! random generator produces, the emission must either fail with a
//! typed [`EmitError`](crate::EmitError) or pass [`validate`]. The
//! checks are purely textual but pin down the mistakes a template
//! emitter actually makes: unbalanced braces, tables declared but never
//! applied (or applied twice), `RegisterAction`s bound to registers
//! that were never declared, duplicate symbols, and missing pipeline
//! sections.

use std::collections::{HashMap, HashSet};

/// A structural defect found in emitted P4 text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// `{` / `}` counts differ.
    UnbalancedBraces {
        /// Number of `{`.
        open: usize,
        /// Number of `}`.
        close: usize,
    },
    /// A required section is missing.
    MissingSection {
        /// The section (e.g. `"parser"`, `"Pipeline"`).
        section: &'static str,
    },
    /// A table is declared but applied a different number of times.
    TableApplyCount {
        /// The table symbol.
        table: String,
        /// How many times `<table>.apply()` occurs.
        applies: usize,
    },
    /// `<sym>.apply()` references a table that is never declared.
    UndeclaredTableApplied {
        /// The applied symbol.
        table: String,
    },
    /// A `RegisterAction<...>(reg)` binds an undeclared register.
    UndeclaredRegister {
        /// The register symbol the SALU binds.
        register: String,
    },
    /// The same symbol is declared twice in one namespace.
    DuplicateSymbol {
        /// The clashing symbol.
        symbol: String,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::UnbalancedBraces { open, close } => {
                write!(f, "unbalanced braces: {open} open vs {close} close")
            }
            ShapeError::MissingSection { section } => {
                write!(f, "missing required section `{section}`")
            }
            ShapeError::TableApplyCount { table, applies } => {
                write!(f, "table `{table}` applied {applies} times (want exactly 1)")
            }
            ShapeError::UndeclaredTableApplied { table } => {
                write!(f, "`{table}.apply()` references an undeclared table")
            }
            ShapeError::UndeclaredRegister { register } => {
                write!(f, "RegisterAction binds undeclared register `{register}`")
            }
            ShapeError::DuplicateSymbol { symbol } => {
                write!(f, "symbol `{symbol}` declared twice")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

fn ident_at(s: &str, from: usize) -> &str {
    let rest = &s[from..];
    let end = rest.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).unwrap_or(rest.len());
    &rest[..end]
}

/// Checks the structural invariants of one emitted program.
///
/// ```
/// use splidt_p4::validate::validate;
/// // A fragment is not a program: every section must be present.
/// assert!(validate("control C() { apply { } }").is_err());
/// ```
pub fn validate(p4: &str) -> Result<(), ShapeError> {
    // Strip comments so documentation can't satisfy (or break) checks.
    let mut text = String::with_capacity(p4.len());
    let mut rest = p4;
    while let Some(i) = rest.find("/*") {
        text.push_str(&rest[..i]);
        match rest[i..].find("*/") {
            Some(j) => rest = &rest[i + j + 2..],
            None => {
                rest = "";
                break;
            }
        }
    }
    text.push_str(rest);

    let open = text.matches('{').count();
    let close = text.matches('}').count();
    if open != close {
        return Err(ShapeError::UnbalancedBraces { open, close });
    }

    for (needle, section) in [
        ("parser ", "parser"),
        ("control ", "control"),
        ("Pipeline(", "Pipeline"),
        ("Switch(", "Switch"),
        ("state start", "parser start state"),
        ("apply {", "apply block"),
    ] {
        if !text.contains(needle) {
            return Err(ShapeError::MissingSection { section });
        }
    }

    // Declared symbols per namespace.
    let mut tables: HashMap<String, usize> = HashMap::new();
    let mut registers: HashSet<String> = HashSet::new();
    let mut salu_regs: Vec<String> = Vec::new();
    for line in text.lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("table ") {
            let sym = ident_at(rest, 0).to_string();
            if tables.insert(sym.clone(), 0).is_some() {
                return Err(ShapeError::DuplicateSymbol { symbol: sym });
            }
        } else if t.starts_with("Register<") {
            // `Register<bit<W>, bit<32>>(LEN) sym;`
            if let Some(p) = t.rfind(") ") {
                let sym = ident_at(t, p + 2).to_string();
                if !registers.insert(sym.clone()) {
                    return Err(ShapeError::DuplicateSymbol { symbol: sym });
                }
            }
        } else if t.starts_with("RegisterAction<") {
            // `RegisterAction<...>(reg) sym = {`
            if let Some(p) = t.rfind(">(") {
                let reg = ident_at(t, p + 2).to_string();
                salu_regs.push(reg);
            }
        }
    }
    for reg in salu_regs {
        if !registers.contains(&reg) {
            return Err(ShapeError::UndeclaredRegister { register: reg });
        }
    }

    // Every `<sym>.apply()` with a declared-table symbol counts; an
    // unknown symbol (other than the known extern objects) is an error.
    for line in text.lines() {
        let t = line.trim();
        if let Some(sym) = t.strip_suffix(".apply();") {
            let sym = sym.trim();
            if let Some(n) = tables.get_mut(sym) {
                *n += 1;
            } else if !sym.contains('.') {
                return Err(ShapeError::UndeclaredTableApplied { table: sym.to_string() });
            }
        }
    }
    for (table, applies) in tables {
        if applies != 1 {
            return Err(ShapeError::TableApplyCount { table, applies });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SKELETON: &str = r#"
parser P(packet_in pkt) {
    state start { transition accept; }
}
control I() {
    Register<bit<32>, bit<32>>(16) r0;
    RegisterAction<bit<32>, bit<32>, bit<32>>(r0) s0 = {
        void apply(inout bit<32> cell, out bit<32> rv) { rv = cell; }
    };
    table t0 { actions = { } }
    apply {
        t0.apply();
    }
}
Pipeline(P(), I()) pipe;
Switch(pipe) main;
"#;

    #[test]
    fn skeleton_passes() {
        validate(SKELETON).unwrap();
    }

    #[test]
    fn unapplied_table_fails() {
        let broken = SKELETON.replace("t0.apply();", "");
        assert!(matches!(validate(&broken), Err(ShapeError::TableApplyCount { applies: 0, .. })));
    }

    #[test]
    fn double_apply_fails() {
        let broken = SKELETON.replace("t0.apply();", "t0.apply();\n        t0.apply();");
        assert!(matches!(validate(&broken), Err(ShapeError::TableApplyCount { applies: 2, .. })));
    }

    #[test]
    fn undeclared_register_fails() {
        let broken = SKELETON.replace("(r0) s0", "(ghost) s0");
        assert!(matches!(validate(&broken), Err(ShapeError::UndeclaredRegister { .. })));
    }

    #[test]
    fn unbalanced_braces_fail() {
        let broken = SKELETON.replace("Switch(pipe) main;", "Switch(pipe) main; }");
        assert!(matches!(validate(&broken), Err(ShapeError::UnbalancedBraces { .. })));
    }
}
