//! The three golden-file fixture programs.
//!
//! Each fixture is a *deterministically trained and compiled* model —
//! fixed dataset seed, fixed config — so the emitted P4 and manifest
//! are byte-stable across runs and machines. The golden tests compare
//! the live emission against the committed files under
//! `crates/p4/golden/`; `--bless` (or `SPLIDT_P4_BLESS=1`) rewrites
//! them.
//!
//! | fixture | what it exercises |
//! |---|---|
//! | `default` | the engine's default compile path: 3×depth-2 partitions, k=4, flow-agnostic lifecycle |
//! | `tcp` | TCP-aware lifecycle: SYN-gated claims, FIN/RST in-band release, a pinned verdict class |
//! | `chained` | a different model shape: 2×depth-3 partitions, k=2 — distinct recirculation chain |

use splidt_core::compile::{
    compile, compile_with, CompileOptions, LifecyclePolicy, DEFAULT_IDLE_TIMEOUT_US,
};
use splidt_core::config::SplidtConfig;
use splidt_core::lower::{lower, ResourceExpectation};
use splidt_core::model::PartitionedTree;
use splidt_core::train::train_partitioned;
use splidt_flow::features::catalog;
use splidt_flow::{generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId};

use crate::emit::Emission;
use crate::emit_lowering;

/// One golden fixture: the emission plus the resource expectation the
/// emitted text must recount to.
pub struct Fixture {
    /// Fixture name (`default` / `tcp` / `chained`); golden files are
    /// `<name>.p4` and `<name>.manifest.json`.
    pub name: &'static str,
    /// The emitted P4 + manifest.
    pub emission: Emission,
    /// The analytic resource counts for [`crate::recount::cross_check`].
    pub expectation: ResourceExpectation,
}

/// Deterministic model shared by the `default` and `tcp` fixtures.
fn fixture_model(partitions: Vec<usize>, k: usize) -> PartitionedTree {
    let flows = generate(DatasetId::D2, 300, 21);
    let (tr, _) = stratified_split(&flows, 0.3, 5);
    let wd =
        windowed_dataset(&select_flows(&flows, &tr), 3, spec(DatasetId::D2).n_classes as usize);
    let cfg = SplidtConfig { partitions, k, ..Default::default() };
    train_partitioned(&wd, &cfg, &catalog().hardware_eligible())
}

/// Builds one fixture by name. Panics on an unknown name — fixtures are
/// a closed set.
pub fn build(name: &str) -> Fixture {
    match name {
        "default" => {
            let model = fixture_model(vec![2, 2, 2], 4);
            let compiled = compile(&model, 1 << 12).expect("fixture compiles");
            let lowering = lower(&model, &compiled);
            let expectation = lowering.expectation().expect("fixture matches footprint");
            let emission =
                emit_lowering(&lowering, "splidt_default", "default", 0).expect("fixture emits");
            Fixture { name: "default", emission, expectation }
        }
        "tcp" => {
            let model = fixture_model(vec![2, 2, 2], 4);
            let opts = CompileOptions {
                flow_slots: 1 << 12,
                idle_timeout_us: DEFAULT_IDLE_TIMEOUT_US,
                policy: LifecyclePolicy::tcp().pin_class(2),
            };
            let compiled = compile_with(&model, &opts).expect("fixture compiles");
            let lowering = lower(&model, &compiled);
            let expectation = lowering.expectation().expect("fixture matches footprint");
            let emission = emit_lowering(&lowering, "splidt_tcp", "tcp", 0).expect("fixture emits");
            Fixture { name: "tcp", emission, expectation }
        }
        "chained" => {
            let model = fixture_model(vec![3, 3], 2);
            let compiled = compile(&model, 1 << 10).expect("fixture compiles");
            let lowering = lower(&model, &compiled);
            let expectation = lowering.expectation().expect("fixture matches footprint");
            let emission =
                emit_lowering(&lowering, "splidt_chained", "chained", 0).expect("fixture emits");
            Fixture { name: "chained", emission, expectation }
        }
        other => panic!("unknown fixture `{other}`"),
    }
}

/// The closed fixture set, in golden-file order.
pub const NAMES: [&str; 3] = ["default", "tcp", "chained"];

/// Builds every fixture.
pub fn all() -> Vec<Fixture> {
    NAMES.iter().map(|n| build(n)).collect()
}

/// The committed golden directory (`crates/p4/golden`).
pub fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}
