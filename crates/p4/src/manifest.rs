//! The control-plane table-install manifest.
//!
//! P4 declares tables; a controller fills them. The manifest is the
//! loader-facing half of an emission: for every table, the key encoding
//! (field → P4 lvalue → width → match kind) and every compiled entry
//! (value/mask/range patterns, priority, action symbol), plus the
//! register inventory with its flow-bank placement — everything a
//! bf-runtime-style loader needs to replay the compiled model onto a
//! switch running the emitted program. Serialization is a hand-rolled,
//! deterministic JSON writer (the build environment has no registry
//! access, so there is no serde_json; the bench smokes write their flat
//! JSON the same way).

/// Provenance block: where a regenerated manifest came from, following
/// the self-describing convention of `bench/baseline.json`
/// (`sweep_frames`/`sweep_slots`). Carries `staged_generation` (the live
/// engine generation the program was captured at; 0 for a fresh compile)
/// and the physical `bank_*` layout so a manifest alone answers "what
/// hardware state does this install assume".
///
/// ```
/// use splidt_p4::manifest::Provenance;
///
/// let p = Provenance {
///     emitter: "splidt_p4 0.2.0".into(),
///     fixture: "default".into(),
///     flow_slots: 4096,
///     idle_timeout_us: 5_000_000,
///     policy: "flow_agnostic".into(),
///     staged_generation: 0,
///     bank_cell_bytes_per_flow: 39,
///     bank_stride_bytes: 64,
///     bank_lines_per_flow: 1,
/// };
/// assert_eq!(p.flow_slots, 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Emitting crate and version.
    pub emitter: String,
    /// Fixture / program source name (`default`, `tcp`, `chained`, …).
    pub fixture: String,
    /// Slot-domain depth of every per-flow register array.
    pub flow_slots: usize,
    /// Idle-eviction threshold compiled into the ownership probes.
    pub idle_timeout_us: u64,
    /// Lifecycle policy summary (`flow_agnostic`, `tcp pin=[…] …`).
    pub policy: String,
    /// Live engine generation the program was captured at (0 = fresh
    /// compile, bumps on every `swap_staged`).
    pub staged_generation: u64,
    /// Packed flow-state bytes per slot (`BankPhysical::cell_bytes_per_flow`).
    pub bank_cell_bytes_per_flow: usize,
    /// Per-slot arena pitch (`BankPhysical::stride_bytes`).
    pub bank_stride_bytes: usize,
    /// Cache lines one flow spans (`BankPhysical::lines_per_flow`).
    pub bank_lines_per_flow: usize,
}

/// One key field of a table: logical name, emitted P4 lvalue, width and
/// match kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyField {
    /// PHV field name (`m.sid`, `ipv4.proto`, …).
    pub field: String,
    /// Emitted P4 lvalue (`meta.m_sid`, `hdr.ipv4.protocol`, …).
    pub p4: String,
    /// Field width in bits.
    pub bits: u8,
    /// Match kind: `exact`, `ternary` or `range`.
    pub match_kind: &'static str,
}

/// One key component of an installed entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyValue {
    /// Exact value.
    Exact(u64),
    /// Ternary value/mask pattern.
    Ternary {
        /// Match value (bits outside `mask` ignored).
        value: u64,
        /// Care mask.
        mask: u64,
    },
    /// Closed interval `[lo, hi]`.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
}

/// One installed entry: key patterns, priority (ternary/range) and the
/// P4 action symbol to bind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Key patterns, one per key field.
    pub key: Vec<KeyValue>,
    /// Priority (higher wins); `None` for exact tables.
    pub priority: Option<u32>,
    /// Emitted P4 action symbol.
    pub action: String,
}

/// One table: declaration metadata plus its full install list.
///
/// ```
/// use splidt_p4::manifest::{KeyField, KeyValue, ManifestEntry, ManifestTable};
///
/// let t = ManifestTable {
///     name: "own".into(),
///     p4: "own".into(),
///     stage: 1,
///     kind: "ternary",
///     size: 8,
///     key: vec![KeyField {
///         field: "ig.is_resubmit".into(),
///         p4: "meta.is_resubmit".into(),
///         bits: 1,
///         match_kind: "ternary",
///     }],
///     default_action: "a0_nop".into(),
///     entries: vec![ManifestEntry {
///         key: vec![KeyValue::Ternary { value: 0, mask: 1 }],
///         priority: Some(1),
///         action: "a1_probe".into(),
///     }],
/// };
/// assert_eq!(t.entries.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestTable {
    /// Logical table name from the program.
    pub name: String,
    /// Emitted P4 symbol.
    pub p4: String,
    /// Pipeline stage the table is allocated to.
    pub stage: usize,
    /// Match kind: `exact`, `ternary` or `range`.
    pub kind: &'static str,
    /// Declared capacity (`size =` in the emitted P4).
    pub size: usize,
    /// Key encoding.
    pub key: Vec<KeyField>,
    /// Default (miss) action symbol.
    pub default_action: String,
    /// Install list in compile order.
    pub entries: Vec<ManifestEntry>,
}

/// Flow-bank placement of one register array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Coalesced into a bank at a fixed byte offset.
    Banked {
        /// Bank index.
        bank: usize,
        /// Byte offset of this cell inside the per-slot record.
        offset: usize,
        /// Physical cell width in bytes (1/2/4/8).
        cell_bytes: usize,
    },
    /// Standalone array (no bank coalescing applies).
    Split,
}

/// One register array: declaration metadata plus bank placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRegister {
    /// Logical register name from the program.
    pub name: String,
    /// Emitted P4 symbol.
    pub p4: String,
    /// Stage whose SALUs own the array.
    pub stage: usize,
    /// Cell width in bits.
    pub width_bits: u8,
    /// Array depth (flow slots).
    pub slots: usize,
    /// Flow-bank placement.
    pub placement: Placement,
}

/// The full manifest: provenance + tables + registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Program name (matches the emitted P4 banner).
    pub program: String,
    /// Provenance block.
    pub provenance: Provenance,
    /// Tables with their install lists, in table-id order.
    pub tables: Vec<ManifestTable>,
    /// Register inventory, in register-id order.
    pub registers: Vec<ManifestRegister>,
}

impl Manifest {
    /// Total installed entries across all tables.
    pub fn n_entries(&self) -> usize {
        self.tables.iter().map(|t| t.entries.len()).sum()
    }

    /// Deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open('{');
        w.str_field("schema", "splidt-p4-manifest/v1");
        w.str_field("program", &self.program);
        w.key("provenance");
        w.open('{');
        w.str_field("emitter", &self.provenance.emitter);
        w.str_field("fixture", &self.provenance.fixture);
        w.num_field("flow_slots", self.provenance.flow_slots as u64);
        w.num_field("idle_timeout_us", self.provenance.idle_timeout_us);
        w.str_field("policy", &self.provenance.policy);
        w.num_field("staged_generation", self.provenance.staged_generation);
        w.num_field("bank_cell_bytes_per_flow", self.provenance.bank_cell_bytes_per_flow as u64);
        w.num_field("bank_stride_bytes", self.provenance.bank_stride_bytes as u64);
        w.num_field("bank_lines_per_flow", self.provenance.bank_lines_per_flow as u64);
        w.close('}');
        w.key("tables");
        w.open('[');
        for t in &self.tables {
            w.open('{');
            w.str_field("name", &t.name);
            w.str_field("p4", &t.p4);
            w.num_field("stage", t.stage as u64);
            w.str_field("kind", t.kind);
            w.num_field("size", t.size as u64);
            w.key("key");
            w.open('[');
            for k in &t.key {
                w.open('{');
                w.str_field("field", &k.field);
                w.str_field("p4", &k.p4);
                w.num_field("bits", u64::from(k.bits));
                w.str_field("match", k.match_kind);
                w.close('}');
            }
            w.close(']');
            w.str_field("default_action", &t.default_action);
            w.key("entries");
            w.open('[');
            for e in &t.entries {
                w.open('{');
                if let Some(p) = e.priority {
                    w.num_field("priority", u64::from(p));
                }
                w.key("key");
                w.open('[');
                for kv in &e.key {
                    w.open('{');
                    match kv {
                        KeyValue::Exact(v) => w.hex_field("value", *v),
                        KeyValue::Ternary { value, mask } => {
                            w.hex_field("value", *value);
                            w.hex_field("mask", *mask);
                        }
                        KeyValue::Range { lo, hi } => {
                            w.hex_field("lo", *lo);
                            w.hex_field("hi", *hi);
                        }
                    }
                    w.close('}');
                }
                w.close(']');
                w.str_field("action", &e.action);
                w.close('}');
            }
            w.close(']');
            w.close('}');
        }
        w.close(']');
        w.key("registers");
        w.open('[');
        for r in &self.registers {
            w.open('{');
            w.str_field("name", &r.name);
            w.str_field("p4", &r.p4);
            w.num_field("stage", r.stage as u64);
            w.num_field("width_bits", u64::from(r.width_bits));
            w.num_field("slots", r.slots as u64);
            w.key("placement");
            w.open('{');
            match r.placement {
                Placement::Banked { bank, offset, cell_bytes } => {
                    w.str_field("kind", "banked");
                    w.num_field("bank", bank as u64);
                    w.num_field("offset_bytes", offset as u64);
                    w.num_field("cell_bytes", cell_bytes as u64);
                }
                Placement::Split => w.str_field("kind", "split"),
            }
            w.close('}');
            w.close('}');
        }
        w.close(']');
        w.close('}');
        w.finish()
    }
}

/// Minimal deterministic JSON pretty-printer (2-space indent).
struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already has a member (comma needed).
    has_member: Vec<bool>,
    /// A `"key": ` was just written; the next `open` attaches inline.
    pending_key: bool,
}

impl JsonWriter {
    fn new() -> Self {
        Self { out: String::new(), indent: 0, has_member: Vec::new(), pending_key: false }
    }

    fn newline_for_member(&mut self) {
        if let Some(last) = self.has_member.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
    }

    fn open(&mut self, c: char) {
        if self.pending_key {
            self.pending_key = false;
        } else {
            self.newline_for_member();
        }
        self.out.push(c);
        self.indent += 1;
        self.has_member.push(false);
    }

    fn close(&mut self, c: char) {
        let had = self.has_member.pop().unwrap_or(false);
        self.indent -= 1;
        if had {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
        self.out.push(c);
    }

    fn key(&mut self, k: &str) {
        self.newline_for_member();
        self.out.push('"');
        self.out.push_str(k);
        self.out.push_str("\": ");
        self.pending_key = true;
    }

    fn str_field(&mut self, k: &str, v: &str) {
        self.newline_for_member();
        self.out.push('"');
        self.out.push_str(k);
        self.out.push_str("\": \"");
        for ch in v.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn num_field(&mut self, k: &str, v: u64) {
        self.newline_for_member();
        self.out.push('"');
        self.out.push_str(k);
        self.out.push_str("\": ");
        self.out.push_str(&v.to_string());
    }

    fn hex_field(&mut self, k: &str, v: u64) {
        self.newline_for_member();
        self.out.push('"');
        self.out.push_str(k);
        self.out.push_str("\": \"0x");
        self.out.push_str(&format!("{v:X}"));
        self.out.push('"');
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Manifest {
        Manifest {
            program: "t".into(),
            provenance: Provenance {
                emitter: "splidt_p4 test".into(),
                fixture: "tiny".into(),
                flow_slots: 16,
                idle_timeout_us: 1,
                policy: "flow_agnostic".into(),
                staged_generation: 0,
                bank_cell_bytes_per_flow: 2,
                bank_stride_bytes: 64,
                bank_lines_per_flow: 1,
            },
            tables: vec![ManifestTable {
                name: "t0".into(),
                p4: "t0".into(),
                stage: 0,
                kind: "exact",
                size: 4,
                key: vec![KeyField {
                    field: "f0".into(),
                    p4: "meta.f0".into(),
                    bits: 8,
                    match_kind: "exact",
                }],
                default_action: "a0_nop".into(),
                entries: vec![ManifestEntry {
                    key: vec![KeyValue::Exact(3)],
                    priority: None,
                    action: "a1_hit".into(),
                }],
            }],
            registers: vec![ManifestRegister {
                name: "r0".into(),
                p4: "r0".into(),
                stage: 0,
                width_bits: 16,
                slots: 16,
                placement: Placement::Split,
            }],
        }
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let m = tiny();
        let a = m.to_json();
        let b = m.to_json();
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"staged_generation\": 0"));
        assert!(a.contains("\"bank_stride_bytes\": 64"));
        assert!(a.contains("\"value\": \"0x3\""));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn n_entries_sums_tables() {
        assert_eq!(tiny().n_entries(), 1);
    }
}
