//! Resource recount: re-derive the pipeline's resource usage from the
//! *generated P4 text* and assert it equals the analytic model.
//!
//! The emitter writes `@stage(N)` pragmas on every `Register` and
//! `table` declaration. [`recount`] parses only those lines — nothing
//! else — and rebuilds stage count, per-stage SALU population, summed
//! per-flow register bits, the uniform slot depth, and the physical
//! flow-bank packing. [`cross_check`] then compares the rebuilt counts
//! against the [`ResourceExpectation`] the core lowering derived from
//! `ModelFootprint`/`BankPhysical`. The two paths share **no code**:
//! one walks the compiled IR, the other scrapes the text a switch
//! would compile, so any emitter bug that drops or duplicates a
//! declaration breaks the equality.

use splidt_core::lower::ResourceExpectation;
use splidt_core::resources::BankPhysical;
use splidt_dataplane::register::{bank_cell_bytes, BANK_LINE_BYTES};

/// Resource usage re-derived from emitted P4 text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recount {
    /// Stage count: `max(@stage(N)) + 1`.
    pub stages: usize,
    /// Register arrays (≡ SALU banks) declared per stage.
    pub salus_per_stage: Vec<usize>,
    /// Sum of declared `Register<bit<W>, _>` widths.
    pub per_flow_register_bits: u64,
    /// The registers' uniform slot depth.
    pub flow_slots: usize,
    /// Flow-bank packing recomputed from the declared widths.
    pub bank: BankPhysical,
    /// Match-action tables declared per stage.
    pub tables_per_stage: Vec<usize>,
}

/// Why a recount could not be derived from the text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecountError {
    /// No `@stage`-annotated declarations found.
    NoDeclarations,
    /// An `@stage(...)` pragma was not followed by a `Register` or
    /// `table` declaration.
    DanglingStagePragma {
        /// The pragma line.
        line: String,
    },
    /// A declaration could not be parsed.
    Unparsable {
        /// The offending line.
        line: String,
    },
    /// Registers disagree on slot depth.
    NonUniformDepth,
}

impl std::fmt::Display for RecountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecountError::NoDeclarations => write!(f, "no @stage-annotated declarations found"),
            RecountError::DanglingStagePragma { line } => {
                write!(f, "@stage pragma not followed by a declaration: `{line}`")
            }
            RecountError::Unparsable { line } => write!(f, "unparsable declaration: `{line}`"),
            RecountError::NonUniformDepth => write!(f, "registers disagree on slot depth"),
        }
    }
}

impl std::error::Error for RecountError {}

/// Mismatch between the text recount and the analytic expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossCheckError {
    /// Which quantity disagreed.
    pub what: &'static str,
    /// The value recounted from the emitted text.
    pub emitted: String,
    /// The value the analytic model expects.
    pub expected: String,
}

impl std::fmt::Display for CrossCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "emitted P4 disagrees with the resource model on {}: emitted {}, expected {}",
            self.what, self.emitted, self.expected
        )
    }
}

impl std::error::Error for CrossCheckError {}

/// Re-derives resource usage from emitted P4 text.
///
/// ```
/// use splidt_p4::recount::recount;
/// let p4 = "
///     @stage(0)
///     Register<bit<64>, bit<32>>(1024) owner;
///     @stage(1)
///     Register<bit<32>, bit<32>>(1024) f0;
///     @stage(1)
///     table t0 {
/// ";
/// let r = recount(p4).unwrap();
/// assert_eq!(r.stages, 2);
/// assert_eq!(r.salus_per_stage, vec![1, 1]);
/// assert_eq!(r.per_flow_register_bits, 96);
/// assert_eq!(r.flow_slots, 1024);
/// ```
pub fn recount(p4: &str) -> Result<Recount, RecountError> {
    // (stage, register width, register len) / (stage, table)
    let mut regs: Vec<(usize, u8, usize)> = Vec::new();
    let mut tables: Vec<usize> = Vec::new();

    let mut lines = p4.lines().peekable();
    while let Some(line) = lines.next() {
        let t = line.trim();
        let Some(stage_s) = t.strip_prefix("@stage(").and_then(|s| s.strip_suffix(")")) else {
            continue;
        };
        let stage: usize =
            stage_s.parse().map_err(|_| RecountError::Unparsable { line: t.to_string() })?;
        let decl = lines
            .next()
            .map(str::trim)
            .ok_or_else(|| RecountError::DanglingStagePragma { line: t.to_string() })?;
        if let Some(rest) = decl.strip_prefix("Register<bit<") {
            // `Register<bit<W>, bit<32>>(LEN) sym;`
            let parse = || -> Option<(u8, usize)> {
                let (w, rest) = rest.split_once('>')?;
                let (_, rest) = rest.split_once('(')?;
                let (len, _) = rest.split_once(')')?;
                Some((w.parse().ok()?, len.parse().ok()?))
            };
            let (width, len) =
                parse().ok_or_else(|| RecountError::Unparsable { line: decl.to_string() })?;
            regs.push((stage, width, len));
        } else if decl.starts_with("table ") {
            tables.push(stage);
        } else {
            return Err(RecountError::DanglingStagePragma { line: t.to_string() });
        }
    }

    if regs.is_empty() && tables.is_empty() {
        return Err(RecountError::NoDeclarations);
    }
    let stages =
        regs.iter().map(|&(s, _, _)| s).chain(tables.iter().copied()).max().unwrap_or(0) + 1;
    let mut salus_per_stage = vec![0usize; stages];
    let mut tables_per_stage = vec![0usize; stages];
    for &(s, _, _) in &regs {
        salus_per_stage[s] += 1;
    }
    for &s in &tables {
        tables_per_stage[s] += 1;
    }
    let per_flow_register_bits = regs.iter().map(|&(_, w, _)| u64::from(w)).sum();
    let flow_slots = regs.first().map(|&(_, _, l)| l).unwrap_or(0);
    if regs.iter().any(|&(_, _, l)| l != flow_slots) {
        return Err(RecountError::NonUniformDepth);
    }
    let cell_bytes: usize = regs.iter().map(|&(_, w, _)| bank_cell_bytes(w)).sum();
    let stride_bytes = cell_bytes.next_multiple_of(BANK_LINE_BYTES).max(BANK_LINE_BYTES);
    Ok(Recount {
        stages,
        salus_per_stage,
        per_flow_register_bits,
        flow_slots,
        bank: BankPhysical {
            cell_bytes_per_flow: cell_bytes,
            stride_bytes,
            lines_per_flow: stride_bytes / BANK_LINE_BYTES,
        },
        tables_per_stage,
    })
}

/// Asserts the text recount equals the analytic expectation.
pub fn cross_check(r: &Recount, e: &ResourceExpectation) -> Result<(), CrossCheckError> {
    let fail =
        |what, emitted: String, expected: String| Err(CrossCheckError { what, emitted, expected });
    if r.stages != e.stages {
        return fail("stage count", r.stages.to_string(), e.stages.to_string());
    }
    if r.salus_per_stage != e.salus_per_stage {
        return fail(
            "per-stage SALU usage",
            format!("{:?}", r.salus_per_stage),
            format!("{:?}", e.salus_per_stage),
        );
    }
    if r.per_flow_register_bits != e.per_flow_register_bits {
        return fail(
            "per-flow register bits",
            r.per_flow_register_bits.to_string(),
            e.per_flow_register_bits.to_string(),
        );
    }
    if r.flow_slots != e.flow_slots {
        return fail("flow slots", r.flow_slots.to_string(), e.flow_slots.to_string());
    }
    if r.bank != e.bank {
        return fail("bank packing", format!("{:?}", r.bank), format!("{:?}", e.bank));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dangling_pragma_is_an_error() {
        let p4 = "@stage(0)\n/* nothing */\n";
        assert!(matches!(recount(p4), Err(RecountError::DanglingStagePragma { .. })));
    }

    #[test]
    fn non_uniform_depth_is_an_error() {
        let p4 = "@stage(0)\nRegister<bit<32>, bit<32>>(16) a;\n\
                  @stage(0)\nRegister<bit<32>, bit<32>>(32) b;\n";
        assert!(matches!(recount(p4), Err(RecountError::NonUniformDepth)));
    }

    #[test]
    fn bank_packing_rounds_to_lines() {
        let p4 = "@stage(0)\nRegister<bit<64>, bit<32>>(16) owner;\n\
                  @stage(1)\nRegister<bit<32>, bit<32>>(16) f0;\n";
        let r = recount(p4).unwrap();
        assert_eq!(r.bank.cell_bytes_per_flow, 12);
        assert_eq!(r.bank.stride_bytes, BANK_LINE_BYTES);
        assert_eq!(r.bank.lines_per_flow, 1);
    }
}
