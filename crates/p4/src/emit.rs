//! The P4-16 emitter: [`Program`] + [`ExecPlan`] → Tofino-style source.
//!
//! One [`emit`] call produces an [`Emission`]: the `.p4` text and the
//! control-plane install [`Manifest`]. The
//! lowering is deliberately mechanical — every construct in the emitted
//! program traces back to exactly one IR construct:
//!
//! | IR construct                    | emitted P4                                   |
//! |---------------------------------|----------------------------------------------|
//! | `PhvLayout` standard fields     | headers + parser (`peek_flow_tuple` walk)    |
//! | `PhvLayout` metadata fields     | `metadata_t` struct members                  |
//! | `Table` / `MatchKind`           | `table` declaration (`exact`/`ternary`/`range`) |
//! | `ExecPlan` interned actions     | `action` declarations (shared across tables) |
//! | `RegisterSpec` + stage          | `@stage`-annotated `Register` extern         |
//! | `Primitive::RegRmw`             | `RegisterAction` (one SALU program)          |
//! | `Primitive::OwnerUpdate`        | `RegisterAction` over the 64-bit lane        |
//! | `Primitive::HashFlow`           | `Hash` extern + canonicalized tuple          |
//! | `Primitive::Resubmit`/`Digest`/`Drop` | deparser intrinsic writes              |
//! | `BankLayout` placements         | per-register bank annotation comments        |
//!
//! The output is deterministic: same program + options → byte-identical
//! text, which is what the golden-file suite pins down.

use std::collections::HashMap;
use std::fmt::Write as _;

use splidt_dataplane::action::{Action, AluOut, OwnerMode, Primitive, Source};
use splidt_dataplane::phv::FieldId;
use splidt_dataplane::plan::{ActionId, ExecPlan, PlanSlot};
use splidt_dataplane::program::Program;
use splidt_dataplane::register::{RegAluOp, RegPlacement};
use splidt_dataplane::table::{EntryKey, MatchKind};

use crate::manifest::{
    KeyField, KeyValue, Manifest, ManifestEntry, ManifestRegister, ManifestTable, Placement,
    Provenance,
};

/// A finished emission: the P4 source plus the install manifest.
#[derive(Debug, Clone)]
pub struct Emission {
    /// The generated P4-16 program.
    pub p4: String,
    /// The control-plane table-install manifest.
    pub manifest: Manifest,
}

/// Options for one emission.
#[derive(Debug, Clone)]
pub struct EmitOptions {
    /// Program name used in the banner and manifest.
    pub program_name: String,
    /// Manifest provenance block.
    pub provenance: Provenance,
}

impl EmitOptions {
    /// Options for an ad-hoc program with no model provenance (unit
    /// tests, property tests).
    pub fn adhoc(program_name: &str) -> Self {
        Self {
            program_name: program_name.to_string(),
            provenance: Provenance {
                emitter: emitter_version(),
                fixture: "adhoc".into(),
                flow_slots: 0,
                idle_timeout_us: 0,
                policy: "none".into(),
                staged_generation: 0,
                bank_cell_bytes_per_flow: 0,
                bank_stride_bytes: 0,
                bank_lines_per_flow: 0,
            },
        }
    }
}

/// `"splidt_p4 <version>"` — stamped into banners and provenance.
pub fn emitter_version() -> String {
    format!("splidt_p4 {}", env!("CARGO_PKG_VERSION"))
}

/// A typed reason the emitter refused a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// The program declares no tables — nothing to emit.
    EmptyProgram,
    /// Two distinct IR names sanitize to the same P4 symbol.
    SymbolClash {
        /// The colliding symbol.
        symbol: String,
    },
    /// An `OwnerUpdate` targets a register narrower than the 64-bit
    /// ownership lane it bit-slices.
    OwnerLaneWidth {
        /// The register's name.
        register: String,
        /// Its declared width.
        width_bits: u8,
    },
    /// A `HashFlow` primitive exists but the layout lacks the standard
    /// 5-tuple fields the hash extern needs.
    HashTupleUnavailable,
    /// A `Digest` primitive exists but the program exports no digest
    /// fields.
    DigestWithoutFields,
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::EmptyProgram => write!(f, "program declares no tables"),
            EmitError::SymbolClash { symbol } => {
                write!(f, "two IR names sanitize to the same P4 symbol `{symbol}`")
            }
            EmitError::OwnerLaneWidth { register, width_bits } => write!(
                f,
                "OwnerUpdate needs a 64-bit lane but register `{register}` is {width_bits}-bit"
            ),
            EmitError::HashTupleUnavailable => {
                write!(f, "HashFlow used without the standard 5-tuple fields")
            }
            EmitError::DigestWithoutFields => {
                write!(f, "Digest primitive used but the program exports no digest fields")
            }
        }
    }
}

impl std::error::Error for EmitError {}

/// Appends a formatted line.
macro_rules! w {
    ($dst:expr) => { let _ = writeln!($dst); };
    ($dst:expr, $($arg:tt)*) => { let _ = writeln!($dst, $($arg)*); };
}

/// Lowers `program` to Tofino-style P4-16 plus an install manifest.
///
/// ```
/// use splidt_dataplane::action::{Action, AluOp, Primitive, Source};
/// use splidt_dataplane::program::ProgramBuilder;
/// use splidt_dataplane::register::RegisterSpec;
/// use splidt_dataplane::table::TableSpec;
/// use splidt_p4::{emit, EmitOptions};
///
/// let mut b = ProgramBuilder::new();
/// let f = b.add_meta("f0", 16);
/// let r = b.add_register(RegisterSpec::new("r0", 16, 16), 0);
/// let t = b.add_table(TableSpec::exact("t0", vec![f], 4), 0);
/// let hit = Action::new("hit").with(Primitive::RegRmw {
///     reg: r,
///     index: Source::Const(0),
///     op: AluOp::Add,
///     operand: Source::Field(f),
///     out: None,
/// });
/// b.add_exact_entry(t, vec![7], hit).unwrap();
/// let program = b.build().unwrap();
///
/// let out = emit(&program, &EmitOptions::adhoc("tiny")).unwrap();
/// assert!(out.p4.contains("table t0"));
/// assert!(out.p4.contains("RegisterAction"));
/// assert_eq!(out.manifest.tables.len(), 1);
/// ```
pub fn emit(program: &Program, opts: &EmitOptions) -> Result<Emission, EmitError> {
    if program.tables().is_empty() {
        return Err(EmitError::EmptyProgram);
    }
    let plan = ExecPlan::build(program);
    Emitter::new(program, &plan, opts)?.run()
}

/// Standard-field P4 lvalues for the fixed wire format.
const STD_MAP: [(&str, &str); 12] = [
    ("ipv4.src", "hdr.ipv4.src_addr"),
    ("ipv4.dst", "hdr.ipv4.dst_addr"),
    ("ipv4.proto", "hdr.ipv4.protocol"),
    ("ipv4.len", "hdr.ipv4.total_len"),
    ("ipv4.ttl", "hdr.ipv4.ttl"),
    ("l4.sport", "meta.l4_sport"),
    ("l4.dport", "meta.l4_dport"),
    ("tcp.flags", "meta.tcp_flags"),
    ("shim.flow_size", "hdr.flow_shim.flow_size"),
    ("ig.ts_us", "meta.ts_us"),
    ("ig.is_resubmit", "meta.is_resubmit"),
    ("ig.frame_len", "meta.frame_len"),
];

/// Standard field names that live in headers, not `metadata_t`.
const HEADER_BACKED: [&str; 6] =
    ["ipv4.src", "ipv4.dst", "ipv4.proto", "ipv4.len", "ipv4.ttl", "shim.flow_size"];

struct FieldInfo {
    /// Emitted lvalue (`meta.m_sid`, `hdr.ipv4.protocol`).
    lv: String,
    /// Width in bits.
    bits: u8,
    /// Logical name.
    name: String,
}

struct SaluDecl {
    sym: String,
    text: String,
}

struct Emitter<'a> {
    program: &'a Program,
    plan: &'a ExecPlan,
    opts: &'a EmitOptions,
    /// Per-field emitted lvalue / width.
    fields: Vec<FieldInfo>,
    /// `metadata_t` members: (member name, bits), in field-id order.
    meta_members: Vec<(String, u8)>,
    /// Whether the standard wire-format fields are present (emit the
    /// full Ethernet → shim → IPv4 → TCP/UDP parser).
    standard: bool,
    /// Per-register emitted symbol.
    reg_syms: Vec<String>,
    /// Per-register stage.
    reg_stage: Vec<usize>,
    /// Per-table stage.
    table_stage: Vec<usize>,
    /// Per-table emitted symbol.
    table_syms: Vec<String>,
    /// Per-action (plan arena) emitted symbol.
    action_syms: Vec<String>,
    /// Interned RegisterActions, declaration order.
    salus: Vec<SaluDecl>,
    /// Primitive → index into `salus`.
    salu_ix: HashMap<Primitive, usize>,
    /// Interned hash engines: (salt, symbol).
    hashes: Vec<(u64, String)>,
    /// Whether a non-power-of-two `DivConst` needs the extern helper.
    needs_div_const: bool,
    /// Per-table plan slot.
    slot_by_table: Vec<usize>,
}

fn sanitize(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            s.push(c);
        } else {
            s.push('_');
        }
    }
    if s.is_empty() || s.starts_with(|c: char| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

fn mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// A sized P4 literal, masked to `bits`.
fn lit(bits: u8, v: u64) -> String {
    let v = v & mask(bits);
    if v > 9 {
        format!("{bits}w0x{v:X}")
    } else {
        format!("{bits}w{v}")
    }
}

impl<'a> Emitter<'a> {
    fn new(
        program: &'a Program,
        plan: &'a ExecPlan,
        opts: &'a EmitOptions,
    ) -> Result<Self, EmitError> {
        let layout = program.layout();
        let std_lv: HashMap<&str, &str> = STD_MAP.iter().copied().collect();
        let standard = STD_MAP.iter().all(|(n, _)| layout.by_name(n).is_some());

        let mut fields = Vec::with_capacity(layout.n_fields());
        let mut meta_members = Vec::new();
        let mut member_set = HashMap::new();
        for fid in layout.field_ids() {
            let spec = layout.spec(fid);
            let name = spec.name().to_string();
            let bits = spec.bits();
            let lv = if standard && std_lv.contains_key(name.as_str()) {
                std_lv[name.as_str()].to_string()
            } else {
                format!("meta.{}", sanitize(&name))
            };
            let header_backed = standard && HEADER_BACKED.contains(&name.as_str());
            if !header_backed {
                let member =
                    lv.strip_prefix("meta.").expect("non-header field is meta").to_string();
                if let Some(prev) = member_set.insert(member.clone(), name.clone()) {
                    if prev != name {
                        return Err(EmitError::SymbolClash { symbol: member });
                    }
                }
                meta_members.push((member, bits));
            }
            fields.push(FieldInfo { lv, bits, name });
        }

        // Stage maps from the program's per-stage allocations.
        let mut reg_stage = vec![0usize; program.registers().len()];
        let mut table_stage = vec![0usize; program.tables().len()];
        for (s, alloc) in program.stages().iter().enumerate() {
            for rid in &alloc.registers {
                reg_stage[rid.index()] = s;
            }
            for tid in &alloc.tables {
                table_stage[tid.index()] = s;
            }
        }

        // Register / table symbols, clash-checked in one namespace.
        let mut symbols: HashMap<String, String> = HashMap::new();
        let mut claim = |kind: &str, name: &str| -> Result<String, EmitError> {
            let sym = sanitize(name);
            let tag = format!("{kind}:{name}");
            if let Some(prev) = symbols.insert(sym.clone(), tag.clone()) {
                if prev != tag {
                    return Err(EmitError::SymbolClash { symbol: sym });
                }
            }
            Ok(sym)
        };
        let reg_syms = program
            .registers()
            .iter()
            .map(|r| claim("register", &r.name))
            .collect::<Result<Vec<_>, _>>()?;
        let table_syms = program
            .tables()
            .iter()
            .map(|t| claim("table", &t.spec().name))
            .collect::<Result<Vec<_>, _>>()?;

        // Action symbols are indexed, so they cannot clash.
        let action_syms = plan
            .actions()
            .iter()
            .enumerate()
            .map(|(i, a)| format!("a{i}_{}", sanitize(&a.name)))
            .collect();

        let mut slot_by_table = vec![usize::MAX; program.tables().len()];
        for (i, slot) in plan.slots().iter().enumerate() {
            slot_by_table[slot.table as usize] = i;
        }

        Ok(Self {
            program,
            plan,
            opts,
            fields,
            meta_members,
            standard,
            reg_syms,
            reg_stage,
            table_stage,
            table_syms,
            action_syms,
            salus: Vec::new(),
            salu_ix: HashMap::new(),
            hashes: Vec::new(),
            needs_div_const: false,
            slot_by_table,
        })
    }

    fn src_expr(&self, s: Source, want: u8) -> String {
        match s {
            Source::Const(c) => lit(want, c),
            Source::Field(f) => {
                let fi = &self.fields[f.index()];
                if fi.bits == want {
                    fi.lv.clone()
                } else {
                    format!("(bit<{want}>){}", fi.lv)
                }
            }
        }
    }

    fn field_lv(&self, f: FieldId) -> &str {
        &self.fields[f.index()].lv
    }

    fn field_bits(&self, f: FieldId) -> u8 {
        self.fields[f.index()].bits
    }

    /// Interns the hash engine for `salt`, returning its symbol.
    fn hash_sym(&mut self, salt: u64) -> String {
        if let Some((_, sym)) = self.hashes.iter().find(|(s, _)| *s == salt) {
            return sym.clone();
        }
        let sym = if salt == 0 {
            "hash_idx".to_string()
        } else {
            format!("hash_fp_{}", self.hashes.iter().filter(|(s, _)| *s != 0).count())
        };
        self.hashes.push((salt, sym.clone()));
        sym
    }

    /// Interns the RegisterAction for a stateful primitive, returning
    /// its symbol. Declaration text is produced once, on first use.
    fn salu_sym(&mut self, p: &Primitive) -> Result<String, EmitError> {
        if let Some(&i) = self.salu_ix.get(p) {
            return Ok(self.salus[i].sym.clone());
        }
        let i = self.salus.len();
        let decl = match p {
            Primitive::RegRmw { reg, op, operand, out, .. } => {
                let ri = reg.index();
                let spec = &self.program.registers()[ri];
                let rsym = &self.reg_syms[ri];
                let wb = spec.width_bits;
                let sym = format!("salu{i}_{rsym}_{}", rmw_tag(*op));
                let operand_e = self.src_expr(*operand, wb);
                let mut b = String::new();
                let stage =
                    self.program.stage_of_register(*reg).expect("register allocated to a stage");
                w!(b, "    /* SALU @ stage {stage} (stage-local to {rsym}) */");
                w!(b, "    RegisterAction<bit<{wb}>, bit<32>, bit<{wb}>>({rsym}) {sym} = {{");
                w!(b, "        void apply(inout bit<{wb}> cell, out bit<{wb}> rv) {{");
                let nv = match op {
                    RegAluOp::Read => "cell".to_string(),
                    RegAluOp::Write => operand_e.clone(),
                    RegAluOp::Add => format!("cell + {operand_e}"),
                    RegAluOp::Sub => format!("cell - {operand_e}"),
                    RegAluOp::Min => format!("(cell < {operand_e}) ? cell : {operand_e}"),
                    RegAluOp::Max => format!("(cell > {operand_e}) ? cell : {operand_e}"),
                };
                w!(b, "            bit<{wb}> nv = {nv};");
                if let Some(cap) = spec.cap {
                    let cap_l = lit(wb, cap);
                    if *op == RegAluOp::Add {
                        w!(b, "            /* saturating ALU mode: clamp at the cap */");
                        w!(b, "            if (nv < cell || nv > {cap_l}) {{ nv = {cap_l}; }}");
                    } else {
                        w!(b, "            if (nv > {cap_l}) {{ nv = {cap_l}; }}");
                    }
                }
                let rv = match out {
                    Some((_, AluOut::Old)) => "cell",
                    _ => "nv",
                };
                w!(b, "            rv = {rv};");
                w!(b, "            cell = nv;");
                w!(b, "        }}");
                w!(b, "    }};");
                SaluDecl { sym, text: b }
            }
            Primitive::OwnerUpdate {
                reg,
                fp,
                now,
                idle_timeout_us,
                pinned_timeout_us,
                mode,
                claim,
                release,
                pin,
                class,
                state_out,
                ..
            } => {
                let ri = reg.index();
                let spec = &self.program.registers()[ri];
                if spec.width_bits != 64 {
                    return Err(EmitError::OwnerLaneWidth {
                        register: spec.name.clone(),
                        width_bits: spec.width_bits,
                    });
                }
                let rsym = &self.reg_syms[ri];
                let sw = self.field_bits(*state_out);
                let tag = match mode {
                    OwnerMode::Probe => "probe",
                    OwnerMode::Decide => "decide",
                };
                let sym = format!("salu{i}_{rsym}_{tag}");
                let fp_e = self.src_expr(*fp, 24);
                let now_e = self.src_expr(*now, 32);
                let st = |s: u64, name: &str| format!("state = {}; /* {name} */", lit(sw, s));
                let mut b = String::new();
                let stage =
                    self.program.stage_of_register(*reg).expect("register allocated to a stage");
                w!(b, "    /* ownership-lane {tag} (claim={claim}, release={release}, pin={pin})");
                w!(
                    b,
                    "       @ stage {stage}. Lane layout: decided[63] | pinned[62] | class[61:56]"
                );
                w!(b, "       | fp[55:32] | last_seen_us[31:0]. On silicon the two SALU halves");
                w!(b, "       compute (fp == lane.fp) and (now - last_seen > timeout) as");
                w!(b, "       condition_lo/hi and the predicated write selects refresh / claim /");
                w!(b, "       leave -- the pForest register-reuse shape. */");
                w!(b, "    RegisterAction<bit<64>, bit<32>, bit<{sw}>>({rsym}) {sym} = {{");
                w!(b, "        void apply(inout bit<64> lane, out bit<{sw}> state) {{");
                w!(b, "            bit<24> fp_ = {fp_e};");
                w!(b, "            bit<32> now_ = {now_e};");
                match mode {
                    OwnerMode::Probe => {
                        w!(b, "            bit<32> age_ = now_ - lane[31:0];");
                        w!(b, "            if (lane[55:32] == fp_) {{");
                        if *release {
                            w!(
                                b,
                                "                if (lane[63:63] == 1w1 && lane[62:62] == 1w0) {{"
                            );
                            w!(b, "                    /* trailing FIN of an early-exit flow: free in-band */");
                            w!(b, "                    lane = 64w0;");
                            w!(b, "                    {}", st(7, "OwnerRelease"));
                            w!(b, "                }} else if (lane[63:63] == 1w1) {{");
                        } else {
                            w!(b, "                if (lane[63:63] == 1w1) {{");
                        }
                        w!(b, "                    /* decided owner: refresh recency, keep flags+class */");
                        w!(b, "                    lane = lane[63:56] ++ fp_ ++ now_;");
                        w!(b, "                    {}", st(5, "OwnerDecided"));
                        w!(b, "                }} else {{");
                        w!(b, "                    lane = lane[63:56] ++ fp_ ++ now_;");
                        w!(b, "                    {}", st(0, "Owner"));
                        w!(b, "                }}");
                        w!(b, "            }} else if (lane[55:32] == 24w0) {{");
                        if *claim {
                            w!(b, "                lane = 8w0 ++ fp_ ++ now_;");
                            w!(b, "                {}", st(1, "ClaimFree"));
                        } else {
                            w!(b, "                /* no claim permission (non-SYN probe) */");
                            w!(b, "                {}", st(6, "Unsolicited"));
                        }
                        w!(b, "            }} else if (lane[63:62] == 2w3) {{");
                        w!(b, "                if (age_ > {}) {{", lit(32, *pinned_timeout_us));
                        if *claim {
                            w!(b, "                    lane = 8w0 ++ fp_ ++ now_;");
                            w!(b, "                    {}", st(8, "TakeoverPinned"));
                        } else {
                            w!(b, "                    {}", st(6, "Unsolicited"));
                        }
                        w!(b, "                }} else {{");
                        w!(b, "                    {}", st(9, "PinnedDefended"));
                        w!(b, "                }}");
                        w!(b, "            }} else if (lane[63:63] == 1w1) {{");
                        if *claim {
                            w!(b, "                lane = 8w0 ++ fp_ ++ now_;");
                            w!(b, "                {}", st(3, "TakeoverDecided"));
                        } else {
                            w!(b, "                {}", st(6, "Unsolicited"));
                        }
                        w!(b, "            }} else if (age_ > {}) {{", lit(32, *idle_timeout_us));
                        if *claim {
                            w!(b, "                lane = 8w0 ++ fp_ ++ now_;");
                            w!(b, "                {}", st(2, "TakeoverIdle"));
                        } else {
                            w!(b, "                {}", st(6, "Unsolicited"));
                        }
                        w!(b, "            }} else {{");
                        w!(b, "                {}", st(4, "LiveCollision"));
                        w!(b, "            }}");
                    }
                    OwnerMode::Decide => {
                        w!(b, "            if (lane[55:32] == fp_) {{");
                        if *release && !*pin {
                            w!(b, "                /* in-band FIN/RST release */");
                            w!(b, "                lane = 64w0;");
                            w!(b, "                {}", st(7, "OwnerRelease"));
                        } else {
                            let pin_b = u64::from(*pin);
                            let class_e = self.src_expr(*class, 6);
                            w!(b, "                lane = 1w1 ++ 1w{pin_b} ++ {class_e} ++ fp_ ++ now_;");
                            w!(b, "                {}", st(5, "OwnerDecided"));
                        }
                        w!(b, "            }} else {{");
                        w!(b, "                /* lane already recycled: leave it alone */");
                        w!(b, "                {}", st(5, "OwnerDecided"));
                        w!(b, "            }}");
                    }
                }
                w!(b, "        }}");
                w!(b, "    }};");
                SaluDecl { sym, text: b }
            }
            _ => unreachable!("salu_sym is only called for stateful primitives"),
        };
        let sym = decl.sym.clone();
        self.salu_ix.insert(p.clone(), i);
        self.salus.push(decl);
        Ok(sym)
    }

    /// Emits one action's body statements (indented for action scope).
    fn action_body(&mut self, action: &Action) -> Result<String, EmitError> {
        let mut b = String::new();
        let mut hash_n = 0usize;
        for p in &action.prims {
            match p {
                Primitive::Set { dst, src } => {
                    let wbits = self.field_bits(*dst);
                    w!(b, "        {} = {};", self.field_lv(*dst), self.src_expr(*src, wbits));
                }
                Primitive::Add { dst, a, b: rhs } => {
                    let wbits = self.field_bits(*dst);
                    w!(
                        b,
                        "        {} = {} + {};",
                        self.field_lv(*dst),
                        self.src_expr(*a, wbits),
                        self.src_expr(*rhs, wbits)
                    );
                }
                Primitive::Sub { dst, a, b: rhs } => {
                    let wbits = self.field_bits(*dst);
                    w!(
                        b,
                        "        {} = {} - {};",
                        self.field_lv(*dst),
                        self.src_expr(*a, wbits),
                        self.src_expr(*rhs, wbits)
                    );
                }
                Primitive::Min { dst, a, b: rhs } => {
                    let wbits = self.field_bits(*dst);
                    let (x, y) = (self.src_expr(*a, wbits), self.src_expr(*rhs, wbits));
                    w!(
                        b,
                        "        {} = ({x} < {y}) ? {x} : {y}; /* compare-select ALU */",
                        self.field_lv(*dst)
                    );
                }
                Primitive::Max { dst, a, b: rhs } => {
                    let wbits = self.field_bits(*dst);
                    let (x, y) = (self.src_expr(*a, wbits), self.src_expr(*rhs, wbits));
                    w!(
                        b,
                        "        {} = ({x} > {y}) ? {x} : {y}; /* compare-select ALU */",
                        self.field_lv(*dst)
                    );
                }
                Primitive::DivConst { dst, a, divisor } => {
                    let wbits = self.field_bits(*dst);
                    let lv = self.field_lv(*dst).to_string();
                    if divisor.is_power_of_two() {
                        let shift = divisor.trailing_zeros();
                        w!(b, "        {lv} = {} >> {shift};", self.src_expr(*a, wbits));
                    } else {
                        self.needs_div_const = true;
                        let a_e = self.src_expr(*a, 32);
                        let cast =
                            if wbits == 32 { String::new() } else { format!("(bit<{wbits}>)") };
                        w!(
                            b,
                            "        {lv} = {cast}div_const({a_e}, {}); /* MathUnit lookup */",
                            lit(32, *divisor)
                        );
                    }
                }
                Primitive::HashFlow { dst, mask: m, salt } => {
                    let hf = self.plan.hash_flow().ok_or(EmitError::HashTupleUnavailable)?;
                    let sym = self.hash_sym(*salt);
                    let wbits = self.field_bits(*dst);
                    let (src, dst_ip) = (
                        self.field_lv(hf.src_ip).to_string(),
                        self.field_lv(hf.dst_ip).to_string(),
                    );
                    let (sp, dp) =
                        (self.field_lv(hf.sport).to_string(), self.field_lv(hf.dport).to_string());
                    let proto = self.field_lv(hf.proto).to_string();
                    let j = hash_n;
                    hash_n += 1;
                    w!(b, "        /* canonical 5-tuple: both directions hash identically */");
                    w!(b, "        bit<32> h{j}_ip_lo = ({src} < {dst_ip}) ? {src} : {dst_ip};");
                    w!(b, "        bit<32> h{j}_ip_hi = ({src} < {dst_ip}) ? {dst_ip} : {src};");
                    w!(b, "        bit<16> h{j}_pt_lo = ({sp} < {dp}) ? {sp} : {dp};");
                    w!(b, "        bit<16> h{j}_pt_hi = ({sp} < {dp}) ? {dp} : {sp};");
                    w!(
                        b,
                        "        {} = (bit<{wbits}>)({sym}.get({{ h{j}_ip_lo, h{j}_ip_hi, h{j}_pt_lo, h{j}_pt_hi, {proto} }}) & {});",
                        self.field_lv(*dst),
                        lit(32, *m)
                    );
                }
                Primitive::RegRmw { index, out, .. } => {
                    let sym = self.salu_sym(p)?;
                    let idx_e = self.src_expr(*index, 32);
                    match out {
                        Some((f, _)) => {
                            let ob = self.field_bits(*f);
                            let reg_w = match p {
                                Primitive::RegRmw { reg, .. } => {
                                    self.program.registers()[reg.index()].width_bits
                                }
                                _ => unreachable!(),
                            };
                            let cast =
                                if ob == reg_w { String::new() } else { format!("(bit<{ob}>)") };
                            w!(b, "        {} = {cast}{sym}.execute({idx_e});", self.field_lv(*f));
                        }
                        None => {
                            w!(b, "        {sym}.execute({idx_e});");
                        }
                    }
                }
                Primitive::OwnerUpdate { index, state_out, .. } => {
                    let sym = self.salu_sym(p)?;
                    let idx_e = self.src_expr(*index, 32);
                    w!(b, "        {} = {sym}.execute({idx_e});", self.field_lv(*state_out));
                }
                Primitive::Resubmit => {
                    w!(b, "        /* decide pass: recirculate via the resubmit path */");
                    w!(b, "        ig_dprsr_md.resubmit_type = RESUB_DECIDE;");
                }
                Primitive::Digest => {
                    if self.program.digest_fields().is_empty() {
                        return Err(EmitError::DigestWithoutFields);
                    }
                    w!(b, "        ig_dprsr_md.digest_type = DIGEST_VERDICT;");
                }
                Primitive::Drop => {
                    w!(b, "        ig_dprsr_md.drop_ctl = 3w1;");
                }
            }
        }
        Ok(b)
    }

    /// The distinct action symbols a table binds (entries + default),
    /// first-use order.
    fn table_actions(&self, slot: &PlanSlot, n_entries: usize) -> Vec<ActionId> {
        let mut ids: Vec<ActionId> = Vec::new();
        for e in 0..n_entries {
            let id = self.plan.entry_action(slot, e);
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        if !ids.contains(&slot.default_action) {
            ids.push(slot.default_action);
        }
        ids
    }

    fn run(mut self) -> Result<Emission, EmitError> {
        // Pre-pass: intern every SALU / hash engine and render every
        // action body in plan-arena order, so declaration order is
        // deterministic and independent of table layout.
        let actions: Vec<Action> = self.plan.actions().to_vec();
        let mut action_bodies = Vec::with_capacity(actions.len());
        for a in &actions {
            action_bodies.push(self.action_body(a)?);
        }

        let mut manifest_tables = Vec::new();
        for (ti, table) in self.program.tables().iter().enumerate() {
            let spec = table.spec();
            let kind = match spec.kind {
                MatchKind::Exact => "exact",
                MatchKind::Ternary => "ternary",
                MatchKind::Range => "range",
            };
            let slot = &self.plan.slots()[self.slot_by_table[ti]];
            let key = spec
                .key
                .iter()
                .map(|f| KeyField {
                    field: self.fields[f.index()].name.clone(),
                    p4: self.field_lv(*f).to_string(),
                    bits: self.field_bits(*f),
                    match_kind: kind,
                })
                .collect();
            let entries = table
                .entries()
                .iter()
                .enumerate()
                .map(|(e, entry)| {
                    let (key, priority) = match &entry.key {
                        EntryKey::Exact(vals) => {
                            (vals.iter().map(|&v| KeyValue::Exact(v)).collect(), None)
                        }
                        EntryKey::Ternary { fields, priority } => (
                            fields
                                .iter()
                                .map(|t| KeyValue::Ternary { value: t.value, mask: t.mask })
                                .collect(),
                            Some(*priority),
                        ),
                        EntryKey::Range { fields, priority } => (
                            fields.iter().map(|&(lo, hi)| KeyValue::Range { lo, hi }).collect(),
                            Some(*priority),
                        ),
                    };
                    ManifestEntry {
                        key,
                        priority,
                        action: self.action_syms[self.plan.entry_action(slot, e).index()].clone(),
                    }
                })
                .collect();
            manifest_tables.push(ManifestTable {
                name: spec.name.clone(),
                p4: self.table_syms[ti].clone(),
                stage: self.table_stage[ti],
                kind,
                size: spec.max_entries,
                key,
                default_action: self.action_syms[slot.default_action.index()].clone(),
                entries,
            });
        }

        let placements = self.plan.bank_layout().placements();
        let manifest_registers = self
            .program
            .registers()
            .iter()
            .enumerate()
            .map(|(ri, spec)| ManifestRegister {
                name: spec.name.clone(),
                p4: self.reg_syms[ri].clone(),
                stage: self.reg_stage[ri],
                width_bits: spec.width_bits,
                slots: spec.len,
                placement: match placements[ri] {
                    RegPlacement::Banked { bank, offset, cell_bytes } => Placement::Banked {
                        bank: bank as usize,
                        offset: offset as usize,
                        cell_bytes: cell_bytes as usize,
                    },
                    RegPlacement::Split => Placement::Split,
                },
            })
            .collect();

        let p4 = self.render(&action_bodies);
        let manifest = Manifest {
            program: self.opts.program_name.clone(),
            provenance: self.opts.provenance.clone(),
            tables: manifest_tables,
            registers: manifest_registers,
        };
        Ok(Emission { p4, manifest })
    }

    /// Renders the final P4 text from the pre-passed pieces.
    fn render(&self, action_bodies: &[String]) -> String {
        let mut o = String::new();
        let name = &self.opts.program_name;
        let prov = &self.opts.provenance;
        w!(o, "/* {name} -- generated by {} from the compiled SpliDT pipeline.", prov.emitter);
        w!(o, " *");
        w!(o, " * GENERATED FILE -- DO NOT EDIT. Regenerate with:");
        w!(o, " *   cargo run --release -p splidt-bench --bin p4_smoke -- --bless");
        w!(o, " *");
        w!(
            o,
            " * fixture: {} | policy: {} | flow_slots: {} | staged_generation: {}",
            prov.fixture,
            prov.policy,
            prov.flow_slots,
            prov.staged_generation
        );
        w!(
            o,
            " * flow bank: {}B/flow packed, {}B stride, {} line(s)/flow",
            prov.bank_cell_bytes_per_flow,
            prov.bank_stride_bytes,
            prov.bank_lines_per_flow
        );
        w!(o, " */");
        w!(o);
        w!(o, "#include <core.p4>");
        w!(o, "#include <tna.p4>");
        w!(o);
        w!(o, "const bit<16> ETHERTYPE_IPV4      = 16w0x0800;");
        w!(o, "const bit<16> ETHERTYPE_FLOW_SHIM = 16w0x88B5;");
        w!(o, "const bit<8>  IPPROTO_TCP         = 8w6;");
        w!(o, "const bit<8>  IPPROTO_UDP         = 8w17;");
        w!(o, "/* deparser dispatch codes */");
        w!(o, "const bit<3>  DIGEST_VERDICT      = 3w1;");
        w!(o, "const bit<3>  RESUB_DECIDE        = 3w1;");
        if self.needs_div_const {
            w!(o);
            w!(o, "/* Small-constant division (window_len = flow_size / p): realized on");
            w!(o, "   Tofino as a MathUnit lookup; modeled as a pure helper extern. */");
            w!(o, "extern bit<32> div_const(in bit<32> dividend, in bit<32> divisor);");
        }
        w!(o);
        self.render_headers(&mut o);
        self.render_parser(&mut o);
        self.render_ingress(&mut o, action_bodies);
        self.render_deparser(&mut o);
        self.render_egress(&mut o);
        w!(o, "Pipeline(SplidtIngressParser(),");
        w!(o, "         SplidtIngress(),");
        w!(o, "         SplidtIngressDeparser(),");
        w!(o, "         SplidtEgressParser(),");
        w!(o, "         SplidtEgress(),");
        w!(o, "         SplidtEgressDeparser()) pipe;");
        w!(o);
        w!(o, "Switch(pipe) main;");
        o
    }

    fn render_headers(&self, o: &mut String) {
        w!(o, "/* -------- headers: the peek_flow_tuple wire format -------- */");
        w!(o);
        w!(o, "header ethernet_h {{");
        w!(o, "    bit<48> dst_addr;");
        w!(o, "    bit<48> src_addr;");
        w!(o, "    bit<16> ether_type;");
        w!(o, "}}");
        w!(o);
        if self.standard {
            w!(o, "/* optional 4-byte flow-size shim the synthetic generator prepends */");
            w!(o, "header flow_shim_h {{");
            w!(o, "    bit<16> flow_size;");
            w!(o, "    bit<16> next_ether_type;");
            w!(o, "}}");
            w!(o);
            w!(o, "header ipv4_h {{");
            w!(o, "    bit<4>  version;");
            w!(o, "    bit<4>  ihl;");
            w!(o, "    bit<8>  diffserv;");
            w!(o, "    bit<16> total_len;");
            w!(o, "    bit<16> identification;");
            w!(o, "    bit<3>  flags;");
            w!(o, "    bit<13> frag_offset;");
            w!(o, "    bit<8>  ttl;");
            w!(o, "    bit<8>  protocol;");
            w!(o, "    bit<16> hdr_checksum;");
            w!(o, "    bit<32> src_addr;");
            w!(o, "    bit<32> dst_addr;");
            w!(o, "}}");
            w!(o);
            w!(o, "header tcp_h {{");
            w!(o, "    bit<16> src_port;");
            w!(o, "    bit<16> dst_port;");
            w!(o, "    bit<32> seq_no;");
            w!(o, "    bit<32> ack_no;");
            w!(o, "    bit<4>  data_offset;");
            w!(o, "    bit<4>  res;");
            w!(o, "    bit<8>  flags;");
            w!(o, "    bit<16> window;");
            w!(o, "    bit<16> checksum;");
            w!(o, "    bit<16> urgent_ptr;");
            w!(o, "}}");
            w!(o);
            w!(o, "header udp_h {{");
            w!(o, "    bit<16> src_port;");
            w!(o, "    bit<16> dst_port;");
            w!(o, "    bit<16> hdr_length;");
            w!(o, "    bit<16> checksum;");
            w!(o, "}}");
            w!(o);
            w!(o, "struct headers_t {{");
            w!(o, "    ethernet_h  ethernet;");
            w!(o, "    flow_shim_h flow_shim;");
            w!(o, "    ipv4_h      ipv4;");
            w!(o, "    tcp_h       tcp;");
            w!(o, "    udp_h       udp;");
            w!(o, "}}");
        } else {
            w!(o, "struct headers_t {{");
            w!(o, "    ethernet_h ethernet;");
            w!(o, "}}");
        }
        w!(o);
        w!(o, "/* -------- metadata: the PHV fields the pipeline computes -------- */");
        w!(o);
        w!(o, "struct metadata_t {{");
        for (member, bits) in &self.meta_members {
            w!(o, "    bit<{bits}> {member};");
        }
        w!(o, "}}");
        w!(o);
        w!(o, "struct empty_headers_t {{ }}");
        w!(o, "struct empty_metadata_t {{ }}");
        w!(o);
    }

    fn render_parser(&self, o: &mut String) {
        w!(o, "/* -------- ingress parser: Ethernet -> [shim] -> IPv4 -> TCP/UDP -------- */");
        w!(o);
        w!(o, "parser SplidtIngressParser(packet_in pkt,");
        w!(o, "        out headers_t hdr,");
        w!(o, "        out metadata_t meta,");
        w!(o, "        out ingress_intrinsic_metadata_t ig_intr_md) {{");
        w!(o, "    state start {{");
        w!(o, "        pkt.extract(ig_intr_md);");
        w!(o, "        pkt.advance(PORT_METADATA_SIZE);");
        w!(o, "        transition parse_ethernet;");
        w!(o, "    }}");
        w!(o, "    state parse_ethernet {{");
        w!(o, "        pkt.extract(hdr.ethernet);");
        if self.standard {
            w!(o, "        transition select(hdr.ethernet.ether_type) {{");
            w!(o, "            ETHERTYPE_FLOW_SHIM : parse_flow_shim;");
            w!(o, "            ETHERTYPE_IPV4      : parse_ipv4;");
            w!(o, "            default             : accept;");
            w!(o, "        }}");
            w!(o, "    }}");
            w!(o, "    state parse_flow_shim {{");
            w!(o, "        pkt.extract(hdr.flow_shim);");
            w!(o, "        transition parse_ipv4;");
            w!(o, "    }}");
            w!(o, "    state parse_ipv4 {{");
            w!(o, "        pkt.extract(hdr.ipv4);");
            w!(o, "        transition select(hdr.ipv4.protocol) {{");
            w!(o, "            IPPROTO_TCP : parse_tcp;");
            w!(o, "            IPPROTO_UDP : parse_udp;");
            w!(o, "            default     : accept;");
            w!(o, "        }}");
            w!(o, "    }}");
            w!(o, "    state parse_tcp {{");
            w!(o, "        pkt.extract(hdr.tcp);");
            w!(o, "        meta.l4_sport = hdr.tcp.src_port;");
            w!(o, "        meta.l4_dport = hdr.tcp.dst_port;");
            w!(o, "        meta.tcp_flags = hdr.tcp.flags;");
            w!(o, "        transition accept;");
            w!(o, "    }}");
            w!(o, "    state parse_udp {{");
            w!(o, "        pkt.extract(hdr.udp);");
            w!(o, "        meta.l4_sport = hdr.udp.src_port;");
            w!(o, "        meta.l4_dport = hdr.udp.dst_port;");
            w!(o, "        meta.tcp_flags = 8w0;");
            w!(o, "        transition accept;");
            w!(o, "    }}");
        } else {
            w!(o, "        transition accept;");
            w!(o, "    }}");
        }
        w!(o, "}}");
        w!(o);
    }

    fn render_ingress(&self, o: &mut String, action_bodies: &[String]) {
        w!(o, "/* -------- ingress: the compiled SpliDT pipeline -------- */");
        w!(o);
        w!(o, "control SplidtIngress(");
        w!(o, "        inout headers_t hdr,");
        w!(o, "        inout metadata_t meta,");
        w!(o, "        in ingress_intrinsic_metadata_t ig_intr_md,");
        w!(o, "        in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,");
        w!(o, "        inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,");
        w!(o, "        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {{");
        w!(o);
        if !self.hashes.is_empty() {
            for (salt, sym) in &self.hashes {
                if *salt == 0 {
                    w!(o, "    /* canonical flow index hash */");
                    w!(o, "    Hash<bit<32>>(HashAlgorithm_t.CRC32) {sym};");
                } else {
                    w!(o, "    /* ownership-lane fingerprint: independently seeded engine");
                    w!(
                        o,
                        "       (salt {}) so the fp cannot correlate with the index. */",
                        lit(32, *salt)
                    );
                    w!(o, "    Hash<bit<32>>(HashAlgorithm_t.CRC32, CRCPolynomial<bit<32>>(");
                    w!(
                        o,
                        "        32w0x04C11DB7, true, true, false, {}, 32w0xFFFFFFFF)) {sym};",
                        lit(32, *salt)
                    );
                }
            }
            w!(o);
        }
        // Registers, annotated with stage + flow-bank placement.
        let placements = self.plan.bank_layout().placements();
        for (ri, spec) in self.program.registers().iter().enumerate() {
            let stage = self.reg_stage[ri];
            let bank_note = match placements[ri] {
                RegPlacement::Banked { bank, offset, cell_bytes } => {
                    format!("flow bank {bank} @ +{offset}B ({cell_bytes}B cell)")
                }
                RegPlacement::Split => "split (no bank sibling)".to_string(),
            };
            let cap_note = match spec.cap {
                Some(c) => format!(", cap {c}"),
                None => String::new(),
            };
            w!(o, "    /* {} -- {bank_note}{cap_note} */", spec.name);
            w!(o, "    @stage({stage})");
            w!(
                o,
                "    Register<bit<{}>, bit<32>>({}) {};",
                spec.width_bits,
                spec.len,
                self.reg_syms[ri]
            );
        }
        w!(o);
        for salu in &self.salus {
            o.push_str(&salu.text);
            w!(o);
        }
        // Action declarations, plan-arena order.
        for (i, body) in action_bodies.iter().enumerate() {
            w!(o, "    action {}() {{", self.action_syms[i]);
            if body.is_empty() {
                w!(o, "        /* no-op */");
            } else {
                o.push_str(body);
            }
            w!(o, "    }}");
            w!(o);
        }
        // Table declarations, id order.
        for (ti, table) in self.program.tables().iter().enumerate() {
            let spec = table.spec();
            let kind = match spec.kind {
                MatchKind::Exact => "exact",
                MatchKind::Ternary => "ternary",
                MatchKind::Range => "range",
            };
            let slot = &self.plan.slots()[self.slot_by_table[ti]];
            w!(o, "    @stage({})", self.table_stage[ti]);
            w!(o, "    table {} {{", self.table_syms[ti]);
            if !spec.key.is_empty() {
                w!(o, "        key = {{");
                for f in &spec.key {
                    w!(o, "            {} : {kind};", self.field_lv(*f));
                }
                w!(o, "        }}");
            }
            w!(o, "        actions = {{");
            for id in self.table_actions(slot, table.n_entries()) {
                w!(o, "            {};", self.action_syms[id.index()]);
            }
            w!(o, "        }}");
            w!(
                o,
                "        const default_action = {}();",
                self.action_syms[slot.default_action.index()]
            );
            w!(o, "        size = {};", spec.max_entries);
            w!(o, "    }}");
            w!(o);
        }
        // Apply: stage-major, the interpreter's pass order.
        w!(o, "    apply {{");
        if self.standard {
            w!(o, "        /* intrinsic -> PHV bridge */");
            w!(o, "        meta.ts_us = ig_prsr_md.global_tstamp; /* ns on silicon; the model's");
            w!(o, "            us clock is a controller-configured divide */");
            w!(o, "        meta.is_resubmit = ig_intr_md.resubmit_flag;");
            w!(o, "        meta.frame_len = hdr.ipv4.total_len + 16w14;");
            w!(o, "        /* bump-in-the-wire: reflect out the ingress port */");
            w!(o, "        ig_tm_md.ucast_egress_port = ig_intr_md.ingress_port;");
        }
        for (s, alloc) in self.program.stages().iter().enumerate() {
            w!(o, "        /* ---- stage {s} ---- */");
            for tid in &alloc.tables {
                w!(o, "        {}.apply();", self.table_syms[tid.index()]);
            }
        }
        w!(
            o,
            "        /* resubmit budget: at most {} passes per packet */",
            self.program.resubmit_limit()
        );
        w!(o, "    }}");
        w!(o, "}}");
        w!(o);
    }

    fn render_deparser(&self, o: &mut String) {
        let digest = self.program.digest_fields();
        w!(o, "/* -------- ingress deparser: digest + resubmit wiring -------- */");
        w!(o);
        if !digest.is_empty() {
            w!(o, "/* verdict export to the controller (the digest ring's wire shape) */");
            w!(o, "struct verdict_digest_t {{");
            for (i, f) in digest.iter().enumerate() {
                w!(
                    o,
                    "    bit<{}> f{i}_{};",
                    self.field_bits(*f),
                    sanitize(&self.fields[f.index()].name)
                );
            }
            w!(o, "}}");
            w!(o);
        }
        w!(o, "control SplidtIngressDeparser(packet_out pkt,");
        w!(o, "        inout headers_t hdr,");
        w!(o, "        in metadata_t meta,");
        w!(o, "        in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {{");
        if !digest.is_empty() {
            w!(o, "    Digest<verdict_digest_t>() verdict_digest;");
        }
        w!(o, "    Resubmit() resubmit;");
        w!(o, "    apply {{");
        if !digest.is_empty() {
            w!(o, "        if (ig_dprsr_md.digest_type == DIGEST_VERDICT) {{");
            w!(o, "            verdict_digest.pack({{");
            for (i, f) in digest.iter().enumerate() {
                let comma = if i + 1 == digest.len() { "" } else { "," };
                w!(o, "                {}{comma}", self.field_lv(*f));
            }
            w!(o, "            }});");
            w!(o, "        }}");
        }
        w!(o, "        if (ig_dprsr_md.resubmit_type == RESUB_DECIDE) {{");
        w!(o, "            resubmit.emit();");
        w!(o, "        }}");
        w!(o, "        pkt.emit(hdr);");
        w!(o, "    }}");
        w!(o, "}}");
        w!(o);
    }

    fn render_egress(&self, o: &mut String) {
        w!(o, "/* -------- egress: pass-through (inference is ingress-only) -------- */");
        w!(o);
        w!(o, "parser SplidtEgressParser(packet_in pkt,");
        w!(o, "        out empty_headers_t hdr,");
        w!(o, "        out empty_metadata_t meta,");
        w!(o, "        out egress_intrinsic_metadata_t eg_intr_md) {{");
        w!(o, "    state start {{");
        w!(o, "        pkt.extract(eg_intr_md);");
        w!(o, "        transition accept;");
        w!(o, "    }}");
        w!(o, "}}");
        w!(o);
        w!(o, "control SplidtEgress(");
        w!(o, "        inout empty_headers_t hdr,");
        w!(o, "        inout empty_metadata_t meta,");
        w!(o, "        in egress_intrinsic_metadata_t eg_intr_md,");
        w!(o, "        in egress_intrinsic_metadata_from_parser_t eg_prsr_md,");
        w!(o, "        inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,");
        w!(o, "        inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {{");
        w!(o, "    apply {{ }}");
        w!(o, "}}");
        w!(o);
        w!(o, "control SplidtEgressDeparser(packet_out pkt,");
        w!(o, "        inout empty_headers_t hdr,");
        w!(o, "        in empty_metadata_t meta,");
        w!(o, "        in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {{");
        w!(o, "    apply {{");
        w!(o, "        pkt.emit(hdr);");
        w!(o, "    }}");
        w!(o, "}}");
        w!(o);
    }
}

fn rmw_tag(op: RegAluOp) -> &'static str {
    match op {
        RegAluOp::Read => "read",
        RegAluOp::Write => "write",
        RegAluOp::Add => "add",
        RegAluOp::Sub => "sub",
        RegAluOp::Min => "min",
        RegAluOp::Max => "max",
    }
}
