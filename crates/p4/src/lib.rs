//! # splidt-p4 — Tofino-style P4-16 backend for the compiled pipeline
//!
//! The rest of the workspace *simulates* the RMT pipeline; this crate
//! emits the program a real switch would run. [`emit()`] lowers a
//! [`Program`](splidt_dataplane::program::Program) (plus its
//! [`ExecPlan`](splidt_dataplane::plan::ExecPlan)) to:
//!
//! 1. **P4-16 source** in the TNA dialect: headers and parser for the
//!    `peek_flow_tuple` wire format, `@stage`-annotated `Register`
//!    externs, `RegisterAction` SALU programs for every stateful
//!    primitive, `table`/`action` declarations, and digest/resubmit
//!    deparser wiring.
//! 2. A **control-plane install manifest**
//!    ([`Manifest`]): deterministic JSON listing
//!    every table, its key encoding, and every entry to install — the
//!    input a bf-runtime-style loader would replay at switch boot.
//!
//! The backend cross-checks itself against the analytic resource model:
//! [`recount`] re-derives stage count, per-stage SALU usage, and
//! register bits *from the generated P4 text* and
//! [`recount::cross_check`] asserts them equal to the
//! [`ResourceExpectation`](splidt_core::lower::ResourceExpectation)
//! computed by `splidt_core::lower` from
//! `ModelFootprint`/`BankPhysical`. Any drift between what the emitter
//! writes and what the resource model claims is a test failure, not a
//! silent skew.
//!
//! [`validate`] provides a structural checker (every declared table
//! applied exactly once, SALUs reference declared registers, balanced
//! braces, all pipeline sections present) used by the property-based
//! suite: every randomly generated program either emits P4 that passes
//! the checker or fails with a typed [`EmitError`].
//!
//! [`fixtures`] builds the three golden programs committed under
//! `crates/p4/golden/` (default engine, TCP lifecycle policy, chained
//! multi-partition model); the golden tests compare byte-for-byte and
//! `--bless` regenerates.
//!
//! ```
//! use splidt_core::engine::Trainable;
//! use splidt_core::{compile, PartitionedTree, SplidtConfig};
//! use splidt_flow::{generate, DatasetId};
//!
//! let flows = generate(DatasetId::D2, 120, 21);
//! let cfg = SplidtConfig { partitions: vec![2, 2], k: 4, ..Default::default() };
//! let model = PartitionedTree::fit(&flows, 4, &cfg).unwrap();
//! let compiled = compile(&model, 1 << 10).unwrap();
//!
//! let lowering = splidt_core::lower(&model, &compiled);
//! let out = splidt_p4::emit_lowering(&lowering, "demo", "doctest", 0).unwrap();
//! assert!(out.p4.starts_with("/* demo"));
//!
//! // The emitted text must agree with the analytic resource model.
//! let recount = splidt_p4::recount::recount(&out.p4).unwrap();
//! splidt_p4::recount::cross_check(&recount, &lowering.expectation().unwrap()).unwrap();
//! ```

pub mod emit;
pub mod fixtures;
pub mod manifest;
pub mod recount;
pub mod validate;

pub use emit::{emit, emitter_version, Emission, EmitError, EmitOptions};
pub use manifest::{Manifest, ManifestRegister, ManifestTable, Provenance};

use splidt_core::lower::Lowering;

/// Emits P4 + manifest for a [`Lowering`], deriving the provenance
/// block from the compiled engine's I/O parameters and flow-bank
/// geometry — the convenience entry point fixtures and the smoke
/// benchmark use. See the crate-level example.
pub fn emit_lowering(
    lowering: &Lowering<'_>,
    program_name: &str,
    fixture: &str,
    staged_generation: u64,
) -> Result<Emission, EmitError> {
    let io = lowering.io;
    let bank = &lowering.bank;
    let mut policy =
        if io.policy.tcp_aware { "tcp".to_string() } else { "flow_agnostic".to_string() };
    for class in &io.policy.pinned_classes {
        policy.push_str(&format!("+pin{class}"));
    }
    let opts = EmitOptions {
        program_name: program_name.to_string(),
        provenance: Provenance {
            emitter: emitter_version(),
            fixture: fixture.to_string(),
            flow_slots: io.flow_slots,
            idle_timeout_us: io.idle_timeout_us,
            policy,
            staged_generation,
            bank_cell_bytes_per_flow: bank.cell_bytes_per_flow,
            bank_stride_bytes: bank.stride_bytes,
            bank_lines_per_flow: bank.lines_per_flow,
        },
    };
    emit(lowering.program, &opts)
}
