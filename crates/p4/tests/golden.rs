//! Golden-file suite: the three fixture programs must emit
//! byte-identical P4 and manifests to the committed files under
//! `crates/p4/golden/`, pass the structural validator, and recount to
//! exactly the resource counts the analytic model predicts.
//!
//! Regenerate after an intentional emitter change with either:
//!
//! ```text
//! SPLIDT_P4_BLESS=1 cargo test -p splidt-p4 --test golden
//! cargo run --release -p splidt-bench --bin p4_smoke -- --bless
//! ```

use std::fs;

use splidt_p4::fixtures::{all, golden_dir};
use splidt_p4::recount::{cross_check, recount};
use splidt_p4::validate::validate;

fn blessing() -> bool {
    std::env::var_os("SPLIDT_P4_BLESS").is_some_and(|v| v == "1")
}

fn check_golden(name: &str, file: &str, live: &str) {
    let path = golden_dir().join(file);
    if blessing() {
        fs::write(&path, live).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let committed = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden file {} unreadable ({e}); regenerate with \
             SPLIDT_P4_BLESS=1 cargo test -p splidt-p4 --test golden",
            path.display()
        )
    });
    if committed != live {
        // Find the first differing line for a readable failure.
        let mismatch = committed.lines().zip(live.lines()).enumerate().find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (want, got))) => panic!(
                "fixture `{name}`: {file} drifted at line {}:\n  committed: {want}\n  emitted:   {got}\n\
                 (bless with SPLIDT_P4_BLESS=1 if the change is intentional)",
                i + 1
            ),
            None => panic!(
                "fixture `{name}`: {file} drifted in length only \
                 (committed {} bytes, emitted {} bytes)",
                committed.len(),
                live.len()
            ),
        }
    }
}

#[test]
fn goldens_are_byte_exact_and_recount_to_the_model() {
    for fixture in all() {
        let p4 = &fixture.emission.p4;
        let manifest = fixture.emission.manifest.to_json();

        // 1. Structural shape.
        validate(p4).unwrap_or_else(|e| panic!("fixture `{}` invalid: {e}", fixture.name));

        // 2. Resource recount from the text equals the analytic model.
        let r = recount(p4).unwrap_or_else(|e| panic!("fixture `{}` recount: {e}", fixture.name));
        cross_check(&r, &fixture.expectation)
            .unwrap_or_else(|e| panic!("fixture `{}`: {e}", fixture.name));

        // 3. Byte-exact against the committed goldens.
        check_golden(fixture.name, &format!("{}.p4", fixture.name), p4);
        check_golden(fixture.name, &format!("{}.manifest.json", fixture.name), &manifest);
    }
}

#[test]
fn manifest_counts_match_programs() {
    for fixture in all() {
        let m = &fixture.emission.manifest;
        assert!(!m.tables.is_empty(), "fixture `{}` emitted no tables", fixture.name);
        assert_eq!(
            m.registers.len(),
            fixture.expectation.salus_per_stage.iter().sum::<usize>(),
            "fixture `{}`: manifest registers vs expected SALU count",
            fixture.name
        );
        for reg in &m.registers {
            assert_eq!(
                reg.slots, fixture.expectation.flow_slots,
                "fixture `{}`: register `{}` depth",
                fixture.name, reg.name
            );
        }
        // Provenance mirrors the engine's compile parameters.
        assert_eq!(m.provenance.flow_slots, fixture.expectation.flow_slots);
        assert_eq!(m.provenance.fixture, fixture.name);
    }
}

#[test]
fn tcp_fixture_differs_from_default_in_lifecycle_only_places() {
    let fixtures = all();
    let default = &fixtures[0];
    let tcp = &fixtures[1];
    assert!(default.emission.p4.contains("claim=true"));
    // The TCP fixture must gate claims on SYN somewhere: at least one
    // probe SALU with claim=false exists alongside the SYN one.
    assert!(tcp.emission.p4.contains("claim=false"));
    assert!(tcp.emission.p4.contains("Unsolicited"));
    // And its decide path must include an in-band release variant.
    assert!(tcp.emission.p4.contains("release=true"));
    assert_eq!(tcp.provenance_policy(), "tcp+pin2");
}

trait FixtureExt {
    fn provenance_policy(&self) -> &str;
}

impl FixtureExt for splidt_p4::fixtures::Fixture {
    fn provenance_policy(&self) -> &str {
        &self.emission.manifest.provenance.policy
    }
}
