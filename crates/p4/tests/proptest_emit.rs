//! Property: for *every* random pipeline program, the emitter either
//! produces P4 that passes the structural validator (and a manifest
//! whose table count matches the program) or fails with a typed
//! [`EmitError`] — never a panic, never malformed output.
//!
//! The generator is the same shape as the workspace-level pipeline
//! proptest (`tests/proptest_invariants.rs`): 1–3 stages, 1–2 tables
//! per stage across all three match kinds, one 16-bit register per
//! stage, actions drawn from the full primitive set. Because the
//! random registers are 16-bit, any draw that includes `OwnerUpdate`
//! must surface as [`EmitError::OwnerLaneWidth`] — the typed-error
//! path — while draws without it must emit cleanly.

use proptest::prelude::*;
use splidt_dataplane::action::{Action, AluOp, AluOut, OwnerMode, Primitive, Source};
use splidt_dataplane::phv::FieldId;
use splidt_dataplane::program::{Program, ProgramBuilder};
use splidt_dataplane::register::RegisterSpec;
use splidt_dataplane::table::TableSpec;
use splidt_dataplane::tcam::Ternary;
use splidt_p4::validate::validate;
use splidt_p4::{emit, EmitError, EmitOptions};

/// Builds a random small pipeline program (see module docs).
fn random_program(rng: &mut rand::rngs::SmallRng) -> Program {
    use rand::Rng;
    let mut b = ProgramBuilder::new();
    let widths = [8u8, 16, 16];
    let fields: Vec<FieldId> =
        widths.iter().enumerate().map(|(i, &w)| b.add_meta(format!("f{i}"), w)).collect();
    b.set_digest_fields(vec![fields[0], fields[1]]);
    b.set_resubmit_limit(3);
    let n_stages = rng.random_range(1usize..4);
    let regs: Vec<_> = (0..n_stages)
        .map(|s| b.add_register(RegisterSpec::new(format!("r{s}"), 16, 16), s))
        .collect();

    let random_action = |rng: &mut rand::rngs::SmallRng, stage: usize| -> Action {
        let mut a = Action::new("a");
        for _ in 0..rng.random_range(0usize..4) {
            let dst = fields[rng.random_range(0usize..fields.len())];
            let src = |rng: &mut rand::rngs::SmallRng| {
                if rng.random::<bool>() {
                    Source::Const(rng.random_range(0u64..64))
                } else {
                    Source::Field(fields[rng.random_range(0usize..fields.len())])
                }
            };
            let p = match rng.random_range(0u8..11) {
                0 => Primitive::Set { dst, src: src(rng) },
                1 => Primitive::Add { dst, a: src(rng), b: src(rng) },
                2 => Primitive::Sub { dst, a: src(rng), b: src(rng) },
                3 => Primitive::Min { dst, a: src(rng), b: src(rng) },
                4 => Primitive::Max { dst, a: src(rng), b: src(rng) },
                5 => Primitive::DivConst { dst, a: src(rng), divisor: rng.random_range(1u64..8) },
                6 | 7 => Primitive::RegRmw {
                    reg: regs[stage],
                    index: Source::Const(rng.random_range(0u64..16)),
                    op: [AluOp::Add, AluOp::Write, AluOp::Max, AluOp::Read]
                        [rng.random_range(0usize..4)],
                    operand: src(rng),
                    out: if rng.random::<bool>() {
                        Some((dst, if rng.random::<bool>() { AluOut::Old } else { AluOut::New }))
                    } else {
                        None
                    },
                },
                8 => Primitive::Digest,
                10 => {
                    let idle = rng.random_range(0u64..32);
                    Primitive::OwnerUpdate {
                        reg: regs[stage],
                        index: Source::Const(rng.random_range(0u64..16)),
                        fp: src(rng),
                        now: src(rng),
                        idle_timeout_us: idle,
                        pinned_timeout_us: idle + rng.random_range(0u64..32),
                        mode: if rng.random::<bool>() {
                            OwnerMode::Probe
                        } else {
                            OwnerMode::Decide
                        },
                        claim: rng.random::<bool>(),
                        release: rng.random::<bool>(),
                        pin: rng.random::<bool>(),
                        class: src(rng),
                        state_out: dst,
                    }
                }
                _ => {
                    if rng.random_range(0u8..4) == 0 {
                        Primitive::Drop
                    } else {
                        Primitive::Resubmit
                    }
                }
            };
            a = a.with(p);
        }
        a
    };

    for stage in 0..n_stages {
        for t in 0..rng.random_range(1usize..3) {
            let key: Vec<FieldId> = (0..rng.random_range(1usize..3))
                .map(|_| fields[rng.random_range(0usize..fields.len())])
                .collect();
            let n_entries = rng.random_range(1usize..4);
            let tid = match rng.random_range(0u8..3) {
                0 => {
                    let tid = b.add_table(
                        TableSpec::exact(format!("e{stage}_{t}"), key.clone(), 8),
                        stage,
                    );
                    for _ in 0..n_entries {
                        let vals: Vec<u64> =
                            key.iter().map(|_| rng.random_range(0u64..4)).collect();
                        let action = random_action(rng, stage);
                        let _ = b.add_exact_entry(tid, vals, action);
                    }
                    tid
                }
                1 => {
                    let tid = b.add_table(
                        TableSpec::ternary(format!("t{stage}_{t}"), key.clone(), 8),
                        stage,
                    );
                    for _ in 0..n_entries {
                        let pats: Vec<Ternary> = key
                            .iter()
                            .map(|_| {
                                if rng.random::<bool>() {
                                    Ternary::ANY
                                } else {
                                    Ternary::exact(rng.random_range(0u64..4), 8)
                                }
                            })
                            .collect();
                        let prio = rng.random_range(0u32..10);
                        let action = random_action(rng, stage);
                        b.add_ternary_entry(tid, pats, prio, action).unwrap();
                    }
                    tid
                }
                _ => {
                    let tid = b.add_table(
                        TableSpec::range(format!("r{stage}_{t}"), key.clone(), 8),
                        stage,
                    );
                    for _ in 0..n_entries {
                        let ranges: Vec<(u64, u64)> = key
                            .iter()
                            .map(|_| {
                                let lo = rng.random_range(0u64..6);
                                (lo, lo + rng.random_range(0u64..4))
                            })
                            .collect();
                        let prio = rng.random_range(0u32..10);
                        let action = random_action(rng, stage);
                        b.add_range_entry(tid, ranges, prio, action).unwrap();
                    }
                    tid
                }
            };
            if rng.random::<bool>() {
                let d = random_action(rng, stage);
                b.set_default(tid, d);
            }
        }
    }
    b.build().unwrap()
}

fn uses_owner_update(program: &Program) -> bool {
    let any_owner = |a: &Action| a.prims.iter().any(|p| matches!(p, Primitive::OwnerUpdate { .. }));
    program
        .tables()
        .iter()
        .any(|t| t.entries().iter().any(|e| any_owner(&e.action)) || any_owner(t.default_action()))
}

proptest! {
    /// Every random program emits shape-valid P4 or a typed error.
    #[test]
    fn emit_is_valid_or_typed_error(seed in 0u64..256) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let program = random_program(&mut rng);
        let opts = EmitOptions::adhoc("prop");
        match emit(&program, &opts) {
            Ok(out) => {
                prop_assert!(!uses_owner_update(&program),
                    "OwnerUpdate on a 16-bit register must be refused");
                let shape = validate(&out.p4);
                prop_assert!(shape.is_ok(), "seed {}: invalid P4: {:?}", seed, shape);
                prop_assert_eq!(out.manifest.tables.len(), program.tables().len());
                prop_assert_eq!(out.manifest.registers.len(), program.registers().len());
                prop_assert_eq!(
                    out.manifest.n_entries(),
                    program.tables().iter().map(|t| t.n_entries()).sum::<usize>()
                );
                // Manifests are valid, deterministic JSON.
                let json = out.manifest.to_json();
                prop_assert!(json.ends_with('\n'));
                prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
            }
            Err(e) => {
                // The only typed failure this generator can trigger is the
                // owner-lane width check (its registers are all 16-bit).
                prop_assert!(matches!(e, EmitError::OwnerLaneWidth { width_bits: 16, .. }),
                    "unexpected error for seed {}: {}", seed, e);
                prop_assert!(uses_owner_update(&program));
            }
        }
    }
}
