//! The hot-path measurement harness: fixed-seed traffic, steady-state
//! throughput, and allocations-per-packet — shared by the `hotpath`
//! criterion bench, the `hotpath_smoke` CI binary, and local pre-push
//! checks via `scripts/bench_diff.sh`.
//!
//! Two measurements matter:
//!
//! 1. **Throughput** (packets/sec) through [`Engine::ingest_batch`] on a
//!    compiled SpliDT model — the end-to-end number the CI `bench-smoke`
//!    job gates on (>15% drop vs `bench/baseline.json` fails the build).
//! 2. **Allocations per packet**, measured with the
//!    [`CountingAlloc`](crate::CountingAlloc) global allocator. The
//!    steady-state pipeline path must perform **zero** heap allocations
//!    per packet; [`probe_hot_loop_allocs`] drives a digest-free program
//!    so even boundary-event allocations are excluded and the assertion
//!    is exact.
//!
//! Everything is deterministic: fixed dataset seed, fixed flow schedule,
//! fixed frame serialization — so two runs differ only by machine speed.

use crate::alloc_count::allocation_count;
use splidt_core::engine::{Engine, EngineBuilder};
use splidt_core::{train_partitioned, PartitionedTree, SplidtConfig};
use splidt_dataplane::action::{Action, AluOp, Primitive, Source};
use splidt_dataplane::packet::PacketBuilder;
use splidt_dataplane::pipeline::Pipeline;
use splidt_dataplane::program::ProgramBuilder;
use splidt_dataplane::register::RegisterSpec;
use splidt_dataplane::table::TableSpec;
use splidt_flow::{
    catalog, generate, select_flows, stratified_split, windowed_dataset, DatasetId, FlowTrace,
};
use std::io::Write as _;
use std::time::Instant;

/// Flow count of the standard fixture (SPLIDT_SCALE-independent: the CI
/// gate needs run-to-run determinism, not configurability).
pub const FIXTURE_FLOWS: usize = 220;
/// Dataset seed of the standard fixture.
pub const FIXTURE_SEED: u64 = 7;

/// One hot-path measurement, serialized to `BENCH_hotpath.json`.
#[derive(Debug, Clone, Copy)]
pub struct HotpathStats {
    /// Packets pushed through the engine during the measured region.
    pub packets: u64,
    /// Wall-clock seconds of the measured region.
    pub elapsed_s: f64,
    /// Packets per second.
    pub pps: f64,
    /// Heap allocations per packet across the full engine batch path
    /// (boundary packets emitting digests may allocate; steady-state
    /// packets must not). Zero unless the counting allocator is installed.
    pub allocs_per_packet: f64,
    /// Heap allocations per packet over the digest-free probe program —
    /// the strict zero-allocation criterion.
    pub hot_loop_allocs_per_packet: f64,
    /// Heap allocations per packet over the digest-emitting probe
    /// program (every packet pushes a record into the flat digest ring,
    /// disposed per batch) — the ring's zero-allocation criterion.
    pub digest_ring_allocs_per_packet: f64,
}

/// Trains the standard fixed-seed model and pre-serializes its admitted
/// traffic as `(frame, ts_us)` pairs in timeline order.
pub fn fixture() -> (PartitionedTree, Vec<(Vec<u8>, u64)>) {
    let flows = generate(DatasetId::D2, FIXTURE_FLOWS, FIXTURE_SEED);
    let (tr, te) = stratified_split(&flows, 0.4, 2);
    let train_flows = select_flows(&flows, &tr);
    let traffic = select_flows(&flows, &te);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&train_flows, 3, 4);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let frames = serialize_schedule(&model, &traffic);
    (model, frames)
}

/// Serializes `traffic` exactly as an engine run would feed it: admitted
/// with collision filtering, staggered, merged into one timeline.
pub fn serialize_schedule(model: &PartitionedTree, traffic: &[FlowTrace]) -> Vec<(Vec<u8>, u64)> {
    let mut engine = engine_for(model);
    let mut events: Vec<(u64, usize, usize)> = Vec::new();
    let mut kept: Vec<&FlowTrace> = Vec::new();
    for f in traffic {
        if let Some(a) = engine.admit(f) {
            kept.push(f);
            let idx = kept.len() - 1;
            for (j, p) in f.packets.iter().enumerate() {
                events.push((a.base_us + p.ts_us, idx, j));
            }
        }
    }
    events.sort_unstable();
    events.into_iter().map(|(ts, i, j)| (Engine::frame_for(kept[i], j), ts)).collect()
}

/// A fresh compiled engine for the fixture model (1K µs stagger, 64K
/// slots — the same shape the engine bench uses).
pub fn engine_for(model: &PartitionedTree) -> Engine {
    EngineBuilder::new(model).flow_slots(1 << 16).stagger_us(1_000).build().expect("compiles")
}

/// Streams `frames` through the engine's batch path repeatedly (resetting
/// session state between rounds) until `min_elapsed_s` of measured work
/// has accumulated. Returns the filled [`HotpathStats`] — with
/// allocations-per-packet populated when the counting allocator is the
/// global allocator, zero otherwise.
pub fn measure_engine_throughput(
    engine: &mut Engine,
    frames: &[(Vec<u8>, u64)],
    min_elapsed_s: f64,
) -> HotpathStats {
    // Warm-up round: populate scratch capacities and collation maps.
    engine.reset();
    engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");

    let mut packets = 0u64;
    let allocs_before = allocation_count();
    let start = Instant::now();
    loop {
        engine.reset();
        let report =
            engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");
        packets += report.packets;
        if start.elapsed().as_secs_f64() >= min_elapsed_s {
            break;
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let allocs = allocation_count() - allocs_before;
    HotpathStats {
        packets,
        elapsed_s,
        pps: packets as f64 / elapsed_s,
        allocs_per_packet: allocs as f64 / packets as f64,
        hot_loop_allocs_per_packet: 0.0,
        digest_ring_allocs_per_packet: 0.0,
    }
}

/// Builds a digest-free probe program — flow hash, one stateful
/// accumulator, an exact table and a default action — and drives
/// `n_packets` through [`Pipeline::process_frame`] after a warm-up round.
/// Returns total heap allocations observed in the steady-state region:
/// **must be zero** (and is asserted to be by `hotpath_smoke`) when the
/// counting allocator is installed.
pub fn probe_hot_loop_allocs(n_packets: u64) -> u64 {
    let slots: usize = 1 << 10;
    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();
    let idx = b.add_meta("m.idx", 10);
    let r = b.add_register(RegisterSpec::new("r.bytes", 32, slots), 0);
    let t = b.add_table(TableSpec::exact("acct", vec![fields.ip_proto], 4), 0);
    b.add_exact_entry(
        t,
        vec![6],
        Action::new("account")
            .with(Primitive::HashFlow { dst: idx, mask: (slots - 1) as u64, salt: 0 })
            .with(Primitive::RegRmw {
                reg: r,
                index: Source::Field(idx),
                op: AluOp::Add,
                operand: Source::Field(fields.frame_len),
                out: None,
            }),
    )
    .expect("installs");
    let program = b.build().expect("builds");
    let mut pipe = Pipeline::new(program);

    // A few distinct 5-tuples so lookups and hashes do real work.
    let frames: Vec<Vec<u8>> = (0u32..16)
        .map(|i| {
            PacketBuilder::tcp(0x0a00_0000 + i, 0x0b00_0000 + (i % 5), 40_000 + i as u16, 443)
                .payload(64 + (i as u16 % 7) * 100)
                .flow_size(64)
                .build()
                .to_vec()
        })
        .collect();

    // Warm-up: scratch buffers reach steady capacity.
    for (i, f) in frames.iter().enumerate() {
        pipe.process_frame(f, i as u64, &fields).expect("parses");
    }

    let before = allocation_count();
    for i in 0..n_packets {
        let f = &frames[(i % frames.len() as u64) as usize];
        pipe.process_frame(f, i, &fields).expect("parses");
    }
    allocation_count() - before
}

/// Builds a digest-emitting probe program — every TCP packet sets a
/// verdict class and pushes a digest — and drives `n_packets` through
/// [`Pipeline::process_frame`] in batches of [`DIGEST_PROBE_BATCH`],
/// disposing the pending ring between batches (the drain-per-batch
/// steady-state regime). Returns total heap allocations observed in the
/// measured region: **must be zero** now that digests land in the flat
/// [`DigestBuf`](splidt_dataplane::DigestBuf) ring instead of allocating
/// a `Vec<u64>` per event (~0.03 allocs/packet before the ring).
pub fn probe_digest_ring_allocs(n_packets: u64) -> u64 {
    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();
    let class = b.add_meta("m.class", 8);
    b.set_digest_fields(vec![class, fields.ipv4_src, fields.ipv4_dst]);
    let t = b.add_table(TableSpec::exact("verdict", vec![fields.ip_proto], 4), 0);
    b.add_exact_entry(
        t,
        vec![6],
        Action::new("emit").with(Primitive::set_const(class, 3)).with(Primitive::Digest),
    )
    .expect("installs");
    let program = b.build().expect("builds");
    let mut pipe = Pipeline::new(program);

    let frames: Vec<Vec<u8>> = (0u32..16)
        .map(|i| {
            PacketBuilder::tcp(0x0a00_0000 + i, 0x0b00_0000 + (i % 5), 40_000 + i as u16, 443)
                .payload(64 + (i as u16 % 7) * 100)
                .flow_size(64)
                .build()
                .to_vec()
        })
        .collect();

    // Warm-up: one full batch grows the ring to its steady capacity;
    // clearing keeps that capacity.
    for i in 0..DIGEST_PROBE_BATCH {
        pipe.process_frame(&frames[(i % frames.len() as u64) as usize], i, &fields)
            .expect("parses");
    }
    pipe.clear_digests();

    let before = allocation_count();
    let mut emitted = 0u64;
    for batch_start in (0..n_packets).step_by(DIGEST_PROBE_BATCH as usize) {
        let batch_end = (batch_start + DIGEST_PROBE_BATCH).min(n_packets);
        for i in batch_start..batch_end {
            pipe.process_frame(&frames[(i % frames.len() as u64) as usize], i, &fields)
                .expect("parses");
        }
        emitted += pipe.digests().len() as u64;
        pipe.clear_digests();
    }
    let allocs = allocation_count() - before;
    assert_eq!(emitted, n_packets, "every probe packet must emit a digest");
    allocs
}

/// Packets per disposal batch in [`probe_digest_ring_allocs`].
pub const DIGEST_PROBE_BATCH: u64 = 1024;

/// Writes stats as the flat JSON the CI artifact and `bench_diff.sh`
/// consume.
pub fn write_json(path: &str, stats: &HotpathStats) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{{\n  \"bench\": \"hotpath\",\n  \"packets\": {},\n  \"elapsed_s\": {:.6},\n  \
         \"pps\": {:.1},\n  \"allocs_per_packet\": {:.6},\n  \
         \"hot_loop_allocs_per_packet\": {:.6},\n  \
         \"digest_ring_allocs_per_packet\": {:.6}\n}}",
        stats.packets,
        stats.elapsed_s,
        stats.pps,
        stats.allocs_per_packet,
        stats.hot_loop_allocs_per_packet,
        stats.digest_ring_allocs_per_packet,
    )
}

/// Reads one numeric field back out of a `BENCH_*.json` file (minimal
/// parser for the flat format [`write_json`] emits).
pub fn read_metric(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end =
        rest.find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}
