//! The hot-path measurement harness: fixed-seed traffic, steady-state
//! throughput, and allocations-per-packet — shared by the `hotpath`
//! criterion bench, the `hotpath_smoke` CI binary, and local pre-push
//! checks via `scripts/bench_diff.sh`.
//!
//! Two measurements matter:
//!
//! 1. **Throughput** (packets/sec) through [`Engine::ingest_batch`] on a
//!    compiled SpliDT model — the end-to-end number the CI `bench-smoke`
//!    job gates on (>15% drop vs `bench/baseline.json` fails the build).
//! 2. **Allocations per packet**, measured with the
//!    [`CountingAlloc`](crate::CountingAlloc) global allocator. The
//!    steady-state pipeline path must perform **zero** heap allocations
//!    per packet; [`probe_hot_loop_allocs`] drives a digest-free program
//!    so even boundary-event allocations are excluded and the assertion
//!    is exact.
//!
//! Everything is deterministic: fixed dataset seed, fixed flow schedule,
//! fixed frame serialization — so two runs differ only by machine speed.
//!
//! Two traffic fixtures share the standard model: the **small fixture**
//! ([`fixture`], 220 flows) keeps the allocation probes and the absolute
//! `pps` gate fast and cache-resident, and the **scaled fixture**
//! ([`scaled_fixture`], hundreds of thousands of flows over a
//! [`SCALED_FLOW_SLOTS`]-slot register file) puts the burst sweep in the
//! memory-bound regime the vectorization gate is about.

use crate::alloc_count::allocation_count;
use splidt_core::engine::{Engine, EngineBuilder};
use splidt_core::{train_partitioned, PartitionedTree, SplidtConfig};
use splidt_dataplane::action::{Action, AluOp, Primitive, Source};
use splidt_dataplane::packet::PacketBuilder;
use splidt_dataplane::pipeline::{Pipeline, WaveStats};
use splidt_dataplane::program::ProgramBuilder;
use splidt_dataplane::register::RegisterSpec;
use splidt_dataplane::table::TableSpec;
use splidt_flow::{
    catalog, generate, select_flows, stratified_split, windowed_dataset, DatasetId, FlowTrace,
};
use std::io::Write as _;
use std::time::Instant;

/// Flow count of the standard fixture (SPLIDT_SCALE-independent: the CI
/// gate needs run-to-run determinism, not configurability).
pub const FIXTURE_FLOWS: usize = 220;
/// Dataset seed of the standard fixture.
pub const FIXTURE_SEED: u64 = 7;

/// Flows *generated* for the scaled-traffic fixture; the test side of a
/// 90/10 split (`SCALED_TEST_FRAC`) becomes the traffic mix, so ~90% of
/// these are offered to admission. Traces are kept **whole** — the
/// vectorization win lives disproportionately in post-verdict packets
/// (cheap per-packet compute, still one owner-lane state touch each),
/// and truncating traces to their early decision windows measurably
/// erases it.
pub const SCALED_TRAFFIC_FLOWS: usize = 200_000;
/// Dataset seed of the scaled traffic (distinct from the training seed —
/// the model never saw these flows).
pub const SCALED_TRAFFIC_SEED: u64 = 11;
/// Share of the generated flows that becomes traffic.
pub const SCALED_TEST_FRAC: f64 = 0.9;
/// Register slot budget of the scaled fixture. At this scale the
/// per-flow state arrays (16 MiB each) dwarf every cache level, which is
/// precisely SpliDT's operating point — the paper's premise is stateful
/// inference over flow counts that no on-chip memory holds, and it is
/// the regime where stage-major waves earn their keep (see
/// `measure_burst_sweep`).
pub const SCALED_FLOW_SLOTS: usize = 1 << 21;

/// One hot-path measurement, serialized to `BENCH_hotpath.json`.
#[derive(Debug, Clone, Copy)]
pub struct HotpathStats {
    /// Packets pushed through the engine during the measured region.
    pub packets: u64,
    /// Wall-clock seconds of the measured region.
    pub elapsed_s: f64,
    /// Packets per second.
    pub pps: f64,
    /// Heap allocations per packet across the full engine batch path
    /// (boundary packets emitting digests may allocate; steady-state
    /// packets must not). Zero unless the counting allocator is installed.
    pub allocs_per_packet: f64,
    /// Heap allocations per packet over the digest-free probe program —
    /// the strict zero-allocation criterion.
    pub hot_loop_allocs_per_packet: f64,
    /// Heap allocations per packet over the digest-emitting probe
    /// program (every packet pushes a record into the flat digest ring,
    /// disposed per batch) — the ring's zero-allocation criterion.
    pub digest_ring_allocs_per_packet: f64,
    /// Engine throughput at each [`BURST_SWEEP`] size, measured over the
    /// **scaled-traffic fixture** ([`scaled_fixture`]: hundreds of
    /// thousands of distinct flows at the [`SCALED_FLOW_SLOTS`] budget —
    /// `pps` itself is the small fixture at the default burst).
    /// `pps_burst[2]` (burst 32) vs `pps_burst[0]` (burst 1) is the
    /// vectorization win the CI gate holds at ≥ 1.05× (observed
    /// 1.13–1.20× on the 1-vCPU CI box; the floor sits below the band).
    pub pps_burst: [f64; BURST_SWEEP.len()],
    /// Scaled-fixture throughput at burst 32 through the **banked**
    /// register file (== `pps_burst[2]`, re-exported under its own key so
    /// the baseline can hold an absolute floor on the memory-bound
    /// regime, not just the small compute-bound fixture's `pps`).
    pub pps_scaled: f64,
    /// Scaled-fixture throughput at burst 32 through the legacy
    /// **split** per-stage arrays (one prefetchable array per register) —
    /// the differential baseline for the banking win, measured
    /// interleaved with the sweep so machine drift cancels in the ratio.
    pub pps_scaled_split: f64,
    /// `pps_scaled / pps_scaled_split` — the flow-state banking win the
    /// CI gate holds at ≥ [`BANK_FLOOR`](crate::hotpath).
    pub bank_speedup: f64,
    /// Heap allocations per packet over the banked-path probe (a
    /// multi-register program whose flow state coalesces into one bank,
    /// driven through the wave path at burst 32) — the bank's strict
    /// zero-allocation criterion.
    pub bank_allocs_per_packet: f64,
    /// Heap allocations per packet over the wave-API probe (digest-free
    /// program via `wave_push`/`wave_flush` at burst 32) — the burst
    /// path's strict zero-allocation criterion.
    pub burst_allocs_per_packet: f64,
    /// Heap allocations per packet over the worker-data-path probe (SPSC
    /// ring push → peek → burst execution → advance, single-threaded) —
    /// the persistent-worker hand-off's zero-allocation criterion.
    pub worker_allocs_per_packet: f64,
    /// Provenance: flows offered to / frames in the burst-sweep fixture,
    /// so a snapshot is self-describing (a sweep over the small fixture
    /// cannot masquerade as the scaled memory-bound regime).
    pub sweep_frames: u64,
    /// Provenance: register slot budget the sweep ran at.
    pub sweep_slots: u64,
}

/// Burst sizes the sweep measures (JSON keys `pps_burst1` … `pps_burst64`).
pub const BURST_SWEEP: [usize; 4] = [1, 8, 32, 64];

/// Stability floor for the burst sweep, whatever the caller's time
/// budget: short single-round ratios proved irreproducible (one quick
/// pass per size leaves page-fault warm-up and scheduler noise
/// un-averaged). The sweep keeps interleaving rounds until it has done
/// [`SWEEP_MIN_ROUNDS`] of them **or** every size has accumulated
/// [`SWEEP_STABLE_S`] seconds of measured work — long passes are their
/// own averaging.
pub const SWEEP_MIN_ROUNDS: usize = 3;
/// See [`SWEEP_MIN_ROUNDS`].
pub const SWEEP_STABLE_S: f64 = 10.0;

/// Trains the standard fixed-seed model and pre-serializes its admitted
/// traffic as `(frame, ts_us)` pairs in timeline order.
pub fn fixture() -> (PartitionedTree, Vec<(Vec<u8>, u64)>) {
    let flows = generate(DatasetId::D2, FIXTURE_FLOWS, FIXTURE_SEED);
    let (tr, te) = stratified_split(&flows, 0.4, 2);
    let train_flows = select_flows(&flows, &tr);
    let traffic = select_flows(&flows, &te);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&train_flows, 3, 4);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let frames = serialize_schedule(&model, &traffic);
    (model, frames)
}

/// The scaled-traffic fixture: the standard model (trained small — the
/// classifier is the same either way) driven by a few hundred thousand
/// distinct flows over a [`SCALED_FLOW_SLOTS`]-slot register file. This
/// is the traffic shape the burst sweep and its vectorization gate run
/// on: per-flow state no cache holds, every wave touching ~32 distinct
/// flow slots.
pub fn scaled_fixture(model: &PartitionedTree) -> Vec<(Vec<u8>, u64)> {
    let flows = generate(DatasetId::D2, SCALED_TRAFFIC_FLOWS, SCALED_TRAFFIC_SEED);
    let (_, te) = stratified_split(&flows, SCALED_TEST_FRAC, 2);
    let traffic = select_flows(&flows, &te);
    serialize_schedule_slots(model, &traffic, SCALED_FLOW_SLOTS)
}

/// Serializes `traffic` exactly as an engine run would feed it: admitted
/// with collision filtering, staggered, merged into one timeline.
pub fn serialize_schedule(model: &PartitionedTree, traffic: &[FlowTrace]) -> Vec<(Vec<u8>, u64)> {
    serialize_schedule_slots(model, traffic, 1 << 16)
}

/// [`serialize_schedule`] with an explicit slot budget — admission
/// filters collisions against the real slot count, so scaled traffic
/// must be admitted at the slot budget it will run with.
pub fn serialize_schedule_slots(
    model: &PartitionedTree,
    traffic: &[FlowTrace],
    flow_slots: usize,
) -> Vec<(Vec<u8>, u64)> {
    let mut engine = engine_with_slots(model, flow_slots);
    let mut events: Vec<(u64, usize, usize)> = Vec::new();
    let mut kept: Vec<&FlowTrace> = Vec::new();
    for f in traffic {
        if let Some(a) = engine.admit(f) {
            kept.push(f);
            let idx = kept.len() - 1;
            for (j, p) in f.packets.iter().enumerate() {
                events.push((a.base_us + p.ts_us, idx, j));
            }
        }
    }
    events.sort_unstable();
    events.into_iter().map(|(ts, i, j)| (Engine::frame_for(kept[i], j), ts)).collect()
}

/// A fresh compiled engine for the fixture model (1K µs stagger, 64K
/// slots — the same shape the engine bench uses).
pub fn engine_for(model: &PartitionedTree) -> Engine {
    engine_with_slots(model, 1 << 16)
}

/// [`engine_for`] with an explicit slot budget (the scaled fixture runs
/// at [`SCALED_FLOW_SLOTS`]).
pub fn engine_with_slots(model: &PartitionedTree, flow_slots: usize) -> Engine {
    EngineBuilder::new(model).flow_slots(flow_slots).stagger_us(1_000).build().expect("compiles")
}

/// Streams `frames` through the engine's batch path repeatedly (resetting
/// session state between rounds) until `min_elapsed_s` of measured work
/// has accumulated. Returns the filled [`HotpathStats`] — with
/// allocations-per-packet populated when the counting allocator is the
/// global allocator, zero otherwise.
pub fn measure_engine_throughput(
    engine: &mut Engine,
    frames: &[(Vec<u8>, u64)],
    min_elapsed_s: f64,
) -> HotpathStats {
    // Warm-up round: populate scratch capacities and collation maps.
    engine.reset();
    engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");

    let mut packets = 0u64;
    let allocs_before = allocation_count();
    let start = Instant::now();
    loop {
        engine.reset();
        let report =
            engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");
        packets += report.packets;
        if start.elapsed().as_secs_f64() >= min_elapsed_s {
            break;
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let allocs = allocation_count() - allocs_before;
    HotpathStats {
        packets,
        elapsed_s,
        pps: packets as f64 / elapsed_s,
        allocs_per_packet: allocs as f64 / packets as f64,
        hot_loop_allocs_per_packet: 0.0,
        digest_ring_allocs_per_packet: 0.0,
        pps_burst: [0.0; BURST_SWEEP.len()],
        pps_scaled: 0.0,
        pps_scaled_split: 0.0,
        bank_speedup: 0.0,
        bank_allocs_per_packet: 0.0,
        burst_allocs_per_packet: 0.0,
        worker_allocs_per_packet: 0.0,
        sweep_frames: 0,
        sweep_slots: 0,
    }
}

/// The burst sweep's result: banked throughput per burst size, plus the
/// split-layout differential baseline at burst 32.
#[derive(Debug, Clone, Copy)]
pub struct BurstSweep {
    /// Banked register file at each [`BURST_SWEEP`] size.
    pub pps_burst: [f64; BURST_SWEEP.len()],
    /// Legacy split per-stage arrays at burst 32 — same program, same
    /// traffic, same wave machinery; only the register layout differs.
    pub pps_split_b32: f64,
}

/// Measures throughput at every [`BURST_SWEEP`] size over the
/// scaled-traffic frames ([`scaled_fixture`]), one fresh engine per size
/// at the [`SCALED_FLOW_SLOTS`] budget — only the burst knob differs.
/// Burst 1 *is* the scalar path driven through the wave machinery, so
/// the sweep isolates the vectorization win from any other engine
/// change. A **split-layout** engine at burst 32 rides in the same
/// rotation, so the banked/split ratio isolates the flow-bank win the
/// same way.
///
/// The configurations are measured **interleaved**, one fixture pass per
/// configuration per round, and each configuration reports its **best
/// round** (see the estimator note in the body): slow machine-wide drift
/// lands on every configuration equally, and bursty noisy-neighbor
/// interference — which a pooled mean would bake into whichever engine's
/// turn it hit — is shed by taking the max, so the burst-32 / burst-1
/// and banked / split *ratios* the CI gates hold stay meaningful even
/// when the absolute numbers wander between runs.
pub fn measure_burst_sweep(
    model: &PartitionedTree,
    frames: &[(Vec<u8>, u64)],
    min_elapsed_s: f64,
) -> BurstSweep {
    const N: usize = BURST_SWEEP.len() + 1; // + the split baseline
    let mut engines: Vec<Engine> = BURST_SWEEP
        .iter()
        .map(|&burst| {
            EngineBuilder::new(model)
                .flow_slots(SCALED_FLOW_SLOTS)
                .stagger_us(1_000)
                .burst(burst)
                .build()
                .expect("compiles")
        })
        .collect();
    let mut split = EngineBuilder::new(model)
        .flow_slots(SCALED_FLOW_SLOTS)
        .stagger_us(1_000)
        .burst(BURST_SWEEP[2])
        .build()
        .expect("compiles");
    split.use_split_registers();
    engines.push(split);
    // Warm-up pass per configuration: scratch capacities and collation
    // maps.
    for engine in &mut engines {
        engine.reset();
        engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");
    }
    // Per-configuration estimator: the **best full-pass round**. Each
    // round drives the whole fixture (tens of millions of packets), so a
    // round's pps is already a long average — but a noisy neighbor on
    // this shared box can still steal a chunk of one engine's turn, and
    // pooling that turn into a mean permanently understates the engine.
    // Interference only ever *slows* a pass, so max-over-rounds converges
    // on each configuration's true quiet-machine throughput (the
    // min-time-over-repetitions estimator, per configuration).
    let mut best = [0.0f64; N];
    let mut elapsed = [0.0f64; N];
    let mut rounds = 0usize;
    loop {
        for (i, engine) in engines.iter_mut().enumerate() {
            engine.reset();
            let start = Instant::now();
            let report = engine
                .ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts)))
                .expect("ingests");
            let secs = start.elapsed().as_secs_f64();
            elapsed[i] += secs;
            best[i] = best[i].max(report.packets as f64 / secs);
        }
        rounds += 1;
        let total = elapsed.iter().sum::<f64>();
        let enough = total >= min_elapsed_s * N as f64;
        let stable = rounds >= SWEEP_MIN_ROUNDS || total >= SWEEP_STABLE_S * N as f64;
        if enough && stable {
            break;
        }
    }
    let mut out = BurstSweep { pps_burst: [0.0; BURST_SWEEP.len()], pps_split_b32: 0.0 };
    out.pps_burst.copy_from_slice(&best[..BURST_SWEEP.len()]);
    out.pps_split_b32 = best[N - 1];
    out
}

/// Builds a digest-free probe program — flow hash, one stateful
/// accumulator, an exact table and a default action — and drives
/// `n_packets` through [`Pipeline::process_frame`] after a warm-up round.
/// Returns total heap allocations observed in the steady-state region:
/// **must be zero** (and is asserted to be by `hotpath_smoke`) when the
/// counting allocator is installed.
pub fn probe_hot_loop_allocs(n_packets: u64) -> u64 {
    let (mut pipe, fields, frames, _slots) = probe_program();

    // Warm-up: scratch buffers reach steady capacity.
    for (i, f) in frames.iter().enumerate() {
        pipe.process_frame(f, i as u64, &fields).expect("parses");
    }

    let before = allocation_count();
    for i in 0..n_packets {
        let f = &frames[(i % frames.len() as u64) as usize];
        pipe.process_frame(f, i, &fields).expect("parses");
    }
    allocation_count() - before
}

/// Builds a digest-emitting probe program — every TCP packet sets a
/// verdict class and pushes a digest — and drives `n_packets` through
/// [`Pipeline::process_frame`] in batches of [`DIGEST_PROBE_BATCH`],
/// disposing the pending ring between batches (the drain-per-batch
/// steady-state regime). Returns total heap allocations observed in the
/// measured region: **must be zero** now that digests land in the flat
/// [`DigestBuf`](splidt_dataplane::DigestBuf) ring instead of allocating
/// a `Vec<u64>` per event (~0.03 allocs/packet before the ring).
pub fn probe_digest_ring_allocs(n_packets: u64) -> u64 {
    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();
    let class = b.add_meta("m.class", 8);
    b.set_digest_fields(vec![class, fields.ipv4_src, fields.ipv4_dst]);
    let t = b.add_table(TableSpec::exact("verdict", vec![fields.ip_proto], 4), 0);
    b.add_exact_entry(
        t,
        vec![6],
        Action::new("emit").with(Primitive::set_const(class, 3)).with(Primitive::Digest),
    )
    .expect("installs");
    let program = b.build().expect("builds");
    let mut pipe = Pipeline::new(program);

    let frames: Vec<Vec<u8>> = (0u32..16)
        .map(|i| {
            PacketBuilder::tcp(0x0a00_0000 + i, 0x0b00_0000 + (i % 5), 40_000 + i as u16, 443)
                .payload(64 + (i as u16 % 7) * 100)
                .flow_size(64)
                .build()
                .to_vec()
        })
        .collect();

    // Warm-up: one full batch grows the ring to its steady capacity;
    // clearing keeps that capacity.
    for i in 0..DIGEST_PROBE_BATCH {
        pipe.process_frame(&frames[(i % frames.len() as u64) as usize], i, &fields)
            .expect("parses");
    }
    pipe.clear_digests();

    let before = allocation_count();
    let mut emitted = 0u64;
    for batch_start in (0..n_packets).step_by(DIGEST_PROBE_BATCH as usize) {
        let batch_end = (batch_start + DIGEST_PROBE_BATCH).min(n_packets);
        for i in batch_start..batch_end {
            pipe.process_frame(&frames[(i % frames.len() as u64) as usize], i, &fields)
                .expect("parses");
        }
        emitted += pipe.digests().len() as u64;
        pipe.clear_digests();
    }
    let allocs = allocation_count() - before;
    assert_eq!(emitted, n_packets, "every probe packet must emit a digest");
    allocs
}

/// Packets per disposal batch in [`probe_digest_ring_allocs`].
pub const DIGEST_PROBE_BATCH: u64 = 1024;

/// The digest-free probe program shared by the scalar, burst, and worker
/// allocation probes, plus its 16-flow frame set.
fn probe_program() -> (Pipeline, splidt_dataplane::parser::StandardFields, Vec<Vec<u8>>, usize) {
    let slots: usize = 1 << 10;
    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();
    let idx = b.add_meta("m.idx", 10);
    let r = b.add_register(RegisterSpec::new("r.bytes", 32, slots), 0);
    let t = b.add_table(TableSpec::exact("acct", vec![fields.ip_proto], 4), 0);
    b.add_exact_entry(
        t,
        vec![6],
        Action::new("account")
            .with(Primitive::HashFlow { dst: idx, mask: (slots - 1) as u64, salt: 0 })
            .with(Primitive::RegRmw {
                reg: r,
                index: Source::Field(idx),
                op: AluOp::Add,
                operand: Source::Field(fields.frame_len),
                out: None,
            }),
    )
    .expect("installs");
    let pipe = Pipeline::new(b.build().expect("builds"));
    let frames: Vec<Vec<u8>> = (0u32..16)
        .map(|i| {
            PacketBuilder::tcp(0x0a00_0000 + i, 0x0b00_0000 + (i % 5), 40_000 + i as u16, 443)
                .payload(64 + (i as u16 % 7) * 100)
                .flow_size(64)
                .build()
                .to_vec()
        })
        .collect();
    (pipe, fields, frames, slots)
}

/// The strict zero-allocation probe for the **burst path**: the
/// digest-free probe program driven through `wave_push`/`wave_flush` at
/// burst 32 after a warm-up round (the wave arena, lookup scratch, and
/// key buffers reach steady capacity). Returns total heap allocations in
/// the measured region — must be zero.
pub fn probe_burst_allocs(n_packets: u64) -> u64 {
    let (mut pipe, fields, frames, slots) = probe_program();
    pipe.set_burst(32, slots);
    let mut stats = WaveStats::default();

    // Warm-up: two rounds so cut-triggered waves and the final flush both
    // exercise every scratch buffer once.
    for round in 0..2u64 {
        for (i, f) in frames.iter().enumerate() {
            pipe.wave_push(f, round * 16 + i as u64, &fields, &mut stats).expect("parses");
        }
    }
    pipe.wave_flush(&fields, &mut stats);

    let before = allocation_count();
    for i in 0..n_packets {
        let f = &frames[(i % frames.len() as u64) as usize];
        pipe.wave_push(f, i, &fields, &mut stats).expect("parses");
    }
    pipe.wave_flush(&fields, &mut stats);
    allocation_count() - before
}

/// The strict zero-allocation probe for the **banked register path**:
/// unlike the hot-loop probe's program (whose single register is a
/// singleton group and therefore stays split), this one carries three same-depth
/// per-flow registers — so they coalesce into one flow bank — and every
/// packet read-modify-writes all three through the wave path at burst
/// 32. Returns total heap allocations in the measured region — must be
/// zero: bank cell addressing is pure arithmetic into the preallocated
/// arena.
pub fn probe_bank_allocs(n_packets: u64) -> u64 {
    let slots: usize = 1 << 10;
    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();
    let idx = b.add_meta("m.idx", 10);
    let prep = b.add_table(TableSpec::exact("prep", vec![fields.ip_proto], 4), 0);
    b.add_exact_entry(
        prep,
        vec![6],
        Action::new("hash").with(Primitive::HashFlow {
            dst: idx,
            mask: (slots - 1) as u64,
            salt: 0,
        }),
    )
    .expect("installs");
    // One register per stage (the Tofino discipline the compiler follows)
    // — all three share the slot domain, so the plan coalesces them into
    // one bank regardless of stage placement.
    let regs = [
        ("r.bytes", 32u8, AluOp::Add, Source::Field(fields.frame_len)),
        ("r.pkts", 16, AluOp::Add, Source::Const(1)),
        ("r.max", 24, AluOp::Max, Source::Field(fields.frame_len)),
    ];
    for (stage0, (name, width, op, operand)) in regs.into_iter().enumerate() {
        let stage = stage0 + 1;
        let r = b.add_register(RegisterSpec::new(name, width, slots), stage);
        let t =
            b.add_table(TableSpec::exact(format!("acct{stage0}"), vec![fields.ip_proto], 4), stage);
        b.add_exact_entry(
            t,
            vec![6],
            Action::new("account").with(Primitive::RegRmw {
                reg: r,
                index: Source::Field(idx),
                op,
                operand,
                out: None,
            }),
        )
        .expect("installs");
    }
    let mut pipe = Pipeline::new(b.build().expect("builds"));
    assert!(
        pipe.registers().layout().banks().len() == 1
            && pipe.registers().layout().banks()[0].members.len() == 3,
        "probe registers must coalesce into one flow bank"
    );
    pipe.set_burst(32, slots);
    let frames: Vec<Vec<u8>> = (0u32..16)
        .map(|i| {
            PacketBuilder::tcp(0x0a00_0000 + i, 0x0b00_0000 + (i % 5), 40_000 + i as u16, 443)
                .payload(64 + (i as u16 % 7) * 100)
                .flow_size(64)
                .build()
                .to_vec()
        })
        .collect();
    let mut stats = WaveStats::default();

    // Warm-up: two rounds so cut-triggered waves and the final flush both
    // exercise every scratch buffer once.
    for round in 0..2u64 {
        for (i, f) in frames.iter().enumerate() {
            pipe.wave_push(f, round * 16 + i as u64, &fields, &mut stats).expect("parses");
        }
    }
    pipe.wave_flush(&fields, &mut stats);

    let before = allocation_count();
    for i in 0..n_packets {
        let f = &frames[(i % frames.len() as u64) as usize];
        pipe.wave_push(f, i, &fields, &mut stats).expect("parses");
    }
    pipe.wave_flush(&fields, &mut stats);
    allocation_count() - before
}

/// The strict zero-allocation probe for the **persistent-worker data
/// path**, single-threaded so the counting allocator sees every side:
/// frames go dispatcher-style into a real SPSC ring (`try_push`), are
/// borrowed back (`peek`) straight into burst execution, and the slots
/// are released (`advance`) — the exact hand-off
/// `ShardedEngine::ingest_batch` performs per worker per batch. Returns
/// total heap allocations in the measured region — must be zero.
pub fn probe_worker_ring_allocs(n_packets: u64) -> u64 {
    let (mut pipe, fields, frames, slots) = probe_program();
    pipe.set_burst(32, slots);
    let (mut tx, mut rx) = splidt_core::ring::ring(64, 2048);
    let mut stats = WaveStats::default();

    let mut round = |pipe: &mut Pipeline, stats: &mut WaveStats, n: u64| {
        for chunk_start in (0..n).step_by(32) {
            let chunk = (n - chunk_start).min(32);
            for i in 0..chunk {
                let k = ((chunk_start + i) % frames.len() as u64) as usize;
                tx.try_push(&frames[k], chunk_start + i).expect("ring drained between chunks");
            }
            for i in 0..chunk as usize {
                let (frame, ts) = rx.peek(i);
                pipe.wave_push(frame, ts, &fields, stats).expect("parses");
            }
            rx.advance(chunk as usize);
        }
        pipe.wave_flush(&fields, stats);
    };

    // Warm-up round (ring slots are preallocated; wave scratch grows).
    round(&mut pipe, &mut stats, 64);

    let before = allocation_count();
    round(&mut pipe, &mut stats, n_packets);
    allocation_count() - before
}

/// Writes stats as the flat JSON the CI artifact and `bench_diff.sh`
/// consume.
pub fn write_json(path: &str, stats: &HotpathStats) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    let bursts: Vec<String> = BURST_SWEEP
        .iter()
        .zip(stats.pps_burst)
        .map(|(b, pps)| format!("  \"pps_burst{b}\": {pps:.1},"))
        .collect();
    writeln!(
        f,
        "{{\n  \"bench\": \"hotpath\",\n  \"packets\": {},\n  \"elapsed_s\": {:.6},\n  \
         \"pps\": {:.1},\n{}\n  \"pps_scaled\": {:.1},\n  \
         \"pps_scaled_split\": {:.1},\n  \
         \"bank_speedup\": {:.4},\n  \
         \"sweep_frames\": {},\n  \
         \"sweep_slots\": {},\n  \
         \"allocs_per_packet\": {:.6},\n  \
         \"hot_loop_allocs_per_packet\": {:.6},\n  \
         \"digest_ring_allocs_per_packet\": {:.6},\n  \
         \"burst_allocs_per_packet\": {:.6},\n  \
         \"bank_allocs_per_packet\": {:.6},\n  \
         \"worker_allocs_per_packet\": {:.6}\n}}",
        stats.packets,
        stats.elapsed_s,
        stats.pps,
        bursts.join("\n"),
        stats.pps_scaled,
        stats.pps_scaled_split,
        stats.bank_speedup,
        stats.sweep_frames,
        stats.sweep_slots,
        stats.allocs_per_packet,
        stats.hot_loop_allocs_per_packet,
        stats.digest_ring_allocs_per_packet,
        stats.burst_allocs_per_packet,
        stats.bank_allocs_per_packet,
        stats.worker_allocs_per_packet,
    )
}

/// Reads one numeric field back out of a `BENCH_*.json` file (minimal
/// parser for the flat format [`write_json`] emits).
pub fn read_metric(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end =
        rest.find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}
