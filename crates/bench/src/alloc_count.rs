//! A counting global allocator for allocations-per-packet accounting.
//!
//! The hot-path acceptance criterion — *zero heap allocations per packet
//! on the steady-state path* — is only credible if it is measured, not
//! asserted. [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (plus reallocs, which are how `Vec` growth shows up); a
//! binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: splidt_bench::CountingAlloc = splidt_bench::CountingAlloc;
//! ```
//!
//! and then brackets a measured region with [`allocation_count`]. The
//! counter is a single relaxed atomic: nanoseconds of overhead per
//! allocation and none at all for allocation-free code, so throughput
//! numbers measured under it remain meaningful.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Counts allocations (alloc / alloc_zeroed / realloc) on top of the
/// system allocator. Deallocations are intentionally not counted: the
/// metric is "how often does the hot loop touch the heap".
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Total allocations since process start. Meaningful only when
/// [`CountingAlloc`] is installed as the global allocator; otherwise it
/// stays at zero.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}
