//! The table-lookup measurement harness: deterministic synthetic tables
//! at swept entry counts, measured through both the compiled
//! [`MatchIndex`] and the linear reference scan — shared by the `lookup`
//! criterion bench and the `lookup_smoke` CI binary (which writes
//! `BENCH_lookup.json` and enforces the indexed-vs-linear speedup floor).
//!
//! Table shapes follow what SpliDT's compiler actually emits:
//!
//! * **Exact** — 2-field keys (subtree id × feature value), the shape of
//!   the feature load tables;
//! * **Ternary** — subtree-id exact bits crossed with prefix expansions
//!   of random value ranges (`splidt_ranging::range_to_prefixes`), the
//!   shape of the keygen/model TCAM tables, priorities descending with
//!   prefix specificity;
//! * **Range** — 2-field interval boxes with random priorities, the
//!   range-capable-TCAM variant.
//!
//! Probe keys mix values drawn from installed entries (hits) with
//! uniform draws (mostly misses), so both early-exit and full-scan
//! behavior are represented.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use splidt_dataplane::action::Action;
use splidt_dataplane::index::MatchIndex;
use splidt_dataplane::phv::PhvLayout;
use splidt_dataplane::table::{EntryKey, MatchKind, Table, TableSpec};
use splidt_dataplane::tcam::Ternary;
use splidt_ranging::range_to_prefixes;
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// Entry counts every kind is swept at.
pub const SWEEP_SIZES: [usize; 3] = [16, 256, 4096];

/// Probe keys per measured pass.
pub const PROBES: usize = 512;

/// One prepared measurement case: a populated table, its compiled index,
/// and a flat probe-key stream (`n_fields` values per probe).
pub struct LookupCase {
    /// Match kind under test.
    pub kind: MatchKind,
    /// Installed entry count.
    pub n_entries: usize,
    /// The populated table (linear oracle side).
    pub table: Table,
    /// The compiled index (hot-path side).
    pub index: MatchIndex,
    /// Flat probe keys, `n_fields` per probe.
    pub keys: Vec<u64>,
    /// Key width in fields.
    pub n_fields: usize,
}

/// Measured lookups/sec for one case, indexed vs linear.
#[derive(Debug, Clone, Copy)]
pub struct LookupStats {
    /// Match kind under test.
    pub kind: MatchKind,
    /// Installed entry count.
    pub n_entries: usize,
    /// Lookups/sec through the compiled index.
    pub indexed_lps: f64,
    /// Lookups/sec through the linear reference scan.
    pub linear_lps: f64,
}

impl LookupStats {
    /// Indexed-over-linear throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.indexed_lps / self.linear_lps
    }
}

/// Lowercase kind tag used in JSON keys and bench ids.
pub fn kind_tag(kind: MatchKind) -> &'static str {
    match kind {
        MatchKind::Exact => "exact",
        MatchKind::Ternary => "ternary",
        MatchKind::Range => "range",
    }
}

fn two_field_layout() -> PhvLayout {
    let mut l = PhvLayout::new();
    l.add_field("k0", 16);
    l.add_field("k1", 32);
    l
}

/// Builds the deterministic case for `(kind, n_entries)`.
pub fn build_case(kind: MatchKind, n_entries: usize, seed: u64) -> LookupCase {
    let mut rng = SmallRng::seed_from_u64(seed ^ (n_entries as u64) << 8);
    let layout = two_field_layout();
    let f0 = layout.by_name("k0").expect("k0");
    let f1 = layout.by_name("k1").expect("k1");
    let key = vec![f0, f1];
    let n_fields = key.len();
    let mut table = Table::new(TableSpec {
        name: format!("{}_{n_entries}", kind_tag(kind)),
        kind,
        key,
        max_entries: n_entries,
    });

    match kind {
        MatchKind::Exact => {
            while table.n_entries() < n_entries {
                let k = vec![rng.random_range(0u64..1 << 16), rng.random_range(0u64..1 << 32)];
                // Colliding draws are rejected (DuplicateKey) — retry.
                let _ = table.install(EntryKey::Exact(k), Action::new("e"));
            }
        }
        MatchKind::Ternary => {
            // Subtree-id exact bits × prefix expansion of a random value
            // range — what `range_to_prefixes` cross products produce.
            'outer: loop {
                let sid = rng.random_range(0u64..64);
                let lo = rng.random_range(0u64..1 << 30);
                let hi = (lo + rng.random_range(1u64..1 << 22)).min((1 << 32) - 1);
                for p in range_to_prefixes(lo, hi, 32) {
                    if table.n_entries() >= n_entries {
                        break 'outer;
                    }
                    table
                        .install(
                            EntryKey::Ternary {
                                fields: vec![
                                    Ternary::exact(sid, 16),
                                    Ternary::new(p.value, p.mask),
                                ],
                                priority: p.mask.count_ones(),
                            },
                            Action::new("e"),
                        )
                        .expect("installs");
                }
            }
        }
        MatchKind::Range => {
            for _ in 0..n_entries {
                let lo0 = rng.random_range(0u64..1 << 16);
                let lo1 = rng.random_range(0u64..1 << 32);
                table
                    .install(
                        EntryKey::Range {
                            fields: vec![
                                (lo0, (lo0 + rng.random_range(0u64..1 << 10)).min((1 << 16) - 1)),
                                (lo1, (lo1 + rng.random_range(0u64..1 << 24)).min((1 << 32) - 1)),
                            ],
                            priority: rng.random_range(0u32..64),
                        },
                        Action::new("e"),
                    )
                    .expect("installs");
            }
        }
    }

    // Probe stream: half snapped to installed entries (hits), half
    // uniform (mostly misses).
    let mut keys = Vec::with_capacity(PROBES * n_fields);
    for i in 0..PROBES {
        if i % 2 == 0 && table.n_entries() > 0 {
            let e = &table.entries()[rng.random_range(0..table.n_entries())];
            match &e.key {
                EntryKey::Exact(v) => keys.extend_from_slice(v),
                EntryKey::Ternary { fields, .. } => {
                    keys.extend(fields.iter().map(|t| t.value));
                }
                EntryKey::Range { fields, .. } => {
                    keys.extend(fields.iter().map(|&(lo, hi)| rng.random_range(lo..=hi)));
                }
            }
        } else {
            keys.push(rng.random_range(0u64..1 << 16));
            keys.push(rng.random_range(0u64..1 << 32));
        }
    }

    let index = MatchIndex::build(&table);
    LookupCase { kind, n_entries, table, index, keys, n_fields }
}

/// One indexed pass over the probe stream (returns a hit checksum so the
/// work cannot be optimized out).
pub fn indexed_pass(case: &LookupCase, scratch: &mut Vec<u64>) -> u64 {
    let mut acc = 0u64;
    for key in case.keys.chunks_exact(case.n_fields) {
        if let Some(i) = case.index.lookup(key, scratch) {
            acc = acc.wrapping_add(i as u64 + 1);
        }
    }
    acc
}

/// One linear-oracle pass over the probe stream.
pub fn linear_pass(case: &LookupCase) -> u64 {
    let mut acc = 0u64;
    for key in case.keys.chunks_exact(case.n_fields) {
        if let Some(i) = case.table.lookup_linear_key(key) {
            acc = acc.wrapping_add(i as u64 + 1);
        }
    }
    acc
}

/// Measures one case: equal-work passes through both paths until
/// `min_elapsed_s` each, after asserting the two paths agree on every
/// probe (the in-harness equivalence check).
pub fn measure_case(case: &LookupCase, min_elapsed_s: f64) -> LookupStats {
    let mut scratch = Vec::new();
    for key in case.keys.chunks_exact(case.n_fields) {
        assert_eq!(
            case.index.lookup(key, &mut scratch),
            case.table.lookup_linear_key(key),
            "index diverged from linear oracle on {key:?}"
        );
    }
    let time = |mut pass: Box<dyn FnMut() -> u64>| -> f64 {
        black_box(pass()); // warm-up
        let start = Instant::now();
        let mut lookups = 0u64;
        loop {
            black_box(pass());
            lookups += PROBES as u64;
            if start.elapsed().as_secs_f64() >= min_elapsed_s {
                break;
            }
        }
        lookups as f64 / start.elapsed().as_secs_f64()
    };
    let indexed_lps = time(Box::new(|| indexed_pass(case, &mut scratch)));
    let linear_lps = time(Box::new(|| linear_pass(case)));
    LookupStats { kind: case.kind, n_entries: case.n_entries, indexed_lps, linear_lps }
}

/// Runs the full {16, 256, 4096} × {Exact, Ternary, Range} sweep.
pub fn sweep(seed: u64, min_elapsed_s: f64) -> Vec<LookupStats> {
    let mut out = Vec::new();
    for kind in [MatchKind::Exact, MatchKind::Ternary, MatchKind::Range] {
        for n in SWEEP_SIZES {
            let case = build_case(kind, n, seed);
            out.push(measure_case(&case, min_elapsed_s));
        }
    }
    out
}

/// Writes sweep results as the flat JSON `bench_diff.sh` and the CI
/// artifact consume: `<kind>_<n>_{indexed_lps,linear_lps,speedup}` keys.
pub fn write_json(path: &str, stats: &[LookupStats]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{\n  \"bench\": \"lookup\",")?;
    for (i, s) in stats.iter().enumerate() {
        let tag = format!("{}_{}", kind_tag(s.kind), s.n_entries);
        let sep = if i + 1 == stats.len() { "" } else { "," };
        writeln!(
            f,
            "  \"{tag}_indexed_lps\": {:.1},\n  \"{tag}_linear_lps\": {:.1},\n  \
             \"{tag}_speedup\": {:.3}{sep}",
            s.indexed_lps,
            s.linear_lps,
            s.speedup(),
        )?;
    }
    writeln!(f, "}}")
}
