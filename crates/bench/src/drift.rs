//! The drift measurement harness: online retraining + atomic live model
//! swap under churn — the full control loop the `drift_smoke` CI binary
//! gates.
//!
//! Storyline (one deterministic schedule, four phases):
//!
//! 1. **Pre-drift.** A batch-trained model classifies the first half of
//!    a 4096-flow churn schedule; accuracy is the healthy reference.
//!    The engine's [`DigestTap`] mirrors every drained digest into a
//!    streaming trainer the whole time.
//! 2. **Drift.** At flow [`DRIFT_AT`] the schedule rotates class
//!    behaviour ([`DriftProfile`]): flows keep their labels but act like
//!    the next class. Accuracy under the stale model collapses. The
//!    drift alarm resets the tap's observations so retraining sees
//!    post-drift traffic only.
//! 3. **Retrain + stage.** After [`DRIFT_STAGE_AT`] flows the tap's
//!    streaming trainer ([`StreamingTrainer`], SPDT-style histograms)
//!    grows a replacement model; `Engine::stage_model` compiles it
//!    off-thread while live churn keeps flowing.
//! 4. **Swap + recover.** `Engine::swap_staged` flips the pipeline
//!    atomically — ownership lanes, feature slots, lifecycle counters
//!    and pending digests all carry over (asserted exactly) — and the
//!    remaining schedule measures recovered accuracy.
//!
//! Gates: recovered accuracy above [`DRIFT_RECOVERY_FLOOR`] and strictly
//! above the degraded phase; zero flow state lost across the swap
//! instant; lifecycle reconciliation at the end; zero steady-state
//! allocations per packet across a pipeline-level run that swaps
//! programs mid-stream.

use crate::alloc_count::allocation_count;
use splidt_core::engine::{Engine, EngineBuilder};
use splidt_core::runtime::canonical_flow_fp;
use splidt_core::stream::{DigestTap, StreamingTrainer, StreamingTrainerParams};
use splidt_core::{train_partitioned, PartitionedTree, SplidtConfig};
use splidt_dataplane::pipeline::Pipeline;
use splidt_flow::{
    catalog, churn, generate, select_flows, stratified_split, windowed_dataset, ChurnConfig,
    ChurnSchedule, DatasetId, DriftProfile,
};
use std::collections::HashMap;
use std::io::Write as _;
use std::time::Instant;

/// Register depth of the drift fixture (same pressure as the churn rig).
pub const DRIFT_SLOTS: usize = 256;
/// Distinct flows in the schedule.
pub const DRIFT_FLOWS: usize = 4096;
/// Flow index where class behaviour rotates.
pub const DRIFT_AT: usize = 2048;
/// Flow index where retraining snapshots the tap and staging begins.
pub const DRIFT_STAGE_AT: usize = 3072;
/// Flow index where the staged model is swapped in.
pub const DRIFT_SWAP_AT: usize = 3328;
/// Ownership-lane idle timeout of the fixture (µs).
pub const DRIFT_IDLE_TIMEOUT_US: u64 = 100_000;
/// Dataset seed of the drift fixture.
pub const DRIFT_SEED: u64 = 13;
/// Acceptance floor on post-swap accuracy over the drifted distribution.
/// Calibrated against the fixture's own pre-drift reference (~0.50 —
/// quantized data-plane inference, not software accuracy): the stale
/// model degrades to ~0.15 after the rotation, the stream-retrained one
/// recovers to ~0.43. The run is deterministic, so the floor only needs
/// cross-platform float margin.
pub const DRIFT_RECOVERY_FLOOR: f64 = 0.35;
/// The schedule performs exactly one live swap.
pub const DRIFT_EXPECTED_SWAPS: u64 = 1;

/// One drift measurement, serialized to `BENCH_drift.json`.
///
/// Deliberately has **no** `flow_slots` / `classified_flows` keys — the
/// shared `bench_diff.sh` gates key on those to recognize churn/ingress
/// results; drift gates key on `expected_swaps`.
#[derive(Debug, Clone)]
pub struct DriftStats {
    /// Packets pushed during the measured phases.
    pub packets: u64,
    /// Wall-clock seconds spent pushing packets (training, compile and
    /// swap excluded — those overlap or are control-plane).
    pub elapsed_s: f64,
    /// Packets per second across the measured phases.
    pub pps: f64,
    /// Verdict accuracy before the drift.
    pub pre_acc: f64,
    /// Verdict accuracy after the drift, stale model still live.
    pub degraded_acc: f64,
    /// Verdict accuracy after the live swap.
    pub recovered_acc: f64,
    /// Verdicts scored per phase.
    pub pre_verdicts: u64,
    /// Verdicts scored in the degraded window.
    pub degraded_verdicts: u64,
    /// Verdicts scored after the swap.
    pub recovered_verdicts: u64,
    /// Distinct flows the tap fed to the trainer post-drift.
    pub tap_fed: u64,
    /// Completed live swaps (must equal [`DRIFT_EXPECTED_SWAPS`]).
    pub swaps: u64,
    /// Models staged during the run.
    pub staged_generation: u64,
    /// Whether lifecycle counters, slot pressure and meters were
    /// bit-identical across the swap instant (zero lost flow state).
    pub lifecycle_carried: bool,
    /// Whether lifecycle counters reconciled at the end of the run.
    pub reconciled: bool,
    /// Heap allocations per packet over the pipeline-level drift loop
    /// (program swap mid-stream, swap itself excluded): must be zero.
    pub drift_allocs_per_packet: f64,
}

/// Trains the pre-drift model (the churn fixture's shape) and builds the
/// drifting churn schedule.
pub fn fixture() -> (PartitionedTree, ChurnSchedule) {
    let train = generate(DatasetId::D2, 220, 7);
    let (tr, _) = stratified_split(&train, 0.6, 2);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&select_flows(&train, &tr), 3, 4);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());

    let schedule = churn(
        DatasetId::D2,
        &ChurnConfig {
            flows: DRIFT_FLOWS,
            mean_arrival_gap_us: 500,
            lifetime_scale: 0.05,
            drift_at: Some(DRIFT_AT),
            drift_profile: DriftProfile::default(),
            seed: DRIFT_SEED,
            ..Default::default()
        },
    );
    (model, schedule)
}

/// A fresh compiled engine for the drift fixture (256 slots, short idle
/// timeout, permissive lifecycle policy — the drift rig stresses model
/// replacement, not admission).
pub fn engine_for(model: &PartitionedTree) -> Engine {
    EngineBuilder::new(model)
        .flow_slots(DRIFT_SLOTS)
        .idle_timeout_us(DRIFT_IDLE_TIMEOUT_US)
        .build()
        .expect("compiles")
}

/// Pre-serialized `(frame, ts_us)` pairs of the schedule slice covering
/// flows `lo..hi`, in timeline order.
pub fn phase_frames(schedule: &ChurnSchedule, lo: usize, hi: usize) -> Vec<(Vec<u8>, u64)> {
    schedule
        .events()
        .into_iter()
        .filter(|&(_, i, _)| lo <= i && i < hi)
        .map(|(ts, i, j)| (Engine::frame_for(&schedule.flows[i], j), ts))
        .collect()
}

/// Pushes one phase through the engine's batch path and scores its
/// verdict digests against the fingerprint → label map. Returns
/// `(hits, verdicts, packets, seconds)`.
fn ingest_scored(
    engine: &mut Engine,
    frames: &[(Vec<u8>, u64)],
    labels: &HashMap<u64, u16>,
) -> (u64, u64, u64, f64) {
    let io = engine.io().clone();
    let start = Instant::now();
    let report =
        engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");
    let elapsed = start.elapsed().as_secs_f64();
    let (mut hits, mut total) = (0u64, 0u64);
    for d in &report.digests {
        if let Some(&label) = labels.get(&d.values[io.digest_fp]) {
            total += 1;
            hits += u64::from(d.values[io.digest_class] as u16 == label);
        }
    }
    (hits, total, report.packets, elapsed)
}

fn acc(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Runs the full drift → retrain → swap → recover loop once and fills
/// everything in [`DriftStats`] except the allocation probe. Also
/// returns the retrained model so the probe can reuse its program.
pub fn run_drift(
    model: &PartitionedTree,
    schedule: &ChurnSchedule,
) -> (DriftStats, PartitionedTree) {
    let mut engine = engine_for(model);
    let trainer = StreamingTrainer::new(
        model.config.clone(),
        model.n_classes,
        &StreamingTrainerParams::default(),
    );
    let mut tap = DigestTap::new(trainer);
    for f in &schedule.flows {
        tap.register_flow(f);
    }
    engine.attach_tap(tap);

    let labels: HashMap<u64, u16> =
        schedule.flows.iter().map(|f| (canonical_flow_fp(f), f.label)).collect();

    let pre = phase_frames(schedule, 0, DRIFT_AT);
    let degraded = phase_frames(schedule, DRIFT_AT, DRIFT_STAGE_AT);
    let staging = phase_frames(schedule, DRIFT_STAGE_AT, DRIFT_SWAP_AT);
    let recovery = phase_frames(schedule, DRIFT_SWAP_AT, DRIFT_FLOWS);

    // Phase 1: healthy reference under the batch-trained model.
    let (pre_hits, pre_total, p1, t1) = ingest_scored(&mut engine, &pre, &labels);

    // Drift alarm: retraining must see post-drift traffic only.
    engine.tap_mut().expect("tap attached").reset_observations();

    // Phase 2: stale model over drifted traffic; the tap accumulates.
    let (deg_hits, deg_total, p2, t2) = ingest_scored(&mut engine, &degraded, &labels);

    // Phase 3: retrain from the tap, stage (compiles off-thread), and
    // keep serving live churn while the compile runs.
    let tap_fed = engine.tap().expect("tap attached").stats().fed;
    let retrained = engine.tap_mut().expect("tap attached").train().expect("stream retrain");
    engine.stage_model(retrained.clone()).expect("stages");
    let (stg_hits, stg_total, p3, t3) = ingest_scored(&mut engine, &staging, &labels);

    // Phase 4: the atomic flip. Lifecycle counters, slot pressure and
    // meters must be bit-identical across the instant — flow state is
    // carried, not rebuilt.
    let lc_before = engine.lifecycle();
    let pressure_before = engine.slot_pressure().total;
    let packets_before = engine.meters().packets;
    engine.swap_staged().expect("swaps");
    let lifecycle_carried = engine.lifecycle() == lc_before
        && engine.slot_pressure().total == pressure_before
        && engine.meters().packets == packets_before;

    let (rec_hits, rec_total, p4, t4) = ingest_scored(&mut engine, &recovery, &labels);

    let packets = p1 + p2 + p3 + p4;
    let elapsed_s = t1 + t2 + t3 + t4;
    let stats = DriftStats {
        packets,
        elapsed_s,
        pps: packets as f64 / elapsed_s,
        pre_acc: acc(pre_hits, pre_total),
        degraded_acc: acc(deg_hits + stg_hits, deg_total + stg_total),
        recovered_acc: acc(rec_hits, rec_total),
        pre_verdicts: pre_total,
        degraded_verdicts: deg_total + stg_total,
        recovered_verdicts: rec_total,
        tap_fed,
        swaps: engine.swaps(),
        staged_generation: engine.staged_generation(),
        lifecycle_carried,
        reconciled: engine.lifecycle().reconciles(),
        drift_allocs_per_packet: 0.0,
    };
    (stats, retrained)
}

/// The strict zero-allocation probe: drives the pre-drift slice through
/// `Pipeline::process_frame` (clearing digests per 1024-packet batch),
/// swaps the program to the retrained model **mid-stream** (the swap
/// itself is control-plane and excluded from the count), then drives the
/// post-drift slice. After a warm-up round over both programs, the
/// measured packet loop must allocate **zero** times.
pub fn probe_drift_allocs(
    model: &PartitionedTree,
    retrained: &PartitionedTree,
    pre: &[(Vec<u8>, u64)],
    post: &[(Vec<u8>, u64)],
) -> (u64, u64) {
    let e1 = engine_for(model);
    let e2 = engine_for(retrained);
    let fields = e1.io().fields;
    let mut pipe = Pipeline::new(e1.program().clone());

    // Warm-up: a full round under each program grows every scratch
    // capacity (keys, PHV, digest ring) to steady state.
    for (frame, ts) in pre {
        pipe.process_frame(frame, *ts, &fields).expect("parses");
    }
    pipe.clear_digests();
    pipe.swap_program(e2.program().clone(), &[]);
    for (frame, ts) in post {
        pipe.process_frame(frame, *ts, &fields).expect("parses");
    }
    pipe.clear_digests();
    pipe.swap_program(e1.program().clone(), &[]);
    pipe.reset_state();

    let mut n = 0u64;
    let mut allocs = 0u64;
    let before = allocation_count();
    for chunk in pre.chunks(1024) {
        for (frame, ts) in chunk {
            pipe.process_frame(frame, *ts, &fields).expect("parses");
            n += 1;
        }
        pipe.clear_digests();
    }
    allocs += allocation_count() - before;
    pipe.swap_program(e2.program().clone(), &[]);
    let before = allocation_count();
    for chunk in post.chunks(1024) {
        for (frame, ts) in chunk {
            pipe.process_frame(frame, *ts, &fields).expect("parses");
            n += 1;
        }
        pipe.clear_digests();
    }
    allocs += allocation_count() - before;
    (allocs, n)
}

/// Writes stats as the flat JSON the CI artifact and `bench_diff.sh`
/// consume. No `flow_slots` key — see [`DriftStats`].
pub fn write_json(path: &str, s: &DriftStats) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{{\n  \"bench\": \"drift\",\n  \"packets\": {},\n  \"elapsed_s\": {:.6},\n  \
         \"pps\": {:.1},\n  \"pre_acc\": {:.4},\n  \"degraded_acc\": {:.4},\n  \
         \"recovered_acc\": {:.4},\n  \"pre_verdicts\": {},\n  \"degraded_verdicts\": {},\n  \
         \"recovered_verdicts\": {},\n  \"tap_fed\": {},\n  \"swaps\": {},\n  \
         \"expected_swaps\": {},\n  \"staged_generation\": {},\n  \"lifecycle_carried\": {},\n  \
         \"reconciled\": {},\n  \"drift_allocs_per_packet\": {:.6}\n}}",
        s.packets,
        s.elapsed_s,
        s.pps,
        s.pre_acc,
        s.degraded_acc,
        s.recovered_acc,
        s.pre_verdicts,
        s.degraded_verdicts,
        s.recovered_verdicts,
        s.tap_fed,
        s.swaps,
        DRIFT_EXPECTED_SWAPS,
        s.staged_generation,
        u64::from(s.lifecycle_carried),
        u64::from(s.reconciled),
        s.drift_allocs_per_packet,
    )
}
