//! Backend comparison: trains the paper's five-model suite (SpliDT +
//! NetBeacon + Leo + per-packet + ideal) on each dataset through the
//! uniform `Trainable::fit` entry point and prints one table per dataset
//! via the shared `Classifier` comparison loop — the quickest way to see
//! every backend side by side.
//!
//! Run with: `SPLIDT_SCALE=0.1 cargo run --release --bin models`

use splidt_bench::*;
use splidt_core::SplidtConfig;
use splidt_flow::DatasetId;

fn main() {
    let scale = Scale::from_env();
    let ids = [DatasetId::D1, DatasetId::D2, DatasetId::D3];
    let per_ds = for_datasets(&ids, |id| {
        let bundle = DatasetBundle::load(id, scale);
        // A representative mid-Pareto SpliDT configuration.
        let cfg = SplidtConfig { partitions: vec![3, 3, 2], k: 4, ..Default::default() };
        let suite = classifier_suite(&bundle, &cfg);
        let rows = compare_classifiers(
            &suite.iter().map(|m| m.as_ref()).collect::<Vec<_>>(),
            &bundle.test,
        );
        (id, comparison_table(&rows))
    });
    for (id, rows) in per_ds {
        print_table(
            &format!("Model suite on {} (uniform Classifier contract)", id.tag()),
            &["Model", "F1", "MaxFlows", "TCAM", "RegBits"],
            &rows,
        );
    }
}
