//! CI lookup-bench smoke: runs the {16, 256, 4096} × {Exact, Ternary,
//! Range} indexed-vs-linear sweep, writes `BENCH_lookup.json`, and
//! enforces the acceptance floor — indexed Ternary and Range lookup must
//! beat the linear oracle by at least `--min-speedup` (default 5×) at
//! 4096 entries.
//!
//! ```text
//! lookup_smoke [--out BENCH_lookup.json] [--seconds 0.2] [--min-speedup 5]
//! ```
//!
//! Exit codes: `0` ok · `1` the speedup floor was missed. (Equivalence
//! between the two paths is asserted inside the harness before timing.)

use splidt_bench::lookup::{kind_tag, sweep, write_json, SWEEP_SIZES};
use splidt_dataplane::table::MatchKind;

struct Args {
    out: String,
    seconds: f64,
    min_speedup: f64,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_lookup.json".into(), seconds: 0.2, min_speedup: 5.0 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--seconds" => args.seconds = val("--seconds").parse().expect("numeric seconds"),
            "--min-speedup" => {
                args.min_speedup = val("--min-speedup").parse().expect("numeric ratio")
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let stats = sweep(42, args.seconds);

    println!("{:<16} {:>14} {:>14} {:>9}", "case", "indexed l/s", "linear l/s", "speedup");
    for s in &stats {
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>8.1}x",
            format!("{}/{}", kind_tag(s.kind), s.n_entries),
            s.indexed_lps,
            s.linear_lps,
            s.speedup()
        );
    }

    write_json(&args.out, &stats).expect("writes results json");
    println!("wrote {}", args.out);

    let top = *SWEEP_SIZES.last().expect("sweep sizes");
    let mut fail = false;
    for kind in [MatchKind::Ternary, MatchKind::Range] {
        let s = stats
            .iter()
            .find(|s| s.kind == kind && s.n_entries == top)
            .expect("swept case present");
        if s.speedup() < args.min_speedup {
            eprintln!(
                "FAIL: {}/{top} indexed speedup {:.1}x is below the {:.0}x floor",
                kind_tag(kind),
                s.speedup(),
                args.min_speedup
            );
            fail = true;
        }
    }
    if fail {
        std::process::exit(1);
    }
    println!("speedup floor met (>= {:.0}x at {top} entries)", args.min_speedup);
}
