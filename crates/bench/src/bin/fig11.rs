//! Figure 11: per-flow register bits vs total feature count — SpliDT:k is
//! flat (k slots reused across subtrees), NB/Leo grow linearly.

use splidt_bench::*;

fn main() {
    let mut rows = Vec::new();
    for n_features in [1usize, 2, 4, 6, 8, 10, 20, 30, 48, 50] {
        let mut row = vec![n_features.to_string()];
        for k in [1usize, 2, 3, 4] {
            // SpliDT with k slots supports any total feature count ≥ k.
            row.push(if n_features >= k { (k * 32).to_string() } else { "-".into() });
        }
        // one-shot top-k must hold every feature live
        row.push((n_features * 32).to_string());
        rows.push(row);
    }
    print_table(
        "Figure 11: register bits per flow vs #total features",
        &["#Features", "SpliDT:1", "SpliDT:2", "SpliDT:3", "SpliDT:4", "NB/Leo"],
        &rows,
    );
}
