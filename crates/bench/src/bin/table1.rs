//! Table 1: feature density (%) per partition / subtree, and max
//! recirculation bandwidth (Mbps) under WS and HD, datasets D1–D3.

use splidt_bench::*;
use splidt_core::{recirc, SplidtConfig};
use splidt_flow::{catalog, DatasetId, Environment};

fn main() {
    let scale = Scale::from_env();
    let ids = [DatasetId::D1, DatasetId::D2, DatasetId::D3];
    let n_total = catalog().hardware_eligible().len() as f64;
    let rows = for_datasets(&ids, |id| {
        let bundle = DatasetBundle::load(id, scale);
        // A representative mid-Pareto configuration (5 partitions, k=4).
        let cfg = SplidtConfig { partitions: vec![3, 3, 3, 2, 2], k: 4, ..Default::default() };
        let (model, _f1) = bundle.train_splidt(&cfg);
        // per-subtree density
        let per_subtree: Vec<f64> =
            model.subtrees.iter().map(|s| s.features().len() as f64 / n_total * 100.0).collect();
        // per-partition density (union of subtree features per partition)
        let mut per_partition = Vec::new();
        for p in 0..model.n_partitions() {
            let mut feats = std::collections::BTreeSet::new();
            for s in model.subtrees.iter().filter(|s| s.partition == p) {
                feats.extend(s.features());
            }
            if !feats.is_empty() {
                per_partition.push(feats.len() as f64 / n_total * 100.0);
            }
        }
        let ms = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len().max(1) as f64;
            let s =
                (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len().max(1) as f64).sqrt();
            format!("{m:.2} ± {s:.2}")
        };
        let ws = recirc::model_recirc(&model, &Environment::webserver(), 500_000, 7);
        let hd = recirc::model_recirc(&model, &Environment::hadoop(), 500_000, 7);
        vec![
            id.tag().to_string(),
            ms(&per_partition),
            ms(&per_subtree),
            format!("{:.2} ± {:.2}", ws.mean_mbps, ws.std_mbps),
            format!("{:.2} ± {:.2}", hd.mean_mbps, hd.std_mbps),
        ]
    });
    print_table(
        "Table 1: feature density (%) and recirculation bandwidth (Mbps, 500K flows)",
        &["Data", "/Partition", "/Subtree", "WS", "HD"],
        &rows,
    );
}
