//! CI drift smoke: the full online-retraining control loop under churn —
//! train on the first half of the schedule, rotate class behaviour
//! mid-stream, retrain from the engine's own digest tap, hot-swap the
//! model atomically under live traffic — with four gates:
//!
//! 1. the retrained model **recovers** classification on the drifted
//!    distribution: post-swap accuracy above `DRIFT_RECOVERY_FLOOR` *and*
//!    strictly above the degraded (stale-model) phase;
//! 2. **zero flow state lost** across the swap instant: lifecycle
//!    counters, slot pressure and meters bit-identical before/after the
//!    flip, exactly one swap completed, counters reconciling at the end;
//! 3. **zero heap allocations** per steady-state packet on the
//!    pipeline-level loop even with a program swap mid-stream;
//! 4. packets/sec within `--max-drop-pct` of the committed baseline.
//!
//! ```text
//! drift_smoke [--out BENCH_drift.json] [--baseline bench/drift_baseline.json]
//!             [--max-drop-pct 25]
//! ```
//!
//! Exit codes: `0` ok · `1` throughput regressed · `2` the
//! zero-allocation invariant broke · `3` drift recovery or state
//! preservation failed.
//!
//! Locally, diff two result files with `scripts/bench_diff.sh`.

use splidt_bench::drift::{
    fixture, phase_frames, probe_drift_allocs, run_drift, write_json, DRIFT_AT,
    DRIFT_EXPECTED_SWAPS, DRIFT_FLOWS, DRIFT_RECOVERY_FLOOR,
};
use splidt_bench::hotpath::read_metric;
use splidt_bench::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Args {
    out: String,
    baseline: Option<String>,
    max_drop_pct: f64,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_drift.json".into(), baseline: None, max_drop_pct: 25.0 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--max-drop-pct" => {
                args.max_drop_pct = val("--max-drop-pct").parse().expect("numeric pct")
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let (model, schedule) = fixture();

    // 1. The full loop: pre-drift → drift → retrain from digests →
    //    stage off-thread under live churn → atomic swap → recovery.
    let (mut stats, retrained) = run_drift(&model, &schedule);
    println!(
        "drift: {} packets; accuracy pre {:.3} ({} verdicts) → degraded {:.3} ({}) → \
         recovered {:.3} ({})",
        stats.packets,
        stats.pre_acc,
        stats.pre_verdicts,
        stats.degraded_acc,
        stats.degraded_verdicts,
        stats.recovered_acc,
        stats.recovered_verdicts
    );
    println!(
        "swap: {} swap(s), staged generation {}, tap fed {} post-drift flows; \
         state carried across the flip: {}; lifecycle reconciled: {}",
        stats.swaps,
        stats.staged_generation,
        stats.tap_fed,
        stats.lifecycle_carried,
        stats.reconciled
    );

    // 2. Strict allocation probe: same schedule at pipeline level with a
    //    mid-stream program swap.
    let pre = phase_frames(&schedule, 0, DRIFT_AT);
    let post = phase_frames(&schedule, DRIFT_AT, DRIFT_FLOWS);
    let (allocs, probe_packets) = probe_drift_allocs(&model, &retrained, &pre, &post);
    stats.drift_allocs_per_packet = allocs as f64 / probe_packets as f64;
    println!(
        "drift probe: {allocs} allocations over {probe_packets} packets \
         ({:.6}/packet, program swap mid-stream)",
        stats.drift_allocs_per_packet
    );
    println!(
        "throughput: {:.0} packets/sec ({} packets in {:.2}s)",
        stats.pps, stats.packets, stats.elapsed_s
    );

    write_json(&args.out, &stats).expect("writes results json");
    println!("wrote {}", args.out);

    // Gates, ordered: recovery → state preservation → allocations →
    // throughput.
    if stats.recovered_acc < DRIFT_RECOVERY_FLOOR {
        eprintln!(
            "FAIL: post-swap accuracy {:.3} is below the recovery floor {:.2}",
            stats.recovered_acc, DRIFT_RECOVERY_FLOOR
        );
        std::process::exit(3);
    }
    if stats.recovered_acc <= stats.degraded_acc {
        eprintln!(
            "FAIL: post-swap accuracy {:.3} did not improve on the degraded phase {:.3}",
            stats.recovered_acc, stats.degraded_acc
        );
        std::process::exit(3);
    }
    if stats.swaps != DRIFT_EXPECTED_SWAPS {
        eprintln!("FAIL: {} swaps completed; expected {}", stats.swaps, DRIFT_EXPECTED_SWAPS);
        std::process::exit(3);
    }
    if !stats.lifecycle_carried {
        eprintln!("FAIL: flow state was not carried across the swap instant");
        std::process::exit(3);
    }
    if !stats.reconciled {
        eprintln!("FAIL: lifecycle counters do not reconcile after the swap");
        std::process::exit(3);
    }
    if stats.tap_fed == 0 {
        eprintln!("FAIL: the digest tap fed no post-drift flows to the trainer");
        std::process::exit(3);
    }
    if allocs != 0 {
        eprintln!("FAIL: drift steady state allocated ({allocs} allocations)");
        std::process::exit(2);
    }
    if let Some(baseline) = &args.baseline {
        let base_pps =
            read_metric(baseline, "pps").unwrap_or_else(|| panic!("no pps in baseline {baseline}"));
        let floor = base_pps * (1.0 - args.max_drop_pct / 100.0);
        println!(
            "baseline: {base_pps:.0} pps ({baseline}); floor at -{:.0}%: {floor:.0} pps",
            args.max_drop_pct
        );
        if stats.pps < floor {
            eprintln!(
                "FAIL: throughput {:.0} pps is >{:.0}% below baseline {base_pps:.0} pps",
                stats.pps, args.max_drop_pct
            );
            std::process::exit(1);
        }
        println!("throughput within budget");
    }
}
