//! CI ingress smoke: one full loopback run of the network ingress
//! subsystem — the churn schedule replayed over a real UDP socket into
//! the per-shard ring service, through graceful shutdown — plus the
//! ring-consumer zero-allocation probe. Gates:
//!
//! 1. the ingress accounting **reconciles exactly** (`received ==
//!    steered + dropped_ring_full + dropped_malformed`, every steered
//!    frame consumed) and ≥ `classified_floor` distinct flows classify
//!    (the churn criterion, now end-to-end across the wire);
//! 2. **zero heap allocations** per packet on the ring-consumer hot
//!    path (push → peek → process_frame → digest drain → advance);
//! 3. received packets/sec within `--max-drop-pct` of the committed
//!    baseline (generous by default: the replay is paced, so pps tracks
//!    the schedule, and loopback scheduling is noisy on small runners).
//!
//! ```text
//! ingress_smoke [--out BENCH_ingress.json] [--baseline bench/ingress_baseline.json]
//!               [--max-drop-pct 40] [--time-scale 2.0] [--shards 2]
//! ```
//!
//! Exit codes: `0` ok · `1` throughput regressed · `2` the
//! zero-allocation invariant broke · `3` ingress acceptance failed (no
//! reconciliation or too few flows classified).

use splidt_bench::churn::{fixture, CHURN_FLOWS, CHURN_SEED};
use splidt_bench::hotpath::read_metric;
use splidt_bench::ingress::{
    probe_ingress_allocs, run_loopback, sharded_engine_for, stats_from, write_json,
};
use splidt_bench::CountingAlloc;
use splidt_flow::{churn, ChurnConfig, DatasetId};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Args {
    out: String,
    baseline: Option<String>,
    max_drop_pct: f64,
    time_scale: f64,
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_ingress.json".into(),
        baseline: None,
        max_drop_pct: 40.0,
        time_scale: 2.0,
        shards: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--max-drop-pct" => {
                args.max_drop_pct = val("--max-drop-pct").parse().expect("numeric pct")
            }
            "--time-scale" => args.time_scale = val("--time-scale").parse().expect("numeric scale"),
            "--shards" => args.shards = val("--shards").parse().expect("numeric shard count"),
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let (model, frames) = fixture();
    // The same schedule the fixture serialized, as events for the
    // generator (frames stay in use for the allocation probe).
    let schedule = churn(
        DatasetId::D2,
        &ChurnConfig {
            flows: CHURN_FLOWS,
            mean_arrival_gap_us: 500,
            lifetime_scale: 0.05,
            syn_open_frac: splidt_bench::churn::CHURN_SYN_OPEN_FRAC,
            rst_close_frac: splidt_bench::churn::CHURN_RST_CLOSE_FRAC,
            seed: CHURN_SEED,
            ..Default::default()
        },
    );

    // 1. The loopback session: replayer thread → UDP → ring ingress.
    let mut engine = sharded_engine_for(&model, args.shards, args.time_scale);
    let (outcome, gen_report, classified, elapsed_s) =
        run_loopback(&mut engine, &schedule, args.time_scale);

    // 2. The strict ring-consumer allocation probe (in-process, exact).
    let (allocs, alloc_packets) = probe_ingress_allocs(&model, &frames);

    let stats = stats_from(&outcome, &gen_report, classified, elapsed_s, allocs, alloc_packets);
    println!(
        "ingress: sent {} → received {} (socket loss {}) = steered {} + ring_full {} + \
         malformed {}, consumed {} in {:.2}s ({:.0} pps)",
        stats.sent,
        stats.received,
        stats.socket_loss,
        stats.steered,
        stats.dropped_ring_full,
        stats.dropped_malformed,
        stats.consumed,
        stats.elapsed_s,
        stats.pps,
    );
    println!(
        "classified {} distinct flows (floor {}) — ingress reconciled: {}, lifecycle \
         reconciled: {}",
        stats.classified_flows,
        stats.classified_floor,
        stats.reconciled,
        outcome.report.lifecycle.reconciles(),
    );
    println!(
        "ring-consumer hot path: {allocs} allocations over {alloc_packets} packets \
         ({:.6}/packet)",
        stats.ingress_allocs_per_packet
    );

    write_json(&args.out, &stats).expect("write bench json");
    println!("wrote {}", args.out);

    if !stats.reconciled || stats.classified_flows < stats.classified_floor {
        eprintln!(
            "FAIL: ingress acceptance (reconciled={}, classified {} < floor {})",
            stats.reconciled, stats.classified_flows, stats.classified_floor
        );
        std::process::exit(3);
    }
    if allocs > 0 {
        eprintln!("FAIL: ring-consumer hot path allocated ({allocs} over {alloc_packets} packets)");
        std::process::exit(2);
    }
    if let Some(baseline) = &args.baseline {
        let base_pps = read_metric(baseline, "pps").expect("baseline has pps");
        let floor = base_pps * (1.0 - args.max_drop_pct / 100.0);
        if stats.pps < floor {
            eprintln!(
                "FAIL: pps {:.0} below baseline {:.0} − {}% = {:.0}",
                stats.pps, base_pps, args.max_drop_pct, floor
            );
            std::process::exit(1);
        }
        println!(
            "pps within {}% of baseline ({:.0} vs {:.0})",
            args.max_drop_pct, stats.pps, base_pps
        );
    }
}
