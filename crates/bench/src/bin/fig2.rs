//! Figure 2: F1 vs #flows — top-k (≤7) vs SpliDT vs ideal, datasets D1–D3.
//! Per-packet model peaks printed alongside (the paper reports them in the
//! caption). Baselines train and evaluate through the backend-agnostic
//! `Classifier` contract.

use splidt_bench::*;
use splidt_core::baselines::{Ideal, PerPacket};
use splidt_core::engine::{Classifier, Trainable};
use splidt_flow::DatasetId;
use splidt_search::ParamSpace;

fn main() {
    let scale = Scale::from_env();
    let ids = [DatasetId::D1, DatasetId::D2, DatasetId::D3];
    let results = for_datasets(&ids, |id| {
        let bundle = DatasetBundle::load(id, scale);
        let search = search_dataset(&bundle, scale, &ParamSpace::default(), 42);
        let unconstrained: Vec<Box<dyn Classifier>> = vec![
            Box::new(Ideal::fit(&bundle.train, bundle.n_classes, &16).expect("ideal trains")),
            Box::new(PerPacket::fit(&bundle.train, bundle.n_classes, &8).expect("pp trains")),
        ];
        let cmp = compare_classifiers(
            &unconstrained.iter().map(|m| m.as_ref()).collect::<Vec<_>>(),
            &bundle.test,
        );
        let (ideal, pp) = (cmp[0].f1, cmp[1].f1);
        let mut rows = Vec::new();
        for &t in &FLOW_TARGETS {
            let splidt = search.best_at_flows(t).map(|(_, f1)| f1);
            let topk = best_netbeacon(&bundle, t, 24).map(|b| b.f1);
            rows.push(vec![
                id.tag().to_string(),
                flows_fmt(t),
                topk.map(f2).unwrap_or_else(|| "-".into()),
                splidt.map(f2).unwrap_or_else(|| "-".into()),
                f2(ideal),
            ]);
        }
        (rows, pp)
    });
    let mut all_rows = Vec::new();
    let mut peaks = Vec::new();
    for (rows, pp) in results {
        all_rows.extend(rows);
        peaks.push(f2(pp));
    }
    print_table(
        "Figure 2: F1 vs #flows (top-k vs SpliDT vs ideal)",
        &["Data", "#Flows", "Top-k", "SpliDT", "Ideal"],
        &all_rows,
    );
    println!("\nPer-packet model peaks (D1-D3): {}", peaks.join(", "));
}
