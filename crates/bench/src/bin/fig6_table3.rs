//! Figure 6 + Table 3: the Pareto frontier (F1 vs #flows) of SpliDT vs
//! NetBeacon vs Leo across D1–D7, with the per-target resource accounting
//! of Table 3 (depth/#partitions, #features, #TCAM entries, register bits).

use splidt_bench::*;
use splidt_core::{model_rules, splidt_footprint};
use splidt_flow::DatasetId;
use splidt_search::ParamSpace;

fn main() {
    let scale = Scale::from_env();
    let ids = DatasetId::all();
    let per_ds = for_datasets(&ids, |id| {
        let bundle = DatasetBundle::load(id, scale);
        let search = search_dataset(&bundle, scale, &ParamSpace::default(), 42);
        let mut rows = Vec::new();
        for &t in &FLOW_TARGETS {
            let nb = best_netbeacon(&bundle, t, 24);
            let leo = best_leo(&bundle, t, 24);
            let sp = search.best_at_flows(t).map(|(i, f1)| {
                let cfg = search.history[i].0.clone();
                let (model, _) = bundle.train_splidt(&cfg);
                let rules = model_rules(&model);
                let fp = splidt_footprint(&model);
                (
                    f1,
                    format!("{} / {}", model.realized_depth(), model.n_partitions()),
                    model.total_features().len(),
                    rules.tcam_entries,
                    fp.feature_register_bits(),
                )
            });
            let (nb_f1, nb_d, nb_k, nb_t, nb_r) = nb
                .map(|b| (f2(b.f1), b.depth.to_string(), b.k, b.tcam, b.reg_bits))
                .unwrap_or(("-".into(), "-".into(), 0, 0, 0));
            let (leo_f1, leo_d, leo_k, leo_t, leo_r) = leo
                .map(|b| (f2(b.f1), b.depth.to_string(), b.k, b.tcam, b.reg_bits))
                .unwrap_or(("-".into(), "-".into(), 0, 0, 0));
            let (sp_f1, sp_d, sp_k, sp_t, sp_r) = sp
                .map(|(f1, d, k, t, r)| (f2(f1), d, k, t, r))
                .unwrap_or(("-".into(), "-".into(), 0, 0, 0));
            rows.push(vec![
                id.tag().to_string(),
                flows_fmt(t),
                nb_f1,
                leo_f1,
                sp_f1,
                nb_d,
                leo_d,
                sp_d,
                nb_k.to_string(),
                leo_k.to_string(),
                sp_k.to_string(),
                nb_t.to_string(),
                leo_t.to_string(),
                sp_t.to_string(),
                nb_r.to_string(),
                leo_r.to_string(),
                sp_r.to_string(),
            ]);
        }
        rows
    });
    let rows: Vec<Vec<String>> = per_ds.into_iter().flatten().collect();
    print_table(
        "Table 3 / Figure 6: F1 + resources vs flow target (NB | Leo | SpliDT)",
        &[
            "Data", "#Flows", "F1:NB", "F1:Leo", "F1:Sp", "D:NB", "D:Leo", "D/P:Sp", "#F:NB",
            "#F:Leo", "#F:Sp", "TCAM:NB", "TCAM:Leo", "TCAM:Sp", "Reg:NB", "Reg:Leo", "Reg:Sp",
        ],
        &rows,
    );
}
