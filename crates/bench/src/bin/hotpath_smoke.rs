//! CI bench-smoke: a short, fixed-seed hot-path run that (a) asserts the
//! steady-state packet path performs **zero heap allocations per packet**
//! under a counting global allocator, (b) measures engine throughput, (c)
//! writes `BENCH_hotpath.json`, and (d) optionally gates against a
//! committed baseline.
//!
//! ```text
//! hotpath_smoke [--out BENCH_hotpath.json] [--baseline bench/baseline.json]
//!               [--max-drop-pct 15] [--seconds 2.0]
//! ```
//!
//! Exit codes: `0` ok · `1` throughput regressed past the threshold or
//! the burst-32 vectorization win fell below its floor · `2` a
//! zero-allocation invariant broke.
//!
//! Locally, diff two result files with `scripts/bench_diff.sh`.

use splidt_bench::hotpath::{
    fixture, measure_burst_sweep, measure_engine_throughput, probe_burst_allocs,
    probe_digest_ring_allocs, probe_hot_loop_allocs, read_metric, write_json, BURST_SWEEP,
};
use splidt_bench::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Args {
    out: String,
    baseline: Option<String>,
    max_drop_pct: f64,
    seconds: f64,
}

fn parse_args() -> Args {
    let mut args =
        Args { out: "BENCH_hotpath.json".into(), baseline: None, max_drop_pct: 15.0, seconds: 2.0 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--max-drop-pct" => {
                args.max_drop_pct = val("--max-drop-pct").parse().expect("numeric pct")
            }
            "--seconds" => args.seconds = val("--seconds").parse().expect("numeric seconds"),
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // 1. The strict invariant probe: a digest-free steady-state loop must
    //    not touch the heap at all. 20K packets after warm-up. The verdict
    //    is enforced after the results JSON is written, so the CI artifact
    //    exists (with the real allocation count) even on failure.
    const PROBE_PACKETS: u64 = 20_000;
    let hot_allocs = probe_hot_loop_allocs(PROBE_PACKETS);
    let hot_per_packet = hot_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "hot-loop probe: {hot_allocs} allocations over {PROBE_PACKETS} packets \
         ({hot_per_packet:.6}/packet)"
    );

    // 1b. The digest-ring probe: a steady-state loop in which **every**
    //     packet emits a digest (disposed per batch) must not touch the
    //     heap either — the flat DigestBuf ring replaced the per-event
    //     Vec allocation.
    let ring_allocs = probe_digest_ring_allocs(PROBE_PACKETS);
    let ring_per_packet = ring_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "digest-ring probe: {ring_allocs} allocations over {PROBE_PACKETS} digest-emitting \
         packets ({ring_per_packet:.6}/packet)"
    );

    // 1c. The burst-path and worker-data-path probes: wave execution and
    //     the SPSC worker hand-off must be allocation-free per packet too.
    let burst_allocs = probe_burst_allocs(PROBE_PACKETS);
    let burst_per_packet = burst_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "burst probe: {burst_allocs} allocations over {PROBE_PACKETS} packets \
         ({burst_per_packet:.6}/packet)"
    );
    let worker_allocs = splidt_bench::hotpath::probe_worker_ring_allocs(PROBE_PACKETS);
    let worker_per_packet = worker_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "worker-ring probe: {worker_allocs} allocations over {PROBE_PACKETS} packets \
         ({worker_per_packet:.6}/packet)"
    );

    // 2. Fixed-seed end-to-end throughput through the engine batch path
    //    (default burst), plus the burst sweep for the vectorization gate.
    let (model, frames) = fixture();
    let mut engine = splidt_bench::hotpath::engine_for(&model);
    let mut stats = measure_engine_throughput(&mut engine, &frames, args.seconds);
    stats.hot_loop_allocs_per_packet = hot_per_packet;
    stats.digest_ring_allocs_per_packet = ring_per_packet;
    stats.burst_allocs_per_packet = burst_per_packet;
    stats.worker_allocs_per_packet = worker_per_packet;
    println!(
        "throughput: {:.0} packets/sec ({} packets in {:.2}s), {:.4} allocs/packet \
         (boundary digests included)",
        stats.pps, stats.packets, stats.elapsed_s, stats.allocs_per_packet
    );
    // The sweep runs on the scaled-traffic fixture — a few hundred
    // thousand distinct flows over a multi-million-slot register file,
    // the memory-bound regime vectorization exists for (at the small
    // fixture's working set the interpreter is compute-bound and every
    // burst size measures the same).
    let scaled = splidt_bench::hotpath::scaled_fixture(&model);
    println!("scaled fixture: {} frames", scaled.len());
    stats.pps_burst = measure_burst_sweep(&model, &scaled, args.seconds / 2.0);
    for (b, pps) in BURST_SWEEP.iter().zip(stats.pps_burst) {
        println!("burst sweep: burst {b:>2} → {pps:.0} packets/sec");
    }
    let vector_win = stats.pps_burst[2] / stats.pps_burst[0];
    println!("vectorization: burst 32 / burst 1 = {vector_win:.2}x");

    write_json(&args.out, &stats).expect("writes results json");
    println!("wrote {}", args.out);

    if hot_allocs != 0 {
        eprintln!("FAIL: steady-state hot loop allocated ({hot_allocs} allocations)");
        std::process::exit(2);
    }
    if ring_allocs != 0 {
        eprintln!("FAIL: digest-emitting steady state allocated ({ring_allocs} allocations)");
        std::process::exit(2);
    }
    if burst_allocs != 0 {
        eprintln!("FAIL: burst (wave) steady state allocated ({burst_allocs} allocations)");
        std::process::exit(2);
    }
    if worker_allocs != 0 {
        eprintln!("FAIL: worker ring data path allocated ({worker_allocs} allocations)");
        std::process::exit(2);
    }
    // Vectorization floor: wave execution at burst 32 must beat the same
    // machinery at burst 1 (scalar) on the scaled fixture. The interleaved
    // sweep makes the ratio robust to machine-wide throughput drift.
    // Observed 1.13-1.20x across stable long-window runs on the 1-vCPU CI
    // box; the floor sits below the band's low end, same policy as the
    // absolute-pps floors. Burst-32 already runs at ~93% of the box's
    // compute ceiling (~695K pps small-fixture), which caps the
    // achievable ratio near 1.25-1.28x here; bigger wins need the stall
    // fraction a real multi-core / line-rate deployment has.
    const VECTOR_FLOOR: f64 = 1.05;
    if vector_win < VECTOR_FLOOR {
        eprintln!(
            "FAIL: burst-32 pps is only {vector_win:.2}x burst-1 pps (floor {VECTOR_FLOOR}x)"
        );
        std::process::exit(1);
    }

    // 3. Regression gate vs the committed baseline.
    if let Some(baseline) = &args.baseline {
        let base_pps =
            read_metric(baseline, "pps").unwrap_or_else(|| panic!("no pps in baseline {baseline}"));
        let floor = base_pps * (1.0 - args.max_drop_pct / 100.0);
        println!(
            "baseline: {base_pps:.0} pps ({baseline}); floor at -{:.0}%: {floor:.0} pps",
            args.max_drop_pct
        );
        if stats.pps < floor {
            eprintln!(
                "FAIL: throughput {:.0} pps is >{:.0}% below baseline {base_pps:.0} pps",
                stats.pps, args.max_drop_pct
            );
            std::process::exit(1);
        }
        println!("throughput within budget");
    }
}
