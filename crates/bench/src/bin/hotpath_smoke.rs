//! CI bench-smoke: a short, fixed-seed hot-path run that (a) asserts the
//! steady-state packet path performs **zero heap allocations per packet**
//! under a counting global allocator, (b) measures engine throughput, (c)
//! writes `BENCH_hotpath.json`, and (d) optionally gates against a
//! committed baseline.
//!
//! ```text
//! hotpath_smoke [--out BENCH_hotpath.json] [--baseline bench/baseline.json]
//!               [--max-drop-pct 15] [--seconds 2.0]
//! ```
//!
//! Exit codes: `0` ok · `1` throughput regressed past the threshold, the
//! burst-32 vectorization win fell below its floor, or the flow-state
//! banking win fell below its floor · `2` a zero-allocation invariant
//! broke.
//!
//! Locally, diff two result files with `scripts/bench_diff.sh`.

use splidt_bench::hotpath::{
    fixture, measure_burst_sweep, measure_engine_throughput, probe_bank_allocs, probe_burst_allocs,
    probe_digest_ring_allocs, probe_hot_loop_allocs, read_metric, write_json, BURST_SWEEP,
    SCALED_FLOW_SLOTS,
};
use splidt_bench::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Args {
    out: String,
    baseline: Option<String>,
    max_drop_pct: f64,
    seconds: f64,
}

fn parse_args() -> Args {
    let mut args =
        Args { out: "BENCH_hotpath.json".into(), baseline: None, max_drop_pct: 15.0, seconds: 2.0 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--max-drop-pct" => {
                args.max_drop_pct = val("--max-drop-pct").parse().expect("numeric pct")
            }
            "--seconds" => args.seconds = val("--seconds").parse().expect("numeric seconds"),
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // 1. The strict invariant probe: a digest-free steady-state loop must
    //    not touch the heap at all. 20K packets after warm-up. The verdict
    //    is enforced after the results JSON is written, so the CI artifact
    //    exists (with the real allocation count) even on failure.
    const PROBE_PACKETS: u64 = 20_000;
    let hot_allocs = probe_hot_loop_allocs(PROBE_PACKETS);
    let hot_per_packet = hot_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "hot-loop probe: {hot_allocs} allocations over {PROBE_PACKETS} packets \
         ({hot_per_packet:.6}/packet)"
    );

    // 1b. The digest-ring probe: a steady-state loop in which **every**
    //     packet emits a digest (disposed per batch) must not touch the
    //     heap either — the flat DigestBuf ring replaced the per-event
    //     Vec allocation.
    let ring_allocs = probe_digest_ring_allocs(PROBE_PACKETS);
    let ring_per_packet = ring_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "digest-ring probe: {ring_allocs} allocations over {PROBE_PACKETS} digest-emitting \
         packets ({ring_per_packet:.6}/packet)"
    );

    // 1c. The burst-path and worker-data-path probes: wave execution and
    //     the SPSC worker hand-off must be allocation-free per packet too.
    let burst_allocs = probe_burst_allocs(PROBE_PACKETS);
    let burst_per_packet = burst_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "burst probe: {burst_allocs} allocations over {PROBE_PACKETS} packets \
         ({burst_per_packet:.6}/packet)"
    );
    let worker_allocs = splidt_bench::hotpath::probe_worker_ring_allocs(PROBE_PACKETS);
    let worker_per_packet = worker_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "worker-ring probe: {worker_allocs} allocations over {PROBE_PACKETS} packets \
         ({worker_per_packet:.6}/packet)"
    );

    // 1d. The banked-path probe: a multi-register program whose flow
    //     state coalesces into one cache-line bank, driven through the
    //     wave path — bank cell addressing must not allocate either.
    let bank_allocs = probe_bank_allocs(PROBE_PACKETS);
    let bank_per_packet = bank_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "bank probe: {bank_allocs} allocations over {PROBE_PACKETS} packets \
         ({bank_per_packet:.6}/packet)"
    );

    // 2. Fixed-seed end-to-end throughput through the engine batch path
    //    (default burst), plus the burst sweep for the vectorization gate.
    let (model, frames) = fixture();
    let mut engine = splidt_bench::hotpath::engine_for(&model);
    let mut stats = measure_engine_throughput(&mut engine, &frames, args.seconds);
    stats.hot_loop_allocs_per_packet = hot_per_packet;
    stats.digest_ring_allocs_per_packet = ring_per_packet;
    stats.burst_allocs_per_packet = burst_per_packet;
    stats.worker_allocs_per_packet = worker_per_packet;
    stats.bank_allocs_per_packet = bank_per_packet;
    println!(
        "throughput: {:.0} packets/sec ({} packets in {:.2}s), {:.4} allocs/packet \
         (boundary digests included)",
        stats.pps, stats.packets, stats.elapsed_s, stats.allocs_per_packet
    );
    // The sweep runs on the scaled-traffic fixture — a few hundred
    // thousand distinct flows over a multi-million-slot register file,
    // the memory-bound regime vectorization exists for (at the small
    // fixture's working set the interpreter is compute-bound and every
    // burst size measures the same).
    let scaled = splidt_bench::hotpath::scaled_fixture(&model);
    println!("scaled fixture: {} frames over {SCALED_FLOW_SLOTS} slots", scaled.len());
    let sweep = measure_burst_sweep(&model, &scaled, args.seconds / 2.0);
    stats.pps_burst = sweep.pps_burst;
    stats.pps_scaled = sweep.pps_burst[2];
    stats.pps_scaled_split = sweep.pps_split_b32;
    stats.bank_speedup = stats.pps_scaled / stats.pps_scaled_split;
    stats.sweep_frames = scaled.len() as u64;
    stats.sweep_slots = SCALED_FLOW_SLOTS as u64;
    for (b, pps) in BURST_SWEEP.iter().zip(stats.pps_burst) {
        println!("burst sweep: burst {b:>2} → {pps:.0} packets/sec");
    }
    println!("burst sweep: split b32 → {:.0} packets/sec", stats.pps_scaled_split);
    let vector_win = stats.pps_burst[2] / stats.pps_burst[0];
    println!("vectorization: burst 32 / burst 1 = {vector_win:.2}x");
    println!("flow-state banking: banked / split at burst 32 = {:.2}x", stats.bank_speedup);

    write_json(&args.out, &stats).expect("writes results json");
    println!("wrote {}", args.out);

    if hot_allocs != 0 {
        eprintln!("FAIL: steady-state hot loop allocated ({hot_allocs} allocations)");
        std::process::exit(2);
    }
    if ring_allocs != 0 {
        eprintln!("FAIL: digest-emitting steady state allocated ({ring_allocs} allocations)");
        std::process::exit(2);
    }
    if burst_allocs != 0 {
        eprintln!("FAIL: burst (wave) steady state allocated ({burst_allocs} allocations)");
        std::process::exit(2);
    }
    if worker_allocs != 0 {
        eprintln!("FAIL: worker ring data path allocated ({worker_allocs} allocations)");
        std::process::exit(2);
    }
    if bank_allocs != 0 {
        eprintln!("FAIL: banked register path allocated ({bank_allocs} allocations)");
        std::process::exit(2);
    }
    // Vectorization floor: wave execution at burst 32 must not fall
    // behind the same machinery at burst 1 (scalar) on the scaled
    // fixture — the inversion gate. Pre-banking the wave win measured
    // 1.13-1.20x and the floor sat at 1.05; flow-state banking then
    // collapsed the scalar path's stall fraction (one line per packet
    // instead of up to four arrays), lifting burst-1 from ~508K to
    // ~680K pps and compressing the observed burst-32/burst-1 band to
    // 1.04-1.10x on the 1-vCPU box (both absolute numbers went UP —
    // only the ratio narrowed, because there is little stall left for
    // prefetch to hide). The floor therefore now guards the inversion
    // regression (burst 32 slower than burst 1), not a large win; the
    // big-win gate moved to the banked/split ratio below.
    const VECTOR_FLOOR: f64 = 1.00;
    if vector_win < VECTOR_FLOOR {
        eprintln!(
            "FAIL: burst-32 pps is only {vector_win:.2}x burst-1 pps (floor {VECTOR_FLOOR}x)"
        );
        std::process::exit(1);
    }
    // Flow-state banking floor: the coalesced register file must beat the
    // split per-stage arrays at burst 32 on the memory-bound scaled
    // fixture. Both configurations ride the interleaved sweep with the
    // best-round estimator, so the ratio sheds machine drift the same
    // way the vectorization gate does. Observed 1.07-1.13x across
    // stable long-window runs (quiet-machine point ~1.09x) on the
    // 1-vCPU box — at burst 32 the split layout's misses are largely
    // hidden by the wave prefetcher, so the residual gap is line-fill-
    // buffer pressure (1 line vs ~7 per packet); the floor sits below
    // the band's low end, same policy as the absolute-pps floors.
    // (Banking's full effect shows against the pre-banking committed
    // baseline: burst-1 508K -> ~680K pps, burst-32 608K -> ~707K.)
    const BANK_FLOOR: f64 = 1.05;
    if stats.bank_speedup < BANK_FLOOR {
        eprintln!(
            "FAIL: banked pps is only {:.2}x split pps at burst 32 (floor {BANK_FLOOR}x)",
            stats.bank_speedup
        );
        std::process::exit(1);
    }

    // 3. Regression gates vs the committed baseline: the small
    //    compute-bound fixture (`pps`) and the scaled memory-bound
    //    fixture (`pps_scaled`) each hold their own floor.
    if let Some(baseline) = &args.baseline {
        let gate = |key: &str, measured: f64, required: bool| {
            let base = match read_metric(baseline, key) {
                Some(b) => b,
                None if !required => {
                    println!("baseline {baseline} has no {key}; skipping that gate");
                    return;
                }
                None => panic!("no {key} in baseline {baseline}"),
            };
            let floor = base * (1.0 - args.max_drop_pct / 100.0);
            println!(
                "baseline {key}: {base:.0} ({baseline}); floor at -{:.0}%: {floor:.0}",
                args.max_drop_pct
            );
            if measured < floor {
                eprintln!(
                    "FAIL: {key} {measured:.0} is >{:.0}% below baseline {base:.0}",
                    args.max_drop_pct
                );
                std::process::exit(1);
            }
        };
        gate("pps", stats.pps, true);
        gate("pps_scaled", stats.pps_scaled, false);
        println!("throughput within budget");
    }
}
