//! CI bench-smoke: a short, fixed-seed hot-path run that (a) asserts the
//! steady-state packet path performs **zero heap allocations per packet**
//! under a counting global allocator, (b) measures engine throughput, (c)
//! writes `BENCH_hotpath.json`, and (d) optionally gates against a
//! committed baseline.
//!
//! ```text
//! hotpath_smoke [--out BENCH_hotpath.json] [--baseline bench/baseline.json]
//!               [--max-drop-pct 15] [--seconds 2.0]
//! ```
//!
//! Exit codes: `0` ok · `1` throughput regressed past the threshold ·
//! `2` the zero-allocation invariant broke.
//!
//! Locally, diff two result files with `scripts/bench_diff.sh`.

use splidt_bench::hotpath::{
    fixture, measure_engine_throughput, probe_digest_ring_allocs, probe_hot_loop_allocs,
    read_metric, write_json,
};
use splidt_bench::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Args {
    out: String,
    baseline: Option<String>,
    max_drop_pct: f64,
    seconds: f64,
}

fn parse_args() -> Args {
    let mut args =
        Args { out: "BENCH_hotpath.json".into(), baseline: None, max_drop_pct: 15.0, seconds: 2.0 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--max-drop-pct" => {
                args.max_drop_pct = val("--max-drop-pct").parse().expect("numeric pct")
            }
            "--seconds" => args.seconds = val("--seconds").parse().expect("numeric seconds"),
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // 1. The strict invariant probe: a digest-free steady-state loop must
    //    not touch the heap at all. 20K packets after warm-up. The verdict
    //    is enforced after the results JSON is written, so the CI artifact
    //    exists (with the real allocation count) even on failure.
    const PROBE_PACKETS: u64 = 20_000;
    let hot_allocs = probe_hot_loop_allocs(PROBE_PACKETS);
    let hot_per_packet = hot_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "hot-loop probe: {hot_allocs} allocations over {PROBE_PACKETS} packets \
         ({hot_per_packet:.6}/packet)"
    );

    // 1b. The digest-ring probe: a steady-state loop in which **every**
    //     packet emits a digest (disposed per batch) must not touch the
    //     heap either — the flat DigestBuf ring replaced the per-event
    //     Vec allocation.
    let ring_allocs = probe_digest_ring_allocs(PROBE_PACKETS);
    let ring_per_packet = ring_allocs as f64 / PROBE_PACKETS as f64;
    println!(
        "digest-ring probe: {ring_allocs} allocations over {PROBE_PACKETS} digest-emitting \
         packets ({ring_per_packet:.6}/packet)"
    );

    // 2. Fixed-seed end-to-end throughput through the engine batch path.
    let (model, frames) = fixture();
    let mut engine = splidt_bench::hotpath::engine_for(&model);
    let mut stats = measure_engine_throughput(&mut engine, &frames, args.seconds);
    stats.hot_loop_allocs_per_packet = hot_per_packet;
    stats.digest_ring_allocs_per_packet = ring_per_packet;
    println!(
        "throughput: {:.0} packets/sec ({} packets in {:.2}s), {:.4} allocs/packet \
         (boundary digests included)",
        stats.pps, stats.packets, stats.elapsed_s, stats.allocs_per_packet
    );

    write_json(&args.out, &stats).expect("writes results json");
    println!("wrote {}", args.out);

    if hot_allocs != 0 {
        eprintln!("FAIL: steady-state hot loop allocated ({hot_allocs} allocations)");
        std::process::exit(2);
    }
    if ring_allocs != 0 {
        eprintln!("FAIL: digest-emitting steady state allocated ({ring_allocs} allocations)");
        std::process::exit(2);
    }

    // 3. Regression gate vs the committed baseline.
    if let Some(baseline) = &args.baseline {
        let base_pps =
            read_metric(baseline, "pps").unwrap_or_else(|| panic!("no pps in baseline {baseline}"));
        let floor = base_pps * (1.0 - args.max_drop_pct / 100.0);
        println!(
            "baseline: {base_pps:.0} pps ({baseline}); floor at -{:.0}%: {floor:.0} pps",
            args.max_drop_pct
        );
        if stats.pps < floor {
            eprintln!(
                "FAIL: throughput {:.0} pps is >{:.0}% below baseline {base_pps:.0} pps",
                stats.pps, args.max_drop_pct
            );
            std::process::exit(1);
        }
        println!("throughput within budget");
    }
}
