//! Figure 10: time-to-detection ECDFs for D3 under WS and HD — NetBeacon
//! vs Leo vs SpliDT. Early-exit probability for SpliDT is measured from
//! the trained model on test flows.

use splidt_bench::*;
use splidt_core::ttd::{quantile, sample_ttd_ms, TtdSystem};
use splidt_core::SplidtConfig;
use splidt_flow::{catalog, extract_windows, DatasetId, Environment};

fn main() {
    let scale = Scale::from_env();
    let bundle = DatasetBundle::load(DatasetId::D3, scale);
    let cfg = SplidtConfig { partitions: vec![3, 3, 3, 2], k: 4, ..Default::default() };
    let (model, f1) = bundle.train_splidt(&cfg);
    // measured early-exit rate (verdict before the final partition)
    let p = model.n_partitions();
    let mut early = 0usize;
    for f in &bundle.test {
        let w = extract_windows(f, p, catalog());
        let inf = model.predict(&w);
        if inf.exact && inf.windows_used < w.len() {
            early += 1;
        }
    }
    let early_prob = (early as f64 / bundle.test.len() as f64 / (p as f64 - 1.0)).clamp(0.0, 1.0);
    println!("SpliDT model: F1 {:.2}, early-exit/boundary prob {:.3}", f1, early_prob);

    let n = 6000;
    for env in Environment::both() {
        let sp = sample_ttd_ms(
            TtdSystem::Splidt { partitions: p, early_exit_prob: early_prob },
            &env,
            n,
            1,
        );
        let nb = sample_ttd_ms(TtdSystem::NetBeacon { phases: 8 }, &env, n, 2);
        let leo = sample_ttd_ms(TtdSystem::Leo, &env, n, 3);
        let mut rows = Vec::new();
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
            rows.push(vec![
                format!("p{}", (q * 100.0) as u32),
                format!("{:.1}", quantile(&nb, q)),
                format!("{:.1}", quantile(&leo, q)),
                format!("{:.1}", quantile(&sp, q)),
            ]);
        }
        print_table(
            &format!("Figure 10: TTD ECDF quantiles (ms), D3 — {}", env.name),
            &["Quantile", "NetBeacon", "Leo", "SpliDT"],
            &rows,
        );
    }
}
