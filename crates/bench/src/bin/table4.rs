//! Table 4: wall time per design-search iteration, broken into the
//! paper's stages: fetch (dataset materialization), training, optimizer
//! (surrogate + acquisition), rulegen, backend (program assembly).

use splidt_bench::*;
use splidt_core::{compile, model_rules, SplidtConfig};
use splidt_flow::DatasetId;
use splidt_search::ParamSpace;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let rows = for_datasets(&DatasetId::all(), |id| {
        let bundle = DatasetBundle::load(id, scale);
        let cfg = SplidtConfig { partitions: vec![3, 3, 2], k: 4, ..Default::default() };

        let t0 = Instant::now();
        let _wd = bundle.windowed(cfg.n_partitions(), cfg.feature_bits);
        let fetch = t0.elapsed();

        let t0 = Instant::now();
        let (model, _f1) = bundle.train_splidt(&cfg);
        let training = t0.elapsed();

        // optimizer cost: one surrogate-fit + acquisition round on a small
        // synthetic history (the per-iteration BO overhead)
        let t0 = Instant::now();
        let space = ParamSpace::default();
        let eval = |c: &SplidtConfig| splidt_search::Objectives {
            f1: 0.5 + (c.k as f64) * 0.01,
            max_flows: 100_000,
            feasible: true,
        };
        let _ = splidt_search::optimize(
            &space,
            &eval,
            &splidt_search::BoOptions { budget: 24, batch: 8, init: 16, pool: 192, seed: 1 },
        );
        let optimizer = t0.elapsed() / 1; // one BO round incl. surrogate fit

        let t0 = Instant::now();
        let rules = model_rules(&model);
        let rulegen = t0.elapsed();

        let t0 = Instant::now();
        let _compiled = compile(&model, 1 << 14).expect("compiles");
        let backend = t0.elapsed();

        vec![
            id.tag().to_string(),
            format!("{:.3}s", fetch.as_secs_f64()),
            format!("{:.3}s", training.as_secs_f64()),
            format!("{:.3}s", optimizer.as_secs_f64()),
            format!("{:.3}s", rulegen.as_secs_f64()),
            format!("{:.1}ms", backend.as_secs_f64() * 1e3),
            rules.tcam_entries.to_string(),
        ]
    });
    print_table(
        "Table 4: per-iteration stage timings",
        &["Data", "Fetch", "Training", "Optimizer", "Rulegen", "Backend", "(rules)"],
        &rows,
    );
}
