//! Figure 7: BO search convergence — best F1 vs evaluations, D1–D7.

use splidt_bench::*;
use splidt_flow::DatasetId;
use splidt_search::ParamSpace;

fn main() {
    let scale = Scale::from_env();
    let traces = for_datasets(&DatasetId::all(), |id| {
        let bundle = DatasetBundle::load(id, scale);
        let res = search_dataset(&bundle, scale, &ParamSpace::default(), 42);
        (id, res.iterations)
    });
    let mut rows = Vec::new();
    for (id, iters) in traces {
        for it in iters {
            rows.push(vec![id.tag().to_string(), it.evaluations.to_string(), f2(it.best_f1)]);
        }
    }
    print_table("Figure 7: BO convergence (best F1 so far)", &["Data", "Evals", "BestF1"], &rows);
}
