//! Figure 9: #TCAM entries vs F1 — SpliDT search history vs NB/Leo grid
//! points, D1–D7. Baseline grid points flow through the backend-agnostic
//! `Classifier` contract (name, footprint, evaluation in one loop).

use splidt_bench::*;
use splidt_core::baselines::{Leo, LeoParams, NetBeacon, NetBeaconParams};
use splidt_core::engine::{Classifier, Trainable};
use splidt_core::model_rules;
use splidt_flow::DatasetId;
use splidt_search::ParamSpace;

fn main() {
    let scale = Scale::from_env();
    let per = for_datasets(&DatasetId::all(), |id| {
        let bundle = DatasetBundle::load(id, scale);
        let mut rows = Vec::new();
        // SpliDT: points from the search history (feasible ones)
        let res = search_dataset(&bundle, scale, &ParamSpace::default(), 42);
        let mut sp: Vec<(usize, f64)> = res
            .history
            .iter()
            .filter(|(_, o)| o.feasible)
            .map(|(cfg, o)| {
                let (model, _) = bundle.train_splidt(cfg);
                (model_rules(&model).tcam_entries, o.f1)
            })
            .collect();
        sp.sort_by_key(|x| x.0);
        // keep the upper envelope per entry budget
        let mut best = 0.0f64;
        for (e, f1) in sp {
            if f1 > best {
                best = f1;
                rows.push(vec![id.tag().into(), "SpliDT".into(), e.to_string(), f2(f1)]);
            }
        }
        // Baseline grid through the trait-based comparison loop.
        for k in [2usize, 4, 6] {
            for d in [6usize, 10] {
                let grid: Vec<Box<dyn Classifier>> = vec![
                    Box::new(
                        NetBeacon::fit(
                            &bundle.train,
                            bundle.n_classes,
                            &NetBeaconParams { k, depth: d, n_phases: 5, feature_bits: 24 },
                        )
                        .expect("nb trains"),
                    ),
                    Box::new(
                        Leo::fit(
                            &bundle.train,
                            bundle.n_classes,
                            &LeoParams { k, depth: d, feature_bits: 24 },
                        )
                        .expect("leo trains"),
                    ),
                ];
                let cmp = compare_classifiers(
                    &grid.iter().map(|m| m.as_ref()).collect::<Vec<_>>(),
                    &bundle.test,
                );
                for r in cmp {
                    rows.push(vec![
                        id.tag().into(),
                        r.name.into(),
                        r.tcam_entries.map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
                        f2(r.f1),
                    ]);
                }
            }
        }
        rows
    });
    let rows: Vec<Vec<String>> = per.into_iter().flatten().collect();
    print_table("Figure 9: #TCAM entries vs F1", &["Data", "System", "Entries", "F1"], &rows);
}
