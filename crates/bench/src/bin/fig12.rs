//! Figure 12: D3's Pareto frontier under 24/16/8-bit feature precision.
//! Lower precision costs a little accuracy and roughly doubles/quadruples
//! the supported flow count (register cells shrink 32→16→8 bits).

use splidt_bench::*;
use splidt_flow::DatasetId;
use splidt_search::ParamSpace;

fn main() {
    let scale = Scale::from_env();
    let scale = Scale { bo_budget: (scale.bo_budget * 2 / 3).max(10), ..scale };
    let bundle = DatasetBundle::load(DatasetId::D3, scale);
    let mut rows = Vec::new();
    for (bits, mult) in [(24u8, 1u64), (16, 2), (8, 4)] {
        let space = ParamSpace { feature_bits: bits, ..Default::default() };
        let res = search_dataset(&bundle, scale, &space, 42);
        for &base in &FLOW_TARGETS {
            let t = base * mult;
            let f1 = res.best_at_flows(t).map(|(_, f)| f2(f)).unwrap_or_else(|| "-".into());
            rows.push(vec![format!("{bits}-bit"), flows_fmt(t), f1]);
        }
    }
    print_table(
        "Figure 12: D3 Pareto frontier vs feature bit precision",
        &["Precision", "#Flows", "SpliDT F1"],
        &rows,
    );
}
