//! Table 5: max recirculation bandwidth (Mbps), D1–D7 × {WS, HD} ×
//! {100K, 500K, 1M} flows, using each dataset's searched partition count.

use splidt_bench::*;
use splidt_core::SplidtConfig;
use splidt_flow::{DatasetId, Environment};
use splidt_search::ParamSpace;

fn main() {
    let scale = Scale::from_env();
    let parts = for_datasets(&DatasetId::all(), |id| {
        let bundle = DatasetBundle::load(id, scale);
        let search = search_dataset(&bundle, scale, &ParamSpace::default(), 42);
        // partition count of the best config at each flow target
        let per_target: Vec<usize> = FLOW_TARGETS
            .iter()
            .map(|&t| {
                search
                    .best_at_flows(t)
                    .map(|(i, _)| search.history[i].0.n_partitions())
                    .unwrap_or(1)
            })
            .collect();
        (id, per_target)
    });
    for env in Environment::both() {
        let mut rows = Vec::new();
        for (id, per_target) in &parts {
            let mut row = vec![id.tag().to_string()];
            for (ti, &t) in FLOW_TARGETS.iter().enumerate() {
                let p = per_target[ti];
                let cfg = SplidtConfig { partitions: vec![2; p], ..Default::default() };
                let _ = &cfg;
                let st = splidt_flow::simulate_recirc(&env, t, p, 7, 600);
                row.push(format!("{:.1} ± {:.1}", st.mean_mbps, st.std_mbps));
            }
            rows.push(row);
        }
        print_table(
            &format!("Table 5: recirculation bandwidth (Mbps) — {}", env.name),
            &["Data", "100K", "500K", "1M"],
            &rows,
        );
    }
}
