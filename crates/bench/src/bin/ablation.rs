//! Ablation: what does register **reuse via recirculation** buy?
//!
//! "SpliDT-NoReuse" is the same partitioned model but with every distinct
//! feature pinned to its own register for the whole flow (no resubmission
//! resets) — the resource story one-shot systems are stuck with. The gap
//! between the two columns is the paper's core mechanism, isolated.

use splidt_bench::*;
use splidt_core::{max_flows, splidt_footprint, SplidtConfig};
use splidt_dataplane::resources::TargetSpec;
use splidt_flow::DatasetId;

fn main() {
    let scale = Scale::from_env();
    let target = TargetSpec::tofino1();
    let rows = for_datasets(&[DatasetId::D2, DatasetId::D6, DatasetId::D5], |id| {
        let bundle = DatasetBundle::load(id, scale);
        let cfg = SplidtConfig { partitions: vec![3, 3, 3, 2], k: 4, ..Default::default() };
        let (model, f1) = bundle.train_splidt(&cfg);
        let reuse = splidt_footprint(&model);
        // No-reuse variant: slots = total distinct features, same deps.
        let mut no_reuse = reuse.clone();
        no_reuse.slots = model.total_features().len();
        vec![
            id.tag().to_string(),
            f2(f1),
            model.total_features().len().to_string(),
            reuse.feature_register_bits().to_string(),
            no_reuse.feature_register_bits().to_string(),
            flows_fmt(max_flows(&reuse, &target)),
            flows_fmt(max_flows(&no_reuse, &target)),
        ]
    });
    print_table(
        "Ablation: register reuse via recirculation (same model, same F1)",
        &["Data", "F1", "#Feats", "RegBits:reuse", "RegBits:static", "Flows:reuse", "Flows:static"],
        &rows,
    );
    println!("\nThe reuse column is SpliDT; the static column is what the same model");
    println!("would cost if every feature held a register for the whole flow.");
}
