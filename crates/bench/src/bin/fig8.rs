//! Figure 8: Pareto frontiers under constrained searches — (a) fixed total
//! depth {10, 20, 24}, (b) fixed #partitions {1, 3, 5}, (c) fixed
//! features/subtree k {1, 2, 3}. (The paper's depth-30 exceeds our depth
//! cap of 24 at default scale; shape is unaffected.)

use splidt_bench::*;
use splidt_flow::DatasetId;
use splidt_search::ParamSpace;

fn sweep(
    bundle: &DatasetBundle,
    scale: Scale,
    label: &str,
    spaces: &[(String, ParamSpace)],
    rows: &mut Vec<Vec<String>>,
) {
    for (name, space) in spaces {
        let res = search_dataset(bundle, scale, space, 42);
        for &t in &FLOW_TARGETS {
            let f1 = res.best_at_flows(t).map(|(_, f)| f2(f)).unwrap_or_else(|| "-".into());
            rows.push(vec![
                bundle.id.tag().to_string(),
                label.to_string(),
                name.clone(),
                flows_fmt(t),
                f1,
            ]);
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    // Keep the constrained sweeps affordable: half budget each.
    let scale = Scale { bo_budget: (scale.bo_budget / 2).max(10), ..scale };
    let ids = DatasetId::all();
    let all = for_datasets(&ids, |id| {
        let bundle = DatasetBundle::load(id, scale);
        let mut rows = Vec::new();
        let depth_spaces: Vec<(String, ParamSpace)> = [10usize, 20, 24]
            .iter()
            .map(|&d| (d.to_string(), ParamSpace { depth: (d, d), ..Default::default() }))
            .collect();
        sweep(&bundle, scale, "depth", &depth_spaces, &mut rows);
        let part_spaces: Vec<(String, ParamSpace)> = [1usize, 3, 5]
            .iter()
            .map(|&p| (p.to_string(), ParamSpace { partitions: (p, p), ..Default::default() }))
            .collect();
        sweep(&bundle, scale, "partitions", &part_spaces, &mut rows);
        let k_spaces: Vec<(String, ParamSpace)> = [1usize, 2, 3]
            .iter()
            .map(|&k| (k.to_string(), ParamSpace { k: (k, k), ..Default::default() }))
            .collect();
        sweep(&bundle, scale, "k", &k_spaces, &mut rows);
        rows
    });
    let rows: Vec<Vec<String>> = all.into_iter().flatten().collect();
    print_table(
        "Figure 8: Pareto frontiers under fixed depth / #partitions / k",
        &["Data", "Constraint", "Value", "#Flows", "F1"],
        &rows,
    );
}
