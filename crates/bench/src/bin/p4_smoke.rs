//! CI P4-backend smoke: emit all three golden fixtures live and gate on
//!
//! 1. **byte-exact goldens** — the emitted `.p4` and manifest JSON match
//!    the files committed under `crates/p4/golden/`;
//! 2. **resource cross-check** — stage count, per-stage SALU usage,
//!    register bits and bank packing recounted *from the emitted text*
//!    equal the analytic `ModelFootprint`/`BankPhysical` expectation;
//! 3. **structural validity** — every fixture passes the shape checker;
//! 4. **structural counts vs baseline** — table/register/entry totals
//!    match `bench/p4_baseline.json` exactly (these are counts, not
//!    timings: any drift is a semantic change, so the gate is equality).
//!
//! ```text
//! p4_smoke [--out BENCH_p4.json] [--baseline bench/p4_baseline.json] [--bless]
//! ```
//!
//! `--bless` rewrites the golden files (and the `--out` JSON) instead of
//! failing, for intentional emitter changes; CI's re-baseline job runs
//! it with `--out bench/p4_baseline.json`.
//!
//! Exit codes: `0` ok · `1` baseline counts drifted · `4` golden
//! mismatch · `5` resource cross-check or shape validation failed.

use std::fmt::Write as _;
use std::fs;

use splidt_bench::hotpath::read_metric;
use splidt_p4::fixtures::{all, golden_dir};
use splidt_p4::recount::{cross_check, recount};
use splidt_p4::validate::validate;

struct Args {
    out: String,
    baseline: Option<String>,
    bless: bool,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_p4.json".into(), baseline: None, bless: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--bless" => args.bless = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let fixtures = all();

    let mut golden_match = true;
    let mut crosscheck_ok = true;
    let mut stages = 0usize;
    let mut tables = 0usize;
    let mut registers = 0usize;
    let mut manifest_entries = 0usize;
    let mut salus = 0usize;

    for fixture in &fixtures {
        let p4 = &fixture.emission.p4;
        let manifest = fixture.emission.manifest.to_json();

        if let Err(e) = validate(p4) {
            eprintln!("FAIL: fixture `{}` emitted invalid P4: {e}", fixture.name);
            std::process::exit(5);
        }
        match recount(p4) {
            Ok(r) => {
                salus += r.salus_per_stage.iter().sum::<usize>();
                if let Err(e) = cross_check(&r, &fixture.expectation) {
                    eprintln!("FAIL: fixture `{}`: {e}", fixture.name);
                    crosscheck_ok = false;
                }
            }
            Err(e) => {
                eprintln!("FAIL: fixture `{}` recount: {e}", fixture.name);
                crosscheck_ok = false;
            }
        }

        for (file, live) in [
            (format!("{}.p4", fixture.name), p4.as_str()),
            (format!("{}.manifest.json", fixture.name), manifest.as_str()),
        ] {
            let path = golden_dir().join(&file);
            if args.bless {
                fs::write(&path, live).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
                println!("blessed {}", path.display());
                continue;
            }
            let committed = fs::read_to_string(&path).unwrap_or_default();
            if committed != live {
                eprintln!(
                    "FAIL: {} drifted from the emitter ({} committed bytes vs {} emitted)",
                    path.display(),
                    committed.len(),
                    live.len()
                );
                golden_match = false;
            }
        }

        let m = &fixture.emission.manifest;
        stages += fixture.expectation.stages;
        tables += m.tables.len();
        registers += m.registers.len();
        manifest_entries += m.n_entries();
        println!(
            "fixture `{}`: {} stages, {} tables ({} entries), {} registers, policy {}",
            fixture.name,
            fixture.expectation.stages,
            m.tables.len(),
            m.n_entries(),
            m.registers.len(),
            m.provenance.policy
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"p4\",");
    let _ = writeln!(json, "  \"fixtures\": {},", fixtures.len());
    let _ = writeln!(json, "  \"golden_match\": {},", u8::from(golden_match));
    let _ = writeln!(json, "  \"crosscheck_ok\": {},", u8::from(crosscheck_ok));
    let _ = writeln!(json, "  \"stages\": {stages},");
    let _ = writeln!(json, "  \"tables\": {tables},");
    let _ = writeln!(json, "  \"registers\": {registers},");
    let _ = writeln!(json, "  \"salus\": {salus},");
    let _ = writeln!(json, "  \"manifest_entries\": {manifest_entries},");
    let _ = writeln!(
        json,
        "  \"provenance\": \"Minted with PR 10 (P4 backend emission). Counts are summed over \
         the three golden fixtures (default / tcp / chained); they are structural, so CI gates \
         them at exact equality, not a percentage band. Refresh together with the goldens via \
         `cargo run --release -p splidt-bench --bin p4_smoke -- --bless --out \
         bench/p4_baseline.json` (docs/p4.md, Re-blessing the goldens).\""
    );
    let _ = writeln!(json, "}}");
    fs::write(&args.out, &json).expect("writes results json");
    println!("wrote {}", args.out);

    if args.bless {
        return;
    }
    if !crosscheck_ok {
        std::process::exit(5);
    }
    if !golden_match {
        eprintln!(
            "hint: regenerate goldens with `cargo run --release -p splidt-bench --bin p4_smoke \
             -- --bless` if the emitter change is intentional"
        );
        std::process::exit(4);
    }
    if let Some(baseline) = &args.baseline {
        let mut drifted = false;
        for key in ["fixtures", "stages", "tables", "registers", "salus", "manifest_entries"] {
            let want = read_metric(baseline, key)
                .unwrap_or_else(|| panic!("no {key} in baseline {baseline}"));
            let got = read_metric(&args.out, key).expect("just wrote it");
            if (want - got).abs() > f64::EPSILON {
                eprintln!("FAIL: {key} drifted: baseline {want}, emitted {got}");
                drifted = true;
            }
        }
        for key in ["golden_match", "crosscheck_ok"] {
            let got = read_metric(&args.out, key).expect("just wrote it");
            if got != 1.0 {
                eprintln!("FAIL: {key} is {got}, want 1");
                drifted = true;
            }
        }
        if drifted {
            std::process::exit(1);
        }
        println!("baseline counts match ({baseline})");
    }
}
