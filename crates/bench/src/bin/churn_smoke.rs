//! CI churn smoke: drives 16× more distinct flows than register slots
//! through one engine running the **TCP-aware lifecycle policy** (SYN
//! admission, FIN/RST in-band release, one pinned class) and gates the
//! flow-state lifecycle's acceptance criteria:
//!
//! 1. ≥ 8 × `flow_slots` **distinct flows classified** in one run
//!    (bounded register memory, slots recycled via FIN/RST release,
//!    verdict release, idle eviction and in-band takeover);
//! 2. lifecycle counters **reconcile exactly** (`admitted == active +
//!    decided_pending + evictions + released_fin`), the mid-capture
//!    share of the schedule surfaces as nonzero `unsolicited`, and the
//!    slot-pressure telemetry is populated;
//! 3. **zero heap allocations** per steady-state packet on the
//!    pipeline-level churn loop (claims/takeovers/decides included);
//! 4. packets/sec within `--max-drop-pct` of the committed baseline.
//!
//! ```text
//! churn_smoke [--out BENCH_churn.json] [--baseline bench/churn_baseline.json]
//!             [--max-drop-pct 15] [--seconds 2.0]
//! ```
//!
//! Exit codes: `0` ok · `1` throughput regressed · `2` the
//! zero-allocation invariant broke · `3` lifecycle acceptance failed
//! (too few flows classified or counters do not reconcile).
//!
//! Locally, diff two result files with `scripts/bench_diff.sh`.

use splidt_bench::churn::{
    engine_for, fixture, measure_churn_outcome, measure_churn_throughput, probe_churn_allocs,
    write_json, CHURN_CLASSIFIED_FLOOR,
};
use splidt_bench::hotpath::read_metric;
use splidt_bench::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Args {
    out: String,
    baseline: Option<String>,
    max_drop_pct: f64,
    seconds: f64,
}

fn parse_args() -> Args {
    let mut args =
        Args { out: "BENCH_churn.json".into(), baseline: None, max_drop_pct: 15.0, seconds: 2.0 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out"),
            "--baseline" => args.baseline = Some(val("--baseline")),
            "--max-drop-pct" => {
                args.max_drop_pct = val("--max-drop-pct").parse().expect("numeric pct")
            }
            "--seconds" => args.seconds = val("--seconds").parse().expect("numeric seconds"),
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let (model, frames) = fixture();
    let mut engine = engine_for(&model);

    // 1. Correctness pass: classify under churn, read the lifecycle.
    let mut stats = measure_churn_outcome(&mut engine, &frames);
    let lc = stats.lifecycle;
    println!(
        "churn: {} packets, {} distinct flows over {} slots → {} classified",
        stats.packets, stats.distinct_flows, stats.flow_slots, stats.classified_flows
    );
    println!(
        "lifecycle: admitted {} = active {} + decided_pending {} + evict_idle {} + \
         evict_decided {} + evict_pinned {} + released_fin {} (takeovers {}, \
         live_collisions {}, unsolicited {}, pinned_defended {}, pinned_pending {}, \
         post_verdict {}) — reconciled: {}",
        lc.admitted,
        lc.active_flows,
        lc.decided_pending,
        lc.evictions_idle,
        lc.evictions_decided,
        lc.evictions_pinned,
        lc.released_fin,
        lc.takeovers,
        lc.live_collisions,
        lc.unsolicited,
        lc.pinned_defended,
        lc.pinned_pending,
        lc.post_verdict_pkts,
        stats.reconciled
    );
    println!(
        "slot pressure: {} suppressed packets total, hottest slot {} — histogram {:?}",
        stats.pressure_total, stats.pressure_peak, stats.pressure_hist
    );

    // 2. Strict allocation probe over the same schedule at pipeline level.
    let (allocs, probe_packets) = probe_churn_allocs(&model, &frames);
    stats.churn_allocs_per_packet = allocs as f64 / probe_packets as f64;
    println!(
        "churn probe: {allocs} allocations over {probe_packets} packets \
         ({:.6}/packet)",
        stats.churn_allocs_per_packet
    );

    // 3. Throughput through the engine batch path.
    measure_churn_throughput(&mut engine, &frames, args.seconds, &mut stats);
    println!(
        "throughput: {:.0} packets/sec ({} packets in {:.2}s), {:.4} allocs/packet \
         (per-batch digest collation included)",
        stats.pps, stats.packets, stats.elapsed_s, stats.allocs_per_packet
    );

    write_json(&args.out, &stats).expect("writes results json");
    println!("wrote {}", args.out);

    // Gates, ordered: lifecycle acceptance → allocations → throughput.
    if stats.classified_flows < CHURN_CLASSIFIED_FLOOR as u64 {
        eprintln!(
            "FAIL: only {} distinct flows classified; floor is {} (8 × {} slots)",
            stats.classified_flows, CHURN_CLASSIFIED_FLOOR, stats.flow_slots
        );
        std::process::exit(3);
    }
    if !stats.reconciled {
        eprintln!("FAIL: lifecycle counters do not reconcile: {lc:?}");
        std::process::exit(3);
    }
    if lc.unsolicited == 0 {
        eprintln!("FAIL: the schedule's mid-capture flows must surface as unsolicited refusals");
        std::process::exit(3);
    }
    if lc.released_fin == 0 {
        eprintln!("FAIL: FIN/RST closes must release lanes in-band (released_fin == 0)");
        std::process::exit(3);
    }
    if lc.evictions_pinned + lc.pinned_pending + lc.pinned_defended == 0 {
        eprintln!("FAIL: the pinned class left no trace in the lifecycle counters");
        std::process::exit(3);
    }
    // Bucket 0 counts pressure-free slots, so only buckets 1.. witness
    // actual contention.
    if stats.pressure_total == 0 || stats.pressure_hist[1..].iter().sum::<u64>() == 0 {
        eprintln!("FAIL: slot-pressure telemetry is empty under a 16x-overloaded schedule");
        std::process::exit(3);
    }
    if allocs != 0 {
        eprintln!("FAIL: churn steady state allocated ({allocs} allocations)");
        std::process::exit(2);
    }
    if let Some(baseline) = &args.baseline {
        let base_pps =
            read_metric(baseline, "pps").unwrap_or_else(|| panic!("no pps in baseline {baseline}"));
        let floor = base_pps * (1.0 - args.max_drop_pct / 100.0);
        println!(
            "baseline: {base_pps:.0} pps ({baseline}); floor at -{:.0}%: {floor:.0} pps",
            args.max_drop_pct
        );
        if stats.pps < floor {
            eprintln!(
                "FAIL: throughput {:.0} pps is >{:.0}% below baseline {base_pps:.0} pps",
                stats.pps, args.max_drop_pct
            );
            std::process::exit(1);
        }
        println!("throughput within budget");
    }
}
