//! The churn measurement harness: a bounded-slot engine driven by a flow
//! population many times larger than its register file — the flow-state
//! lifecycle's acceptance workload, shared by the `churn_smoke` CI binary
//! and local pre-push checks via `scripts/bench_diff.sh`.
//!
//! Three measurements matter:
//!
//! 1. **Distinct flows classified.** With `flow_slots` = [`CHURN_SLOTS`]
//!    (256) and [`CHURN_FLOWS`] (4096) distinct flows in the schedule,
//!    the engine must produce verdict digests for at least
//!    8 × `flow_slots` distinct flows in one run — slots are recycled
//!    (FIN/RST in-band release, verdict release, idle eviction, in-band
//!    takeover), never leaked. The fixture runs the TCP-aware policy:
//!    [`CHURN_SYN_OPEN_FRAC`] of flows open with SYN (the rest are
//!    mid-capture tails that must be refused as `unsolicited`),
//!    [`CHURN_RST_CLOSE_FRAC`] close abortively with RST, and verdicts
//!    of [`CHURN_PINNED_CLASS`] pin their lanes.
//! 2. **Lifecycle counter reconciliation.** `admitted == active +
//!    decided_pending + evictions_idle + evictions_decided +
//!    evictions_pinned + released_fin`, exactly — plus nonzero
//!    `unsolicited`, `released_fin`, a pinned-class trace, and populated
//!    slot-pressure telemetry.
//! 3. **Steady-state allocations and throughput.** The pipeline-level
//!    churn loop (claims, takeovers, suppressed collisions, decide
//!    passes included) must perform **zero** heap allocations per packet
//!    under the counting allocator, and packets/sec is gated against
//!    `bench/churn_baseline.json` like the hot-path smoke.
//!
//! Everything is deterministic: fixed dataset seed, fixed churn schedule,
//! fixed frame serialization.

use crate::alloc_count::allocation_count;
use splidt_core::engine::{Engine, EngineBuilder};
use splidt_core::runtime::{LifecycleStats, PRESSURE_HIST_BUCKETS};
use splidt_core::{train_partitioned, LifecyclePolicy, PartitionedTree, SplidtConfig};
use splidt_dataplane::pipeline::Pipeline;
use splidt_flow::{
    catalog, churn, generate, select_flows, stratified_split, windowed_dataset, ChurnConfig,
    DatasetId,
};
use std::collections::HashSet;
use std::io::Write as _;
use std::time::Instant;

/// Register depth of the churn fixture: deliberately tiny so the flow
/// population exceeds it 16×.
pub const CHURN_SLOTS: usize = 256;
/// Distinct flows in the churn schedule.
pub const CHURN_FLOWS: usize = 4096;
/// Acceptance floor: distinct flows classified per run.
pub const CHURN_CLASSIFIED_FLOOR: usize = 8 * CHURN_SLOTS;
/// Ownership-lane idle timeout of the fixture (µs) — short enough that
/// collision-starved flows are evicted and their slots recycled within
/// the schedule.
pub const CHURN_IDLE_TIMEOUT_US: u64 = 100_000;
/// Dataset seed of the churn fixture.
pub const CHURN_SEED: u64 = 11;
/// The verdict class the fixture pins ("suspected malicious"): decided
/// lanes carrying it resist takeover until [`CHURN_PINNED_TIMEOUT_US`].
pub const CHURN_PINNED_CLASS: u16 = 3;
/// Pinned-lane timeout of the fixture (µs): modest, so the schedule still
/// recycles pinned slots within its span.
pub const CHURN_PINNED_TIMEOUT_US: u64 = 150_000;
/// Fraction of churn flows opening with SYN; the rest are mid-capture
/// tails the TCP-aware policy must refuse (`unsolicited`).
pub const CHURN_SYN_OPEN_FRAC: f64 = 0.95;
/// Fraction of churn flows closing abortively with RST instead of FIN.
pub const CHURN_RST_CLOSE_FRAC: f64 = 0.25;

/// One churn measurement, serialized to `BENCH_churn.json`.
#[derive(Debug, Clone, Copy)]
pub struct ChurnStats {
    /// Packets pushed through the engine during the measured region.
    pub packets: u64,
    /// Wall-clock seconds of the measured region.
    pub elapsed_s: f64,
    /// Packets per second through `Engine::ingest_batch` under churn.
    pub pps: f64,
    /// Heap allocations per packet across the engine batch path
    /// (includes the per-batch digest collation — control-plane work).
    pub allocs_per_packet: f64,
    /// Heap allocations per packet over the pipeline-level churn loop —
    /// the strict zero-allocation criterion (claims, takeovers and
    /// decide passes included, collation excluded).
    pub churn_allocs_per_packet: f64,
    /// Register depth the fixture ran with.
    pub flow_slots: u64,
    /// Distinct flows in the schedule.
    pub distinct_flows: u64,
    /// Distinct flows that received a verdict digest.
    pub classified_flows: u64,
    /// Lifecycle counters after one full run.
    pub lifecycle: LifecycleStats,
    /// Whether the lifecycle counters reconciled exactly.
    pub reconciled: bool,
    /// Total suppressed packets across all slots (pressure register sum).
    pub pressure_total: u64,
    /// The hottest slot's suppressed-packet count.
    pub pressure_peak: u64,
    /// Pressure histogram over slots (log₂ buckets; see
    /// `splidt_core::runtime::SlotPressure`).
    pub pressure_hist: [u64; PRESSURE_HIST_BUCKETS],
}

/// Trains the standard fixed-seed model (same shape as the hot-path
/// fixture) and builds the churn schedule, pre-serialized as
/// `(frame, ts_us)` pairs in timeline order.
pub fn fixture() -> (PartitionedTree, Vec<(Vec<u8>, u64)>) {
    let train = generate(DatasetId::D2, 220, 7);
    let (tr, _) = stratified_split(&train, 0.6, 2);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&select_flows(&train, &tr), 3, 4);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());

    let schedule = churn(
        DatasetId::D2,
        &ChurnConfig {
            flows: CHURN_FLOWS,
            mean_arrival_gap_us: 500,
            lifetime_scale: 0.05,
            syn_open_frac: CHURN_SYN_OPEN_FRAC,
            rst_close_frac: CHURN_RST_CLOSE_FRAC,
            seed: CHURN_SEED,
            ..Default::default()
        },
    );
    let frames = schedule
        .events()
        .into_iter()
        .map(|(ts, i, j)| (Engine::frame_for(&schedule.flows[i], j), ts))
        .collect();
    (model, frames)
}

/// A fresh compiled engine for the churn fixture (256 slots, short idle
/// timeout, TCP-aware lifecycle policy with one pinned class; flows are
/// learned from the wire — nothing is pre-admitted).
pub fn engine_for(model: &PartitionedTree) -> Engine {
    EngineBuilder::new(model)
        .flow_slots(CHURN_SLOTS)
        .idle_timeout_us(CHURN_IDLE_TIMEOUT_US)
        .lifecycle_policy(
            LifecyclePolicy::tcp()
                .pin_class(CHURN_PINNED_CLASS)
                .pinned_timeout_us(CHURN_PINNED_TIMEOUT_US),
        )
        .build()
        .expect("compiles")
}

/// Runs the schedule once through a fresh session and fills the
/// correctness half of [`ChurnStats`]: distinct flows classified
/// (distinct `(slot, fingerprint)` digest pairs) and the lifecycle
/// counters with their reconciliation check.
pub fn measure_churn_outcome(engine: &mut Engine, frames: &[(Vec<u8>, u64)]) -> ChurnStats {
    engine.reset();
    let mut classified: HashSet<(u64, u64)> = HashSet::new();
    let io = engine.io().clone();
    let report =
        engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");
    for d in &report.digests {
        classified.insert((d.values[io.digest_flow_idx], d.values[io.digest_fp]));
    }
    let lifecycle = engine.lifecycle();
    let pressure = engine.slot_pressure();
    ChurnStats {
        packets: report.packets,
        elapsed_s: 0.0,
        pps: 0.0,
        allocs_per_packet: 0.0,
        churn_allocs_per_packet: 0.0,
        flow_slots: CHURN_SLOTS as u64,
        distinct_flows: CHURN_FLOWS as u64,
        classified_flows: classified.len() as u64,
        lifecycle,
        reconciled: lifecycle.reconciles(),
        pressure_total: pressure.total,
        pressure_peak: pressure.peak(),
        pressure_hist: pressure.histogram,
    }
}

/// Streams the churn schedule through the engine's batch path repeatedly
/// (resetting between rounds) until `min_elapsed_s` of measured work has
/// accumulated; fills throughput and engine-path allocations.
pub fn measure_churn_throughput(
    engine: &mut Engine,
    frames: &[(Vec<u8>, u64)],
    min_elapsed_s: f64,
    stats: &mut ChurnStats,
) {
    engine.reset();
    engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");

    let mut packets = 0u64;
    let allocs_before = allocation_count();
    let start = Instant::now();
    loop {
        engine.reset();
        let report =
            engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests");
        packets += report.packets;
        if start.elapsed().as_secs_f64() >= min_elapsed_s {
            break;
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let allocs = allocation_count() - allocs_before;
    stats.packets = packets;
    stats.elapsed_s = elapsed_s;
    stats.pps = packets as f64 / elapsed_s;
    stats.allocs_per_packet = allocs as f64 / packets as f64;
}

/// The strict zero-allocation probe: drives the whole churn schedule
/// through `Pipeline::process_frame` (clearing the digest ring per
/// 1024-packet batch, the drain-per-batch regime) after a full warm-up
/// round. Claims, idle takeovers, decided takeovers, live-collision
/// suppression and decide resubmissions all execute in the measured
/// region. Returns total heap allocations observed: **must be zero**.
pub fn probe_churn_allocs(model: &PartitionedTree, frames: &[(Vec<u8>, u64)]) -> (u64, u64) {
    let engine = engine_for(model);
    let mut pipe = Pipeline::new(engine.program().clone());
    let fields = engine.io().fields;

    // Warm-up: one full round grows every scratch capacity (keys, PHV,
    // digest ring) to steady state; reset_state is allocation-free.
    for (frame, ts) in frames {
        pipe.process_frame(frame, *ts, &fields).expect("parses");
    }
    pipe.clear_digests();
    pipe.reset_state();

    let before = allocation_count();
    let mut n = 0u64;
    for chunk in frames.chunks(1024) {
        for (frame, ts) in chunk {
            pipe.process_frame(frame, *ts, &fields).expect("parses");
            n += 1;
        }
        pipe.clear_digests();
    }
    (allocation_count() - before, n)
}

/// Writes stats as the flat JSON the CI artifact and `bench_diff.sh`
/// consume.
pub fn write_json(path: &str, s: &ChurnStats) -> std::io::Result<()> {
    let hist = s.pressure_hist.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{{\n  \"bench\": \"churn\",\n  \"packets\": {},\n  \"elapsed_s\": {:.6},\n  \
         \"pps\": {:.1},\n  \"allocs_per_packet\": {:.6},\n  \
         \"churn_allocs_per_packet\": {:.6},\n  \"flow_slots\": {},\n  \
         \"distinct_flows\": {},\n  \"classified_flows\": {},\n  \"admitted\": {},\n  \
         \"active_flows\": {},\n  \"decided_pending\": {},\n  \"pinned_pending\": {},\n  \
         \"evictions_idle\": {},\n  \"evictions_decided\": {},\n  \
         \"evictions_pinned\": {},\n  \"released_fin\": {},\n  \"takeovers\": {},\n  \
         \"live_collisions\": {},\n  \"unsolicited\": {},\n  \"pinned_defended\": {},\n  \
         \"post_verdict_pkts\": {},\n  \"reconciled\": {},\n  \"pressure_total\": {},\n  \
         \"pressure_peak\": {},\n  \"pressure_hist\": [{}]\n}}",
        s.packets,
        s.elapsed_s,
        s.pps,
        s.allocs_per_packet,
        s.churn_allocs_per_packet,
        s.flow_slots,
        s.distinct_flows,
        s.classified_flows,
        s.lifecycle.admitted,
        s.lifecycle.active_flows,
        s.lifecycle.decided_pending,
        s.lifecycle.pinned_pending,
        s.lifecycle.evictions_idle,
        s.lifecycle.evictions_decided,
        s.lifecycle.evictions_pinned,
        s.lifecycle.released_fin,
        s.lifecycle.takeovers,
        s.lifecycle.live_collisions,
        s.lifecycle.unsolicited,
        s.lifecycle.pinned_defended,
        s.lifecycle.post_verdict_pkts,
        u64::from(s.reconciled),
        s.pressure_total,
        s.pressure_peak,
        hist,
    )
}
