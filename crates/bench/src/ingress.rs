//! Network-ingress smoke harness: a full in-process loopback run
//! (`splidt-gen`'s replayer on one thread → UDP → the ring ingress
//! service on the rest), the ring-consumer zero-allocation probe, and
//! the flat-JSON writer `scripts/bench_diff.sh` gates on.
//!
//! The workload is the churn fixture's schedule (same dataset, seed, and
//! lifecycle knobs as `churn_smoke`), so the classified-flows floor is
//! the same `8 × flow_slots` criterion — but here the frames cross a
//! real socket, per-shard rings, and the graceful-shutdown drain before
//! they reach the pipelines. The emitted JSON deliberately has **no**
//! `flow_slots` key: that key is how `bench_diff.sh` recognises churn
//! candidates, and the ingress gates (`classified_floor`,
//! `ingress_allocs_per_packet`) are keyed separately.

use crate::alloc_count::allocation_count;
use crate::churn::{
    CHURN_CLASSIFIED_FLOOR, CHURN_IDLE_TIMEOUT_US, CHURN_PINNED_CLASS, CHURN_PINNED_TIMEOUT_US,
    CHURN_SLOTS,
};
use splidt_core::engine::{EngineBuilder, ShardedEngine};
use splidt_core::{LifecyclePolicy, PartitionedTree};
use splidt_dataplane::pipeline::Pipeline;
use splidt_flow::ChurnSchedule;
use splidt_net::gen::{replay_udp, GenConfig, GenReport};
use splidt_net::ring::ring;
use splidt_net::service::{classified_flows, run_ingress, IngressConfig, IngressOutcome};
use splidt_net::source::UdpSource;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// One ingress measurement, serialized to `BENCH_ingress.json`.
#[derive(Debug, Clone, Copy)]
pub struct IngressBenchStats {
    /// Frames the generator put on the wire.
    pub sent: u64,
    /// Frames the receiver pulled off the socket.
    pub received: u64,
    /// Frames steered into shard rings.
    pub steered: u64,
    /// Frames refused by full rings (backpressure drops).
    pub dropped_ring_full: u64,
    /// Frames the steering peek rejected.
    pub dropped_malformed: u64,
    /// Frames the shard consumers drained into the engines.
    pub consumed: u64,
    /// Frames lost inside the kernel's socket buffer (`sent − received`)
    /// — loopback loss outside the subsystem's accounting boundary.
    pub socket_loss: u64,
    /// Wall-clock seconds of the ingress session (replay is paced, so
    /// this tracks the schedule span, not pipeline capacity).
    pub elapsed_s: f64,
    /// Received frames per second over the session.
    pub pps: f64,
    /// Distinct flows that received a verdict digest.
    pub classified_flows: u64,
    /// The gate floor (`8 × flow_slots`, same as `churn_smoke`).
    pub classified_floor: u64,
    /// Whether the ingress accounting reconciled exactly.
    pub reconciled: bool,
    /// Heap allocations per packet over the ring-consumer hot path
    /// (push → peek → process_frame → clear_digests → advance): the
    /// strict zero-allocation criterion for the ingress data path.
    pub ingress_allocs_per_packet: f64,
}

/// A sharded engine with the churn fixture's lifecycle knobs, timeouts
/// stretched by the replay's wall-clock `time_scale` (the generator
/// stretches the wire timeline, so the receiver stretches its idle and
/// pinned lanes to match).
pub fn sharded_engine_for(
    model: &PartitionedTree,
    shards: usize,
    time_scale: f64,
) -> ShardedEngine {
    EngineBuilder::new(model)
        .flow_slots(CHURN_SLOTS)
        .idle_timeout_us((CHURN_IDLE_TIMEOUT_US as f64 * time_scale) as u64)
        .lifecycle_policy(
            LifecyclePolicy::tcp()
                .pin_class(CHURN_PINNED_CLASS)
                .pinned_timeout_us((CHURN_PINNED_TIMEOUT_US as f64 * time_scale) as u64),
        )
        .build_sharded(shards)
        .expect("fixture model compiles")
}

/// The strict zero-allocation probe for the ingress data path: drives the
/// churn frames through a real SPSC ring — push, borrow via `peek`,
/// `Pipeline::process_frame`, digest drain, `advance` — after one full
/// warm-up round. Returns `(heap allocations observed, packets)`:
/// **must be zero** allocations.
pub fn probe_ingress_allocs(model: &PartitionedTree, frames: &[(Vec<u8>, u64)]) -> (u64, u64) {
    let engine = sharded_engine_for(model, 1, 1.0);
    let mut pipe = Pipeline::new(engine.engines()[0].program().clone());
    let fields = engine.engines()[0].io().fields;
    let (mut tx, mut rx) = ring(1024, 2048);

    let mut round = |pipe: &mut Pipeline| {
        for chunk in frames.chunks(1024) {
            for (frame, ts) in chunk {
                tx.try_push(frame, *ts).expect("ring drained between chunks");
            }
            for i in 0..chunk.len() {
                let (frame, ts) = rx.peek(i);
                pipe.process_frame(frame, ts, &fields).expect("fixture frames parse");
            }
            pipe.clear_digests();
            rx.advance(chunk.len());
        }
    };

    // Warm-up: one full round grows every scratch capacity (ring slots
    // are preallocated; the pipeline's keys/PHV/digest ring reach steady
    // state); reset_state is allocation-free.
    round(&mut pipe);
    pipe.reset_state();

    let before = allocation_count();
    round(&mut pipe);
    (allocation_count() - before, frames.len() as u64)
}

/// Runs the full in-process loopback session: replayer thread → UDP →
/// ring ingress into `engine`. Returns the ingress outcome, the
/// generator's report, and the distinct-flows-classified count.
pub fn run_loopback(
    engine: &mut ShardedEngine,
    schedule: &ChurnSchedule,
    time_scale: f64,
) -> (IngressOutcome, GenReport, u64, f64) {
    let source =
        UdpSource::bind("127.0.0.1:0").expect("loopback bind").idle_exit(Duration::from_secs(5));
    let addr = source.local_addr().expect("bound socket has an addr");
    let cfg = IngressConfig {
        ring_capacity: 4096,
        max_frame: 2048,
        batch: 256,
        ..IngressConfig::default()
    };

    let start = Instant::now();
    let (outcome, gen_report) = std::thread::scope(|s| {
        let sender = s.spawn(move || {
            let gen_cfg = GenConfig { time_scale, ..GenConfig::default() };
            replay_udp(schedule, addr, &gen_cfg).expect("loopback replay")
        });
        let outcome = run_ingress(engine, source, &cfg).expect("ingress session");
        (outcome, sender.join().expect("sender panicked"))
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let io = engine.engines()[0].io();
    let classified =
        classified_flows(io.digest_flow_idx, io.digest_fp, &outcome.batch.digests) as u64;
    (outcome, gen_report, classified, elapsed_s)
}

/// Assembles the stats row from a loopback run plus the alloc probe.
pub fn stats_from(
    outcome: &IngressOutcome,
    gen_report: &GenReport,
    classified: u64,
    elapsed_s: f64,
    allocs: u64,
    alloc_packets: u64,
) -> IngressBenchStats {
    let s = &outcome.stats;
    IngressBenchStats {
        sent: gen_report.sent,
        received: s.received,
        steered: s.steered,
        dropped_ring_full: s.dropped_ring_full,
        dropped_malformed: s.dropped_malformed,
        consumed: s.shards.iter().map(|sh| sh.consumed).sum(),
        socket_loss: gen_report.sent.saturating_sub(s.received),
        elapsed_s,
        pps: s.received as f64 / elapsed_s.max(1e-9),
        classified_flows: classified,
        classified_floor: CHURN_CLASSIFIED_FLOOR as u64,
        reconciled: s.reconciles(),
        ingress_allocs_per_packet: allocs as f64 / alloc_packets.max(1) as f64,
    }
}

/// Writes stats as the flat JSON the CI artifact and `bench_diff.sh`
/// consume. No `flow_slots` key — see the module docs.
pub fn write_json(path: &str, s: &IngressBenchStats) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{{\n  \"bench\": \"ingress\",\n  \"sent\": {},\n  \"received\": {},\n  \
         \"steered\": {},\n  \"dropped_ring_full\": {},\n  \"dropped_malformed\": {},\n  \
         \"consumed\": {},\n  \"socket_loss\": {},\n  \"elapsed_s\": {:.6},\n  \
         \"pps\": {:.1},\n  \"classified_flows\": {},\n  \"classified_floor\": {},\n  \
         \"reconciled\": {},\n  \"ingress_allocs_per_packet\": {:.6}\n}}",
        s.sent,
        s.received,
        s.steered,
        s.dropped_ring_full,
        s.dropped_malformed,
        s.consumed,
        s.socket_loss,
        s.elapsed_s,
        s.pps,
        s.classified_flows,
        s.classified_floor,
        u64::from(s.reconciled),
        s.ingress_allocs_per_packet,
    )
}
