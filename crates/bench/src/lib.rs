//! Shared experiment harness for regenerating the paper's tables and
//! figures (see DESIGN.md §3 for the experiment index).
//!
//! Every binary in `src/bin/` builds on this: dataset bundles with cached
//! per-partition feature matrices, the SpliDT BO evaluator, baseline
//! selection at flow targets, and plain-text table output. `SPLIDT_SCALE`
//! (default 1.0) scales flow counts and search budgets so the whole suite
//! can run quickly on small machines.

pub mod alloc_count;
pub mod churn;
pub mod drift;
pub mod hotpath;
pub mod ingress;
pub mod lookup;

pub use alloc_count::{allocation_count, CountingAlloc};

use parking_lot::Mutex;
use splidt_core::baselines::{Ideal, Leo, LeoParams, NetBeacon, NetBeaconParams, PerPacket};
use splidt_core::engine::{Classifier, Trainable};
use splidt_core::{
    evaluate_partitioned, max_flows, splidt_footprint, train_partitioned, PartitionedTree,
    SplidtConfig,
};
use splidt_dataplane::resources::TargetSpec;
use splidt_flow::{
    catalog, generate, quantize_dataset, select_flows, spec, stratified_split, windowed_dataset,
    DatasetId, FlowTrace, WindowedDataset,
};
use splidt_search::{optimize, BoOptions, BoResult, Objectives, ParamSpace};
use std::collections::HashMap;
use std::sync::Arc;

/// Paper flow targets (Table 3 and the Pareto figures).
pub const FLOW_TARGETS: [u64; 3] = [100_000, 500_000, 1_000_000];

/// Experiment scale knobs, derived from `SPLIDT_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Flows generated per dataset.
    pub flows: usize,
    /// BO evaluation budget.
    pub bo_budget: usize,
    /// BO batch width.
    pub bo_batch: usize,
}

impl Scale {
    /// Reads `SPLIDT_SCALE` (default 1.0).
    pub fn from_env() -> Self {
        let s: f64 = std::env::var("SPLIDT_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
        Self {
            flows: ((2400.0 * s) as usize).max(300),
            bo_budget: ((56.0 * s) as usize).max(12),
            bo_batch: 8,
        }
    }
}

/// Cached per-partition-count (train, test) windowed matrices.
type WindowCache = Mutex<HashMap<(usize, u8), Arc<(WindowedDataset, WindowedDataset)>>>;

/// A dataset with split flows and cached windowed matrices.
pub struct DatasetBundle {
    /// Dataset id.
    pub id: DatasetId,
    /// Human name.
    pub name: String,
    /// Class count.
    pub n_classes: usize,
    /// Training flows.
    pub train: Vec<FlowTrace>,
    /// Held-out test flows.
    pub test: Vec<FlowTrace>,
    cache: WindowCache,
}

impl DatasetBundle {
    /// Generates and splits a dataset.
    pub fn load(id: DatasetId, scale: Scale) -> Self {
        let sp = spec(id);
        let flows = generate(id, scale.flows, 1);
        let (tr, te) = stratified_split(&flows, 0.3, 2);
        Self {
            id,
            name: sp.name.clone(),
            n_classes: sp.n_classes as usize,
            train: select_flows(&flows, &tr),
            test: select_flows(&flows, &te),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Cached (train, test) windowed matrices for `p` partitions at
    /// `bits` precision.
    pub fn windowed(&self, p: usize, bits: u8) -> Arc<(WindowedDataset, WindowedDataset)> {
        if let Some(hit) = self.cache.lock().get(&(p, bits)) {
            return hit.clone();
        }
        let mut tr = windowed_dataset(&self.train, p, self.n_classes);
        let mut te = windowed_dataset(&self.test, p, self.n_classes);
        if bits < splidt_flow::FEATURE_BITS {
            for w in &mut tr.per_window {
                *w = quantize_dataset(w, bits);
            }
            for w in &mut te.per_window {
                *w = quantize_dataset(w, bits);
            }
        }
        let arc = Arc::new((tr, te));
        self.cache.lock().insert((p, bits), arc.clone());
        arc
    }

    /// Trains + evaluates a SpliDT config; returns `(model, test F1)`.
    pub fn train_splidt(&self, cfg: &SplidtConfig) -> (PartitionedTree, f64) {
        let wd = self.windowed(cfg.n_partitions(), cfg.feature_bits);
        let model = train_partitioned(&wd.0, cfg, &catalog().hardware_eligible());
        let f1 = evaluate_partitioned(&model, &wd.1);
        (model, f1)
    }
}

/// One row of a backend-agnostic model comparison (see
/// [`compare_classifiers`]). Footprint-derived columns are `None` for
/// models with no deployable footprint (ideal, per-packet).
pub struct ComparisonRow {
    /// Model name (from [`Classifier::name`]).
    pub name: &'static str,
    /// Test macro-F1.
    pub f1: f64,
    /// Max concurrent flows on Tofino1, if the model has a footprint.
    pub max_flows: Option<u64>,
    /// Installed TCAM entries.
    pub tcam_entries: Option<usize>,
    /// Per-flow feature-register bits.
    pub reg_bits: Option<usize>,
}

/// Evaluates any set of models through the [`Classifier`] contract — the
/// single comparison loop every fig/table binary shares.
pub fn compare_classifiers(models: &[&dyn Classifier], test: &[FlowTrace]) -> Vec<ComparisonRow> {
    let target = TargetSpec::tofino1();
    models
        .iter()
        .map(|m| {
            let fp = m.footprint();
            ComparisonRow {
                name: m.name(),
                f1: m.evaluate_flows(test),
                max_flows: fp.as_ref().map(|fp| max_flows(fp, &target)),
                tcam_entries: fp.as_ref().map(|fp| fp.tcam_entries),
                reg_bits: fp.as_ref().map(|fp| fp.feature_register_bits()),
            }
        })
        .collect()
}

/// Trains the paper's five-model suite (SpliDT + four baselines) on a
/// bundle through the uniform [`Trainable::fit`] entry point.
pub fn classifier_suite(bundle: &DatasetBundle, cfg: &SplidtConfig) -> Vec<Box<dyn Classifier>> {
    let (tr, nc) = (&bundle.train, bundle.n_classes);
    vec![
        Box::new(PartitionedTree::fit(tr, nc, cfg).expect("splidt trains")),
        Box::new(NetBeacon::fit(tr, nc, &NetBeaconParams::default()).expect("nb trains")),
        Box::new(Leo::fit(tr, nc, &LeoParams::default()).expect("leo trains")),
        Box::new(PerPacket::fit(tr, nc, &8).expect("pp trains")),
        Box::new(Ideal::fit(tr, nc, &14).expect("ideal trains")),
    ]
}

/// Renders comparison rows for [`print_table`].
pub fn comparison_table(rows: &[ComparisonRow]) -> Vec<Vec<String>> {
    let opt = |v: Option<String>| v.unwrap_or_else(|| "-".into());
    rows.iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                f2(r.f1),
                opt(r.max_flows.map(flows_fmt)),
                opt(r.tcam_entries.map(|v| v.to_string())),
                opt(r.reg_bits.map(|v| v.to_string())),
            ]
        })
        .collect()
}

/// The BO evaluator: train, score, fit-check on a target.
pub struct SplidtEvaluator<'a> {
    /// Dataset under search.
    pub bundle: &'a DatasetBundle,
    /// Hardware target.
    pub target: TargetSpec,
}

impl splidt_search::Evaluator for SplidtEvaluator<'_> {
    fn evaluate(&self, cfg: &SplidtConfig) -> Objectives {
        let (model, f1) = self.bundle.train_splidt(cfg);
        let fp = splidt_footprint(&model);
        let flows = max_flows(&fp, &self.target);
        Objectives { f1, max_flows: flows, feasible: flows > 0 }
    }
}

/// Runs the standard SpliDT search for a dataset.
pub fn search_dataset(
    bundle: &DatasetBundle,
    scale: Scale,
    space: &ParamSpace,
    seed: u64,
) -> BoResult {
    let eval = SplidtEvaluator { bundle, target: TargetSpec::tofino1() };
    optimize(
        space,
        &eval,
        &BoOptions {
            budget: scale.bo_budget,
            batch: scale.bo_batch,
            init: (scale.bo_budget / 3).max(6),
            pool: 192,
            seed,
        },
    )
}

/// The best baseline at a flow target: scans (k, depth) grids, keeps the
/// most accurate configuration whose footprint supports the target.
pub struct BaselinePick<T> {
    /// The trained model.
    pub model: T,
    /// Test macro-F1.
    pub f1: f64,
    /// Feature budget used.
    pub k: usize,
    /// Depth used.
    pub depth: usize,
    /// TCAM entries.
    pub tcam: usize,
    /// Per-flow feature-register bits.
    pub reg_bits: usize,
}

/// Best NetBeacon at a flow target.
pub fn best_netbeacon(
    bundle: &DatasetBundle,
    target_flows: u64,
    feature_bits: u8,
) -> Option<BaselinePick<NetBeacon>> {
    let target = TargetSpec::tofino1();
    let mut best: Option<BaselinePick<NetBeacon>> = None;
    for k in [2usize, 4, 6] {
        for depth in [6usize, 10, 13] {
            let nb = NetBeacon::train(
                &bundle.train,
                bundle.n_classes,
                &NetBeaconParams { k, depth, n_phases: 5, feature_bits },
            );
            let fp = nb.footprint();
            if max_flows(&fp, &target) < target_flows {
                continue;
            }
            let f1 = nb.evaluate(&bundle.test);
            if best.as_ref().is_none_or(|b| f1 > b.f1) {
                best = Some(BaselinePick {
                    f1,
                    k,
                    depth: nb.depth(),
                    tcam: fp.tcam_entries,
                    reg_bits: fp.feature_register_bits(),
                    model: nb,
                });
            }
        }
    }
    best
}

/// Best Leo at a flow target.
pub fn best_leo(
    bundle: &DatasetBundle,
    target_flows: u64,
    feature_bits: u8,
) -> Option<BaselinePick<Leo>> {
    let target = TargetSpec::tofino1();
    let mut best: Option<BaselinePick<Leo>> = None;
    for k in [2usize, 4, 6] {
        for depth in [3usize, 6, 10] {
            let leo =
                Leo::train(&bundle.train, bundle.n_classes, &LeoParams { k, depth, feature_bits });
            let fp = leo.footprint();
            if max_flows(&fp, &target) < target_flows {
                continue;
            }
            let f1 = leo.evaluate(&bundle.test);
            if best.as_ref().is_none_or(|b| f1 > b.f1) {
                best = Some(BaselinePick {
                    f1,
                    k,
                    depth: leo.tree.depth(),
                    tcam: leo.tcam_entries(),
                    reg_bits: fp.feature_register_bits(),
                    model: leo,
                });
            }
        }
    }
    best
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Runs one closure per dataset in parallel, preserving order.
pub fn for_datasets<T: Send, F: Fn(DatasetId) -> T + Sync>(ids: &[DatasetId], f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = ids.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let f = &f;
            handles.push(s.spawn(move || (i, f(id))));
        }
        for h in handles {
            let (i, v) = h.join().expect("dataset job");
            out[i] = Some(v);
        }
    });
    out.into_iter().map(|v| v.expect("filled")).collect()
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a flow count ("100K", "1M").
pub fn flows_fmt(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else {
        format!("{}K", n / 1_000)
    }
}
