//! Table-lookup microbenchmark: the compiled `MatchIndex` vs the linear
//! reference scan, swept over entry counts {16, 256, 4096} for every
//! match kind. Element throughput is probes (lookups) per second.
//!
//! The CI twin (`lookup_smoke`) runs the same harness, writes
//! `BENCH_lookup.json`, and enforces the ≥5× floor for ternary/range at
//! 4096 entries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use splidt_bench::lookup::{build_case, indexed_pass, kind_tag, linear_pass, PROBES, SWEEP_SIZES};
use splidt_dataplane::table::MatchKind;

fn bench_lookup(c: &mut Criterion) {
    for kind in [MatchKind::Exact, MatchKind::Ternary, MatchKind::Range] {
        let mut group = c.benchmark_group(format!("lookup/{}", kind_tag(kind)));
        group.throughput(Throughput::Elements(PROBES as u64));
        for n in SWEEP_SIZES {
            let case = build_case(kind, n, 42);
            let mut scratch = Vec::new();
            group.bench_with_input(BenchmarkId::new("indexed", n), &case, |b, case| {
                b.iter(|| indexed_pass(case, &mut scratch))
            });
            group.bench_with_input(BenchmarkId::new("linear", n), &case, |b, case| {
                b.iter(|| linear_pass(case))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
