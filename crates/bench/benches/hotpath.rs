//! Hot-path microbenchmarks: the compiled-plan batch path against the
//! per-packet compatibility path and the entry-walking reference
//! interpreter, on the same fixed-seed traffic.
//!
//! | id | path measured |
//! |---|---|
//! | `hotpath/plan_batch` | `Engine::ingest_batch` → `Pipeline::process_frame` (zero-alloc) |
//! | `hotpath/per_packet_ingest` | `Engine::ingest` → `process_packet` (allocates a PHV per frame) |
//! | `hotpath/plan_process_frame` | raw pipeline, plan-driven, reused PHV |
//! | `hotpath/entrywalk_reference` | raw pipeline, original interpreter (clones per lookup) |
//!
//! Run with `cargo bench --bench hotpath`. With the real criterion crate
//! installed, `cargo bench --bench hotpath -- --save-baseline main` saves
//! a named baseline to compare against; under the in-tree shim, use
//! `cargo run --release -p splidt-bench --bin hotpath_smoke` plus
//! `scripts/bench_diff.sh` for before/after comparisons.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use splidt_bench::hotpath::{engine_for, fixture};
use splidt_core::compile;
use splidt_dataplane::pipeline::Pipeline;

fn bench_hotpath(c: &mut Criterion) {
    let (model, frames) = fixture();
    let total_packets = frames.len() as u64;

    let mut group = c.benchmark_group("hotpath");
    group.throughput(Throughput::Elements(total_packets));

    // Engine level: batch vs per-packet dispatch.
    let mut engine = engine_for(&model);
    group.bench_function("plan_batch", |b| {
        b.iter(|| {
            engine.reset();
            engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).expect("ingests")
        })
    });
    let mut engine = engine_for(&model);
    group.bench_function("per_packet_ingest", |b| {
        b.iter(|| {
            engine.reset();
            for (frame, ts) in &frames {
                engine.ingest(frame, *ts).expect("ingests");
            }
        })
    });

    // Pipeline level: compiled plan vs the entry-walking reference.
    let compiled = compile(&model, 1 << 16).expect("compiles");
    let fields = compiled.io.fields;
    let mut pipe = Pipeline::new(compiled.program.clone());
    group.bench_function("plan_process_frame", |b| {
        b.iter(|| {
            pipe.reset_state();
            for (frame, ts) in &frames {
                pipe.process_frame(frame, *ts, &fields).expect("parses");
            }
        })
    });
    let mut pipe = Pipeline::new(compiled.program);
    group.bench_function("entrywalk_reference", |b| {
        b.iter(|| {
            pipe.reset_state();
            for (frame, ts) in &frames {
                pipe.process_packet_entrywalk(frame, *ts, &fields).expect("parses");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
