//! Criterion: simulator packet-walk throughput — the feature-collection
//! path, the prediction path (window boundary), and recirculation.

use criterion::{criterion_group, criterion_main, Criterion};
use splidt_core::{compile, train_partitioned, SplidtConfig};
use splidt_dataplane::packet::PacketBuilder;
use splidt_dataplane::pipeline::Pipeline;
use splidt_flow::{catalog, generate, windowed_dataset, DatasetId};

fn bench_pipeline(c: &mut Criterion) {
    let flows = generate(DatasetId::D2, 400, 1);
    let wd = windowed_dataset(&flows, 3, 4);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let compiled = compile(&model, 1 << 14).unwrap();
    let fields = compiled.io.fields;
    let mut pipe = Pipeline::new(compiled.program);
    let frame =
        PacketBuilder::tcp(0x0a000001, 0xc0a80001, 40000, 443).payload(200).flow_size(1000).build();
    let mut ts = 0u64;
    c.bench_function("pipeline/feature_collection_pass", |b| {
        b.iter(|| {
            ts += 100;
            pipe.process_packet(&frame, ts, &fields).unwrap()
        })
    });
    // parse-only baseline for comparison
    let layout = pipe.program().layout().clone();
    c.bench_function("pipeline/parse_only", |b| {
        b.iter(|| splidt_dataplane::parse(&frame, &layout, &fields).unwrap())
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
