//! Criterion: CART and Algorithm-1 partitioned training cost (Table 4's
//! "Training" row at benchmark scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use splidt_core::{train_partitioned, SplidtConfig};
use splidt_dt::{train_classifier, TrainParams};
use splidt_flow::{catalog, flow_level_dataset, generate, windowed_dataset, DatasetId};

fn bench_training(c: &mut Criterion) {
    let flows = generate(DatasetId::D2, 600, 1);
    let ds = flow_level_dataset(&flows, 4);
    c.bench_function("train/cart_depth8", |b| {
        b.iter(|| train_classifier(&ds, &TrainParams { max_depth: 8, ..Default::default() }))
    });
    for p in [1usize, 3, 5] {
        let wd = windowed_dataset(&flows, p, 4);
        c.bench_with_input(BenchmarkId::new("train/partitioned", p), &p, |b, &p| {
            let cfg = SplidtConfig { partitions: vec![2; p], k: 4, ..Default::default() };
            b.iter(|| train_partitioned(&wd, &cfg, &catalog().hardware_eligible()))
        });
    }
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
