//! Criterion: one Bayesian-optimization round — surrogate fit plus
//! acquisition over the candidate pool (Table 4's "Optimizer" row).

use criterion::{criterion_group, criterion_main, Criterion};
use splidt_core::SplidtConfig;
use splidt_search::{optimize, BoOptions, Objectives, ParamSpace};

fn bench_search(c: &mut Criterion) {
    let space = ParamSpace::default();
    let eval = |cfg: &SplidtConfig| Objectives {
        f1: 0.4 + cfg.k as f64 * 0.02,
        max_flows: 1_000_000 / cfg.k as u64,
        feasible: true,
    };
    c.bench_function("search/bo_24_evals", |b| {
        b.iter(|| {
            optimize(
                &space,
                &eval,
                &BoOptions { budget: 24, batch: 8, init: 8, pool: 128, seed: 1 },
            )
        })
    });
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
