//! Criterion: Range-Marking rule generation + program assembly (Table 4's
//! "Rulegen" and "Backend" rows).

use criterion::{criterion_group, criterion_main, Criterion};
use splidt_core::{compile, model_rules, train_partitioned, SplidtConfig};
use splidt_flow::{catalog, generate, windowed_dataset, DatasetId};
use splidt_ranging::generate_rules;

fn bench_rulegen(c: &mut Criterion) {
    let flows = generate(DatasetId::D3, 600, 1);
    let wd = windowed_dataset(&flows, 3, 13);
    let cfg = SplidtConfig { partitions: vec![3, 3, 2], k: 4, ..Default::default() };
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    c.bench_function("rulegen/model_rules", |b| b.iter(|| model_rules(&model)));
    c.bench_function("rulegen/single_subtree", |b| {
        b.iter(|| generate_rules(&model.subtrees[0].tree, 24))
    });
    c.bench_function("rulegen/compile_program", |b| b.iter(|| compile(&model, 1 << 12).unwrap()));
}

criterion_group!(benches, bench_rulegen);
criterion_main!(benches);
