//! Engine throughput: packets/sec through the streaming engine at shard
//! counts {1, 2, 4, 8}. This is the perf trajectory's throughput
//! benchmark — the `elem/s` column is pipeline packets per second
//! (resubmission passes excluded; they are metered separately).
//!
//! Two drivers per shard count:
//!
//! * `packets/N` — the full `run` path (admission, per-flow frame
//!   serialization, feeding, scoring), i.e. a whole session;
//! * `batch/N` — pre-serialized frames through `ingest_batch`, the
//!   steady-state zero-allocation hot path with digests drained once per
//!   batch. The gap between the two is the session-bookkeeping overhead.
//!
//! Shards are driven on OS threads, so the scaling curve tracks the
//! machine: on a single-core runner all counts report ~equal throughput;
//! speedup appears as cores do.
//!
//! Run with: `cargo bench --bench engine`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use splidt_bench::hotpath::serialize_schedule;
use splidt_core::engine::EngineBuilder;
use splidt_core::{train_partitioned, SplidtConfig};
use splidt_flow::{catalog, generate, select_flows, stratified_split, windowed_dataset, DatasetId};

fn bench_engine(c: &mut Criterion) {
    let flows = generate(DatasetId::D2, 600, 5);
    let (tr, te) = stratified_split(&flows, 0.4, 2);
    let train_flows = select_flows(&flows, &tr);
    let traffic = select_flows(&flows, &te);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&train_flows, 3, 4);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let total_packets: u64 = traffic.iter().map(|f| f.size_pkts() as u64).sum();
    let frames = serialize_schedule(&model, &traffic);

    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(total_packets));
    for shards in [1usize, 2, 4, 8] {
        // Compile once per shard count; the measured loop only resets
        // register state and streams packets.
        let builder = || {
            EngineBuilder::new(&model)
                .flow_slots(1 << 16)
                .stagger_us(1_000)
                .build_sharded(shards)
                .expect("compiles")
        };
        let mut engine = builder();
        group.bench_with_input(BenchmarkId::new("packets", shards), &shards, |b, _| {
            b.iter(|| {
                engine.reset();
                engine.run(&traffic).expect("runs")
            })
        });
        let mut engine = builder();
        group.bench_with_input(BenchmarkId::new("batch", shards), &shards, |b, _| {
            b.iter(|| {
                engine.reset();
                engine.ingest_batch(&frames).expect("ingests")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
