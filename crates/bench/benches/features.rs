//! Criterion: window feature extraction (the "Fetch" cost of Table 4) and
//! the slot-program interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use splidt_flow::features::run_slot_program;
use splidt_flow::{catalog, extract_windows, generate, DatasetId};

fn bench_features(c: &mut Criterion) {
    let flows = generate(DatasetId::D2, 50, 1);
    let cat = catalog();
    c.bench_function("features/extract_windows_p4", |b| {
        b.iter(|| flows.iter().map(|f| extract_windows(f, 4, cat).len()).sum::<usize>())
    });
    let prog = *cat.slot_program(cat.index_of("iat_max").unwrap()).unwrap();
    let pkts = &flows[0].packets;
    c.bench_function("features/slot_program_iat_max", |b| b.iter(|| run_slot_program(&prog, pkts)));
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
