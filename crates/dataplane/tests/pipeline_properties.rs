//! Property-based and failure-injection tests for the RMT simulator.

use proptest::prelude::*;
use splidt_dataplane::action::{Action, AluOp, AluOut, Primitive, Source};
use splidt_dataplane::packet::{PacketBuilder, TcpFlags};
use splidt_dataplane::pipeline::Pipeline;
use splidt_dataplane::program::ProgramBuilder;
use splidt_dataplane::register::{RegAluOp, RegisterArray, RegisterSpec};
use splidt_dataplane::table::TableSpec;
use splidt_dataplane::tcam::Ternary;

proptest! {
    /// Untrusted-input fuzz: arbitrary byte slices through both parser
    /// walks and shard steering must return a typed error or a tuple —
    /// never panic, and peek/parse must fail (or succeed) in lockstep.
    #[test]
    fn arbitrary_bytes_never_panic_parser_or_steering(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        shards in 1usize..9,
    ) {
        let mut b = ProgramBuilder::new();
        let f = b.standard_fields();
        let program = b.build().unwrap();
        let peek = splidt_dataplane::peek_flow_tuple(&bytes);
        let parse = splidt_dataplane::parse(&bytes, program.layout(), &f);
        prop_assert_eq!(
            peek.clone().err(),
            parse.as_ref().err().cloned(),
            "peek and parse must agree on rejection"
        );
        if let Ok(t) = peek {
            // Anything that parses must steer to a valid shard.
            let (sip, dip, sp, dp) = splidt_dataplane::hash::canonical_order(
                t.src_ip, t.dst_ip, t.sport, t.dport,
            );
            let shard = splidt_dataplane::hash::flow_index(sip, dip, sp, dp, t.proto, shards);
            prop_assert!(shard < shards);
        }
    }

    /// Byte-flip fuzz: a valid frame with one mutated byte still parses or
    /// is rejected with a typed error; the two walks stay in lockstep.
    #[test]
    fn mutated_valid_frames_never_panic(
        pos in 0usize..80,
        val in any::<u8>(),
        cut in 0usize..100,
    ) {
        let mut b = ProgramBuilder::new();
        let f = b.standard_fields();
        let program = b.build().unwrap();
        let mut frame =
            PacketBuilder::tcp(0x0a000001, 0x0a000002, 4321, 443).flow_size(40).build().to_vec();
        if pos < frame.len() {
            frame[pos] = val;
        }
        frame.truncate(cut.min(frame.len()));
        let peek = splidt_dataplane::peek_flow_tuple(&frame);
        let parse = splidt_dataplane::parse(&frame, program.layout(), &f);
        prop_assert_eq!(peek.err(), parse.err());
    }

    /// Parser round-trip: whatever the builder writes, the parser reads.
    #[test]
    fn parse_roundtrip(
        sip in any::<u32>(), dip in any::<u32>(),
        sp in any::<u16>(), dp in any::<u16>(),
        flags in 0u8..64, payload in 0u16..1200,
        flow_size in 1u16..1000,
    ) {
        let mut b = ProgramBuilder::new();
        let f = b.standard_fields();
        let program = b.build().unwrap();
        let frame = PacketBuilder::tcp(sip, dip, sp, dp)
            .flags(flags)
            .payload(payload)
            .flow_size(flow_size)
            .build();
        let phv = splidt_dataplane::parse(&frame, program.layout(), &f).unwrap();
        prop_assert_eq!(phv.get(f.ipv4_src), sip as u64);
        prop_assert_eq!(phv.get(f.ipv4_dst), dip as u64);
        prop_assert_eq!(phv.get(f.sport), sp as u64);
        prop_assert_eq!(phv.get(f.dport), dp as u64);
        prop_assert_eq!(phv.get(f.tcp_flags), flags as u64);
        prop_assert_eq!(phv.get(f.flow_size), flow_size as u64);
        prop_assert_eq!(phv.get(f.frame_len), frame.len() as u64);
    }

    /// Register ALU saturation: a capped register never exceeds its cap,
    /// no matter the op sequence.
    #[test]
    fn register_never_exceeds_cap(
        ops in proptest::collection::vec((0u8..6, any::<u32>()), 1..60),
        cap in 1u64..1_000_000,
    ) {
        let mut r = RegisterArray::new(RegisterSpec::capped("c", 32, 4, cap));
        for (op, v) in ops {
            let op = match op {
                0 => RegAluOp::Read,
                1 => RegAluOp::Write,
                2 => RegAluOp::Add,
                3 => RegAluOp::Sub,
                4 => RegAluOp::Min,
                _ => RegAluOp::Max,
            };
            let (_, new) = r.rmw(0, op, v as u64);
            prop_assert!(new <= cap, "op {op:?} value {v} produced {new} > cap {cap}");
        }
    }

    /// Ternary priority: the winning entry always has the maximum priority
    /// among matching entries.
    #[test]
    fn ternary_priority_correct(
        entries in proptest::collection::vec((any::<u16>(), any::<u16>(), 0u32..100), 1..20),
        probe in any::<u16>(),
    ) {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 16);
        let t = b.add_table(TableSpec::ternary("t", vec![f], 64), 0);
        for (i, &(v, m, p)) in entries.iter().enumerate() {
            b.add_ternary_entry(
                t,
                vec![Ternary::new(v as u64, m as u64)],
                p,
                Action::new(format!("e{i}")),
            )
            .unwrap();
        }
        let program = b.build().unwrap();
        let table = program.table(t);
        let mut phv = program.layout().new_phv();
        phv.set(f, probe as u64);
        let hit = table.lookup_linear(&phv);
        let matching: Vec<(usize, u32)> = entries
            .iter()
            .enumerate()
            .filter(|(_, &(v, m, _))| (probe as u64) & (m as u64) == (v as u64) & (m as u64))
            .map(|(i, &(_, _, p))| (i, p))
            .collect();
        match hit {
            None => prop_assert!(matching.is_empty()),
            Some(idx) => {
                let max_prio = matching.iter().map(|&(_, p)| p).max().unwrap();
                let winner_prio = matching.iter().find(|&&(i, _)| i == idx).map(|&(_, p)| p);
                prop_assert_eq!(winner_prio, Some(max_prio));
            }
        }
    }
}

/// Failure injection: malformed frames never corrupt pipeline state.
#[test]
fn malformed_frames_are_rejected_cleanly() {
    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();
    let idx = b.add_meta("idx", 8);
    let r = b.add_register(RegisterSpec::new("cnt", 32, 16), 0);
    let t = b.add_table(TableSpec::ternary("t", vec![fields.ip_proto], 4), 0);
    b.add_ternary_entry(
        t,
        vec![Ternary::ANY],
        0,
        Action::new("bump").with(Primitive::RegRmw {
            reg: r,
            index: Source::Field(idx),
            op: AluOp::Add,
            operand: Source::Const(1),
            out: Some((idx, AluOut::New)),
        }),
    )
    .unwrap();
    let mut pipe = Pipeline::new(b.build().unwrap());
    // garbage frames of every length up to a valid packet
    let good = PacketBuilder::tcp(1, 2, 3, 4).flags(TcpFlags::SYN).build();
    for cut in 0..good.len() {
        let _ = pipe.process_packet(&good[..cut], 0, &fields); // may Err — must not panic
    }
    assert_eq!(pipe.registers().read(0, 0), 0, "no partial frame may touch state");
    pipe.process_packet(&good, 1, &fields).unwrap();
    assert_eq!(pipe.registers().read(0, 0), 1);
}

/// Resubmit-limit safety stop: a pathological always-resubmit program
/// terminates with the documented disposition and exact meter counts.
#[test]
fn infinite_resubmit_is_bounded() {
    let mut b = ProgramBuilder::new();
    let f = b.add_meta("f", 8);
    b.set_resubmit_limit(5);
    let t = b.add_table(TableSpec::ternary("loop", vec![f], 2), 0);
    b.add_ternary_entry(t, vec![Ternary::ANY], 0, Action::new("x").with(Primitive::Resubmit))
        .unwrap();
    let mut pipe = Pipeline::new(b.build().unwrap());
    let phv = pipe.program().layout().new_phv();
    let out = pipe.process_phv(phv, 0);
    assert_eq!(out.disposition, splidt_dataplane::Disposition::ResubmitLimit);
    assert_eq!(pipe.meters().passes, 6);
    assert_eq!(pipe.meters().resubmissions, 5);
}
