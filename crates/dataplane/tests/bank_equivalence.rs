//! Property test: **banked register file ≡ split per-stage arrays.**
//!
//! The flow bank changes only *where* register cells live (one
//! cache-line-coalesced arena per slot domain instead of one array per
//! stage) — never *what* a visit computes. This test generates random
//! programs under the engine discipline (ownership-lane lifecycle with
//! idle-eviction churn, per-flow counters with mixed widths, saturation
//! caps, digests, resubmits, drops) plus random packet schedules, runs
//! them through a banked and a split pipeline, and checks the two agree
//! on everything: dispositions, meters, every register slot, per-entry
//! table hits and misses, and the exact digest stream. A third, banked
//! **wave** pipeline runs on top, so "wave ≡ scalar" is re-asserted
//! through the bank's prefetch/addressing path too.
//!
//! Width diversity matters here: 8/16/24/32/64-bit registers exercise
//! every physical cell size (1/2/4/8 bytes) the bank packs, and capped
//! registers exercise the shared saturating-ALU body.

use proptest::prelude::*;
use splidt_dataplane::action::{Action, AluOp, AluOut, OwnerMode, Primitive, Source};
use splidt_dataplane::hash::{FP_MASK, FP_SALT};
use splidt_dataplane::packet::PacketBuilder;
use splidt_dataplane::parser::StandardFields;
use splidt_dataplane::pipeline::{Pipeline, WaveStats};
use splidt_dataplane::program::{Program, ProgramBuilder};
use splidt_dataplane::register::{RegPlacement, RegisterSpec};
use splidt_dataplane::table::TableSpec;

/// Program-shape knobs drawn by the property.
#[derive(Debug, Clone)]
struct Shape {
    /// Flow-hash domain (power of two; every per-flow register's depth).
    slots: usize,
    /// Include the ownership lane (probe on first pass, decide on
    /// resubmit) with a short idle timeout, so lanes churn mid-trace.
    owner: bool,
    /// Resubmit every first pass (exercises multi-pass bank visits).
    resubmit: bool,
    /// Per-flow counter descriptors; bits select width, ALU op, cap,
    /// old-vs-new export and digest emission.
    ops: Vec<u8>,
}

/// Bank cell widths the op descriptor cycles through.
const WIDTHS: [u8; 5] = [8, 16, 24, 32, 64];

/// Builds a random-shape program following the engine discipline: all
/// per-packet register indices come from the salt-0 canonical flow hash.
fn build(shape: &Shape) -> (Program, StandardFields) {
    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();
    let idx = b.add_meta("m_idx", 16);
    let fp = b.add_meta("m_fp", 24);
    let state = b.add_meta("m_state", 8);
    let cnt_out = b.add_meta("m_cnt", 32);
    b.set_digest_fields(vec![idx, cnt_out, fields.frame_len]);

    let prep = b.add_table(TableSpec::exact("prep", vec![fields.is_resubmit], 2), 0);
    b.set_default(
        prep,
        Action::new("hash")
            .with(Primitive::HashFlow { dst: idx, mask: (shape.slots - 1) as u64, salt: 0 })
            .with(Primitive::HashFlow { dst: fp, mask: FP_MASK, salt: FP_SALT })
            .with(Primitive::Max { dst: fp, a: Source::Field(fp), b: Source::Const(1) }),
    );

    let mut stage = 1;
    if shape.owner {
        let own_reg = b.add_register(RegisterSpec::new("own", 64, shape.slots), stage);
        let own = b.add_table(TableSpec::exact("own", vec![fields.is_resubmit], 2), stage);
        let upd = |mode: OwnerMode, claim: bool| Primitive::OwnerUpdate {
            reg: own_reg,
            index: Source::Field(idx),
            fp: Source::Field(fp),
            now: Source::Field(fields.ts_us),
            idle_timeout_us: 50,
            pinned_timeout_us: 100,
            mode,
            claim,
            release: false,
            pin: false,
            class: Source::Const(1),
            state_out: state,
        };
        b.add_exact_entry(own, vec![0], Action::new("probe").with(upd(OwnerMode::Probe, true)))
            .unwrap();
        b.add_exact_entry(own, vec![1], Action::new("decide").with(upd(OwnerMode::Decide, false)))
            .unwrap();
        stage += 1;
    }
    for (i, &op) in shape.ops.iter().enumerate() {
        let width = WIDTHS[op as usize % WIDTHS.len()];
        let spec = if op & 32 == 0 {
            // A cap just under the width's top exercises saturation.
            let cap = (1u64 << (width.min(63) - 1)) + 3;
            RegisterSpec::capped(format!("r{i}"), width, shape.slots, cap)
        } else {
            RegisterSpec::new(format!("r{i}"), width, shape.slots)
        };
        let r = b.add_register(spec, stage);
        // Keyed on dport (traffic uses 2 and 3) for hit/miss diversity.
        let t = b.add_table(TableSpec::exact(format!("cnt{i}"), vec![fields.dport], 4), stage);
        let (alu, operand) = match op % 4 {
            0 => (AluOp::Add, Source::Field(fields.frame_len)),
            1 => (AluOp::Max, Source::Field(fields.flow_size)),
            2 => (AluOp::Min, Source::Const(7 + i as u64)),
            _ => (AluOp::Add, Source::Const(1)),
        };
        let mut act = Action::new("upd").with(Primitive::RegRmw {
            reg: r,
            index: Source::Field(idx),
            op: alu,
            operand,
            out: Some((cnt_out, if op & 8 == 0 { AluOut::New } else { AluOut::Old })),
        });
        if op & 16 == 0 {
            act = act.with(Primitive::Digest);
        }
        b.add_exact_entry(t, vec![2], act).unwrap();
        stage += 1;
    }
    if shape.resubmit {
        let go = b.add_table(TableSpec::exact("go", vec![fields.is_resubmit], 4), stage);
        b.add_exact_entry(go, vec![0], Action::new("resub").with(Primitive::Resubmit)).unwrap();
        b.add_exact_entry(go, vec![1], Action::nop()).unwrap();
    }
    (b.build().unwrap(), fields)
}

fn frame_for(flow: u32, pay: u16, dsel: u8) -> Vec<u8> {
    PacketBuilder::tcp(
        0x0a00_0000 + flow,
        0x0b00_0000 + flow * 3,
        1000 + flow as u16,
        2 + dsel as u16,
    )
    .payload(pay * 37)
    .flow_size(1 + pay)
    .build()
    .to_vec()
}

/// Runs one schedule through banked-scalar, split-scalar, and
/// banked-wave pipelines and asserts full-state equality.
fn assert_equivalent(shape: &Shape, burst: usize, packets: &[(u32, u16, u8)]) {
    let (p, fields) = build(shape);
    let mut banked = Pipeline::new(p.clone());
    let mut split = Pipeline::new_split(p.clone());
    let mut wave = Pipeline::new(p);
    wave.set_burst(burst, shape.slots);
    assert!(banked.registers().is_banked());
    assert!(!split.registers().is_banked());
    // Per-flow registers (>= 2 share the slot domain) must have coalesced.
    if shape.owner || shape.ops.len() >= 2 {
        assert!(
            banked
                .registers()
                .layout()
                .placements()
                .iter()
                .any(|p| matches!(p, RegPlacement::Banked { .. })),
            "flow registers should have banked"
        );
    }
    let mut stats = WaveStats::default();
    for (i, &(flow, pay, dsel)) in packets.iter().enumerate() {
        let frame = frame_for(flow, pay, dsel);
        let ts = i as u64 * 17;
        let a = banked.process_frame(&frame, ts, &fields).unwrap();
        let b = split.process_frame(&frame, ts, &fields).unwrap();
        assert_eq!(a, b, "packet {i}: banked and split dispositions diverged");
        wave.wave_push(&frame, ts, &fields, &mut stats).unwrap();
    }
    wave.wave_flush(&fields, &mut stats);
    assert_eq!(banked.meters(), split.meters(), "meters diverged");
    assert_eq!(banked.meters(), wave.meters(), "wave meters diverged");
    let n_regs = banked.registers().len();
    for r in 0..n_regs {
        for s in 0..shape.slots {
            let want = split.registers().read(r, s);
            assert_eq!(banked.registers().read(r, s), want, "register {r} slot {s} diverged");
            assert_eq!(wave.registers().read(r, s), want, "wave register {r} slot {s} diverged");
        }
    }
    let want_digests = split.take_digests();
    assert_eq!(banked.take_digests(), want_digests, "digest streams diverged");
    assert_eq!(wave.take_digests(), want_digests, "wave digest stream diverged");
    for ((tb, ts_), tw) in
        banked.program().tables().iter().zip(split.program().tables()).zip(wave.program().tables())
    {
        assert_eq!(tb.misses(), ts_.misses(), "table miss counts diverged");
        assert_eq!(tw.misses(), ts_.misses(), "wave table miss counts diverged");
        for ((eb, es), ew) in tb.entries().iter().zip(ts_.entries()).zip(tw.entries()) {
            assert_eq!(eb.hits, es.hits, "table entry hit counts diverged");
            assert_eq!(ew.hits, es.hits, "wave table entry hit counts diverged");
        }
    }
}

proptest! {
    #[test]
    fn banked_equals_split(
        (slots_sel, owner, resubmit, burst) in
            (0u32..3, any::<bool>(), any::<bool>(), 1usize..33),
        ops in proptest::collection::vec(0u8..64, 1..5),
        packets in proptest::collection::vec((0u32..12, 0u16..3, 0u8..2), 1..80),
    ) {
        let shape = Shape { slots: 4usize << slots_sel, owner, resubmit, ops };
        assert_equivalent(&shape, burst, &packets);
    }
}

/// Deterministic spot-check: a lifecycle + saturating-counter program at
/// a fixed schedule, so a bank addressing bug fails loudly outside the
/// shrinking loop too.
#[test]
fn banked_equals_split_lifecycle_fixture() {
    let shape = Shape { slots: 16, owner: true, resubmit: true, ops: vec![0, 9, 18, 27, 36] };
    let packets: Vec<_> = (0..64u32).map(|i| (i % 11, (i % 3) as u16, (i % 2) as u8)).collect();
    assert_equivalent(&shape, 8, &packets);
}
