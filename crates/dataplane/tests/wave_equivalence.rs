//! Property test: **burst (wave) execution ≡ scalar execution.**
//!
//! The wave executor (`Pipeline::wave_push`/`wave_flush`) claims
//! observational equivalence with the packet-at-a-time path for any
//! program that follows the engine discipline — every packet-dependent
//! register index derives from the canonical salt-0 flow hash. This test
//! generates random programs under that discipline (per-flow counters
//! with mixed ALU ops and hit/miss diversity, optional ownership-lane
//! churn with idle-eviction timeouts, single and storm resubmits, mid-wave
//! drops, digest emission) plus random packet schedules with heavy
//! same-flow adjacency, and checks the two paths agree on *everything*:
//! wave dispositions, meters, every register slot, per-entry table hits
//! and misses, and the exact digest stream (order included).

use proptest::prelude::*;
use splidt_dataplane::action::{Action, AluOp, AluOut, OwnerMode, Primitive, Source};
use splidt_dataplane::hash::{FP_MASK, FP_SALT};
use splidt_dataplane::packet::PacketBuilder;
use splidt_dataplane::parser::StandardFields;
use splidt_dataplane::pipeline::{Disposition, Pipeline, WaveStats};
use splidt_dataplane::program::{Program, ProgramBuilder};
use splidt_dataplane::register::RegisterSpec;
use splidt_dataplane::table::TableSpec;

/// Program-shape knobs drawn by the property.
#[derive(Debug, Clone)]
struct Shape {
    /// Flow-hash domain (power of two; also every register's depth).
    slots: usize,
    /// Include the ownership lane (probe on first pass, decide on
    /// resubmit) with a short idle timeout, so lanes churn mid-trace.
    owner: bool,
    /// 0 = never, 1 = one resubmission per packet, 2 = resubmit storm
    /// (every pass resubmits, so packets hit the resubmit limit).
    resubmit: u8,
    /// Drop packets whose flow index equals this slot (mid-wave deaths).
    drop_slot: Option<u64>,
    /// One per-flow counter table per element; low bits select the ALU
    /// op/operand, bit 3 old-vs-new export, bit 4 digest emission.
    ops: Vec<u8>,
}

/// Builds a random-shape program that still follows the engine
/// discipline: all per-packet register indices come from `m_idx`, the
/// salt-0 canonical flow hash masked to `slots - 1`.
fn build(shape: &Shape) -> (Program, StandardFields) {
    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();
    let idx = b.add_meta("m_idx", 16);
    let fp = b.add_meta("m_fp", 24);
    let state = b.add_meta("m_state", 8);
    let cnt_out = b.add_meta("m_cnt", 32);
    b.set_digest_fields(vec![idx, cnt_out, fields.frame_len]);

    // Stage 0: flow hashing — the discipline the wave contract rests on.
    let prep = b.add_table(TableSpec::exact("prep", vec![fields.is_resubmit], 2), 0);
    b.set_default(
        prep,
        Action::new("hash")
            .with(Primitive::HashFlow { dst: idx, mask: (shape.slots - 1) as u64, salt: 0 })
            .with(Primitive::HashFlow { dst: fp, mask: FP_MASK, salt: FP_SALT })
            .with(Primitive::Max { dst: fp, a: Source::Field(fp), b: Source::Const(1) }),
    );

    let mut stage = 1;
    if shape.owner {
        let own_reg = b.add_register(RegisterSpec::new("own", 64, shape.slots), stage);
        let own = b.add_table(TableSpec::exact("own", vec![fields.is_resubmit], 2), stage);
        let upd = |mode: OwnerMode, claim: bool| Primitive::OwnerUpdate {
            reg: own_reg,
            index: Source::Field(idx),
            fp: Source::Field(fp),
            now: Source::Field(fields.ts_us),
            // Short timeouts relative to the 17 µs inter-packet gap, so
            // the trace sees claims, refreshes, takeovers, and evictions.
            idle_timeout_us: 50,
            pinned_timeout_us: 100,
            mode,
            claim,
            release: false,
            pin: false,
            class: Source::Const(1),
            state_out: state,
        };
        b.add_exact_entry(own, vec![0], Action::new("probe").with(upd(OwnerMode::Probe, true)))
            .unwrap();
        b.add_exact_entry(own, vec![1], Action::new("decide").with(upd(OwnerMode::Decide, false)))
            .unwrap();
        stage += 1;
    }
    for (i, &op) in shape.ops.iter().enumerate() {
        let r = b.add_register(RegisterSpec::new(format!("r{i}"), 32, shape.slots), stage);
        // Keyed on dport (traffic uses 2 and 3), so tables mix per-packet
        // hits and misses and entry/miss counters get real coverage.
        let t = b.add_table(TableSpec::exact(format!("cnt{i}"), vec![fields.dport], 4), stage);
        let (alu, operand) = match op % 4 {
            0 => (AluOp::Add, Source::Field(fields.frame_len)),
            1 => (AluOp::Max, Source::Field(fields.flow_size)),
            2 => (AluOp::Min, Source::Const(7 + i as u64)),
            _ => (AluOp::Add, Source::Const(1)),
        };
        let mut act = Action::new("upd").with(Primitive::RegRmw {
            reg: r,
            index: Source::Field(idx),
            op: alu,
            operand,
            out: Some((cnt_out, if op & 8 == 0 { AluOut::New } else { AluOut::Old })),
        });
        if op & 16 == 0 {
            act = act.with(Primitive::Digest);
        }
        b.add_exact_entry(t, vec![2], act).unwrap();
        stage += 1;
    }
    if shape.resubmit > 0 {
        let go = b.add_table(TableSpec::exact("go", vec![fields.is_resubmit], 4), stage);
        b.add_exact_entry(go, vec![0], Action::new("resub").with(Primitive::Resubmit)).unwrap();
        let again = if shape.resubmit > 1 {
            Action::new("storm").with(Primitive::Resubmit)
        } else {
            Action::nop()
        };
        b.add_exact_entry(go, vec![1], again).unwrap();
        stage += 1;
    }
    if let Some(slot) = shape.drop_slot {
        let d = b.add_table(TableSpec::exact("dropt", vec![idx], 4), stage);
        b.add_exact_entry(
            d,
            vec![slot % shape.slots as u64],
            Action::new("drop").with(Primitive::Drop),
        )
        .unwrap();
    }
    (b.build().unwrap(), fields)
}

/// Runs one schedule through both paths and asserts full-state equality.
fn assert_equivalent(shape: &Shape, burst: usize, packets: &[(u32, u16, u8)]) {
    let (p, fields) = build(shape);
    let mut scalar = Pipeline::new(p.clone());
    let mut wave = Pipeline::new(p);
    wave.set_burst(burst, shape.slots);
    let mut stats = WaveStats::default();
    let mut expected = WaveStats::default();
    for (i, &(flow, pay, dsel)) in packets.iter().enumerate() {
        let frame = PacketBuilder::tcp(
            0x0a00_0000 + flow,
            0x0b00_0000 + flow * 3,
            1000 + flow as u16,
            2 + dsel as u16,
        )
        .payload(pay * 37)
        .flow_size(1 + pay)
        .build();
        let ts = i as u64 * 17;
        let out = scalar.process_frame(&frame, ts, &fields).unwrap();
        wave.wave_push(&frame, ts, &fields, &mut stats).unwrap();
        expected.packets += 1;
        match out.disposition {
            Disposition::Drop => expected.drops += 1,
            Disposition::ResubmitLimit => expected.resubmit_limited += 1,
            Disposition::Forward => {}
        }
    }
    wave.wave_flush(&fields, &mut stats);
    assert_eq!(wave.wave_len(), 0, "flush must empty the arena");
    assert_eq!(stats, expected, "wave dispositions must match scalar outcomes");
    assert_eq!(scalar.meters(), wave.meters(), "meters must match");
    for r in 0..scalar.registers().len() {
        for s in 0..shape.slots {
            assert_eq!(
                scalar.registers().read(r, s),
                wave.registers().read(r, s),
                "register {r} slot {s} diverged"
            );
        }
    }
    assert_eq!(
        scalar.take_digests(),
        wave.take_digests(),
        "digest streams must be identical, order included"
    );
    for (ts, tw) in scalar.program().tables().iter().zip(wave.program().tables()) {
        assert_eq!(ts.misses(), tw.misses(), "table miss counts diverged");
        for (es, ew) in ts.entries().iter().zip(tw.entries()) {
            assert_eq!(es.hits, ew.hits, "table entry hit counts diverged");
        }
    }
}

proptest! {
    #[test]
    fn burst_execution_equals_scalar(
        (slots_sel, owner, resubmit, drop_sel, burst) in
            (0u32..3, any::<bool>(), 0u8..3, 0u64..8, 1usize..65),
        ops in proptest::collection::vec(0u8..32, 1..4),
        packets in proptest::collection::vec((0u32..12, 0u16..3, 0u8..2), 1..80),
    ) {
        let shape = Shape {
            slots: 4usize << slots_sel,
            owner,
            resubmit,
            // drop_sel 4..8 = no drop table; 0..4 = drop that flow slot.
            drop_slot: (drop_sel < 4).then_some(drop_sel),
            ops,
        };
        assert_equivalent(&shape, burst, &packets);
    }
}

/// Deterministic digest-order check: a resubmit-heavy multi-flow wave
/// must flush its digests **in arrival order**, packet by packet — not
/// grouped by plan slot or pass — bit-identical to the scalar stream.
#[test]
fn wave_digests_flush_in_arrival_order() {
    const SLOTS: usize = 16;
    let shape = Shape { slots: SLOTS, owner: true, resubmit: 1, drop_slot: None, ops: vec![0, 1] };
    let (p, fields) = build(&shape);
    let mut scalar = Pipeline::new(p.clone());
    let mut wave = Pipeline::new(p);
    wave.set_burst(8, SLOTS);
    let mut stats = WaveStats::default();
    // Nine distinct flows, all digest-emitting, interleaved twice.
    let packets: Vec<_> = (0..18u32).map(|i| (i % 9, 1u16, 0u8)).collect();
    let mut arrival_idx = Vec::new();
    for (i, &(flow, pay, dsel)) in packets.iter().enumerate() {
        let frame = PacketBuilder::tcp(
            0x0a00_0000 + flow,
            0x0b00_0000 + flow * 3,
            1000 + flow as u16,
            2 + dsel as u16,
        )
        .payload(pay * 37)
        .build();
        let out = scalar.process_frame(&frame, i as u64, &fields).unwrap();
        assert_eq!(out.disposition, Disposition::Forward);
        wave.wave_push(&frame, i as u64, &fields, &mut stats).unwrap();
        arrival_idx.push(scalar.take_digests());
    }
    wave.wave_flush(&fields, &mut stats);
    // Scalar digests, re-concatenated in arrival order, are the spec.
    let expect: Vec<_> = arrival_idx.into_iter().flatten().collect();
    let got = wave.take_digests();
    assert_eq!(got, expect, "wave digest stream must equal the arrival-order scalar stream");
    // Both count-table passes emit per packet per pass (first + resubmit).
    assert_eq!(got.len(), packets.len() * 2 * 2);
}
