//! The compiled execution plan: the per-packet schedule of a [`Program`],
//! flattened once at pipeline instantiation so the hot path never touches
//! the heap.
//!
//! A match-action program's schedule is fixed at compile time — the set of
//! tables a packet visits, their order, and the action bound to every entry
//! never change while the pipeline runs (pForest makes the same
//! observation for P4 programs; NeuroCuts for software classifiers). The
//! interpreter used to re-discover that schedule per packet: it cloned each
//! stage's table-id vector and heap-cloned an [`Action`] out of the matched
//! entry on **every lookup of every packet**. [`ExecPlan`] hoists all of
//! that to construction time:
//!
//! * the stage→table schedule flattens into a contiguous slab of
//!   [`PlanSlot`]s walked by index;
//! * every distinct action (entry actions and per-table defaults) is
//!   interned once into an action arena and referenced by [`ActionId`];
//! * per-slot entry→action maps live in one flat `entry_actions` slab
//!   (slot offsets, no nested `Vec`s);
//! * the PHV fields the `HashFlow` primitive needs are resolved from the
//!   layout by name once, not per packet.
//!
//! The pipeline executes actions *by reference* into the arena with split
//! borrows for the hit/miss counters, so the steady-state packet path
//! performs zero heap allocations (verified by the counting-allocator
//! harness in `splidt-bench`).
//!
//! Alongside the action arena the plan compiles one
//! [`MatchIndex`] per table — the sub-linear
//! lookup structures (packed-key exact maps, elementary-interval range
//! indexes, priority-ranked bucketed ternary) the hot path dispatches
//! through instead of scanning installed entries. Runtime entry
//! installation goes through
//! [`Pipeline::install_entry`](crate::pipeline::Pipeline::install_entry),
//! which invalidates and rebuilds the whole plan (indexes included).

use crate::action::Action;
use crate::index::MatchIndex;
use crate::phv::FieldId;
use crate::program::Program;
use crate::register::BankLayout;
use std::collections::HashMap;

/// Index of an interned action in an [`ExecPlan`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionId(u32);

impl ActionId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One table application in the flattened schedule.
#[derive(Debug, Clone, Copy)]
pub struct PlanSlot {
    /// Index of the table in the program's table list.
    pub table: u32,
    /// Interned id of the table's default (miss) action.
    pub default_action: ActionId,
    /// Offset of this slot's entry→action ids in the plan's flat
    /// entry-action slab (resolved via [`ExecPlan::entry_action`]).
    pub entries_start: u32,
    /// Number of entry→action ids (== the table's installed entry count).
    pub entries_len: u32,
}

/// Pre-resolved PHV field ids for the `HashFlow` primitive (the canonical
/// 5-tuple). `None` when the program's layout lacks the standard fields —
/// legal as long as no `HashFlow` action ever executes.
#[derive(Debug, Clone, Copy)]
pub struct HashFlowFields {
    /// `ipv4.src`.
    pub src_ip: FieldId,
    /// `ipv4.dst`.
    pub dst_ip: FieldId,
    /// `l4.sport`.
    pub sport: FieldId,
    /// `l4.dport`.
    pub dport: FieldId,
    /// `ipv4.proto`.
    pub proto: FieldId,
}

/// A compiled, immutable execution schedule for one [`Program`].
///
/// Built once by [`ExecPlan::build`] (the pipeline does this at
/// instantiation); thereafter the packet loop only indexes into it.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    slots: Vec<PlanSlot>,
    entry_actions: Vec<ActionId>,
    actions: Vec<Action>,
    /// Compiled lookup index per table (indexed by table index).
    indexes: Vec<MatchIndex>,
    hash_flow: Option<HashFlowFields>,
    max_key_fields: usize,
    max_mask_words: usize,
    /// Compile-time flow-bank assignment: each logical register's
    /// `(bank, offset, width)` placement, computed here so cell
    /// addressing (`base + slot * stride + offset`) is fixed before the
    /// first packet. The pipeline's [`RegisterFile`](crate::register::RegisterFile)
    /// materializes exactly this layout.
    bank: BankLayout,
}

impl ExecPlan {
    /// Flattens `program`'s stage→table schedule and interns every action.
    pub fn build(program: &Program) -> Self {
        let mut actions: Vec<Action> = Vec::new();
        let mut entry_actions: Vec<ActionId> = Vec::new();
        let mut slots: Vec<PlanSlot> = Vec::new();
        // Structural interning: identical actions (compilers emit the same
        // action under thousands of expanded ternary keys) share one arena
        // entry.
        let mut interned: HashMap<Action, ActionId> = HashMap::new();
        let mut intern = |a: &Action, actions: &mut Vec<Action>| -> ActionId {
            *interned.entry(a.clone()).or_insert_with(|| {
                actions.push(a.clone());
                ActionId(actions.len() as u32 - 1)
            })
        };
        let mut max_key_fields = 0usize;
        for stage in program.stages() {
            for &tid in &stage.tables {
                let table = program.table(tid);
                max_key_fields = max_key_fields.max(table.spec().key.len());
                let entries_start = entry_actions.len() as u32;
                for e in table.entries() {
                    let id = intern(&e.action, &mut actions);
                    entry_actions.push(id);
                }
                slots.push(PlanSlot {
                    table: tid.index() as u32,
                    default_action: intern(table.default_action(), &mut actions),
                    entries_start,
                    entries_len: table.n_entries() as u32,
                });
            }
        }
        let indexes: Vec<MatchIndex> = program.tables().iter().map(MatchIndex::build).collect();
        let max_mask_words = indexes.iter().map(MatchIndex::mask_words).max().unwrap_or(0);
        let layout = program.layout();
        let hash_flow = match (
            layout.by_name("ipv4.src"),
            layout.by_name("ipv4.dst"),
            layout.by_name("l4.sport"),
            layout.by_name("l4.dport"),
            layout.by_name("ipv4.proto"),
        ) {
            (Some(src_ip), Some(dst_ip), Some(sport), Some(dport), Some(proto)) => {
                Some(HashFlowFields { src_ip, dst_ip, sport, dport, proto })
            }
            _ => None,
        };
        let bank = BankLayout::assign(program.registers());
        // Flow-indexed registers must share the slot domain for banking
        // to coalesce them: every register an `OwnerUpdate` touches is
        // per-flow by definition, so if any exists, all same-length
        // register groups that contain one must have banked together
        // (BankLayout groups strictly by `len`, so this amounts to the
        // ownership lane not being a singleton when flow state exists).
        debug_assert!(
            {
                let owner_lens: Vec<usize> = actions
                    .iter()
                    .flat_map(|a| a.prims.iter())
                    .filter_map(|p| match p {
                        crate::action::Primitive::OwnerUpdate { reg, .. } => {
                            Some(program.registers()[reg.index()].len)
                        }
                        _ => None,
                    })
                    .collect();
                owner_lens.windows(2).all(|w| w[0] == w[1])
            },
            "ownership lanes must share one slot domain"
        );
        Self {
            slots,
            entry_actions,
            actions,
            indexes,
            hash_flow,
            max_key_fields,
            max_mask_words,
            bank,
        }
    }

    /// The flattened schedule, in execution order.
    pub fn slots(&self) -> &[PlanSlot] {
        &self.slots
    }

    /// The interned action arena.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// An interned action by id.
    pub fn action(&self, id: ActionId) -> &Action {
        &self.actions[id.index()]
    }

    /// The action bound to entry `entry` of slot `slot`.
    pub fn entry_action(&self, slot: &PlanSlot, entry: usize) -> ActionId {
        debug_assert!(entry < slot.entries_len as usize);
        self.entry_actions[slot.entries_start as usize + entry]
    }

    /// Pre-resolved `HashFlow` fields (if the layout carries them).
    pub fn hash_flow(&self) -> Option<HashFlowFields> {
        self.hash_flow
    }

    /// Widest table key (fields) in the schedule — the capacity the
    /// pipeline's reusable key scratch buffer needs.
    pub fn max_key_fields(&self) -> usize {
        self.max_key_fields
    }

    /// The compiled lookup index of table `table` (a raw table index, as
    /// carried by [`PlanSlot::table`]).
    pub fn match_index(&self, table: usize) -> &MatchIndex {
        &self.indexes[table]
    }

    /// Widest intersection bitmask (in `u64` words) any index needs —
    /// the capacity of the pipeline's reusable mask scratch buffer.
    pub fn max_mask_words(&self) -> usize {
        self.max_mask_words
    }

    /// The compile-time flow-bank layout (per-register `(bank, offset,
    /// width)` placements).
    pub fn bank_layout(&self) -> &BankLayout {
        &self.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Primitive;
    use crate::program::ProgramBuilder;
    use crate::table::TableSpec;

    #[test]
    fn flattens_schedule_in_stage_order() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        let t1 = b.add_table(TableSpec::exact("later", vec![f], 4), 1);
        let t0 = b.add_table(TableSpec::exact("earlier", vec![f], 4), 0);
        b.add_exact_entry(t0, vec![1], Action::new("a")).unwrap();
        b.add_exact_entry(t1, vec![2], Action::new("b")).unwrap();
        let p = b.build().unwrap();
        let plan = ExecPlan::build(&p);
        // stage 0's table first even though it was declared second
        assert_eq!(plan.slots().len(), 2);
        assert_eq!(plan.slots()[0].table as usize, t0.index());
        assert_eq!(plan.slots()[1].table as usize, t1.index());
        assert_eq!(plan.max_key_fields(), 1);
    }

    #[test]
    fn interns_identical_actions_once() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        let out = b.add_meta("out", 8);
        let t = b.add_table(TableSpec::exact("t", vec![f], 8), 0);
        // Three entries sharing one structurally identical action.
        for v in 0..3 {
            b.add_exact_entry(t, vec![v], Action::new("same").with(Primitive::set_const(out, 7)))
                .unwrap();
        }
        let p = b.build().unwrap();
        let plan = ExecPlan::build(&p);
        let slot = plan.slots()[0];
        let first = plan.entry_action(&slot, 0);
        assert_eq!(plan.entry_action(&slot, 1), first);
        assert_eq!(plan.entry_action(&slot, 2), first);
        // arena: the shared action + the nop default
        assert_eq!(plan.actions().len(), 2);
    }

    #[test]
    fn resolves_hash_flow_fields_only_with_standard_layout() {
        let mut b = ProgramBuilder::new();
        b.add_meta("f", 8);
        let plain = ExecPlan::build(&b.build().unwrap());
        assert!(plain.hash_flow().is_none());

        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let p = b.build().unwrap();
        let std_plan = ExecPlan::build(&p);
        let hf = std_plan.hash_flow().expect("standard fields resolve");
        assert_eq!(hf.src_ip, fields.ipv4_src);
        assert_eq!(hf.proto, fields.ip_proto);
    }
}
