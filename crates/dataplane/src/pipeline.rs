//! Pipeline execution: packets (or raw PHVs) walk the stages, hit tables,
//! mutate registers, and may **resubmit** (recirculate) or emit **digests**.
//!
//! Resubmission is SpliDT's in-band control channel (paper §3.1.3): at a
//! window boundary the prediction tables mark the packet for resubmission;
//! the next pass sees `is_resubmit = 1`, and the resubmit-apply table
//! updates the subtree-id register and clears the feature registers. The
//! pipeline meters every resubmission so recirculation bandwidth is
//! directly observable.
//!
//! ## Execution model
//!
//! At instantiation the pipeline compiles its program's fixed schedule into
//! an [`ExecPlan`] — a flat slab of table indices and interned action ids —
//! and the steady-state packet path ([`Pipeline::process_frame`], which
//! [`Pipeline::process_packet`] and [`Pipeline::process_phv`] share) walks
//! that slab with **zero heap allocations per packet**: lookups fill a
//! reusable key scratch buffer, parsed headers land in a reusable PHV, and
//! actions execute by [`ActionId`](crate::plan::ActionId) reference with
//! split borrows for hit/miss counters instead of cloning an [`Action`]
//! per table visit. The original entry-walking interpreter survives as
//! [`Pipeline::process_phv_entrywalk`], the reference implementation the
//! differential proptests compare the plan against.

use crate::action::{Action, AluOut, Primitive, Source};
use crate::parser::{parse, parse_into, ParseError, StandardFields};
use crate::phv::{FieldId, Phv, PhvLayout};
use crate::plan::ExecPlan;
use crate::program::Program;
use crate::register::RegisterFile;
use crate::table::{EntryKey, TableError, TableId};

/// What happened to a packet after its final pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Forwarded out of the pipeline.
    Forward,
    /// Dropped by an action.
    Drop,
    /// Resubmit was requested but the loop bound was hit (safety stop; a
    /// correct SpliDT program never triggers this).
    ResubmitLimit,
}

/// A digest record pushed to the controller (the materialized, owned
/// form — what [`Pipeline::take_digests`] hands out per batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    /// Ingress timestamp (µs) of the pass that emitted the digest.
    pub ts_us: u64,
    /// Values of the program's digest fields, in declaration order.
    pub values: Vec<u64>,
}

/// A borrowed view of one pending digest inside a [`DigestBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestRef<'a> {
    /// Ingress timestamp (µs) of the pass that emitted the digest.
    pub ts_us: u64,
    /// Values of the program's digest fields, in declaration order.
    pub values: &'a [u64],
}

/// The pipeline's pending-digest ring: a flat structure-of-arrays buffer
/// (one timestamp lane plus one contiguous `values` arena with a fixed
/// per-record stride — the program's digest-field count).
///
/// Boundary packets used to allocate a `Vec<u64>` per emitted digest
/// (~0.03 allocs/packet on the fixture); pushing into this buffer is
/// allocation-free once its capacity is warm, and the warm capacity
/// survives [`DigestBuf::clear`] — so a drain-per-batch regime reaches a
/// zero-allocation steady state, digests included (asserted by the
/// `hotpath_smoke` digest probe).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DigestBuf {
    /// Values per record (the digest-field count; may be 0).
    stride: usize,
    /// Per-record emission timestamps.
    ts: Vec<u64>,
    /// Flat value arena, `stride` per record.
    values: Vec<u64>,
}

impl DigestBuf {
    /// An empty buffer for records of `stride` values.
    pub fn with_stride(stride: usize) -> Self {
        Self { stride, ts: Vec::new(), values: Vec::new() }
    }

    /// Values per record.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Pending record count.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether no digests are pending.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Timestamp of record `i`.
    pub fn ts_us(&self, i: usize) -> u64 {
        self.ts[i]
    }

    /// Values of record `i`.
    pub fn values(&self, i: usize) -> &[u64] {
        &self.values[i * self.stride..(i + 1) * self.stride]
    }

    /// Iterates pending records as borrowed views (no allocation).
    pub fn iter(&self) -> impl Iterator<Item = DigestRef<'_>> {
        (0..self.len()).map(move |i| DigestRef { ts_us: self.ts_us(i), values: self.values(i) })
    }

    /// Drops all pending records, keeping the warm capacity.
    pub fn clear(&mut self) {
        self.ts.clear();
        self.values.clear();
    }

    /// Materializes pending records as owned [`Digest`]s (allocates; the
    /// per-batch drain path, not the per-packet push path).
    pub fn to_vec(&self) -> Vec<Digest> {
        (0..self.len())
            .map(|i| Digest { ts_us: self.ts_us(i), values: self.values(i).to_vec() })
            .collect()
    }

    /// Appends one record. Allocation-free once capacity is warm.
    pub(crate) fn push(&mut self, ts_us: u64, values: impl IntoIterator<Item = u64>) {
        self.ts.push(ts_us);
        self.values.extend(values);
        debug_assert_eq!(self.values.len(), self.ts.len() * self.stride);
    }

    /// Moves every record of `other` to the end of this buffer, leaving
    /// `other` empty (warm capacity kept on both sides). Allocation-free
    /// once capacities are warm — the wave executor uses this to flush
    /// per-packet staging buffers into the pipeline ring in arrival
    /// order.
    pub(crate) fn append_from(&mut self, other: &mut DigestBuf) {
        debug_assert_eq!(self.stride, other.stride, "digest strides must match");
        self.ts.extend_from_slice(&other.ts);
        self.values.extend_from_slice(&other.values);
        other.clear();
    }
}

/// Aggregate pipeline meters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Meters {
    /// Packets submitted (not counting resubmission passes).
    pub packets: u64,
    /// Total bytes submitted.
    pub bytes: u64,
    /// Total pipeline passes (packets + resubmissions).
    pub passes: u64,
    /// Resubmission events.
    pub resubmissions: u64,
    /// Bytes carried by resubmitted passes (frame length at resubmit time).
    pub resubmit_bytes: u64,
    /// Packets dropped.
    pub drops: u64,
    /// Digests emitted.
    pub digests: u64,
    /// Frames rejected by the parser (never entered the pipeline; not
    /// counted in `packets`/`bytes`).
    pub malformed: u64,
}

impl Meters {
    /// Accumulates another meter set into this one — used when merging
    /// per-shard pipelines into one aggregate report.
    pub fn merge(&mut self, other: &Meters) {
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.passes += other.passes;
        self.resubmissions += other.resubmissions;
        self.resubmit_bytes += other.resubmit_bytes;
        self.drops += other.drops;
        self.digests += other.digests;
        self.malformed += other.malformed;
    }
}

/// Result of processing one packet to completion (including resubmissions).
#[derive(Debug, Clone)]
pub struct ProcessOutcome {
    /// Final PHV state.
    pub phv: Phv,
    /// Final disposition.
    pub disposition: Disposition,
    /// Number of passes the packet took (1 = no resubmission).
    pub passes: u32,
}

/// Result of processing one frame on the allocation-free batch path, which
/// recycles the PHV instead of returning it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameOutcome {
    /// Final disposition.
    pub disposition: Disposition,
    /// Number of passes the packet took (1 = no resubmission).
    pub passes: u32,
}

/// Aggregate outcomes of burst (wave) execution, accumulated across
/// [`Pipeline::wave_push`] / [`Pipeline::wave_flush`] calls. The wave
/// path reports dispositions in aggregate (it retires whole waves, not
/// single packets), so the per-packet [`FrameOutcome`] has no burst
/// analogue — callers that need per-packet dispositions use the scalar
/// path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Parsed frames whose wave has completed (malformed frames never
    /// enter a wave and are counted only in [`Meters::malformed`]).
    pub packets: u64,
    /// Packets dropped by an action.
    pub drops: u64,
    /// Packets that hit the resubmit safety limit.
    pub resubmit_limited: u64,
}

impl WaveStats {
    /// Accumulates another stats set into this one.
    pub fn merge(&mut self, other: &WaveStats) {
        self.packets += other.packets;
        self.drops += other.drops;
        self.resubmit_limited += other.resubmit_limited;
    }
}

/// One packet slot in the wave arena: its parsed PHV, staged digests,
/// and per-pass resubmission bookkeeping.
#[derive(Debug)]
struct WavePacket {
    /// Parsed headers + metadata (reused across waves; never freed).
    phv: Phv,
    /// Digests this packet emitted, staged per-packet so the pipeline
    /// ring can be filled in arrival order at wave end.
    digests: DigestBuf,
    /// Ingress timestamp of the packet.
    ts_us: u64,
    /// Conflict key (canonical flow slot under `conflict_slots`): two
    /// packets with equal keys never share a wave.
    key: u64,
    /// Passes taken so far (resubmission counter).
    passes: u32,
    /// Still executing (not yet forwarded/dropped/limited).
    live: bool,
    /// Resubmit requested in the current pass.
    resubmit: bool,
    /// Drop requested in the current pass.
    drop: bool,
}

/// One resolved lookup in the per-slot lookup scratch.
#[derive(Debug, Clone, Copy)]
struct WaveLookup {
    /// Wave arena index of the packet.
    pkt: u32,
    /// Hit entry index, or `u32::MAX` for a miss.
    entry: u32,
    /// The interned action to execute.
    aid: crate::plan::ActionId,
}

/// One push-time prefetch the wave executor issues per packet once its
/// conflict key is known.
#[derive(Debug, Clone, Copy)]
enum PrefetchOp {
    /// Line `line` of the slot's stride in flow bank `bank` — with
    /// banking this is the whole per-flow prefetch plan: **one** op for
    /// ≤64B of coalesced state, two when the bank spills a line.
    BankLine { bank: u16, line: u8 },
    /// A split [`crate::register::RegisterArray`] spanning the
    /// conflict-key domain (programs whose flow state didn't coalesce),
    /// identified by its logical register index.
    Array { reg: u32 },
}

/// The preallocated wave arena: `burst + 1` packet slots (the extra slot
/// lets [`Pipeline::wave_push`] parse the incoming frame before deciding
/// whether it cuts the wave) plus the per-slot lookup scratch.
#[derive(Debug)]
struct WaveScratch {
    pkts: Vec<WavePacket>,
    /// Packets currently accumulated (wave occupancy, not arena size).
    len: usize,
    /// Max packets per wave.
    burst: usize,
    /// Modulus of the conflict-key domain (see [`Pipeline::set_burst`]).
    conflict_slots: usize,
    /// Reusable per-slot lookup results (lookup phase → exec phase).
    lookups: Vec<WaveLookup>,
    /// Push-time prefetches for per-flow state at a packet's conflict
    /// key: bank lines first (each covers every coalesced register of
    /// the slot), then any residual split arrays.
    prefetch: Vec<PrefetchOp>,
}

/// Builds a wave arena for `program`/`plan`. Programs without the
/// standard flow fields (no [`ExecPlan::hash_flow`]) cannot compute
/// conflict keys, so their burst is forced to 1 — singleton waves are
/// trivially scalar-equivalent.
fn new_wave(
    program: &Program,
    plan: &ExecPlan,
    regs: &RegisterFile,
    burst: usize,
    conflict_slots: usize,
) -> WaveScratch {
    let burst = if plan.hash_flow().is_some() { burst.max(1) } else { 1 };
    let stride = program.digest_fields().len();
    let pkts = (0..burst + 1)
        .map(|_| WavePacket {
            phv: program.layout().new_phv(),
            digests: DigestBuf::with_stride(stride),
            ts_us: 0,
            key: 0,
            passes: 0,
            live: false,
            resubmit: false,
            drop: false,
        })
        .collect();
    // Prefetch candidates are the state cells at a packet's conflict key
    // (the canonical flow slot), known at push time. With the banked
    // register file all per-flow registers of the conflict-key domain
    // share one arena, so the prefetch plan collapses to the bank's
    // line(s) — one op covers the owner lane, pressure word, and every
    // feature cell of the slot at once (two ops when the stride spills a
    // line). Residual split arrays spanning the domain (programs whose
    // flow state didn't coalesce, or the split reference layout) follow,
    // ownership-path arrays first — every packet reads its owner lane in
    // its first pass, so those lines are guaranteed useful. The list is
    // capped: a wave's worth of prefetches already crowds the CPU's
    // handful of line-fill buffers.
    const PREFETCH_OPS: usize = 4;
    let mut prefetch: Vec<PrefetchOp> = Vec::new();
    for (bi, bank) in regs.banks().iter().enumerate() {
        if bank.desc().slots == conflict_slots {
            for line in 0..bank.desc().lines_per_slot().min(PREFETCH_OPS) {
                prefetch.push(PrefetchOp::BankLine { bank: bi as u16, line: line as u8 });
            }
        }
    }
    let mut split_regs: Vec<u32> = plan
        .actions()
        .iter()
        .flat_map(|a| a.prims.iter())
        .filter_map(|p| match p {
            Primitive::OwnerUpdate { reg, .. } => Some(reg.index() as u32),
            _ => None,
        })
        .filter(|&r| program.registers()[r as usize].len == conflict_slots)
        .fold(Vec::new(), |mut acc, r| {
            if !acc.contains(&r) {
                acc.push(r);
            }
            acc
        });
    for (i, spec) in program.registers().iter().enumerate() {
        if prefetch.len() + split_regs.len() >= PREFETCH_OPS {
            break;
        }
        if spec.len == conflict_slots && !split_regs.contains(&(i as u32)) {
            split_regs.push(i as u32);
        }
    }
    for r in split_regs {
        if regs.split_array(r as usize).is_some() {
            prefetch.push(PrefetchOp::Array { reg: r });
        }
    }
    prefetch.truncate(PREFETCH_OPS);
    WaveScratch {
        pkts,
        len: 0,
        burst,
        conflict_slots: conflict_slots.max(1),
        lookups: Vec::with_capacity(burst + 1),
        prefetch,
    }
}

/// Which interpreter executes a pass (plan-driven vs the reference).
#[derive(Debug, Clone, Copy)]
enum ExecMode {
    /// The compiled [`ExecPlan`] slab (steady-state, allocation-free).
    Plan,
    /// The original entry-walking interpreter (clones per lookup) — kept as
    /// the reference implementation for differential testing.
    EntryWalk,
}

/// An executing pipeline: a program, its compiled execution plan, and live
/// register state.
#[derive(Debug)]
pub struct Pipeline {
    program: Program,
    plan: ExecPlan,
    regs: RegisterFile,
    digests: DigestBuf,
    meters: Meters,
    /// Reusable table-key buffer (sized to the widest key in the plan).
    key_scratch: Vec<u64>,
    /// Reusable candidate-bitmask buffer for the compiled match indexes
    /// (sized to the widest intersection any index needs).
    mask_scratch: Vec<u64>,
    /// Reusable PHV for the frame batch path.
    phv_scratch: Phv,
    /// Preallocated wave arena for burst (stage-major) execution.
    wave: WaveScratch,
}

impl Pipeline {
    /// Instantiates register state for a program and compiles its
    /// execution plan (schedule, action arena, per-table match indexes,
    /// and the flow-bank layout the register file materializes).
    pub fn new(program: Program) -> Self {
        Self::with_layout(program, true)
    }

    /// Instantiates with the **split** (one-array-per-register) state
    /// layout — the pre-banking representation, kept as the reference
    /// the `banked_equals_split` differential proptest (and the bench's
    /// banked-vs-split comparison) runs against.
    pub fn new_split(program: Program) -> Self {
        Self::with_layout(program, false)
    }

    fn with_layout(program: Program, banked: bool) -> Self {
        let regs = if banked {
            RegisterFile::new_banked(program.registers())
        } else {
            RegisterFile::new_split(program.registers())
        };
        let plan = ExecPlan::build(&program);
        let key_scratch = Vec::with_capacity(plan.max_key_fields());
        let mask_scratch = Vec::with_capacity(plan.max_mask_words());
        let phv_scratch = program.layout().new_phv();
        let digests = DigestBuf::with_stride(program.digest_fields().len());
        let wave = new_wave(&program, &plan, &regs, 1, 1);
        Self {
            program,
            plan,
            regs,
            digests,
            meters: Meters::default(),
            key_scratch,
            mask_scratch,
            phv_scratch,
            wave,
        }
    }

    /// Installs an entry into a table of the **running** pipeline — the
    /// controller-style runtime rule update. The compiled execution plan
    /// (entry→action arena and the table's match index) is invalidated
    /// and rebuilt, so the next packet sees the new rule; this is a
    /// control-plane cost (full plan rebuild), never a per-packet one.
    pub fn install_entry(
        &mut self,
        table: TableId,
        key: EntryKey,
        action: Action,
    ) -> Result<(), TableError> {
        assert_eq!(self.wave.len, 0, "install_entry with a wave in flight; wave_flush first");
        self.program.tables_mut()[table.index()].install(key, action)?;
        self.plan = ExecPlan::build(&self.program);
        self.key_scratch = Vec::with_capacity(self.plan.max_key_fields());
        self.mask_scratch = Vec::with_capacity(self.plan.max_mask_words());
        Ok(())
    }

    /// Atomically replaces the running program — the pForest-style live
    /// model swap. The new program's tables and compiled plan take over
    /// while **live flow state survives**:
    ///
    /// * register arrays present in both programs under the same
    ///   `(name, width, len, cap)` spec keep their contents (ownership
    ///   lanes, packet/window counters, feature slots); arrays only the new
    ///   program declares start zeroed, and arrays only the old one had are
    ///   dropped — model-dependent registers may differ between
    ///   compilations, so state is matched **by spec, never by index**;
    /// * pending digests stay in the ring (the new program must emit the
    ///   same digest stride);
    /// * meters accumulate across the flip;
    /// * for every `(old, new)` pair in `carry_tables`, per-entry hit
    ///   counters and the miss counter carry from the old program's table
    ///   to the new one's (see
    ///   [`Table::carry_stats_from`](crate::table::Table::carry_stats_from))
    ///   — used for the lifecycle
    ///   MAT, whose entries are policy-determined and identical across
    ///   recompiles.
    ///
    /// The execution plan, match indexes, and scratch buffers are rebuilt
    /// from the new program — a control-plane cost (same as
    /// [`Pipeline::install_entry`]), never a per-packet one.
    pub fn swap_program(&mut self, mut program: Program, carry_tables: &[(TableId, TableId)]) {
        assert_eq!(self.wave.len, 0, "swap_program with a wave in flight; wave_flush first");
        assert_eq!(
            program.digest_fields().len(),
            self.digests.stride(),
            "swap must preserve the digest record stride"
        );
        let mut regs = if self.regs.is_banked() {
            RegisterFile::new_banked(program.registers())
        } else {
            RegisterFile::new_split(program.registers())
        };
        regs.carry_from(&self.regs);
        for &(old_id, new_id) in carry_tables {
            let old = self.program.table(old_id);
            program.tables_mut()[new_id.index()].carry_stats_from(old);
        }
        self.program = program;
        self.regs = regs;
        self.plan = ExecPlan::build(&self.program);
        self.key_scratch = Vec::with_capacity(self.plan.max_key_fields());
        self.mask_scratch = Vec::with_capacity(self.plan.max_mask_words());
        self.phv_scratch = self.program.layout().new_phv();
        // The arena's PHVs follow the new program's layout; the burst
        // configuration survives the flip.
        self.wave = new_wave(
            &self.program,
            &self.plan,
            &self.regs,
            self.wave.burst,
            self.wave.conflict_slots,
        );
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The compiled execution plan.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// The live register file (for assertions and controller-style
    /// reads): `registers().read(reg, slot)` regardless of whether the
    /// register landed in a flow bank or a split array.
    pub fn registers(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable register access (controller-style writes — lane releases,
    /// test setup).
    pub fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Pending digests (the flat ring buffer; iterate with
    /// [`DigestBuf::iter`] for allocation-free access).
    pub fn digests(&self) -> &DigestBuf {
        &self.digests
    }

    /// Drains all pending digests, materializing them as owned
    /// [`Digest`] records (the per-batch drain path — allocates for the
    /// returned `Vec`s, never on the per-packet push path). The ring's
    /// warm capacity is kept.
    pub fn take_digests(&mut self) -> Vec<Digest> {
        let out = self.digests.to_vec();
        self.digests.clear();
        out
    }

    /// Drops all pending digests without materializing them, keeping the
    /// ring's warm capacity (allocation-free batch disposal).
    pub fn clear_digests(&mut self) {
        self.digests.clear();
    }

    /// Aggregate meters.
    pub fn meters(&self) -> &Meters {
        &self.meters
    }

    /// Returns the pipeline to a fresh session in place: zeroes every
    /// register array, clears pending digests, meters, and table
    /// statistics. The program, its installed entries, and the compiled
    /// execution plan are untouched — this is the cheap alternative to
    /// re-instantiating from the compiled template (no table/entry clones).
    pub fn reset_state(&mut self) {
        // Whole-arena clear: every bank (padding included) and every
        // split array — a partial-bank clear would leak one flow's state
        // into the next session's slot.
        self.regs.clear();
        for t in self.program.tables_mut() {
            t.reset_stats();
        }
        self.digests.clear();
        self.meters = Meters::default();
        // Any accumulated (unflushed) wave packets are discarded with the
        // rest of the session; the warm arena is kept.
        self.wave.len = 0;
        for pkt in &mut self.wave.pkts {
            pkt.digests.clear();
        }
    }

    /// Parses a frame and processes it at time `ts_us`, returning the final
    /// PHV. Allocates the returned PHV; batch loops that do not need the
    /// PHV back should use [`Pipeline::process_frame`] instead.
    pub fn process_packet(
        &mut self,
        frame: &[u8],
        ts_us: u64,
        fields: &StandardFields,
    ) -> Result<ProcessOutcome, ParseError> {
        let mut phv = match parse(frame, self.program.layout(), fields) {
            Ok(phv) => phv,
            Err(e) => {
                self.meters.malformed += 1;
                return Err(e);
            }
        };
        phv.set(fields.ts_us, ts_us);
        self.meters.packets += 1;
        self.meters.bytes += frame.len() as u64;
        let (disposition, passes) = self.run_inplace(&mut phv, ts_us, Some(fields), ExecMode::Plan);
        Ok(ProcessOutcome { phv, disposition, passes })
    }

    /// Parses a frame into the pipeline's reusable PHV and processes it at
    /// time `ts_us` — the steady-state batch entry point: **zero heap
    /// allocations per packet** once scratch capacities are warm,
    /// including boundary packets that emit digests (records land in the
    /// flat [`DigestBuf`] ring, whose capacity survives per-batch
    /// drains).
    pub fn process_frame(
        &mut self,
        frame: &[u8],
        ts_us: u64,
        fields: &StandardFields,
    ) -> Result<FrameOutcome, ParseError> {
        // Take the scratch PHV out of `self` (a pointer swap, no
        // allocation) so it can be threaded through `run_inplace` while
        // `self` stays mutably borrowable.
        let mut phv = std::mem::take(&mut self.phv_scratch);
        let parsed = parse_into(frame, self.program.layout(), fields, &mut phv);
        if let Err(e) = parsed {
            self.phv_scratch = phv;
            self.meters.malformed += 1;
            return Err(e);
        }
        phv.set(fields.ts_us, ts_us);
        self.meters.packets += 1;
        self.meters.bytes += frame.len() as u64;
        let (disposition, passes) = self.run_inplace(&mut phv, ts_us, Some(fields), ExecMode::Plan);
        self.phv_scratch = phv;
        Ok(FrameOutcome { disposition, passes })
    }

    /// Configures burst (wave) execution for the frame path: up to
    /// `burst` packets accumulate in a preallocated arena and execute
    /// **stage-major** — the compiled plan is walked once per wave, each
    /// slot's table spec and match index hoisted out of a tight
    /// per-packet loop — instead of packet-major. `burst == 1` (the
    /// construction default) degenerates to scalar execution through the
    /// same machinery.
    ///
    /// ## Caller contract (what makes a wave safe)
    ///
    /// Two packets share a wave only if their **conflict keys** differ:
    /// the canonical-flow-tuple index under `conflict_slots`
    /// (`flow_index(canonical 5-tuple) % conflict_slots`). Stage-major
    /// execution reorders work *between* packets of a wave, so the
    /// caller must guarantee that packets with distinct conflict keys
    /// touch **disjoint register state**. That holds whenever every
    /// packet-dependent register index in the program derives from
    /// `HashFlow { salt: 0, mask }` with `conflict_slots` dividing
    /// `mask + 1` (both powers of two): keys that differ under the
    /// smaller modulus differ under every multiple of it, so same-wave
    /// packets can never alias a register slot. SpliDT-compiled engine
    /// programs index all flow state by the canonical flow slot, so the
    /// engine passes `conflict_slots = flow_slots` and the contract
    /// holds by construction. Same-key packets (and every packet of a
    /// program without the standard flow fields, where `burst` is forced
    /// to 1) are serialized in arrival order across waves, so their
    /// register read/write chains are exactly the scalar ones.
    ///
    /// Panics if a wave is in flight (call [`Pipeline::wave_flush`]
    /// first).
    pub fn set_burst(&mut self, burst: usize, conflict_slots: usize) {
        assert_eq!(self.wave.len, 0, "set_burst with a wave in flight; wave_flush first");
        self.wave = new_wave(&self.program, &self.plan, &self.regs, burst, conflict_slots);
    }

    /// The configured wave capacity (1 = scalar).
    pub fn burst(&self) -> usize {
        self.wave.burst
    }

    /// Packets accumulated in the open wave (0 = quiesced).
    pub fn wave_len(&self) -> usize {
        self.wave.len
    }

    /// Parses a frame into the wave arena, running the accumulated wave
    /// first when it is full or when the frame's conflict key collides
    /// with a packet already in it (the **wave cut** that keeps same-slot
    /// packets serialized in arrival order). Malformed frames are
    /// metered and rejected without disturbing the open wave. Callers
    /// must [`Pipeline::wave_flush`] before observing registers, meters,
    /// digests, or table stats — packets may be parked here un-executed.
    ///
    /// Zero heap allocations per packet once arena and scratch
    /// capacities are warm (asserted by the `hotpath_smoke` burst
    /// probe).
    pub fn wave_push(
        &mut self,
        frame: &[u8],
        ts_us: u64,
        fields: &StandardFields,
        stats: &mut WaveStats,
    ) -> Result<(), ParseError> {
        let slot = self.wave.len;
        {
            let pkt = &mut self.wave.pkts[slot];
            if let Err(e) = parse_into(frame, self.program.layout(), fields, &mut pkt.phv) {
                self.meters.malformed += 1;
                return Err(e);
            }
            pkt.phv.set(fields.ts_us, ts_us);
            pkt.ts_us = ts_us;
        }
        self.meters.packets += 1;
        self.meters.bytes += frame.len() as u64;
        let key = match self.plan.hash_flow() {
            Some(hf) if self.wave.burst > 1 => {
                let phv = &self.wave.pkts[slot].phv;
                let (sip, dip, sp, dp) = crate::hash::canonical_order(
                    phv.get(hf.src_ip) as u32,
                    phv.get(hf.dst_ip) as u32,
                    phv.get(hf.sport) as u16,
                    phv.get(hf.dport) as u16,
                );
                let proto = phv.get(hf.proto) as u8;
                crate::hash::flow_index(sip, dip, sp, dp, proto, self.wave.conflict_slots) as u64
            }
            _ => 0,
        };
        self.wave.pkts[slot].key = key;
        if self.wave.burst > 1 {
            // The packet's per-flow state sits at its conflict key (the
            // canonical flow slot) — known right here, long before
            // execution. Issue the loads now so they resolve in parallel
            // while the rest of the wave accumulates (parse, hash, cut
            // checks): by wave execution the whole burst's state misses
            // have overlapped with the accumulation window.
            // Packet-at-a-time execution can't do this — it learns the
            // next packet's slot only after finishing the current one.
            // With the banked register file this is ONE prefetch per
            // packet (two if the bank spills a line): the slot's bank
            // stride covers the owner lane, pressure word, and every
            // feature cell at once, where the split layout needed one
            // line per array. Spreading the prefetches one packet per
            // push also keeps them inside the CPU's handful of line-fill
            // buffers; a full wave's worth issued at once at execution
            // start would mostly be dropped.
            for op in &self.wave.prefetch {
                match *op {
                    PrefetchOp::BankLine { bank, line } => {
                        self.regs.banks()[bank as usize].prefetch(key as usize, line as usize);
                    }
                    PrefetchOp::Array { reg } => {
                        if let Some(arr) = self.regs.split_array(reg as usize) {
                            arr.prefetch(key as usize);
                        }
                    }
                }
            }
        }
        let cut = slot == self.wave.burst || self.wave.pkts[..slot].iter().any(|p| p.key == key);
        if cut {
            self.run_wave(fields, stats);
            self.wave.pkts.swap(0, slot);
            self.wave.len = 1;
        } else {
            self.wave.len = slot + 1;
        }
        Ok(())
    }

    /// Runs whatever the open wave holds (possibly nothing) and leaves
    /// the pipeline quiesced: every pushed packet fully executed, its
    /// digests in the ring, meters and register state final.
    pub fn wave_flush(&mut self, fields: &StandardFields, stats: &mut WaveStats) {
        self.run_wave(fields, stats);
    }

    /// Executes the accumulated wave to completion — all passes,
    /// including queued resubmissions, which run as **follow-up waves**
    /// over the still-live packets before the arena is released.
    ///
    /// Stage-major structure per pass: for each plan slot, a *lookup
    /// phase* resolves every live packet's action with the slot's table
    /// spec and match index hoisted out of the loop, a *stats phase*
    /// applies hit/miss counters under one mutable table borrow, and an
    /// *execute phase* runs the interned actions in arrival order.
    /// Per-packet digests are staged in per-slot buffers and flushed to
    /// the pipeline ring in arrival order at wave end, so the global
    /// digest stream is bit-identical to scalar execution.
    fn run_wave(&mut self, fields: &StandardFields, stats: &mut WaveStats) {
        let n = self.wave.len;
        if n == 0 {
            return;
        }
        let limit = self.program.resubmit_limit();
        let Pipeline {
            program, plan, regs, digests, meters, key_scratch, mask_scratch, wave, ..
        } = self;
        for pkt in &mut wave.pkts[..n] {
            pkt.passes = 0;
            pkt.live = true;
        }
        let mut live = n;
        while live != 0 {
            for pkt in &mut wave.pkts[..n] {
                if pkt.live {
                    pkt.passes += 1;
                    meters.passes += 1;
                    pkt.resubmit = false;
                    pkt.drop = false;
                }
            }
            for si in 0..plan.slots().len() {
                let slot = plan.slots()[si];
                let ti = slot.table as usize;
                wave.lookups.clear();
                {
                    let keyspec = &program.tables()[ti].spec().key;
                    let midx = plan.match_index(ti);
                    for (i, pkt) in wave.pkts[..n].iter().enumerate() {
                        if !pkt.live {
                            continue;
                        }
                        key_scratch.clear();
                        for &f in keyspec {
                            key_scratch.push(pkt.phv.get(f));
                        }
                        let (aid, entry) = match midx.lookup(key_scratch, mask_scratch) {
                            Some(e) => (plan.entry_action(&slot, e), e as u32),
                            None => (slot.default_action, u32::MAX),
                        };
                        wave.lookups.push(WaveLookup { pkt: i as u32, entry, aid });
                    }
                }
                {
                    let t = &mut program.tables_mut()[ti];
                    for l in &wave.lookups {
                        match l.entry {
                            u32::MAX => t.record_miss(),
                            e => t.record_hit(e as usize),
                        }
                    }
                }
                for li in 0..wave.lookups.len() {
                    let l = wave.lookups[li];
                    let pkt = &mut wave.pkts[l.pkt as usize];
                    let mut effects = PassEffects { resubmit: pkt.resubmit, drop: pkt.drop };
                    exec_action(
                        plan.action(l.aid),
                        plan,
                        program.layout(),
                        program.digest_fields(),
                        regs,
                        &mut pkt.digests,
                        meters,
                        &mut pkt.phv,
                        pkt.ts_us,
                        &mut effects,
                    );
                    pkt.resubmit = effects.resubmit;
                    pkt.drop = effects.drop;
                }
            }
            for pkt in &mut wave.pkts[..n] {
                if !pkt.live {
                    continue;
                }
                if pkt.drop {
                    meters.drops += 1;
                    stats.drops += 1;
                    pkt.live = false;
                    live -= 1;
                } else if pkt.resubmit {
                    if pkt.passes as usize > limit {
                        stats.resubmit_limited += 1;
                        pkt.live = false;
                        live -= 1;
                    } else {
                        meters.resubmissions += 1;
                        meters.resubmit_bytes += pkt.phv.get(fields.frame_len).max(64);
                        pkt.phv.set(fields.is_resubmit, 1);
                    }
                } else {
                    pkt.live = false;
                    live -= 1;
                }
            }
        }
        for pkt in &mut wave.pkts[..n] {
            digests.append_from(&mut pkt.digests);
        }
        stats.packets += n as u64;
        wave.len = 0;
    }

    /// Processes a pre-built PHV (no parsing; useful for unit tests and
    /// synthetic control packets).
    pub fn process_phv(&mut self, mut phv: Phv, ts_us: u64) -> ProcessOutcome {
        self.meters.packets += 1;
        let (disposition, passes) = self.run_inplace(&mut phv, ts_us, None, ExecMode::Plan);
        ProcessOutcome { phv, disposition, passes }
    }

    /// Processes a pre-built PHV with the original **entry-walking
    /// interpreter** (re-reads the stage schedule and clones the matched
    /// action on every table visit). Kept as the reference implementation:
    /// the equivalence proptests assert it is observationally identical —
    /// dispositions, digests, meters, registers — to the plan-driven path.
    pub fn process_phv_entrywalk(&mut self, mut phv: Phv, ts_us: u64) -> ProcessOutcome {
        self.meters.packets += 1;
        let (disposition, passes) = self.run_inplace(&mut phv, ts_us, None, ExecMode::EntryWalk);
        ProcessOutcome { phv, disposition, passes }
    }

    /// Parses a frame and processes it with the entry-walking reference
    /// interpreter (see [`Pipeline::process_phv_entrywalk`]).
    pub fn process_packet_entrywalk(
        &mut self,
        frame: &[u8],
        ts_us: u64,
        fields: &StandardFields,
    ) -> Result<ProcessOutcome, ParseError> {
        let mut phv = match parse(frame, self.program.layout(), fields) {
            Ok(phv) => phv,
            Err(e) => {
                self.meters.malformed += 1;
                return Err(e);
            }
        };
        phv.set(fields.ts_us, ts_us);
        self.meters.packets += 1;
        self.meters.bytes += frame.len() as u64;
        let (disposition, passes) =
            self.run_inplace(&mut phv, ts_us, Some(fields), ExecMode::EntryWalk);
        Ok(ProcessOutcome { phv, disposition, passes })
    }

    /// Runs the resubmission loop on `phv` in place.
    fn run_inplace(
        &mut self,
        phv: &mut Phv,
        ts_us: u64,
        fields: Option<&StandardFields>,
        mode: ExecMode,
    ) -> (Disposition, u32) {
        let limit = self.program.resubmit_limit();
        let mut passes = 0u32;
        loop {
            passes += 1;
            self.meters.passes += 1;
            let effects = match mode {
                ExecMode::Plan => self.one_pass(phv, ts_us),
                ExecMode::EntryWalk => self.one_pass_entrywalk(phv, ts_us),
            };
            if effects.drop {
                self.meters.drops += 1;
                return (Disposition::Drop, passes);
            }
            if effects.resubmit {
                if passes as usize > limit {
                    return (Disposition::ResubmitLimit, passes);
                }
                self.meters.resubmissions += 1;
                // Meter the frame's actual length; the Ethernet minimum
                // floor applies only when a parsed frame supplied one.
                // PHV-only passes carry no wire length to charge.
                self.meters.resubmit_bytes +=
                    fields.map(|f| phv.get(f.frame_len).max(64)).unwrap_or(0);
                if let Some(f) = fields {
                    phv.set(f.is_resubmit, 1);
                }
                continue;
            }
            return (Disposition::Forward, passes);
        }
    }

    /// One pass over the compiled plan: iterate slots by index,
    /// materialize the key into the reusable key buffer, resolve the hit
    /// through the table's compiled [`MatchIndex`](crate::index::MatchIndex)
    /// (binary search / packed hash / bitmask intersection — never a scan
    /// over installed entries), bump counters via split borrows, and
    /// execute the interned action by reference. No heap allocation.
    fn one_pass(&mut self, phv: &mut Phv, ts_us: u64) -> PassEffects {
        let mut effects = PassEffects::default();
        for si in 0..self.plan.slots().len() {
            let slot = self.plan.slots()[si];
            let ti = slot.table as usize;
            self.key_scratch.clear();
            for &f in &self.program.tables()[ti].spec().key {
                self.key_scratch.push(phv.get(f));
            }
            let hit = self.plan.match_index(ti).lookup(&self.key_scratch, &mut self.mask_scratch);
            let aid = match hit {
                Some(i) => {
                    self.program.tables_mut()[ti].record_hit(i);
                    self.plan.entry_action(&slot, i)
                }
                None => {
                    self.program.tables_mut()[ti].record_miss();
                    slot.default_action
                }
            };
            exec_action(
                self.plan.action(aid),
                &self.plan,
                self.program.layout(),
                self.program.digest_fields(),
                &mut self.regs,
                &mut self.digests,
                &mut self.meters,
                phv,
                ts_us,
                &mut effects,
            );
        }
        effects
    }

    /// One pass with the original interpreter: re-reads each stage's table
    /// list, resolves lookups with the linear reference scan
    /// ([`crate::table::Table::lookup_linear`]) and clones the matched
    /// action before executing it. Reference implementation only —
    /// allocates per table visit.
    fn one_pass_entrywalk(&mut self, phv: &mut Phv, ts_us: u64) -> PassEffects {
        let mut effects = PassEffects::default();
        let n_stages = self.program.stages().len();
        for stage in 0..n_stages {
            let table_ids: Vec<_> = self.program.stages()[stage].tables.clone();
            for tid in table_ids {
                let hit = self.program.table(tid).lookup_linear(phv);
                // Clone the action out so we can mutate registers/PHV while
                // bumping counters; actions are small.
                let action: Action = match hit {
                    Some(i) => {
                        let t = &mut self.program.tables_mut()[tid.index()];
                        t.record_hit(i);
                        t.entries()[i].action.clone()
                    }
                    None => {
                        let t = &mut self.program.tables_mut()[tid.index()];
                        t.record_miss();
                        t.default_action().clone()
                    }
                };
                exec_action(
                    &action,
                    &self.plan,
                    self.program.layout(),
                    self.program.digest_fields(),
                    &mut self.regs,
                    &mut self.digests,
                    &mut self.meters,
                    phv,
                    ts_us,
                    &mut effects,
                );
            }
        }
        effects
    }
}

fn resolve(src: Source, phv: &Phv) -> u64 {
    match src {
        Source::Const(c) => c,
        Source::Field(f) => phv.get(f),
    }
}

/// Executes one action against explicitly split pipeline state. A free
/// function (not a `Pipeline` method) so the caller can hold the action by
/// reference out of the plan arena — or a table entry — while the mutable
/// register/digest/meter borrows stay disjoint.
#[allow(clippy::too_many_arguments)]
fn exec_action(
    action: &Action,
    plan: &ExecPlan,
    layout: &PhvLayout,
    digest_fields: &[FieldId],
    regs: &mut RegisterFile,
    digests: &mut DigestBuf,
    meters: &mut Meters,
    phv: &mut Phv,
    ts_us: u64,
    effects: &mut PassEffects,
) {
    for p in &action.prims {
        match p {
            Primitive::Set { dst, src } => {
                let v = resolve(*src, phv);
                phv.set_masked(*dst, v, layout);
            }
            Primitive::Add { dst, a, b } => {
                let v = resolve(*a, phv).wrapping_add(resolve(*b, phv));
                phv.set_masked(*dst, v, layout);
            }
            Primitive::Sub { dst, a, b } => {
                let v = resolve(*a, phv).wrapping_sub(resolve(*b, phv));
                phv.set_masked(*dst, v, layout);
            }
            Primitive::Min { dst, a, b } => {
                let v = resolve(*a, phv).min(resolve(*b, phv));
                phv.set_masked(*dst, v, layout);
            }
            Primitive::Max { dst, a, b } => {
                let v = resolve(*a, phv).max(resolve(*b, phv));
                phv.set_masked(*dst, v, layout);
            }
            Primitive::DivConst { dst, a, divisor } => {
                debug_assert!(*divisor > 0, "DivConst divisor must be positive");
                let v = resolve(*a, phv) / divisor.max(&1);
                phv.set_masked(*dst, v, layout);
            }
            Primitive::HashFlow { .. } => prim_hash_flow(p, plan, layout, phv),
            Primitive::RegRmw { reg, index, op, operand, out } => {
                let idx = resolve(*index, phv) as usize;
                let opv = resolve(*operand, phv);
                let (old, new) = regs.rmw(reg.index(), idx, *op, opv);
                if let Some((dst, which)) = out {
                    let v = match which {
                        AluOut::Old => old,
                        AluOut::New => new,
                    };
                    phv.set_masked(*dst, v, layout);
                }
            }
            Primitive::OwnerUpdate { .. } => prim_owner_update(p, regs, layout, phv),
            Primitive::Resubmit => effects.resubmit = true,
            Primitive::Digest => {
                digests.push(ts_us, digest_fields.iter().map(|&f| phv.get(f)));
                meters.digests += 1;
            }
            Primitive::Drop => effects.drop = true,
        }
    }
}

/// `HashFlow` body, shared by the scalar and wave executors.
#[inline]
fn prim_hash_flow(p: &Primitive, plan: &ExecPlan, layout: &PhvLayout, phv: &mut Phv) {
    let Primitive::HashFlow { dst, mask, salt } = p else { unreachable!() };
    // Field ids pre-resolved at plan build; programs using
    // HashFlow are built via `standard_fields()`.
    let hf = plan.hash_flow().expect("standard fields registered");
    let (sip, dip, sp, dp) = crate::hash::canonical_order(
        phv.get(hf.src_ip) as u32,
        phv.get(hf.dst_ip) as u32,
        phv.get(hf.sport) as u16,
        phv.get(hf.dport) as u16,
    );
    let proto = phv.get(hf.proto) as u8;
    let idx = if *salt == 0 {
        crate::hash::flow_index(sip, dip, sp, dp, proto, (*mask as usize) + 1) as u64
    } else {
        crate::hash::flow_fingerprint(sip, dip, sp, dp, proto, *salt) as u64 & *mask
    };
    phv.set_masked(*dst, idx, layout);
}

/// `OwnerUpdate` body, shared by the scalar and wave executors.
#[inline]
fn prim_owner_update(p: &Primitive, regs: &mut RegisterFile, layout: &PhvLayout, phv: &mut Phv) {
    let Primitive::OwnerUpdate {
        reg,
        index,
        fp,
        now,
        idle_timeout_us,
        pinned_timeout_us,
        mode,
        claim,
        release,
        pin,
        class,
        state_out,
    } = p
    else {
        unreachable!()
    };
    {
        use crate::action::{OwnerMode, SlotState};
        use crate::register::owner_lane as lane;
        let idx = resolve(*index, phv) as usize;
        let fpv = resolve(*fp, phv) & crate::hash::FP_MASK;
        let now32 = resolve(*now, phv) & 0xFFFF_FFFF;
        let ri = reg.index();
        let cell = regs.read(ri, idx);
        let (stored_fp, decided, pinned) =
            (lane::fp(cell), lane::decided(cell), lane::pinned(cell));
        let idle =
            |timeout: u64| now32.wrapping_sub(lane::last_seen_us(cell)) & 0xFFFF_FFFF > timeout;
        // Claimable lanes export Unsolicited when the entry has no
        // claim permission (the policy's non-SYN probes).
        let gate = |s: SlotState| if *claim { s } else { SlotState::Unsolicited };
        let state = match mode {
            OwnerMode::Probe => {
                let state = if stored_fp == fpv {
                    if decided {
                        // A trailing FIN/RST from the owner of an
                        // unpinned decided lane releases it
                        // in-band (the early-exit flow's close).
                        if *release && !pinned {
                            SlotState::OwnerRelease
                        } else {
                            SlotState::OwnerDecided
                        }
                    } else {
                        SlotState::Owner
                    }
                } else if stored_fp == 0 {
                    gate(SlotState::ClaimFree)
                } else if decided && pinned {
                    // Pinned verdicts hold their slot until the
                    // longer pinned timeout (or operator release).
                    if idle(*pinned_timeout_us) {
                        gate(SlotState::TakeoverPinned)
                    } else {
                        SlotState::PinnedDefended
                    }
                } else if decided {
                    gate(SlotState::TakeoverDecided)
                } else if idle(*idle_timeout_us) {
                    gate(SlotState::TakeoverIdle)
                } else {
                    SlotState::LiveCollision
                };
                match state {
                    // Owner traffic refreshes recency (decided
                    // lanes keep their flags and class); claims
                    // install the new fingerprint undecided.
                    SlotState::Owner | SlotState::OwnerDecided => {
                        regs.write(
                            ri,
                            idx,
                            lane::pack(decided, pinned, lane::class(cell), fpv, now32),
                        );
                    }
                    SlotState::ClaimFree
                    | SlotState::TakeoverIdle
                    | SlotState::TakeoverDecided
                    | SlotState::TakeoverPinned => {
                        regs.write(ri, idx, lane::pack(false, false, 0, fpv, now32));
                    }
                    // Suppressed packets must not corrupt the lane.
                    SlotState::LiveCollision
                    | SlotState::Unsolicited
                    | SlotState::PinnedDefended => {}
                    SlotState::OwnerRelease => regs.write(ri, idx, lane::FREE),
                }
                state
            }
            OwnerMode::Decide => {
                if stored_fp == fpv {
                    if *release && !*pin {
                        // In-band FIN/RST release: the slot is
                        // reclaimable before any digest drains.
                        regs.write(ri, idx, lane::FREE);
                        SlotState::OwnerRelease
                    } else {
                        let classv = resolve(*class, phv) & lane::CLASS_MASK;
                        regs.write(ri, idx, lane::pack(true, *pin, classv, fpv, now32));
                        SlotState::OwnerDecided
                    }
                } else {
                    // The lane was recycled (or released) already:
                    // leave it alone.
                    SlotState::OwnerDecided
                }
            }
        };
        phv.set_masked(*state_out, state.code(), layout);
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct PassEffects {
    resubmit: bool,
    drop: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, AluOp, Primitive, Source};
    use crate::packet::PacketBuilder;
    use crate::program::ProgramBuilder;
    use crate::register::RegisterSpec;
    use crate::table::TableSpec;
    use crate::tcam::Ternary;

    #[test]
    fn register_accumulation_across_packets() {
        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let idx = b.add_meta("idx", 16);
        let r = b.add_register(RegisterSpec::new("cnt", 32, 16), 0);
        let t = b.add_table(TableSpec::exact("count", vec![fields.ip_proto], 4), 0);
        b.add_exact_entry(
            t,
            vec![6],
            Action::new("bump").with(Primitive::RegRmw {
                reg: r,
                index: Source::Field(idx),
                op: AluOp::Add,
                operand: Source::Const(1),
                out: None,
            }),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let frame = PacketBuilder::tcp(1, 2, 3, 4).build();
        for i in 0..5 {
            pipe.process_packet(&frame, i, &fields).unwrap();
        }
        assert_eq!(pipe.registers().read(0, 0), 5);
        assert_eq!(pipe.meters().packets, 5);
        assert_eq!(pipe.meters().passes, 5);
    }

    #[test]
    fn resubmission_loops_and_meters() {
        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let t = b.add_table(TableSpec::exact("go", vec![fields.is_resubmit], 4), 0);
        // First pass (is_resubmit=0): request resubmission.
        b.add_exact_entry(t, vec![0], Action::new("resub").with(Primitive::Resubmit)).unwrap();
        // Second pass (is_resubmit=1): no-op, forward.
        b.add_exact_entry(t, vec![1], Action::nop()).unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let frame = PacketBuilder::tcp(1, 2, 3, 4).build();
        let out = pipe.process_packet(&frame, 0, &fields).unwrap();
        assert_eq!(out.disposition, Disposition::Forward);
        assert_eq!(out.passes, 2);
        assert_eq!(pipe.meters().resubmissions, 1);
        assert!(pipe.meters().resubmit_bytes >= 64);
        assert_eq!(pipe.meters().passes, 2);
        assert_eq!(pipe.meters().packets, 1);
    }

    #[test]
    fn resubmit_bytes_meter_actual_frame_length() {
        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let t = b.add_table(TableSpec::exact("go", vec![fields.is_resubmit], 4), 0);
        b.add_exact_entry(t, vec![0], Action::new("resub").with(Primitive::Resubmit)).unwrap();
        b.add_exact_entry(t, vec![1], Action::nop()).unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        // A frame well above the Ethernet minimum: the resubmitted pass is
        // charged its actual length, not a 64-byte floor.
        let frame = PacketBuilder::tcp(1, 2, 3, 4).payload(400).build();
        assert!(frame.len() > 64);
        pipe.process_packet(&frame, 0, &fields).unwrap();
        assert_eq!(pipe.meters().resubmit_bytes, frame.len() as u64);
    }

    #[test]
    fn resubmit_bytes_unmetered_without_parsed_frame() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        b.set_resubmit_limit(1);
        let t = b.add_table(TableSpec::ternary("always", vec![f], 4), 0);
        b.add_ternary_entry(t, vec![Ternary::ANY], 0, Action::new("r").with(Primitive::Resubmit))
            .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        // PHV-only passes have no wire length: nothing to charge.
        pipe.process_phv(phv, 0);
        assert!(pipe.meters().resubmissions > 0);
        assert_eq!(pipe.meters().resubmit_bytes, 0);
    }

    #[test]
    fn resubmit_limit_bounds_loops() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        b.set_resubmit_limit(3);
        let t = b.add_table(TableSpec::ternary("always", vec![f], 4), 0);
        b.add_ternary_entry(
            t,
            vec![Ternary::ANY],
            0,
            Action::new("loop").with(Primitive::Resubmit),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        let out = pipe.process_phv(phv, 0);
        assert_eq!(out.disposition, Disposition::ResubmitLimit);
        assert_eq!(out.passes, 4); // limit(3) + the first pass
    }

    #[test]
    fn digest_carries_fields() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 16);
        let c = b.add_meta("c", 8);
        b.set_digest_fields(vec![a, c]);
        let t = b.add_table(TableSpec::ternary("t", vec![a], 4), 0);
        b.add_ternary_entry(
            t,
            vec![Ternary::ANY],
            0,
            Action::new("d").with(Primitive::set_const(c, 9)).with(Primitive::Digest),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let mut phv = pipe.program().layout().new_phv();
        phv.set(a, 1234);
        pipe.process_phv(phv, 77);
        assert_eq!(pipe.digests().len(), 1);
        assert_eq!(pipe.digests().values(0), &[1234, 9]);
        assert_eq!(pipe.digests().ts_us(0), 77);
        let drained = pipe.take_digests();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].values, vec![1234, 9]);
        assert_eq!(drained[0].ts_us, 77);
        assert!(pipe.digests().is_empty());
    }

    #[test]
    fn digest_buf_iterates_and_clears_keeping_capacity() {
        let mut buf = DigestBuf::with_stride(2);
        buf.push(1, [10, 11]);
        buf.push(2, [20, 21]);
        let seen: Vec<_> = buf.iter().map(|d| (d.ts_us, d.values.to_vec())).collect();
        assert_eq!(seen, vec![(1, vec![10, 11]), (2, vec![20, 21])]);
        let cap = (buf.ts.capacity(), buf.values.capacity());
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!((buf.ts.capacity(), buf.values.capacity()), cap);
        // Stride-0 records (programs with no digest fields) still count.
        let mut empty = DigestBuf::with_stride(0);
        empty.push(5, []);
        assert_eq!(empty.len(), 1);
        assert_eq!(empty.iter().count(), 1);
        assert_eq!(empty.values(0), &[] as &[u64]);
    }

    #[test]
    fn install_entry_rebuilds_plan_for_running_pipeline() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 16);
        let out_f = b.add_meta("out", 8);
        let t = b.add_table(TableSpec::range("t", vec![a], 8), 0);
        b.add_range_entry(
            t,
            vec![(0, 9)],
            1,
            Action::new("low").with(Primitive::set_const(out_f, 1)),
        )
        .unwrap();
        let mut pipe = Pipeline::new(b.build().unwrap());
        let probe = |pipe: &mut Pipeline, v: u64| {
            let mut phv = pipe.program().layout().new_phv();
            phv.set(a, v);
            pipe.process_phv(phv, 0).phv.get(out_f)
        };
        assert_eq!(probe(&mut pipe, 5), 1);
        assert_eq!(probe(&mut pipe, 15), 0, "no rule covers 15 yet");
        // Controller installs a new rule mid-session; the compiled index
        // must see it on the very next packet.
        pipe.install_entry(
            t,
            EntryKey::Range { fields: vec![(10, 20)], priority: 5 },
            Action::new("mid").with(Primitive::set_const(out_f, 2)),
        )
        .unwrap();
        assert_eq!(probe(&mut pipe, 15), 2);
        assert_eq!(probe(&mut pipe, 5), 1, "old rule still resolves");
        assert_eq!(pipe.program().table(t).entries()[1].hits, 1);
    }

    #[test]
    fn drop_stops_packet() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 8);
        let t = b.add_table(TableSpec::ternary("t", vec![a], 4), 0);
        b.add_ternary_entry(t, vec![Ternary::ANY], 0, Action::new("x").with(Primitive::Drop))
            .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        let out = pipe.process_phv(phv, 0);
        assert_eq!(out.disposition, Disposition::Drop);
        assert_eq!(pipe.meters().drops, 1);
    }

    #[test]
    fn rmw_exports_old_and_new() {
        let mut b = ProgramBuilder::new();
        let trigger = b.add_meta("trigger", 8);
        let old_f = b.add_meta("old", 32);
        let new_f = b.add_meta("new", 32);
        let r = b.add_register(RegisterSpec::new("ts", 32, 4), 0);
        let t1 = b.add_table(TableSpec::ternary("w", vec![trigger], 4), 0);
        b.add_ternary_entry(
            t1,
            vec![Ternary::ANY],
            0,
            Action::new("write").with(Primitive::RegRmw {
                reg: r,
                index: Source::Const(0),
                op: AluOp::Write,
                operand: Source::Const(42),
                out: Some((old_f, AluOut::Old)),
            }),
        )
        .unwrap();
        let t2 = b.add_table(TableSpec::ternary("r", vec![trigger], 4), 0);
        // Second visit is a different table in the same stage — allowed in
        // the simulator for testing; reads new value.
        b.add_ternary_entry(
            t2,
            vec![Ternary::ANY],
            0,
            Action::new("read").with(Primitive::RegRmw {
                reg: r,
                index: Source::Const(0),
                op: AluOp::Read,
                operand: Source::Const(0),
                out: Some((new_f, AluOut::New)),
            }),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        let out = pipe.process_phv(phv, 0);
        assert_eq!(out.phv.get(old_f), 0);
        assert_eq!(out.phv.get(new_f), 42);
    }

    #[test]
    fn default_action_fires_on_miss() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 8);
        let out_f = b.add_meta("out", 8);
        let t = b.add_table(TableSpec::exact("t", vec![a], 4), 0);
        b.set_default(t, Action::new("miss").with(Primitive::set_const(out_f, 7)));
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        let out = pipe.process_phv(phv, 0);
        assert_eq!(out.phv.get(out_f), 7);
        assert_eq!(pipe.program().table(t).misses(), 1);
    }

    #[test]
    fn process_frame_matches_process_packet() {
        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let idx = b.add_meta("idx", 16);
        let r = b.add_register(RegisterSpec::new("cnt", 32, 16), 0);
        let t = b.add_table(TableSpec::exact("count", vec![fields.ip_proto], 4), 0);
        b.add_exact_entry(
            t,
            vec![6],
            Action::new("bump").with(Primitive::RegRmw {
                reg: r,
                index: Source::Field(idx),
                op: AluOp::Add,
                operand: Source::Const(1),
                out: None,
            }),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut a = Pipeline::new(p.clone());
        let mut bpipe = Pipeline::new(p);
        let frame = PacketBuilder::tcp(1, 2, 3, 4).payload(32).build();
        for i in 0..6 {
            let oa = a.process_packet(&frame, i, &fields).unwrap();
            let ob = bpipe.process_frame(&frame, i, &fields).unwrap();
            assert_eq!(oa.disposition, ob.disposition);
            assert_eq!(oa.passes, ob.passes);
        }
        assert_eq!(a.meters(), bpipe.meters());
        assert_eq!(a.registers().read(0, 0), bpipe.registers().read(0, 0));
    }

    #[test]
    fn process_frame_recovers_from_parse_errors() {
        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        assert!(pipe.process_frame(&[0u8; 5], 0, &fields).is_err());
        // the scratch PHV survives the error and the next frame processes
        let frame = PacketBuilder::tcp(1, 2, 3, 4).build();
        assert!(pipe.process_frame(&frame, 1, &fields).is_ok());
        assert_eq!(pipe.meters().packets, 1);
        assert_eq!(pipe.meters().malformed, 1);
    }

    #[test]
    fn entrywalk_reference_matches_plan() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 16);
        let out_f = b.add_meta("out", 16);
        let r = b.add_register(RegisterSpec::new("acc", 16, 8), 0);
        let t = b.add_table(TableSpec::ternary("t", vec![a], 8), 0);
        b.add_ternary_entry(
            t,
            vec![Ternary::exact(3, 16)],
            5,
            Action::new("hit").with(Primitive::RegRmw {
                reg: r,
                index: Source::Const(1),
                op: AluOp::Add,
                operand: Source::Field(a),
                out: Some((out_f, AluOut::New)),
            }),
        )
        .unwrap();
        b.set_default(t, Action::new("miss").with(Primitive::set_const(out_f, 9)));
        let p = b.build().unwrap();
        let mut plan_pipe = Pipeline::new(p.clone());
        let mut walk_pipe = Pipeline::new(p);
        for v in [3u64, 4, 3, 0] {
            let mut phv1 = plan_pipe.program().layout().new_phv();
            phv1.set(a, v);
            let phv2 = phv1.clone();
            let o1 = plan_pipe.process_phv(phv1, v);
            let o2 = walk_pipe.process_phv_entrywalk(phv2, v);
            assert_eq!(o1.phv, o2.phv);
            assert_eq!(o1.disposition, o2.disposition);
        }
        assert_eq!(plan_pipe.meters(), walk_pipe.meters());
        assert_eq!(plan_pipe.registers().read(0, 1), walk_pipe.registers().read(0, 1));
        assert_eq!(plan_pipe.program().table(t).misses(), walk_pipe.program().table(t).misses());
    }

    /// Builds a tiny program: one register "keep" (32x8) plus an optional
    /// extra register, and one ternary table writing `out = const`.
    fn swap_fixture(extra_reg: Option<&str>, out_val: u64) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 16);
        let out_f = b.add_meta("out", 8);
        b.set_digest_fields(vec![a, out_f]);
        let r = b.add_register(RegisterSpec::new("keep", 32, 8), 0);
        let _ = r;
        if let Some(name) = extra_reg {
            b.add_register(RegisterSpec::new(name, 16, 8), 0);
        }
        let t = b.add_table(TableSpec::ternary("t", vec![a], 4), 0);
        b.add_ternary_entry(
            t,
            vec![Ternary::ANY],
            0,
            Action::new("set").with(Primitive::set_const(out_f, out_val)).with(Primitive::Digest),
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn swap_program_carries_matching_registers_digests_and_meters() {
        let old = swap_fixture(Some("old_only"), 1);
        let new = swap_fixture(Some("new_only"), 2);
        let a = crate::phv::FieldId(0);
        let out_f = crate::phv::FieldId(1);
        let mut pipe = Pipeline::new(old);
        pipe.registers_mut().write(0, 3, 777); // "keep"
        pipe.registers_mut().write(1, 3, 555); // "old_only"
        let mut phv = pipe.program().layout().new_phv();
        phv.set(a, 42);
        pipe.process_phv(phv, 9); // emits digest [42, 1] under the old model
        let packets_before = pipe.meters().packets;

        pipe.swap_program(new, &[(TableId(0), TableId(0))]);

        // Matching register carried; old-only dropped; new-only zeroed.
        assert_eq!(pipe.registers().spec(0).name, "keep");
        assert_eq!(pipe.registers().read(0, 3), 777);
        assert_eq!(pipe.registers().spec(1).name, "new_only");
        assert_eq!(pipe.registers().read(1, 3), 0);
        // Pending digests and meters survive the flip.
        assert_eq!(pipe.digests().len(), 1);
        assert_eq!(pipe.digests().values(0), &[42, 1]);
        assert_eq!(pipe.meters().packets, packets_before);
        // The new tables actually serve lookups.
        let mut phv = pipe.program().layout().new_phv();
        phv.set(a, 1);
        let o = pipe.process_phv(phv, 10);
        assert_eq!(o.phv.get(out_f), 2, "post-swap packet must see the new model");
        assert_eq!(pipe.digests().len(), 2);
        assert_eq!(pipe.digests().values(1), &[1, 2]);
        assert_eq!(pipe.meters().packets, packets_before + 1);
    }

    /// Wave-test program: stage 0 hashes the canonical flow into `m_idx`
    /// (`slots` conflict domain), stage 1 counts bytes per flow slot and
    /// digests every TCP packet, stage 2 optionally resubmits first-pass
    /// packets and drops flow slot 0 — covering flow state, digest
    /// order, recirculation, and drops in one fixture.
    fn wave_program(
        slots: usize,
        resubmit: bool,
        drop_slot0: bool,
    ) -> (Program, crate::parser::StandardFields) {
        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let idx = b.add_meta("m_idx", 16);
        b.set_digest_fields(vec![idx, fields.frame_len]);
        let r = b.add_register(RegisterSpec::new("cnt", 32, slots), 1);
        let prep = b.add_table(TableSpec::exact("prep", vec![fields.is_resubmit], 2), 0);
        b.set_default(
            prep,
            Action::new("hash").with(Primitive::HashFlow {
                dst: idx,
                mask: (slots - 1) as u64,
                salt: 0,
            }),
        );
        let count = b.add_table(TableSpec::exact("count", vec![fields.ip_proto], 4), 1);
        b.add_exact_entry(
            count,
            vec![6],
            Action::new("bump")
                .with(Primitive::RegRmw {
                    reg: r,
                    index: Source::Field(idx),
                    op: AluOp::Add,
                    operand: Source::Field(fields.frame_len),
                    out: None,
                })
                .with(Primitive::Digest),
        )
        .unwrap();
        if resubmit {
            let go = b.add_table(TableSpec::exact("go", vec![fields.is_resubmit], 4), 2);
            b.add_exact_entry(go, vec![0], Action::new("resub").with(Primitive::Resubmit)).unwrap();
            b.add_exact_entry(go, vec![1], Action::nop()).unwrap();
        }
        if drop_slot0 {
            let d = b.add_table(TableSpec::exact("drop0", vec![idx], 4), 2);
            b.add_exact_entry(d, vec![0], Action::new("drop").with(Primitive::Drop)).unwrap();
        }
        (b.build().unwrap(), fields)
    }

    /// Burst execution must be observationally identical to the scalar
    /// path — meters, registers, table stats, wave dispositions, and the
    /// **exact digest stream** — across plain, resubmit-heavy, and
    /// dropping programs at several burst sizes (flows repeat across
    /// rounds, so wave cuts fire constantly).
    #[test]
    fn wave_execution_matches_scalar() {
        const SLOTS: usize = 8;
        for &(resubmit, drop0, burst) in
            &[(false, false, 4), (true, false, 8), (true, true, 32), (true, true, 1)]
        {
            let (p, fields) = wave_program(SLOTS, resubmit, drop0);
            let mut scalar = Pipeline::new(p.clone());
            let mut wave = Pipeline::new(p);
            wave.set_burst(burst, SLOTS);
            assert_eq!(wave.burst(), burst);
            let frames: Vec<_> = (0..20u32)
                .map(|i| {
                    PacketBuilder::tcp(i, i + 1, 1000 + i as u16, 2)
                        .payload((i % 7) as u16 * 10)
                        .build()
                })
                .collect();
            let mut stats = WaveStats::default();
            let mut expected = WaveStats::default();
            for round in 0..3u64 {
                for (i, f) in frames.iter().enumerate() {
                    let ts = round * 100 + i as u64;
                    let s = scalar.process_frame(f, ts, &fields).unwrap();
                    wave.wave_push(f, ts, &fields, &mut stats).unwrap();
                    expected.packets += 1;
                    match s.disposition {
                        Disposition::Drop => expected.drops += 1,
                        Disposition::ResubmitLimit => expected.resubmit_limited += 1,
                        Disposition::Forward => {}
                    }
                }
            }
            wave.wave_flush(&fields, &mut stats);
            assert_eq!(wave.wave_len(), 0);
            assert_eq!(stats, expected);
            assert_eq!(scalar.meters(), wave.meters());
            for s in 0..SLOTS {
                assert_eq!(scalar.registers().read(0, s), wave.registers().read(0, s));
            }
            assert_eq!(scalar.take_digests(), wave.take_digests(), "digest streams must match");
            for (ts, tw) in scalar.program().tables().iter().zip(wave.program().tables()) {
                assert_eq!(ts.misses(), tw.misses());
                for (es, ew) in ts.entries().iter().zip(tw.entries()) {
                    assert_eq!(es.hits, ew.hits);
                }
            }
        }
    }

    /// A malformed frame mid-wave is metered and rejected without
    /// disturbing the packets already parked in the arena.
    #[test]
    fn wave_push_rejects_malformed_without_losing_wave() {
        let (p, fields) = wave_program(8, false, false);
        let mut pipe = Pipeline::new(p);
        pipe.set_burst(16, 8);
        let mut stats = WaveStats::default();
        let frame = PacketBuilder::tcp(1, 2, 3, 4).build();
        pipe.wave_push(&frame, 0, &fields, &mut stats).unwrap();
        assert!(pipe.wave_push(&[0u8; 5], 1, &fields, &mut stats).is_err());
        assert_eq!(pipe.wave_len(), 1, "parked packet must survive the reject");
        pipe.wave_flush(&fields, &mut stats);
        assert_eq!(stats.packets, 1);
        assert_eq!(pipe.meters().malformed, 1);
        assert_eq!(pipe.meters().packets, 1);
    }

    /// Programs without the standard flow fields cannot form conflict
    /// keys: burst is forced to 1 and waves stay singleton (trivially
    /// scalar-equivalent).
    #[test]
    fn wave_burst_forced_scalar_without_flow_fields() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 8);
        let t = b.add_table(TableSpec::exact("t", vec![a], 4), 0);
        b.set_default(t, Action::nop());
        let mut pipe = Pipeline::new(b.build().unwrap());
        pipe.set_burst(32, 64);
        assert_eq!(pipe.burst(), 1);
    }

    #[test]
    fn swap_program_carries_table_hits() {
        let old = swap_fixture(None, 1);
        let new = swap_fixture(None, 2);
        let a = crate::phv::FieldId(0);
        let mut pipe = Pipeline::new(old);
        for i in 0..5 {
            let mut phv = pipe.program().layout().new_phv();
            phv.set(a, i);
            pipe.process_phv(phv, i);
        }
        assert_eq!(pipe.program().tables()[0].entries()[0].hits, 5);
        pipe.swap_program(new, &[(TableId(0), TableId(0))]);
        assert_eq!(pipe.program().tables()[0].entries()[0].hits, 5, "hits carried");
        // Without a carry pair the counters start fresh.
        let mut pipe2 = Pipeline::new(swap_fixture(None, 1));
        let mut phv = pipe2.program().layout().new_phv();
        phv.set(a, 0);
        pipe2.process_phv(phv, 0);
        pipe2.swap_program(swap_fixture(None, 2), &[]);
        assert_eq!(pipe2.program().tables()[0].entries()[0].hits, 0);
    }
}
