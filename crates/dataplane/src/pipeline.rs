//! Pipeline execution: packets (or raw PHVs) walk the stages, hit tables,
//! mutate registers, and may **resubmit** (recirculate) or emit **digests**.
//!
//! Resubmission is SpliDT's in-band control channel (paper §3.1.3): at a
//! window boundary the prediction tables mark the packet for resubmission;
//! the next pass sees `is_resubmit = 1`, and the resubmit-apply table
//! updates the subtree-id register and clears the feature registers. The
//! pipeline meters every resubmission so recirculation bandwidth is
//! directly observable.

use crate::action::{Action, AluOut, Primitive, Source};
use crate::parser::{parse, ParseError, StandardFields};
use crate::phv::Phv;
use crate::program::Program;
use crate::register::RegisterArray;

/// What happened to a packet after its final pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Forwarded out of the pipeline.
    Forward,
    /// Dropped by an action.
    Drop,
    /// Resubmit was requested but the loop bound was hit (safety stop; a
    /// correct SpliDT program never triggers this).
    ResubmitLimit,
}

/// A digest record pushed to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    /// Ingress timestamp (µs) of the pass that emitted the digest.
    pub ts_us: u64,
    /// Values of the program's digest fields, in declaration order.
    pub values: Vec<u64>,
}

/// Aggregate pipeline meters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Meters {
    /// Packets submitted (not counting resubmission passes).
    pub packets: u64,
    /// Total bytes submitted.
    pub bytes: u64,
    /// Total pipeline passes (packets + resubmissions).
    pub passes: u64,
    /// Resubmission events.
    pub resubmissions: u64,
    /// Bytes carried by resubmitted passes (frame length at resubmit time).
    pub resubmit_bytes: u64,
    /// Packets dropped.
    pub drops: u64,
    /// Digests emitted.
    pub digests: u64,
}

impl Meters {
    /// Accumulates another meter set into this one — used when merging
    /// per-shard pipelines into one aggregate report.
    pub fn merge(&mut self, other: &Meters) {
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.passes += other.passes;
        self.resubmissions += other.resubmissions;
        self.resubmit_bytes += other.resubmit_bytes;
        self.drops += other.drops;
        self.digests += other.digests;
    }
}

/// Result of processing one packet to completion (including resubmissions).
#[derive(Debug, Clone)]
pub struct ProcessOutcome {
    /// Final PHV state.
    pub phv: Phv,
    /// Final disposition.
    pub disposition: Disposition,
    /// Number of passes the packet took (1 = no resubmission).
    pub passes: u32,
}

/// An executing pipeline: a program plus live register state.
#[derive(Debug)]
pub struct Pipeline {
    program: Program,
    regs: Vec<RegisterArray>,
    digests: Vec<Digest>,
    meters: Meters,
}

impl Pipeline {
    /// Instantiates register state for a program.
    pub fn new(program: Program) -> Self {
        let regs = program.registers().iter().cloned().map(RegisterArray::new).collect();
        Self { program, regs, digests: Vec::new(), meters: Meters::default() }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Live register arrays (for assertions and controller-style reads).
    pub fn registers(&self) -> &[RegisterArray] {
        &self.regs
    }

    /// Mutable register access (controller-style writes in tests).
    pub fn registers_mut(&mut self) -> &mut [RegisterArray] {
        &mut self.regs
    }

    /// Digests emitted so far.
    pub fn digests(&self) -> &[Digest] {
        &self.digests
    }

    /// Drains and returns all digests.
    pub fn take_digests(&mut self) -> Vec<Digest> {
        std::mem::take(&mut self.digests)
    }

    /// Aggregate meters.
    pub fn meters(&self) -> &Meters {
        &self.meters
    }

    /// Returns the pipeline to a fresh session in place: zeroes every
    /// register array, clears pending digests, meters, and table
    /// statistics. The program and its installed entries are untouched —
    /// this is the cheap alternative to re-instantiating from the
    /// compiled template (no table/entry clones).
    pub fn reset_state(&mut self) {
        for r in &mut self.regs {
            r.clear();
        }
        for t in self.program.tables_mut() {
            t.reset_stats();
        }
        self.digests.clear();
        self.meters = Meters::default();
    }

    /// Parses a frame and processes it at time `ts_us`.
    pub fn process_packet(
        &mut self,
        frame: &[u8],
        ts_us: u64,
        fields: &StandardFields,
    ) -> Result<ProcessOutcome, ParseError> {
        let mut phv = parse(frame, self.program.layout(), fields)?;
        phv.set(fields.ts_us, ts_us);
        self.meters.packets += 1;
        self.meters.bytes += frame.len() as u64;
        Ok(self.run(phv, ts_us, Some(fields)))
    }

    /// Processes a pre-built PHV (no parsing; useful for unit tests and
    /// synthetic control packets).
    pub fn process_phv(&mut self, phv: Phv, ts_us: u64) -> ProcessOutcome {
        self.meters.packets += 1;
        self.run(phv, ts_us, None)
    }

    fn run(&mut self, mut phv: Phv, ts_us: u64, fields: Option<&StandardFields>) -> ProcessOutcome {
        let limit = self.program.resubmit_limit();
        let mut passes = 0u32;
        loop {
            passes += 1;
            self.meters.passes += 1;
            let effects = self.one_pass(&mut phv, ts_us);
            if effects.drop {
                self.meters.drops += 1;
                return ProcessOutcome { phv, disposition: Disposition::Drop, passes };
            }
            if effects.resubmit {
                if passes as usize > limit {
                    return ProcessOutcome { phv, disposition: Disposition::ResubmitLimit, passes };
                }
                self.meters.resubmissions += 1;
                let frame_len = fields.map(|f| phv.get(f.frame_len)).unwrap_or(64);
                self.meters.resubmit_bytes += frame_len.max(64);
                if let Some(f) = fields {
                    phv.set(f.is_resubmit, 1);
                }
                continue;
            }
            return ProcessOutcome { phv, disposition: Disposition::Forward, passes };
        }
    }

    fn one_pass(&mut self, phv: &mut Phv, ts_us: u64) -> PassEffects {
        let mut effects = PassEffects::default();
        let n_stages = self.program.stages().len();
        for stage in 0..n_stages {
            let table_ids: Vec<_> = self.program.stages()[stage].tables.clone();
            for tid in table_ids {
                let hit = self.program.table(tid).lookup(phv);
                // Clone the action out so we can mutate registers/PHV while
                // bumping counters; actions are small.
                let action: Action = match hit {
                    Some(i) => {
                        let t = &mut self.program.tables_mut()[tid.index()];
                        t.record_hit(i);
                        t.entries()[i].action.clone()
                    }
                    None => {
                        let t = &mut self.program.tables_mut()[tid.index()];
                        t.record_miss();
                        t.default_action().clone()
                    }
                };
                self.execute(&action, phv, ts_us, &mut effects);
            }
        }
        effects
    }

    fn resolve(&self, src: Source, phv: &Phv) -> u64 {
        match src {
            Source::Const(c) => c,
            Source::Field(f) => phv.get(f),
        }
    }

    fn execute(&mut self, action: &Action, phv: &mut Phv, ts_us: u64, effects: &mut PassEffects) {
        for p in &action.prims {
            match p {
                Primitive::Set { dst, src } => {
                    let v = self.resolve(*src, phv);
                    phv.set_masked(*dst, v, self.program.layout());
                }
                Primitive::Add { dst, a, b } => {
                    let v = self.resolve(*a, phv).wrapping_add(self.resolve(*b, phv));
                    phv.set_masked(*dst, v, self.program.layout());
                }
                Primitive::Sub { dst, a, b } => {
                    let v = self.resolve(*a, phv).wrapping_sub(self.resolve(*b, phv));
                    phv.set_masked(*dst, v, self.program.layout());
                }
                Primitive::Min { dst, a, b } => {
                    let v = self.resolve(*a, phv).min(self.resolve(*b, phv));
                    phv.set_masked(*dst, v, self.program.layout());
                }
                Primitive::Max { dst, a, b } => {
                    let v = self.resolve(*a, phv).max(self.resolve(*b, phv));
                    phv.set_masked(*dst, v, self.program.layout());
                }
                Primitive::DivConst { dst, a, divisor } => {
                    debug_assert!(*divisor > 0, "DivConst divisor must be positive");
                    let v = self.resolve(*a, phv) / divisor.max(&1);
                    phv.set_masked(*dst, v, self.program.layout());
                }
                Primitive::HashFlow { dst, mask } => {
                    // Requires standard fields; programs using HashFlow are
                    // built via `standard_fields()`.
                    let l = self.program.layout();
                    let get =
                        |name: &str| phv.get(l.by_name(name).expect("standard fields registered"));
                    let (mut sip, mut dip) = (get("ipv4.src") as u32, get("ipv4.dst") as u32);
                    let (mut sp, mut dp) = (get("l4.sport") as u16, get("l4.dport") as u16);
                    if (sip, sp) > (dip, dp) {
                        std::mem::swap(&mut sip, &mut dip);
                        std::mem::swap(&mut sp, &mut dp);
                    }
                    let idx = crate::hash::flow_index(
                        sip,
                        dip,
                        sp,
                        dp,
                        get("ipv4.proto") as u8,
                        (*mask as usize) + 1,
                    );
                    phv.set_masked(*dst, idx as u64, self.program.layout());
                }
                Primitive::RegRmw { reg, index, op, operand, out } => {
                    let idx = self.resolve(*index, phv) as usize;
                    let opv = self.resolve(*operand, phv);
                    let (old, new) = self.regs[reg.index()].rmw(idx, *op, opv);
                    if let Some((dst, which)) = out {
                        let v = match which {
                            AluOut::Old => old,
                            AluOut::New => new,
                        };
                        phv.set_masked(*dst, v, self.program.layout());
                    }
                }
                Primitive::Resubmit => effects.resubmit = true,
                Primitive::Digest => {
                    let values = self.program.digest_fields().iter().map(|&f| phv.get(f)).collect();
                    self.digests.push(Digest { ts_us, values });
                    self.meters.digests += 1;
                }
                Primitive::Drop => effects.drop = true,
            }
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct PassEffects {
    resubmit: bool,
    drop: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, AluOp, Primitive, Source};
    use crate::packet::PacketBuilder;
    use crate::program::ProgramBuilder;
    use crate::register::RegisterSpec;
    use crate::table::TableSpec;
    use crate::tcam::Ternary;

    #[test]
    fn register_accumulation_across_packets() {
        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let idx = b.add_meta("idx", 16);
        let r = b.add_register(RegisterSpec::new("cnt", 32, 16), 0);
        let t = b.add_table(TableSpec::exact("count", vec![fields.ip_proto], 4), 0);
        b.add_exact_entry(
            t,
            vec![6],
            Action::new("bump").with(Primitive::RegRmw {
                reg: r,
                index: Source::Field(idx),
                op: AluOp::Add,
                operand: Source::Const(1),
                out: None,
            }),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let frame = PacketBuilder::tcp(1, 2, 3, 4).build();
        for i in 0..5 {
            pipe.process_packet(&frame, i, &fields).unwrap();
        }
        assert_eq!(pipe.registers()[0].read(0), 5);
        assert_eq!(pipe.meters().packets, 5);
        assert_eq!(pipe.meters().passes, 5);
    }

    #[test]
    fn resubmission_loops_and_meters() {
        let mut b = ProgramBuilder::new();
        let fields = b.standard_fields();
        let t = b.add_table(TableSpec::exact("go", vec![fields.is_resubmit], 4), 0);
        // First pass (is_resubmit=0): request resubmission.
        b.add_exact_entry(t, vec![0], Action::new("resub").with(Primitive::Resubmit)).unwrap();
        // Second pass (is_resubmit=1): no-op, forward.
        b.add_exact_entry(t, vec![1], Action::nop()).unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let frame = PacketBuilder::tcp(1, 2, 3, 4).build();
        let out = pipe.process_packet(&frame, 0, &fields).unwrap();
        assert_eq!(out.disposition, Disposition::Forward);
        assert_eq!(out.passes, 2);
        assert_eq!(pipe.meters().resubmissions, 1);
        assert!(pipe.meters().resubmit_bytes >= 64);
        assert_eq!(pipe.meters().passes, 2);
        assert_eq!(pipe.meters().packets, 1);
    }

    #[test]
    fn resubmit_limit_bounds_loops() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        b.set_resubmit_limit(3);
        let t = b.add_table(TableSpec::ternary("always", vec![f], 4), 0);
        b.add_ternary_entry(
            t,
            vec![Ternary::ANY],
            0,
            Action::new("loop").with(Primitive::Resubmit),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        let out = pipe.process_phv(phv, 0);
        assert_eq!(out.disposition, Disposition::ResubmitLimit);
        assert_eq!(out.passes, 4); // limit(3) + the first pass
    }

    #[test]
    fn digest_carries_fields() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 16);
        let c = b.add_meta("c", 8);
        b.set_digest_fields(vec![a, c]);
        let t = b.add_table(TableSpec::ternary("t", vec![a], 4), 0);
        b.add_ternary_entry(
            t,
            vec![Ternary::ANY],
            0,
            Action::new("d").with(Primitive::set_const(c, 9)).with(Primitive::Digest),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let mut phv = pipe.program().layout().new_phv();
        phv.set(a, 1234);
        pipe.process_phv(phv, 77);
        assert_eq!(pipe.digests().len(), 1);
        assert_eq!(pipe.digests()[0].values, vec![1234, 9]);
        assert_eq!(pipe.digests()[0].ts_us, 77);
        assert_eq!(pipe.take_digests().len(), 1);
        assert!(pipe.digests().is_empty());
    }

    #[test]
    fn drop_stops_packet() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 8);
        let t = b.add_table(TableSpec::ternary("t", vec![a], 4), 0);
        b.add_ternary_entry(t, vec![Ternary::ANY], 0, Action::new("x").with(Primitive::Drop))
            .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        let out = pipe.process_phv(phv, 0);
        assert_eq!(out.disposition, Disposition::Drop);
        assert_eq!(pipe.meters().drops, 1);
    }

    #[test]
    fn rmw_exports_old_and_new() {
        let mut b = ProgramBuilder::new();
        let trigger = b.add_meta("trigger", 8);
        let old_f = b.add_meta("old", 32);
        let new_f = b.add_meta("new", 32);
        let r = b.add_register(RegisterSpec::new("ts", 32, 4), 0);
        let t1 = b.add_table(TableSpec::ternary("w", vec![trigger], 4), 0);
        b.add_ternary_entry(
            t1,
            vec![Ternary::ANY],
            0,
            Action::new("write").with(Primitive::RegRmw {
                reg: r,
                index: Source::Const(0),
                op: AluOp::Write,
                operand: Source::Const(42),
                out: Some((old_f, AluOut::Old)),
            }),
        )
        .unwrap();
        let t2 = b.add_table(TableSpec::ternary("r", vec![trigger], 4), 0);
        // Second visit is a different table in the same stage — allowed in
        // the simulator for testing; reads new value.
        b.add_ternary_entry(
            t2,
            vec![Ternary::ANY],
            0,
            Action::new("read").with(Primitive::RegRmw {
                reg: r,
                index: Source::Const(0),
                op: AluOp::Read,
                operand: Source::Const(0),
                out: Some((new_f, AluOut::New)),
            }),
        )
        .unwrap();
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        let out = pipe.process_phv(phv, 0);
        assert_eq!(out.phv.get(old_f), 0);
        assert_eq!(out.phv.get(new_f), 42);
    }

    #[test]
    fn default_action_fires_on_miss() {
        let mut b = ProgramBuilder::new();
        let a = b.add_meta("a", 8);
        let out_f = b.add_meta("out", 8);
        let t = b.add_table(TableSpec::exact("t", vec![a], 4), 0);
        b.set_default(t, Action::new("miss").with(Primitive::set_const(out_f, 7)));
        let p = b.build().unwrap();
        let mut pipe = Pipeline::new(p);
        let phv = pipe.program().layout().new_phv();
        let out = pipe.process_phv(phv, 0);
        assert_eq!(out.phv.get(out_f), 7);
        assert_eq!(pipe.program().table(t).misses(), 1);
    }
}
