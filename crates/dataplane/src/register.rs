//! Stateful register arrays with Tofino-style stateful-ALU semantics.
//!
//! Each array lives in exactly one pipeline stage and supports **one
//! read-modify-write per packet pass** (the pipeline validator enforces the
//! single-stage placement; the one-visit property follows from tables being
//! applied once per pass). The ALU operations mirror what Tofino's SALUs
//! provide and what SpliDT's feature slots need: write, add, min, max — each
//! able to export the old or new value into the PHV.

use serde::{Deserialize, Serialize};

/// Identifier of a register array within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegId(pub(crate) u16);

impl RegId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declaration of a register array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterSpec {
    /// Human-readable name (unique within a program).
    pub name: String,
    /// Element width in bits (1..=64; hardware pairs 32-bit cells for wider).
    pub width_bits: u8,
    /// Number of elements (flow slots). Must be a power of two.
    pub len: usize,
    /// Optional saturation cap: stored values clamp to `min(mask, cap)`.
    /// Models a stateful ALU configured for saturating arithmetic at a
    /// sub-width boundary; SpliDT's feature slots use this so software and
    /// data-plane accumulators agree bit-for-bit.
    pub cap: Option<u64>,
}

impl RegisterSpec {
    /// Convenience constructor without a cap.
    pub fn new(name: impl Into<String>, width_bits: u8, len: usize) -> Self {
        Self { name: name.into(), width_bits, len, cap: None }
    }

    /// Convenience constructor with a saturation cap.
    pub fn capped(name: impl Into<String>, width_bits: u8, len: usize, cap: u64) -> Self {
        Self { name: name.into(), width_bits, len, cap: Some(cap) }
    }
}

impl RegisterSpec {
    /// Total bits of state held by the array.
    pub fn total_bits(&self) -> u64 {
        self.width_bits as u64 * self.len as u64
    }

    /// Mask for element width.
    pub fn mask(&self) -> u64 {
        if self.width_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }
}

/// Best-effort `madvise(MADV_HUGEPAGE)` over a large array's backing
/// storage. Flow-state arrays at realistic slot counts span hundreds of
/// thousands of 4 KiB pages touched in hash order, so on kernels whose
/// transparent-hugepage policy is `madvise` the TLB miss (and the page
/// walk it forces, which also defeats software prefetch on most cores)
/// dominates the access — opting the region into huge pages removes it.
/// The hint is advisory: failures are ignored, small arrays are skipped,
/// and off Linux/x86_64 this is a no-op. Issued via a raw syscall to
/// keep the crate dependency-free.
fn advise_hugepages(data: &[u64]) {
    const HUGE: usize = 1 << 21;
    if std::mem::size_of_val(data) < HUGE {
        return;
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        const SYS_MADVISE: u64 = 28;
        const MADV_HUGEPAGE: u64 = 14;
        const PAGE: usize = 4096;
        // madvise wants a page-aligned range; round inward so the hint
        // never touches bytes outside the allocation.
        let start = data.as_ptr() as usize;
        let end = start + std::mem::size_of_val(data);
        let lo = start.next_multiple_of(PAGE);
        let hi = end & !(PAGE - 1);
        if hi > lo {
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_MADVISE => _,
                    in("rdi") lo,
                    in("rsi") hi - lo,
                    in("rdx") MADV_HUGEPAGE,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack)
                );
            }
        }
    }
}

/// Runtime state of a register array.
#[derive(Debug, Clone)]
pub struct RegisterArray {
    spec: RegisterSpec,
    data: Vec<u64>,
}

impl RegisterArray {
    /// Allocates a zeroed array from a spec.
    pub fn new(spec: RegisterSpec) -> Self {
        assert!(spec.len.is_power_of_two(), "register '{}' len must be a power of two", spec.name);
        assert!((1..=64).contains(&spec.width_bits), "register '{}' width out of range", spec.name);
        let data = vec![0u64; spec.len];
        advise_hugepages(&data);
        Self { spec, data }
    }

    /// The array's declaration.
    pub fn spec(&self) -> &RegisterSpec {
        &self.spec
    }

    /// Reads element `i` (no modify).
    pub fn read(&self, i: usize) -> u64 {
        self.data[i & (self.spec.len - 1)]
    }

    /// Hints the CPU to pull element `i`'s cache line toward L1. The wave
    /// executor issues this for every packet of a burst before execution
    /// starts, so the per-flow state misses of the whole wave resolve in
    /// parallel instead of serializing one packet at a time. Index
    /// wrapping matches [`RegisterArray::read`]; a no-op off x86_64.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        let idx = i & (self.spec.len - 1);
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.data.as_ptr().add(idx).cast(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// Writes element `i` (used by tests and controller-style resets).
    pub fn write(&mut self, i: usize, v: u64) {
        let idx = i & (self.spec.len - 1);
        self.data[idx] = v & self.spec.mask();
    }

    /// Read-modify-write: applies `op` with `operand`, returns `(old, new)`.
    ///
    /// When the spec carries a `cap`, the stored value saturates at the cap
    /// (the ALU's saturating mode): with non-negative operands, `Add`
    /// becomes saturating addition.
    pub fn rmw(&mut self, i: usize, op: RegAluOp, operand: u64) -> (u64, u64) {
        let idx = i & (self.spec.len - 1);
        let mask = self.spec.mask();
        let old = self.data[idx];
        let mut new = match op {
            RegAluOp::Read => old,
            RegAluOp::Write => operand & mask,
            RegAluOp::Add => old.wrapping_add(operand) & mask,
            RegAluOp::Sub => old.wrapping_sub(operand) & mask,
            RegAluOp::Min => old.min(operand & mask),
            RegAluOp::Max => old.max(operand & mask),
        };
        if let Some(cap) = self.spec.cap {
            // Saturating add: if the un-masked sum exceeds the cap, clamp.
            if op == RegAluOp::Add && old.checked_add(operand).is_none_or(|s| s > cap) {
                new = cap.min(mask);
            } else {
                new = new.min(cap.min(mask));
            }
        }
        self.data[idx] = new;
        (old, new)
    }

    /// Zeroes all elements.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

/// Bit layout of an **ownership lane** cell: the 64-bit register element
/// that gives every flow slot an owner, packed as
/// `decided(1) ‖ pinned(1) ‖ class(6) ‖ fingerprint(24) ‖ last_seen_us(32)`.
///
/// Tofino stateful ALUs pair two 32-bit lanes over one 64-bit cell with
/// predicated updates; the lane models that pairing — the high word holds
/// identity (fingerprint + the lifecycle-policy bits: decided flag,
/// pinned flag, verdict class), the low word holds recency — which is the
/// same register-reuse discipline pForest applies to keep per-flow state
/// bounded under churn. A fingerprint of 0 means the slot is free (the
/// compiler forces real fingerprints nonzero). The verdict class rides in
/// the lane so the eviction policy can be class-aware: decided lanes whose
/// class is *pinned* (e.g. suspected-malicious) resist takeover until a
/// longer pinned timeout or an explicit operator release.
pub mod owner_lane {
    use crate::hash::FP_MASK;

    /// The free (unowned) cell value.
    pub const FREE: u64 = 0;

    /// Bits available for the verdict class stored in the lane.
    pub const CLASS_BITS: u8 = 6;

    /// Mask selecting the class bits.
    pub const CLASS_MASK: u64 = (1 << CLASS_BITS) - 1;

    /// Packs a lane cell.
    pub fn pack(decided: bool, pinned: bool, class: u64, fp: u64, last_seen_us: u64) -> u64 {
        ((decided as u64) << 63)
            | ((pinned as u64) << 62)
            | ((class & CLASS_MASK) << 56)
            | ((fp & FP_MASK) << 32)
            | (last_seen_us & 0xFFFF_FFFF)
    }

    /// The owner fingerprint (0 = free).
    pub fn fp(cell: u64) -> u64 {
        (cell >> 32) & FP_MASK
    }

    /// Last-seen timestamp (µs, truncated to 32 bits).
    pub fn last_seen_us(cell: u64) -> u64 {
        cell & 0xFFFF_FFFF
    }

    /// Whether the owner already received a verdict.
    pub fn decided(cell: u64) -> bool {
        cell >> 63 == 1
    }

    /// Whether the lane is pinned (class-aware eviction resistance).
    pub fn pinned(cell: u64) -> bool {
        (cell >> 62) & 1 == 1
    }

    /// The verdict class stored at decide time (meaningful when decided).
    pub fn class(cell: u64) -> u64 {
        (cell >> 56) & CLASS_MASK
    }
}

/// The stateful-ALU operation applied on a register visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegAluOp {
    /// Read without modifying.
    Read,
    /// Overwrite with the operand.
    Write,
    /// Wrapping add of the operand.
    Add,
    /// Wrapping subtract of the operand.
    Sub,
    /// Keep the minimum of cell and operand.
    Min,
    /// Keep the maximum of cell and operand.
    Max,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(width: u8, len: usize) -> RegisterArray {
        RegisterArray::new(RegisterSpec::new("r", width, len))
    }

    #[test]
    fn rmw_ops() {
        let mut r = arr(32, 8);
        assert_eq!(r.rmw(0, RegAluOp::Write, 10), (0, 10));
        assert_eq!(r.rmw(0, RegAluOp::Add, 5), (10, 15));
        assert_eq!(r.rmw(0, RegAluOp::Sub, 3), (15, 12));
        assert_eq!(r.rmw(0, RegAluOp::Max, 100), (12, 100));
        assert_eq!(r.rmw(0, RegAluOp::Min, 42), (100, 42));
        assert_eq!(r.rmw(0, RegAluOp::Read, 999), (42, 42));
        assert_eq!(r.read(0), 42);
    }

    #[test]
    fn width_masking_and_wrapping() {
        let mut r = arr(8, 4);
        r.rmw(1, RegAluOp::Write, 0x1FF);
        assert_eq!(r.read(1), 0xFF);
        assert_eq!(r.rmw(1, RegAluOp::Add, 2), (0xFF, 0x01)); // wraps at 8 bits
    }

    #[test]
    fn index_wraps_power_of_two() {
        let mut r = arr(16, 8);
        r.write(9, 77); // 9 & 7 == 1
        assert_eq!(r.read(1), 77);
    }

    #[test]
    fn clear_resets() {
        let mut r = arr(16, 4);
        r.write(2, 5);
        r.clear();
        assert_eq!(r.read(2), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_len_rejected() {
        arr(16, 6);
    }

    #[test]
    fn total_bits() {
        let r = arr(32, 1024);
        assert_eq!(r.spec().total_bits(), 32 * 1024);
    }

    #[test]
    fn capped_add_saturates() {
        let mut r = RegisterArray::new(RegisterSpec::capped("c", 32, 4, 100));
        r.rmw(0, RegAluOp::Write, 95);
        assert_eq!(r.rmw(0, RegAluOp::Add, 3), (95, 98));
        assert_eq!(r.rmw(0, RegAluOp::Add, 10), (98, 100)); // saturates
        assert_eq!(r.rmw(0, RegAluOp::Add, 1), (100, 100));
    }

    #[test]
    fn capped_write_and_max_clamp() {
        let mut r = RegisterArray::new(RegisterSpec::capped("c", 32, 4, 100));
        r.rmw(0, RegAluOp::Write, 500);
        assert_eq!(r.read(0), 100);
        r.rmw(1, RegAluOp::Max, 7);
        assert_eq!(r.read(1), 7);
        r.rmw(1, RegAluOp::Max, 101);
        assert_eq!(r.read(1), 100);
    }

    #[test]
    fn owner_lane_roundtrip() {
        use crate::hash::FP_MASK;
        let cell = owner_lane::pack(true, true, 0x2A, FP_MASK, 0x1234_5678);
        assert!(owner_lane::decided(cell));
        assert!(owner_lane::pinned(cell));
        assert_eq!(owner_lane::class(cell), 0x2A);
        assert_eq!(owner_lane::fp(cell), FP_MASK);
        assert_eq!(owner_lane::last_seen_us(cell), 0x1234_5678);
        let plain = owner_lane::pack(false, false, 0, 7, 9);
        assert!(!owner_lane::decided(plain));
        assert!(!owner_lane::pinned(plain));
        assert_eq!(owner_lane::class(plain), 0);
        assert_eq!(owner_lane::fp(plain), 7);
        assert_eq!(owner_lane::last_seen_us(plain), 9);
        assert_eq!(owner_lane::FREE, 0);
        // class overflow is masked, never smeared into the flag bits
        let wide = owner_lane::pack(false, false, 0xFFF, 1, 1);
        assert_eq!(owner_lane::class(wide), owner_lane::CLASS_MASK);
        assert!(!owner_lane::pinned(wide));
        assert!(!owner_lane::decided(wide));
    }

    #[test]
    fn capped_add_near_u64_boundary_saturates() {
        let mut r = RegisterArray::new(RegisterSpec::capped("c", 64, 4, u64::MAX - 1));
        r.rmw(0, RegAluOp::Write, u64::MAX - 2);
        // Overflowing u64 add must clamp to the cap, not wrap.
        assert_eq!(r.rmw(0, RegAluOp::Add, 100).1, u64::MAX - 1);
    }
}
