//! Stateful register arrays with Tofino-style stateful-ALU semantics.
//!
//! Each array lives in exactly one pipeline stage and supports **one
//! read-modify-write per packet pass** (the pipeline validator enforces the
//! single-stage placement; the one-visit property follows from tables being
//! applied once per pass). The ALU operations mirror what Tofino's SALUs
//! provide and what SpliDT's feature slots need: write, add, min, max — each
//! able to export the old or new value into the PHV.

use serde::{Deserialize, Serialize};

/// Identifier of a register array within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegId(pub(crate) u16);

impl RegId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declaration of a register array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterSpec {
    /// Human-readable name (unique within a program).
    pub name: String,
    /// Element width in bits (1..=64; hardware pairs 32-bit cells for wider).
    pub width_bits: u8,
    /// Number of elements (flow slots). Must be a power of two.
    pub len: usize,
    /// Optional saturation cap: stored values clamp to `min(mask, cap)`.
    /// Models a stateful ALU configured for saturating arithmetic at a
    /// sub-width boundary; SpliDT's feature slots use this so software and
    /// data-plane accumulators agree bit-for-bit.
    pub cap: Option<u64>,
}

impl RegisterSpec {
    /// Convenience constructor without a cap.
    pub fn new(name: impl Into<String>, width_bits: u8, len: usize) -> Self {
        Self { name: name.into(), width_bits, len, cap: None }
    }

    /// Convenience constructor with a saturation cap.
    pub fn capped(name: impl Into<String>, width_bits: u8, len: usize, cap: u64) -> Self {
        Self { name: name.into(), width_bits, len, cap: Some(cap) }
    }
}

impl RegisterSpec {
    /// Total bits of state held by the array.
    pub fn total_bits(&self) -> u64 {
        self.width_bits as u64 * self.len as u64
    }

    /// Mask for element width.
    pub fn mask(&self) -> u64 {
        if self.width_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }
}

/// Best-effort `madvise(MADV_HUGEPAGE)` over a large array's backing
/// storage. Flow-state arrays at realistic slot counts span hundreds of
/// thousands of 4 KiB pages touched in hash order, so on kernels whose
/// transparent-hugepage policy is `madvise` the TLB miss (and the page
/// walk it forces, which also defeats software prefetch on most cores)
/// dominates the access — opting the region into huge pages removes it.
/// The hint is advisory: failures are ignored, small arrays are skipped,
/// and off Linux/x86_64 this is a no-op. Issued via a raw syscall to
/// keep the crate dependency-free.
fn advise_hugepages(data: &[u64]) {
    advise_hugepages_raw(data.as_ptr().cast(), std::mem::size_of_val(data));
}

/// Byte-range form of [`advise_hugepages`], shared with the flow-bank
/// arena (whose backing storage is cache lines, not `u64`s).
fn advise_hugepages_raw(ptr: *const u8, bytes: usize) {
    const HUGE: usize = 1 << 21;
    if bytes < HUGE {
        return;
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        const SYS_MADVISE: u64 = 28;
        const MADV_HUGEPAGE: u64 = 14;
        const PAGE: usize = 4096;
        // madvise wants a page-aligned range; round inward so the hint
        // never touches bytes outside the allocation.
        let start = ptr as usize;
        let end = start + bytes;
        let lo = start.next_multiple_of(PAGE);
        let hi = end & !(PAGE - 1);
        if hi > lo {
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_MADVISE => _,
                    in("rdi") lo,
                    in("rsi") hi - lo,
                    in("rdx") MADV_HUGEPAGE,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack)
                );
            }
        }
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    let _ = ptr;
}

/// Runtime state of a register array.
#[derive(Debug, Clone)]
pub struct RegisterArray {
    spec: RegisterSpec,
    data: Vec<u64>,
}

impl RegisterArray {
    /// Allocates a zeroed array from a spec.
    pub fn new(spec: RegisterSpec) -> Self {
        assert!(spec.len.is_power_of_two(), "register '{}' len must be a power of two", spec.name);
        assert!((1..=64).contains(&spec.width_bits), "register '{}' width out of range", spec.name);
        let data = vec![0u64; spec.len];
        advise_hugepages(&data);
        Self { spec, data }
    }

    /// The array's declaration.
    pub fn spec(&self) -> &RegisterSpec {
        &self.spec
    }

    /// Reads element `i` (no modify).
    pub fn read(&self, i: usize) -> u64 {
        self.data[i & (self.spec.len - 1)]
    }

    /// Hints the CPU to pull element `i`'s cache line toward L1. The wave
    /// executor issues this for every packet of a burst before execution
    /// starts, so the per-flow state misses of the whole wave resolve in
    /// parallel instead of serializing one packet at a time. Index
    /// wrapping matches [`RegisterArray::read`]; a no-op off x86_64.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        let idx = i & (self.spec.len - 1);
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.data.as_ptr().add(idx).cast(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// Writes element `i` (used by tests and controller-style resets).
    pub fn write(&mut self, i: usize, v: u64) {
        let idx = i & (self.spec.len - 1);
        self.data[idx] = v & self.spec.mask();
    }

    /// Read-modify-write: applies `op` with `operand`, returns `(old, new)`.
    ///
    /// When the spec carries a `cap`, the stored value saturates at the cap
    /// (the ALU's saturating mode): with non-negative operands, `Add`
    /// becomes saturating addition.
    pub fn rmw(&mut self, i: usize, op: RegAluOp, operand: u64) -> (u64, u64) {
        let idx = i & (self.spec.len - 1);
        let old = self.data[idx];
        let new = alu_apply(old, op, operand, self.spec.mask(), self.spec.cap);
        self.data[idx] = new;
        (old, new)
    }

    /// Zeroes all elements.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

/// One stateful-ALU visit: applies `op` with `operand` to `old` under the
/// element-width `mask` and optional saturation `cap`, returning the new
/// cell value. Shared by [`RegisterArray::rmw`] and
/// [`RegisterFile::rmw`] so the split and banked layouts are
/// bit-identical by construction.
#[inline]
fn alu_apply(old: u64, op: RegAluOp, operand: u64, mask: u64, cap: Option<u64>) -> u64 {
    let mut new = match op {
        RegAluOp::Read => old,
        RegAluOp::Write => operand & mask,
        RegAluOp::Add => old.wrapping_add(operand) & mask,
        RegAluOp::Sub => old.wrapping_sub(operand) & mask,
        RegAluOp::Min => old.min(operand & mask),
        RegAluOp::Max => old.max(operand & mask),
    };
    if let Some(cap) = cap {
        // Saturating add: if the un-masked sum exceeds the cap, clamp.
        if op == RegAluOp::Add && old.checked_add(operand).is_none_or(|s| s > cap) {
            new = cap.min(mask);
        } else {
            new = new.min(cap.min(mask));
        }
    }
    new
}

/// The CPU cache-line granule the flow bank pads its per-slot stride to.
pub const BANK_LINE_BYTES: usize = 64;

/// Physical cell size (bytes) a register of `width_bits` occupies in a
/// flow bank: the next power-of-two byte count, so every cell is
/// naturally aligned and never straddles a cache line.
pub fn bank_cell_bytes(width_bits: u8) -> usize {
    match width_bits {
        0..=8 => 1,
        9..=16 => 2,
        17..=32 => 4,
        _ => 8,
    }
}

/// Where one logical register's cells live physically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegPlacement {
    /// Coalesced into flow bank `bank` at byte `offset` within each
    /// slot's stride, as a `cell_bytes`-wide little-endian cell.
    Banked { bank: u16, offset: u32, cell_bytes: u8 },
    /// A standalone per-stage [`RegisterArray`] (registers that share a
    /// slot domain with no sibling gain nothing from coalescing).
    Split,
}

/// Descriptor of one flow bank: the registers it coalesces and the
/// per-slot stride they pack into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankDesc {
    /// Shared slot domain (every member's `len`).
    pub slots: usize,
    /// Packed payload bytes per slot, before line padding.
    pub cell_bytes: usize,
    /// Per-slot stride in bytes: `cell_bytes` rounded up to a multiple
    /// of [`BANK_LINE_BYTES`].
    pub stride_bytes: usize,
    /// Member register indices, in packing order (cell size descending,
    /// declaration order within a size class).
    pub members: Vec<u16>,
}

impl BankDesc {
    /// Cache lines one slot's state spans (1 for ≤64B, 2 beyond, …).
    pub fn lines_per_slot(&self) -> usize {
        self.stride_bytes / BANK_LINE_BYTES
    }

    /// Total arena bytes (`slots * stride`).
    pub fn arena_bytes(&self) -> usize {
        self.slots * self.stride_bytes
    }
}

/// Compile-time assignment of logical registers to flow banks: registers
/// sharing a slot domain (`len`) are coalesced into one AoS bank so all
/// of a flow's state sits on one (or two) cache lines; singletons stay
/// split. Computed once by the `ExecPlan` compiler and by
/// [`RegisterFile`] construction — both from the same spec list, so they
/// always agree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankLayout {
    /// Per-register placement, parallel to the program's register list.
    placements: Vec<RegPlacement>,
    /// Bank descriptors, indexed by `RegPlacement::Banked::bank`.
    banks: Vec<BankDesc>,
}

impl BankLayout {
    /// Assigns placements for `specs`. Grouping key is the slot domain:
    /// every register whose `len` matches at least one sibling joins that
    /// domain's bank. Within a bank, cells pack by size descending
    /// (stable by declaration order), so natural alignment holds without
    /// gaps; the stride pads to the next cache-line multiple.
    pub fn assign(specs: &[RegisterSpec]) -> Self {
        let mut placements = vec![RegPlacement::Split; specs.len()];
        let mut banks = Vec::new();
        // Distinct slot domains in declaration order (register counts are
        // tiny — a linear scan beats a map here).
        let mut domains: Vec<usize> = Vec::new();
        for s in specs {
            if !domains.contains(&s.len) {
                domains.push(s.len);
            }
        }
        for len in domains {
            let mut members: Vec<u16> =
                (0..specs.len()).filter(|&i| specs[i].len == len).map(|i| i as u16).collect();
            if members.len() < 2 {
                continue;
            }
            // Size-descending stable sort: 8B cells first, then 4, 2, 1.
            members
                .sort_by_key(|&i| std::cmp::Reverse(bank_cell_bytes(specs[i as usize].width_bits)));
            let bank = banks.len() as u16;
            let mut offset = 0usize;
            for &m in &members {
                let cell = bank_cell_bytes(specs[m as usize].width_bits);
                debug_assert_eq!(offset % cell, 0, "descending pow2 packing keeps cells aligned");
                placements[m as usize] =
                    RegPlacement::Banked { bank, offset: offset as u32, cell_bytes: cell as u8 };
                offset += cell;
            }
            let stride = offset.next_multiple_of(BANK_LINE_BYTES);
            banks.push(BankDesc { slots: len, cell_bytes: offset, stride_bytes: stride, members });
        }
        Self { placements, banks }
    }

    /// Per-register placements (parallel to the spec list).
    pub fn placements(&self) -> &[RegPlacement] {
        &self.placements
    }

    /// The bank descriptors.
    pub fn banks(&self) -> &[BankDesc] {
        &self.banks
    }
}

/// One 64-byte line of flow-bank state. The `align(64)` keeps every
/// slot's stride starting on a real cache-line boundary, so the padding
/// math in [`BankLayout`] translates directly into touched lines.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct CacheLine([u8; BANK_LINE_BYTES]);

const ZERO_LINE: CacheLine = CacheLine([0; BANK_LINE_BYTES]);

/// A flow bank: the cache-line-aligned arena holding every coalesced
/// register cell of one slot domain, AoS by slot. Cell addressing is
/// `slot * stride + offset`; cells are little-endian, power-of-two sized
/// and naturally aligned, so no cell ever straddles a line.
#[derive(Debug, Clone)]
pub struct FlowBank {
    desc: BankDesc,
    lines: Vec<CacheLine>,
}

impl FlowBank {
    fn new(desc: BankDesc) -> Self {
        assert!(desc.slots.is_power_of_two(), "bank slot domain must be a power of two");
        let lines = vec![ZERO_LINE; desc.arena_bytes() / BANK_LINE_BYTES];
        advise_hugepages_raw(lines.as_ptr().cast(), std::mem::size_of_val(&lines[..]));
        Self { desc, lines }
    }

    /// The bank's descriptor (slot domain, stride, members).
    pub fn desc(&self) -> &BankDesc {
        &self.desc
    }

    /// Raw arena view — test/introspection only (asserting e.g. that a
    /// reset left no live byte behind, padding included).
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `CacheLine` is a plain `#[repr(C)]` byte array with no
        // padding; viewing the contiguous line vec as bytes is always
        // valid and the length is exactly the allocation's byte size.
        unsafe {
            std::slice::from_raw_parts(
                self.lines.as_ptr().cast::<u8>(),
                self.lines.len() * BANK_LINE_BYTES,
            )
        }
    }

    #[inline(always)]
    fn cell(&self, slot: usize, offset: u32, cell_bytes: u8) -> u64 {
        let base = (slot & (self.desc.slots - 1)) * self.desc.stride_bytes + offset as usize;
        debug_assert!(base + cell_bytes as usize <= self.lines.len() * BANK_LINE_BYTES);
        debug_assert_eq!(base % cell_bytes as usize, 0, "cells are naturally aligned");
        // SAFETY: the masked slot is < `desc.slots`, `offset + cell_bytes
        // <= stride` by `BankLayout::assign` construction, and the arena
        // holds exactly `slots * stride` bytes — the access is in bounds
        // and (being naturally aligned) never straddles the allocation.
        // The unchecked reads keep three redundant bounds checks out of a
        // path the interpreter hits ~10 times per packet.
        unsafe {
            let p = self.lines.as_ptr().cast::<u8>().add(base);
            match cell_bytes {
                1 => p.read() as u64,
                2 => u16::from_le(p.cast::<u16>().read()) as u64,
                4 => u32::from_le(p.cast::<u32>().read()) as u64,
                _ => u64::from_le(p.cast::<u64>().read()),
            }
        }
    }

    #[inline(always)]
    fn set_cell(&mut self, slot: usize, offset: u32, cell_bytes: u8, v: u64) {
        let base = (slot & (self.desc.slots - 1)) * self.desc.stride_bytes + offset as usize;
        debug_assert!(base + cell_bytes as usize <= self.lines.len() * BANK_LINE_BYTES);
        debug_assert_eq!(base % cell_bytes as usize, 0, "cells are naturally aligned");
        // SAFETY: same bounds/alignment argument as `cell` above.
        unsafe {
            let p = self.lines.as_mut_ptr().cast::<u8>().add(base);
            match cell_bytes {
                1 => p.write(v as u8),
                2 => p.cast::<u16>().write((v as u16).to_le()),
                4 => p.cast::<u32>().write((v as u32).to_le()),
                _ => p.cast::<u64>().write(v.to_le()),
            }
        }
    }

    /// Hints the CPU to pull line `line` of slot `slot`'s stride toward
    /// L1 (the wave executor's push-time prefetch; one call per touched
    /// line). A no-op off x86_64.
    #[inline]
    pub fn prefetch(&self, slot: usize, line: usize) {
        let idx = (slot & (self.desc.slots - 1)) * self.desc.lines_per_slot() + line;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.lines.as_ptr().add(idx).cast(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    fn clear(&mut self) {
        self.lines.fill(ZERO_LINE);
    }
}

/// Resolved per-register addressing inside a [`RegisterFile`] — the
/// `(bank, offset, width)` the plan compiler assigned, plus the ALU
/// constants the hot path needs without touching the spec.
#[derive(Debug, Clone, Copy)]
enum CellLoc {
    Bank { bank: u16, offset: u32, cell_bytes: u8 },
    Array { arr: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    loc: CellLoc,
    mask: u64,
    cap: Option<u64>,
}

/// The register file: every logical register of a program, stored either
/// coalesced in a [`FlowBank`] (registers sharing a slot domain) or as a
/// standalone [`RegisterArray`]. The logical API — `read`/`write`/`rmw`
/// per `(register, slot)` — is layout-independent; `new_split` keeps the
/// historical one-array-per-register layout as the differential-testing
/// reference.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    specs: Vec<RegisterSpec>,
    cells: Vec<Cell>,
    banks: Vec<FlowBank>,
    arrays: Vec<RegisterArray>,
    layout: BankLayout,
    banked: bool,
}

impl RegisterFile {
    /// Builds the banked (production) layout for `specs`.
    pub fn new_banked(specs: &[RegisterSpec]) -> Self {
        Self::with_mode(specs, true)
    }

    /// Builds the split (reference) layout: one array per register,
    /// exactly the pre-banking representation.
    pub fn new_split(specs: &[RegisterSpec]) -> Self {
        Self::with_mode(specs, false)
    }

    fn with_mode(specs: &[RegisterSpec], banked: bool) -> Self {
        let layout = if banked { BankLayout::assign(specs) } else { BankLayout::assign(&[]) };
        let banks: Vec<FlowBank> = layout.banks().iter().cloned().map(FlowBank::new).collect();
        let mut arrays = Vec::new();
        let cells = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let loc = match layout.placements().get(i) {
                    Some(&RegPlacement::Banked { bank, offset, cell_bytes }) => {
                        CellLoc::Bank { bank, offset, cell_bytes }
                    }
                    _ => {
                        arrays.push(RegisterArray::new(s.clone()));
                        CellLoc::Array { arr: arrays.len() as u32 - 1 }
                    }
                };
                Cell { loc, mask: s.mask(), cap: s.cap }
            })
            .collect();
        Self { specs: specs.to_vec(), cells, banks, arrays, layout, banked }
    }

    /// Whether this file uses the banked layout.
    pub fn is_banked(&self) -> bool {
        self.banked
    }

    /// Number of logical registers.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the file holds no registers.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Declaration of register `i`.
    pub fn spec(&self, i: usize) -> &RegisterSpec {
        &self.specs[i]
    }

    /// The compile-time bank layout this file was built from (empty in
    /// split mode).
    pub fn layout(&self) -> &BankLayout {
        &self.layout
    }

    /// The live flow banks (empty in split mode).
    pub fn banks(&self) -> &[FlowBank] {
        &self.banks
    }

    /// The standalone array backing register `i`, if it is split.
    pub(crate) fn split_array(&self, i: usize) -> Option<&RegisterArray> {
        match self.cells[i].loc {
            CellLoc::Array { arr } => Some(&self.arrays[arr as usize]),
            CellLoc::Bank { .. } => None,
        }
    }

    /// Reads register `i`, slot `slot` (no modify).
    #[inline(always)]
    pub fn read(&self, i: usize, slot: usize) -> u64 {
        debug_assert!(i < self.cells.len());
        // SAFETY: `i` is a register index of the program this file was
        // built from (the plan validates every op's register at compile
        // time), and a `Bank` loc's `bank` was assigned `< banks.len()`
        // at construction. The unchecked lookups keep two redundant
        // bounds checks off a path the interpreter hits ~10×/packet.
        let cell = unsafe { self.cells.get_unchecked(i) };
        match cell.loc {
            CellLoc::Bank { bank, offset, cell_bytes } => unsafe {
                self.banks.get_unchecked(bank as usize).cell(slot, offset, cell_bytes)
            },
            CellLoc::Array { arr } => self.arrays[arr as usize].read(slot),
        }
    }

    /// Writes register `i`, slot `slot` (controller-style; masked to the
    /// register width like [`RegisterArray::write`]).
    #[inline(always)]
    pub fn write(&mut self, i: usize, slot: usize, v: u64) {
        debug_assert!(i < self.cells.len());
        // SAFETY: see `read`.
        let cell = *unsafe { self.cells.get_unchecked(i) };
        match cell.loc {
            CellLoc::Bank { bank, offset, cell_bytes } => unsafe {
                self.banks.get_unchecked_mut(bank as usize).set_cell(
                    slot,
                    offset,
                    cell_bytes,
                    v & cell.mask,
                );
            },
            CellLoc::Array { arr } => self.arrays[arr as usize].write(slot, v),
        }
    }

    /// Read-modify-write with [`RegisterArray::rmw`] semantics (same ALU
    /// body, so both layouts saturate and mask identically).
    #[inline(always)]
    pub fn rmw(&mut self, i: usize, slot: usize, op: RegAluOp, operand: u64) -> (u64, u64) {
        debug_assert!(i < self.cells.len());
        // SAFETY: see `read`.
        let cell = *unsafe { self.cells.get_unchecked(i) };
        match cell.loc {
            CellLoc::Bank { bank, offset, cell_bytes } => {
                let b = unsafe { self.banks.get_unchecked_mut(bank as usize) };
                let old = b.cell(slot, offset, cell_bytes);
                let new = alu_apply(old, op, operand, cell.mask, cell.cap);
                b.set_cell(slot, offset, cell_bytes, new);
                (old, new)
            }
            CellLoc::Array { arr } => self.arrays[arr as usize].rmw(slot, op, operand),
        }
    }

    /// Zeroes every register — whole bank arenas (padding included) and
    /// every split array.
    pub fn clear(&mut self) {
        for b in &mut self.banks {
            b.clear();
        }
        for a in &mut self.arrays {
            a.clear();
        }
    }

    /// Carries state from `old` into this (freshly zeroed) file for every
    /// register whose `(name, width, len, cap)` spec matches — the
    /// program-swap contract. When a whole bank's member spec list
    /// matches one of `old`'s banks (the common recompile case), its
    /// arena is cloned wholesale; otherwise matching registers copy cell
    /// by cell, which also covers carrying across layout modes.
    pub fn carry_from(&mut self, old: &RegisterFile) {
        let same = |a: &RegisterSpec, b: &RegisterSpec| {
            a.name == b.name && a.width_bits == b.width_bits && a.len == b.len && a.cap == b.cap
        };
        let mut carried = vec![false; self.specs.len()];
        for (bi, desc) in self.layout.banks().iter().enumerate().map(|(i, b)| (i, b.clone())) {
            let matched = old.layout.banks().iter().enumerate().find(|(_, od)| {
                od.stride_bytes == desc.stride_bytes
                    && od.members.len() == desc.members.len()
                    && od.slots == desc.slots
                    && desc
                        .members
                        .iter()
                        .zip(&od.members)
                        .all(|(&m, &om)| same(&self.specs[m as usize], &old.specs[om as usize]))
            });
            if let Some((oi, _)) = matched {
                self.banks[bi].lines.copy_from_slice(&old.banks[oi].lines);
                for &m in &desc.members {
                    carried[m as usize] = true;
                }
            }
        }
        for (i, done) in carried.into_iter().enumerate() {
            if done {
                continue;
            }
            let Some(j) = old.specs.iter().position(|s| same(s, &self.specs[i])) else {
                continue;
            };
            for slot in 0..self.specs[i].len {
                self.write(i, slot, old.read(j, slot));
            }
        }
    }
}

/// Bit layout of an **ownership lane** cell: the 64-bit register element
/// that gives every flow slot an owner, packed as
/// `decided(1) ‖ pinned(1) ‖ class(6) ‖ fingerprint(24) ‖ last_seen_us(32)`.
///
/// Tofino stateful ALUs pair two 32-bit lanes over one 64-bit cell with
/// predicated updates; the lane models that pairing — the high word holds
/// identity (fingerprint + the lifecycle-policy bits: decided flag,
/// pinned flag, verdict class), the low word holds recency — which is the
/// same register-reuse discipline pForest applies to keep per-flow state
/// bounded under churn. A fingerprint of 0 means the slot is free (the
/// compiler forces real fingerprints nonzero). The verdict class rides in
/// the lane so the eviction policy can be class-aware: decided lanes whose
/// class is *pinned* (e.g. suspected-malicious) resist takeover until a
/// longer pinned timeout or an explicit operator release.
pub mod owner_lane {
    use crate::hash::FP_MASK;

    /// The free (unowned) cell value.
    pub const FREE: u64 = 0;

    /// Bits available for the verdict class stored in the lane.
    pub const CLASS_BITS: u8 = 6;

    /// Mask selecting the class bits.
    pub const CLASS_MASK: u64 = (1 << CLASS_BITS) - 1;

    /// Packs a lane cell.
    pub fn pack(decided: bool, pinned: bool, class: u64, fp: u64, last_seen_us: u64) -> u64 {
        ((decided as u64) << 63)
            | ((pinned as u64) << 62)
            | ((class & CLASS_MASK) << 56)
            | ((fp & FP_MASK) << 32)
            | (last_seen_us & 0xFFFF_FFFF)
    }

    /// The owner fingerprint (0 = free).
    pub fn fp(cell: u64) -> u64 {
        (cell >> 32) & FP_MASK
    }

    /// Last-seen timestamp (µs, truncated to 32 bits).
    pub fn last_seen_us(cell: u64) -> u64 {
        cell & 0xFFFF_FFFF
    }

    /// Whether the owner already received a verdict.
    pub fn decided(cell: u64) -> bool {
        cell >> 63 == 1
    }

    /// Whether the lane is pinned (class-aware eviction resistance).
    pub fn pinned(cell: u64) -> bool {
        (cell >> 62) & 1 == 1
    }

    /// The verdict class stored at decide time (meaningful when decided).
    pub fn class(cell: u64) -> u64 {
        (cell >> 56) & CLASS_MASK
    }
}

/// The stateful-ALU operation applied on a register visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegAluOp {
    /// Read without modifying.
    Read,
    /// Overwrite with the operand.
    Write,
    /// Wrapping add of the operand.
    Add,
    /// Wrapping subtract of the operand.
    Sub,
    /// Keep the minimum of cell and operand.
    Min,
    /// Keep the maximum of cell and operand.
    Max,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(width: u8, len: usize) -> RegisterArray {
        RegisterArray::new(RegisterSpec::new("r", width, len))
    }

    #[test]
    fn rmw_ops() {
        let mut r = arr(32, 8);
        assert_eq!(r.rmw(0, RegAluOp::Write, 10), (0, 10));
        assert_eq!(r.rmw(0, RegAluOp::Add, 5), (10, 15));
        assert_eq!(r.rmw(0, RegAluOp::Sub, 3), (15, 12));
        assert_eq!(r.rmw(0, RegAluOp::Max, 100), (12, 100));
        assert_eq!(r.rmw(0, RegAluOp::Min, 42), (100, 42));
        assert_eq!(r.rmw(0, RegAluOp::Read, 999), (42, 42));
        assert_eq!(r.read(0), 42);
    }

    #[test]
    fn width_masking_and_wrapping() {
        let mut r = arr(8, 4);
        r.rmw(1, RegAluOp::Write, 0x1FF);
        assert_eq!(r.read(1), 0xFF);
        assert_eq!(r.rmw(1, RegAluOp::Add, 2), (0xFF, 0x01)); // wraps at 8 bits
    }

    #[test]
    fn index_wraps_power_of_two() {
        let mut r = arr(16, 8);
        r.write(9, 77); // 9 & 7 == 1
        assert_eq!(r.read(1), 77);
    }

    #[test]
    fn clear_resets() {
        let mut r = arr(16, 4);
        r.write(2, 5);
        r.clear();
        assert_eq!(r.read(2), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_len_rejected() {
        arr(16, 6);
    }

    #[test]
    fn total_bits() {
        let r = arr(32, 1024);
        assert_eq!(r.spec().total_bits(), 32 * 1024);
    }

    #[test]
    fn capped_add_saturates() {
        let mut r = RegisterArray::new(RegisterSpec::capped("c", 32, 4, 100));
        r.rmw(0, RegAluOp::Write, 95);
        assert_eq!(r.rmw(0, RegAluOp::Add, 3), (95, 98));
        assert_eq!(r.rmw(0, RegAluOp::Add, 10), (98, 100)); // saturates
        assert_eq!(r.rmw(0, RegAluOp::Add, 1), (100, 100));
    }

    #[test]
    fn capped_write_and_max_clamp() {
        let mut r = RegisterArray::new(RegisterSpec::capped("c", 32, 4, 100));
        r.rmw(0, RegAluOp::Write, 500);
        assert_eq!(r.read(0), 100);
        r.rmw(1, RegAluOp::Max, 7);
        assert_eq!(r.read(1), 7);
        r.rmw(1, RegAluOp::Max, 101);
        assert_eq!(r.read(1), 100);
    }

    #[test]
    fn owner_lane_roundtrip() {
        use crate::hash::FP_MASK;
        let cell = owner_lane::pack(true, true, 0x2A, FP_MASK, 0x1234_5678);
        assert!(owner_lane::decided(cell));
        assert!(owner_lane::pinned(cell));
        assert_eq!(owner_lane::class(cell), 0x2A);
        assert_eq!(owner_lane::fp(cell), FP_MASK);
        assert_eq!(owner_lane::last_seen_us(cell), 0x1234_5678);
        let plain = owner_lane::pack(false, false, 0, 7, 9);
        assert!(!owner_lane::decided(plain));
        assert!(!owner_lane::pinned(plain));
        assert_eq!(owner_lane::class(plain), 0);
        assert_eq!(owner_lane::fp(plain), 7);
        assert_eq!(owner_lane::last_seen_us(plain), 9);
        assert_eq!(owner_lane::FREE, 0);
        // class overflow is masked, never smeared into the flag bits
        let wide = owner_lane::pack(false, false, 0xFFF, 1, 1);
        assert_eq!(owner_lane::class(wide), owner_lane::CLASS_MASK);
        assert!(!owner_lane::pinned(wide));
        assert!(!owner_lane::decided(wide));
    }

    #[test]
    fn bank_layout_packs_descending_and_pads_to_a_line() {
        let specs = vec![
            RegisterSpec::new("own", 64, 32),
            RegisterSpec::new("press", 32, 32),
            RegisterSpec::new("sid", 8, 32),
            RegisterSpec::new("win", 16, 32),
            RegisterSpec::new("lone", 32, 8), // different domain, singleton
        ];
        let l = BankLayout::assign(&specs);
        assert_eq!(l.banks().len(), 1);
        let b = &l.banks()[0];
        assert_eq!(b.slots, 32);
        // 8 + 4 + 2 + 1 packed bytes, one line per slot.
        assert_eq!(b.cell_bytes, 15);
        assert_eq!(b.stride_bytes, 64);
        assert_eq!(b.lines_per_slot(), 1);
        // Descending cell size: own(8) @ 0, press(4) @ 8, win(2) @ 12, sid(1) @ 14.
        assert_eq!(l.placements()[0], RegPlacement::Banked { bank: 0, offset: 0, cell_bytes: 8 });
        assert_eq!(l.placements()[1], RegPlacement::Banked { bank: 0, offset: 8, cell_bytes: 4 });
        assert_eq!(l.placements()[3], RegPlacement::Banked { bank: 0, offset: 12, cell_bytes: 2 });
        assert_eq!(l.placements()[2], RegPlacement::Banked { bank: 0, offset: 14, cell_bytes: 1 });
        assert_eq!(l.placements()[4], RegPlacement::Split);
    }

    #[test]
    fn bank_spills_to_two_lines_past_64_bytes() {
        // Nine 64-bit registers = 72 packed bytes > one line.
        let specs: Vec<_> = (0..9).map(|i| RegisterSpec::new(format!("r{i}"), 64, 16)).collect();
        let l = BankLayout::assign(&specs);
        assert_eq!(l.banks()[0].cell_bytes, 72);
        assert_eq!(l.banks()[0].stride_bytes, 128);
        assert_eq!(l.banks()[0].lines_per_slot(), 2);
    }

    #[test]
    fn register_file_banked_matches_split_semantics() {
        let specs = vec![
            RegisterSpec::new("a", 64, 16),
            RegisterSpec::capped("b", 32, 16, 100),
            RegisterSpec::new("c", 8, 16),
            RegisterSpec::new("lone", 24, 4),
        ];
        let mut banked = RegisterFile::new_banked(&specs);
        let mut split = RegisterFile::new_split(&specs);
        assert!(banked.is_banked() && !split.is_banked());
        assert_eq!(banked.banks().len(), 1);
        assert!(split.banks().is_empty());
        let ops = [
            (0, 3, RegAluOp::Write, u64::MAX),
            (1, 3, RegAluOp::Add, 95),
            (1, 3, RegAluOp::Add, 50), // saturates at 100
            (2, 5, RegAluOp::Add, 0x1FF),
            (3, 9, RegAluOp::Max, 7), // slot wraps: 9 & 3 == 1
            (0, 3, RegAluOp::Sub, 1),
        ];
        for &(r, s, op, v) in &ops {
            assert_eq!(banked.rmw(r, s, op, v), split.rmw(r, s, op, v), "rmw({r},{s})");
        }
        for (r, spec) in specs.iter().enumerate() {
            for s in 0..spec.len {
                assert_eq!(banked.read(r, s), split.read(r, s), "reg {r} slot {s}");
            }
        }
        assert_eq!(banked.read(1, 3), 100);
        assert_eq!(banked.read(3, 1), 7);
    }

    #[test]
    fn register_file_clear_zeroes_whole_arena() {
        let specs = vec![RegisterSpec::new("a", 64, 8), RegisterSpec::new("b", 16, 8)];
        let mut f = RegisterFile::new_banked(&specs);
        for s in 0..8 {
            f.write(0, s, u64::MAX);
            f.write(1, s, u64::MAX);
        }
        f.clear();
        assert!(f.banks()[0].as_bytes().iter().all(|&b| b == 0), "padding bytes included");
    }

    #[test]
    fn register_file_carry_matches_by_spec() {
        let old_specs = vec![
            RegisterSpec::new("keep", 32, 8),
            RegisterSpec::new("drop", 32, 8),
            RegisterSpec::new("resize", 16, 8),
        ];
        let mut old = RegisterFile::new_banked(&old_specs);
        old.write(0, 2, 42);
        old.write(1, 2, 7);
        old.write(2, 2, 9);
        // New program: same "keep", "resize" grew a width, "fresh" is new.
        let new_specs = vec![
            RegisterSpec::new("keep", 32, 8),
            RegisterSpec::new("resize", 32, 8),
            RegisterSpec::new("fresh", 32, 8),
        ];
        let mut new = RegisterFile::new_banked(&new_specs);
        new.carry_from(&old);
        assert_eq!(new.read(0, 2), 42, "matching spec carries");
        assert_eq!(new.read(1, 2), 0, "width change resets");
        assert_eq!(new.read(2, 2), 0, "new register starts zeroed");
    }

    #[test]
    fn register_file_carry_identical_bank_is_bitwise() {
        let specs = vec![RegisterSpec::new("a", 64, 16), RegisterSpec::new("b", 32, 16)];
        let mut old = RegisterFile::new_banked(&specs);
        for s in 0..16 {
            old.write(0, s, 0x0102_0304_0506_0708 ^ s as u64);
            old.write(1, s, 0xDEAD_0000 | s as u64);
        }
        let mut new = RegisterFile::new_banked(&specs);
        new.carry_from(&old);
        assert_eq!(new.banks()[0].as_bytes(), old.banks()[0].as_bytes());
        // And across layouts (banked -> split) the logical values carry.
        let mut split = RegisterFile::new_split(&specs);
        split.carry_from(&old);
        for s in 0..16 {
            assert_eq!(split.read(0, s), old.read(0, s));
            assert_eq!(split.read(1, s), old.read(1, s));
        }
    }

    #[test]
    fn capped_add_near_u64_boundary_saturates() {
        let mut r = RegisterArray::new(RegisterSpec::capped("c", 64, 4, u64::MAX - 1));
        r.rmw(0, RegAluOp::Write, u64::MAX - 2);
        // Overflowing u64 add must clamp to the cap, not wrap.
        assert_eq!(r.rmw(0, RegAluOp::Add, 100).1, u64::MAX - 1);
    }
}
