//! Packet Header Vector (PHV): the per-packet working set of header and
//! metadata fields that flows through the match-action pipeline.
//!
//! Real RMT hardware allocates header fields into a fixed pool of PHV
//! containers; programs address them symbolically. We model the symbolic
//! layer: a [`PhvLayout`] registers named fields with bit widths (≤ 64) and
//! produces [`Phv`] instances. Values are always masked to their declared
//! width, which is how container-width truncation shows up in hardware.

use serde::{Deserialize, Serialize};

/// Identifier of a field within a [`PhvLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldId(pub(crate) u16);

impl FieldId {
    /// Raw index of the field in its layout.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declaration of a single PHV field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FieldSpec {
    name: String,
    bits: u8,
}

impl FieldSpec {
    /// Field name (unique within a layout).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared width in bits (1..=64).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Bit mask selecting the field's valid bits.
    pub fn mask(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }
}

/// The set of fields a program's PHVs carry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhvLayout {
    fields: Vec<FieldSpec>,
}

impl PhvLayout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a field and returns its id.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or > 64, or if the name is already taken —
    /// layouts are built by compilers, so a clash is a programming error.
    pub fn add_field(&mut self, name: impl Into<String>, bits: u8) -> FieldId {
        let name = name.into();
        assert!((1..=64).contains(&bits), "field {name}: width {bits} out of range");
        assert!(self.fields.iter().all(|f| f.name != name), "duplicate field name: {name}");
        assert!(self.fields.len() < u16::MAX as usize, "too many PHV fields");
        let id = FieldId(self.fields.len() as u16);
        self.fields.push(FieldSpec { name, bits });
        id
    }

    /// Number of registered fields.
    pub fn n_fields(&self) -> usize {
        self.fields.len()
    }

    /// Specification of a field.
    pub fn spec(&self, id: FieldId) -> &FieldSpec {
        &self.fields[id.index()]
    }

    /// Finds a field by name.
    pub fn by_name(&self, name: &str) -> Option<FieldId> {
        self.fields.iter().position(|f| f.name == name).map(|i| FieldId(i as u16))
    }

    /// Iterates every field id in declaration order (backends walk the
    /// full layout to emit headers/metadata declarations).
    pub fn field_ids(&self) -> impl Iterator<Item = FieldId> + '_ {
        (0..self.fields.len()).map(|i| FieldId(i as u16))
    }

    /// Total declared PHV bits (a loose proxy for container pressure).
    pub fn total_bits(&self) -> usize {
        self.fields.iter().map(|f| f.bits as usize).sum()
    }

    /// Creates a zeroed PHV for this layout.
    pub fn new_phv(&self) -> Phv {
        Phv { values: vec![0; self.fields.len()] }
    }
}

/// A concrete per-packet header vector. All fields start at zero.
///
/// The `Default` instance carries no fields — it exists so hot paths can
/// `std::mem::take` a scratch PHV out of a struct without allocating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phv {
    values: Vec<u64>,
}

impl Phv {
    /// Reads a field.
    pub fn get(&self, id: FieldId) -> u64 {
        self.values[id.index()]
    }

    /// Writes a field. The value is masked to the field's declared width by
    /// the pipeline when it executes actions; direct `set` stores verbatim
    /// and is intended for test setup and parsers, which already mask.
    pub fn set(&mut self, id: FieldId, value: u64) {
        self.values[id.index()] = value;
    }

    /// Writes a field masked to `spec`'s width.
    pub fn set_masked(&mut self, id: FieldId, value: u64, layout: &PhvLayout) {
        self.values[id.index()] = value & layout.spec(id).mask();
    }

    /// Resets every field to zero in place (no allocation) so one PHV can
    /// be reused across packets.
    pub fn zero(&mut self) {
        self.values.fill(0);
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the PHV carries no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_fields() {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 16);
        let b = l.add_field("b", 32);
        assert_eq!(l.n_fields(), 2);
        assert_eq!(l.spec(a).name(), "a");
        assert_eq!(l.spec(b).bits(), 32);
        assert_eq!(l.by_name("b"), Some(b));
        assert_eq!(l.by_name("missing"), None);
        assert_eq!(l.total_bits(), 48);
    }

    #[test]
    fn masks() {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 8);
        let f = l.add_field("full", 64);
        assert_eq!(l.spec(a).mask(), 0xFF);
        assert_eq!(l.spec(f).mask(), u64::MAX);
    }

    #[test]
    fn phv_roundtrip_and_masked_set() {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 8);
        let mut phv = l.new_phv();
        assert_eq!(phv.get(a), 0);
        phv.set_masked(a, 0x1FF, &l);
        assert_eq!(phv.get(a), 0xFF);
        phv.set(a, 7);
        assert_eq!(phv.get(a), 7);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_name_panics() {
        let mut l = PhvLayout::new();
        l.add_field("x", 8);
        l.add_field("x", 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_panics() {
        let mut l = PhvLayout::new();
        l.add_field("x", 0);
    }
}
