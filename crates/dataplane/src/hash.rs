//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`), the hash SpliDT
//! uses to map a flow's 5-tuple onto register indices (paper §3.1.1).
//!
//! Table-driven implementation; the table is computed at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC32 of a byte slice (IEEE, as used by Ethernet FCS and zlib).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Salt mixed into the ownership-lane fingerprint hash so it is
/// independent of the register-index hash (hardware uses a second hash
/// engine with a different seed for exactly this reason: a fingerprint
/// correlated with the index would collide deterministically).
pub const FP_SALT: u64 = 0x051D_7F1A_60DD_BA11;

/// Width (bits) of the ownership-lane fingerprint. The lane's high word
/// shares its 32 bits between the fingerprint and the lifecycle-policy
/// bits (decided, pinned, verdict class) — see
/// `splidt_dataplane::register::owner_lane` for the full cell layout.
pub const FP_BITS: u32 = 24;

/// Mask selecting the fingerprint bits.
pub const FP_MASK: u64 = (1 << FP_BITS) - 1;

/// Canonically orders a flow tuple so both directions hash identically:
/// the `(ip, port)` pair that compares smaller becomes the source side.
/// The single source of truth for the ordering every hash consumer
/// (register index, ownership fingerprint, shard routing) must share.
pub fn canonical_order(
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
) -> (u32, u32, u16, u16) {
    if (src_ip, src_port) > (dst_ip, dst_port) {
        (dst_ip, src_ip, dst_port, src_port)
    } else {
        (src_ip, dst_ip, src_port, dst_port)
    }
}

/// Hashes a 5-tuple into a register index in `0..slots`.
///
/// `slots` must be a power of two (register arrays are sized that way so the
/// hardware can mask instead of divide).
pub fn flow_index(
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    proto: u8,
    slots: usize,
) -> usize {
    assert!(slots.is_power_of_two(), "slots must be a power of two");
    let mut buf = [0u8; 13];
    buf[0..4].copy_from_slice(&src_ip.to_be_bytes());
    buf[4..8].copy_from_slice(&dst_ip.to_be_bytes());
    buf[8..10].copy_from_slice(&src_port.to_be_bytes());
    buf[10..12].copy_from_slice(&dst_port.to_be_bytes());
    buf[12] = proto;
    (crc32(&buf) as usize) & (slots - 1)
}

/// Salted CRC32 of a 5-tuple — the second, index-independent hash the
/// ownership lane uses as a flow fingerprint. The salt bytes are appended
/// to the tuple bytes before hashing, modelling a hash engine seeded
/// differently from the one computing [`flow_index`].
pub fn flow_fingerprint(
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    proto: u8,
    salt: u64,
) -> u32 {
    let mut buf = [0u8; 21];
    buf[0..4].copy_from_slice(&src_ip.to_be_bytes());
    buf[4..8].copy_from_slice(&dst_ip.to_be_bytes());
    buf[8..10].copy_from_slice(&src_port.to_be_bytes());
    buf[10..12].copy_from_slice(&dst_port.to_be_bytes());
    buf[12] = proto;
    buf[13..21].copy_from_slice(&salt.to_be_bytes());
    crc32(&buf)
}

/// The canonical ownership-lane fingerprint of a 5-tuple: the salted hash
/// truncated to [`FP_BITS`] and forced nonzero (0 means "slot free").
/// The tuple must already be canonically ordered (as for [`flow_index`]);
/// the compiled pipeline reproduces this value with
/// `HashFlow { salt: FP_SALT, mask: FP_MASK }` followed by `Max(·, 1)`.
pub fn owner_fingerprint(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: u8) -> u64 {
    (flow_fingerprint(src_ip, dst_ip, src_port, dst_port, proto, FP_SALT) as u64 & FP_MASK).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn flow_index_in_range_and_deterministic() {
        let a = flow_index(0x0a000001, 0x0a000002, 1234, 80, 6, 1 << 16);
        let b = flow_index(0x0a000001, 0x0a000002, 1234, 80, 6, 1 << 16);
        assert_eq!(a, b);
        assert!(a < (1 << 16));
    }

    #[test]
    fn different_tuples_usually_differ() {
        let a = flow_index(1, 2, 3, 4, 6, 1 << 20);
        let b = flow_index(1, 2, 3, 5, 6, 1 << 20);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        flow_index(1, 2, 3, 4, 6, 1000);
    }

    #[test]
    fn fingerprint_independent_of_index() {
        // Two tuples that share a register index must not be forced to
        // share a fingerprint: the salt decorrelates the two hashes.
        let fp = owner_fingerprint(0x0a000001, 0x0a000002, 1234, 80, 6);
        assert!((1..=FP_MASK).contains(&fp));
        assert_eq!(fp, owner_fingerprint(0x0a000001, 0x0a000002, 1234, 80, 6));
        let other = owner_fingerprint(0x0a000001, 0x0a000002, 1235, 80, 6);
        assert_ne!(fp, other, "distinct tuples should fingerprint differently");
        // salted hash differs from the unsalted index hash stream
        assert_ne!(
            flow_fingerprint(1, 2, 3, 4, 6, FP_SALT) as usize & 0xFFFF,
            flow_index(1, 2, 3, 4, 6, 1 << 16) & 0xFFFF,
        );
    }
}
