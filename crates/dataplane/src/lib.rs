//! # splidt-dataplane — an RMT match-action pipeline simulator
//!
//! A software model of a Tofino1-class Reconfigurable Match-Action Table
//! (RMT) switch pipeline, built for the SpliDT reproduction
//! ([SIGCOMM 2025](https://arxiv.org/abs/2509.00397)). The real system runs
//! as a P4 program compiled with BF-SDE onto an Edgecore Wedge 100-32X;
//! this crate substitutes a simulator that enforces the same *structural*
//! constraints the hardware does, so resource accounting and execution
//! semantics — the things the paper's claims rest on — carry over:
//!
//! * a **packet header vector** ([`phv::Phv`]) populated by a byte-level
//!   [`parser`] from real packet bytes;
//! * **match-action tables** ([`table::Table`]) with exact, ternary (TCAM)
//!   and range matching, priorities and hit counters;
//! * **stateful register arrays** ([`register::RegisterArray`]) with
//!   single-visit read-modify-write ALU semantics (one RMW per packet per
//!   array, as on Tofino's stateful ALUs);
//! * a staged [`pipeline::Pipeline`] with **packet resubmission**
//!   (recirculation) metering — SpliDT's in-band control channel;
//! * a **resource model** ([`resources::TargetSpec`]) with per-stage SRAM
//!   and TCAM block budgets matching the Tofino1 figures used in the paper
//!   (12 stages, ≈6.4 Mb of TCAM);
//! * **digests** to the control plane, which is how classification verdicts
//!   leave the pipeline.
//!
//! The simulator is event-driven and deterministic: packets are processed
//! in submission order, and every stateful effect is observable through the
//! pipeline's meters, registers and digest stream.
//!
//! ```
//! use splidt_dataplane::program::ProgramBuilder;
//! use splidt_dataplane::table::TableSpec;
//! use splidt_dataplane::action::{Action, Primitive};
//! use splidt_dataplane::pipeline::Pipeline;
//!
//! // A one-table program: set `out` to 7 when `class == 3`.
//! let mut b = ProgramBuilder::new();
//! let class = b.add_meta("class", 8);
//! let out = b.add_meta("out", 8);
//! let t = b.add_table(TableSpec::exact("classify", vec![class], 16), 0);
//! b.add_exact_entry(t, vec![3], Action::new("set7").with(Primitive::set_const(out, 7))).unwrap();
//! let program = b.build().unwrap();
//! let mut pipe = Pipeline::new(program);
//! let mut phv = pipe.program().layout().new_phv();
//! phv.set(class, 3);
//! let out_phv = pipe.process_phv(phv, 0).phv;
//! assert_eq!(out_phv.get(out), 7);
//! ```

pub mod action;
pub mod hash;
pub mod index;
pub mod packet;
pub mod parser;
pub mod phv;
pub mod pipeline;
pub mod plan;
pub mod program;
pub mod register;
pub mod resources;
pub mod table;
pub mod tcam;

pub use action::{Action, AluOp, AluOut, Primitive, Source};
pub use hash::crc32;
pub use index::MatchIndex;
pub use packet::{PacketBuilder, TcpFlags, FLOW_SHIM_ETHERTYPE};
pub use parser::{parse, parse_into, peek_flow_tuple, FlowTupleView, ParseError, StandardFields};
pub use phv::{FieldId, Phv, PhvLayout};
pub use pipeline::{Digest, DigestBuf, Disposition, FrameOutcome, Meters, Pipeline};
pub use plan::{ActionId, ExecPlan};
pub use program::{Program, ProgramBuilder, ProgramError};
pub use register::{BankLayout, FlowBank, RegisterArray, RegisterFile};
pub use resources::{ResourceReport, TargetSpec};
pub use table::{MatchKind, Table, TableSpec};
pub use tcam::Ternary;
