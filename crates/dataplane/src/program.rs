//! Program assembly: PHV layout + tables + registers placed into stages.
//!
//! A [`ProgramBuilder`] plays the role of the P4 compiler front-end: it
//! registers metadata fields, declares tables and register arrays, assigns
//! them to pipeline stages, installs rules, and validates the structural
//! constraints the hardware imposes — most importantly that a table may only
//! touch register arrays living in **its own stage** (Tofino stateful-ALU
//! locality), which is exactly the constraint that forces SpliDT to reuse
//! registers across partitions instead of allocating more.

use crate::action::{Action, Primitive};
use crate::parser::StandardFields;
use crate::phv::{FieldId, PhvLayout};
use crate::register::{RegId, RegisterSpec};
use crate::table::{EntryKey, MatchKind, Table, TableError, TableId, TableSpec};
use crate::tcam::Ternary;

/// Errors detected while assembling or validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A table references a register outside its stage.
    CrossStageRegister {
        /// Offending table name.
        table: String,
        /// Register name.
        register: String,
        /// Stage of the table.
        table_stage: usize,
        /// Stage of the register.
        register_stage: usize,
    },
    /// Entry installation failed.
    Table(TableError),
    /// A stage index is beyond the builder's declared stage count.
    StageOutOfRange {
        /// What was being placed.
        what: String,
        /// The requested stage.
        stage: usize,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::CrossStageRegister { table, register, table_stage, register_stage } => {
                write!(
                    f,
                    "table {table} (stage {table_stage}) accesses register {register} \
                     (stage {register_stage}); registers are stage-local"
                )
            }
            ProgramError::Table(e) => write!(f, "{e}"),
            ProgramError::StageOutOfRange { what, stage } => {
                write!(f, "{what} placed in out-of-range stage {stage}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<TableError> for ProgramError {
    fn from(e: TableError) -> Self {
        ProgramError::Table(e)
    }
}

/// Per-stage allocation.
#[derive(Debug, Clone, Default)]
pub struct StageAlloc {
    /// Tables applied in this stage, in order.
    pub tables: Vec<TableId>,
    /// Register arrays resident in this stage.
    pub registers: Vec<RegId>,
}

/// A complete, validated pipeline program.
#[derive(Debug, Clone)]
pub struct Program {
    layout: PhvLayout,
    tables: Vec<Table>,
    registers: Vec<RegisterSpec>,
    stages: Vec<StageAlloc>,
    digest_fields: Vec<FieldId>,
    resubmit_limit: usize,
}

impl Program {
    /// PHV layout.
    pub fn layout(&self) -> &PhvLayout {
        &self.layout
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// A table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Register declarations.
    pub fn registers(&self) -> &[RegisterSpec] {
        &self.registers
    }

    /// Stage allocations.
    pub fn stages(&self) -> &[StageAlloc] {
        &self.stages
    }

    /// Fields exported in digests.
    pub fn digest_fields(&self) -> &[FieldId] {
        &self.digest_fields
    }

    /// Maximum resubmissions per packet.
    pub fn resubmit_limit(&self) -> usize {
        self.resubmit_limit
    }

    /// Total installed entries across ternary tables (paper's "#TCAM
    /// entries" metric).
    pub fn tcam_entries(&self) -> usize {
        self.tables
            .iter()
            .filter(|t| t.spec().kind == MatchKind::Ternary)
            .map(|t| t.n_entries())
            .sum()
    }

    /// The stage a table was allocated to (backend emitters annotate
    /// declarations with this; the interpreter only needs the per-stage
    /// apply order in [`Program::stages`]).
    pub fn stage_of_table(&self, id: TableId) -> Option<usize> {
        self.stages.iter().position(|s| s.tables.contains(&id))
    }

    /// The stage a register array is resident in — the stage whose SALUs
    /// are the only ones that may touch it (RMT stage-locality).
    pub fn stage_of_register(&self, id: RegId) -> Option<usize> {
        self.stages.iter().position(|s| s.registers.contains(&id))
    }

    pub(crate) fn tables_mut(&mut self) -> &mut Vec<Table> {
        &mut self.tables
    }
}

/// Builder/assembler for [`Program`]s.
#[derive(Debug)]
pub struct ProgramBuilder {
    layout: PhvLayout,
    std_fields: Option<StandardFields>,
    tables: Vec<Table>,
    table_stage: Vec<usize>,
    registers: Vec<RegisterSpec>,
    register_stage: Vec<usize>,
    digest_fields: Vec<FieldId>,
    resubmit_limit: usize,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self {
            layout: PhvLayout::new(),
            std_fields: None,
            tables: Vec::new(),
            table_stage: Vec::new(),
            registers: Vec::new(),
            register_stage: Vec::new(),
            digest_fields: Vec::new(),
            resubmit_limit: 8,
        }
    }

    /// Registers the standard parsed-header fields (idempotent).
    pub fn standard_fields(&mut self) -> StandardFields {
        if self.std_fields.is_none() {
            self.std_fields = Some(StandardFields::register(&mut self.layout));
        }
        self.std_fields.unwrap()
    }

    /// Adds a metadata field.
    pub fn add_meta(&mut self, name: impl Into<String>, bits: u8) -> FieldId {
        self.layout.add_field(name, bits)
    }

    /// Declares a register array resident in `stage`.
    pub fn add_register(&mut self, spec: RegisterSpec, stage: usize) -> RegId {
        let id = RegId(self.registers.len() as u16);
        self.registers.push(spec);
        self.register_stage.push(stage);
        id
    }

    /// Declares a table applied in `stage`. Tables in a stage execute in
    /// declaration order (the hardware runs them in parallel; SpliDT's
    /// compiler never creates same-stage dependencies).
    pub fn add_table(&mut self, spec: TableSpec, stage: usize) -> TableId {
        let id = TableId(self.tables.len() as u16);
        self.tables.push(Table::new(spec));
        self.table_stage.push(stage);
        id
    }

    /// Installs an exact entry.
    pub fn add_exact_entry(
        &mut self,
        table: TableId,
        values: Vec<u64>,
        action: Action,
    ) -> Result<(), ProgramError> {
        self.tables[table.index()].install(EntryKey::Exact(values), action)?;
        Ok(())
    }

    /// Installs a ternary entry.
    pub fn add_ternary_entry(
        &mut self,
        table: TableId,
        fields: Vec<Ternary>,
        priority: u32,
        action: Action,
    ) -> Result<(), ProgramError> {
        self.tables[table.index()].install(EntryKey::Ternary { fields, priority }, action)?;
        Ok(())
    }

    /// Installs a range entry.
    pub fn add_range_entry(
        &mut self,
        table: TableId,
        fields: Vec<(u64, u64)>,
        priority: u32,
        action: Action,
    ) -> Result<(), ProgramError> {
        self.tables[table.index()].install(EntryKey::Range { fields, priority }, action)?;
        Ok(())
    }

    /// Sets a table's default (miss) action.
    pub fn set_default(&mut self, table: TableId, action: Action) {
        self.tables[table.index()].set_default(action);
    }

    /// Declares the field set exported by `Digest` primitives.
    pub fn set_digest_fields(&mut self, fields: Vec<FieldId>) {
        self.digest_fields = fields;
    }

    /// Sets the resubmit loop bound.
    pub fn set_resubmit_limit(&mut self, n: usize) {
        self.resubmit_limit = n;
    }

    /// Number of stages implied by current placements.
    pub fn n_stages(&self) -> usize {
        self.table_stage
            .iter()
            .chain(self.register_stage.iter())
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// Validates and produces the program.
    pub fn build(self) -> Result<Program, ProgramError> {
        let n_stages = self.n_stages();
        let mut stages = vec![StageAlloc::default(); n_stages];
        for (i, &s) in self.table_stage.iter().enumerate() {
            stages[s].tables.push(TableId(i as u16));
        }
        for (i, &s) in self.register_stage.iter().enumerate() {
            stages[s].registers.push(RegId(i as u16));
        }
        // Stateful-ALU locality: every RegRmw in a table's actions (installed
        // entries and default) must target a register in the table's stage.
        for (ti, table) in self.tables.iter().enumerate() {
            let t_stage = self.table_stage[ti];
            let check = |action: &Action| -> Result<(), ProgramError> {
                for p in &action.prims {
                    if let Primitive::RegRmw { reg, .. } | Primitive::OwnerUpdate { reg, .. } = p {
                        let r_stage = self.register_stage[reg.index()];
                        if r_stage != t_stage {
                            return Err(ProgramError::CrossStageRegister {
                                table: table.spec().name.clone(),
                                register: self.registers[reg.index()].name.clone(),
                                table_stage: t_stage,
                                register_stage: r_stage,
                            });
                        }
                    }
                }
                Ok(())
            };
            for e in table.entries() {
                check(&e.action)?;
            }
            check(table.default_action())?;
        }
        Ok(Program {
            layout: self.layout,
            tables: self.tables,
            registers: self.registers,
            stages,
            digest_fields: self.digest_fields,
            resubmit_limit: self.resubmit_limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{AluOp, Source};

    #[test]
    fn builds_simple_program() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        let t = b.add_table(TableSpec::exact("t", vec![f], 4), 0);
        b.add_exact_entry(t, vec![1], Action::nop()).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.stages().len(), 1);
        assert_eq!(p.tables().len(), 1);
        assert_eq!(p.table(t).n_entries(), 1);
    }

    #[test]
    fn cross_stage_register_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        let r = b.add_register(
            RegisterSpec::new("r", 32, 16),
            1, // register in stage 1
        );
        let t = b.add_table(TableSpec::exact("t", vec![f], 4), 0); // table in stage 0
        b.add_exact_entry(
            t,
            vec![1],
            Action::new("bump").with(Primitive::RegRmw {
                reg: r,
                index: Source::Const(0),
                op: AluOp::Add,
                operand: Source::Const(1),
                out: None,
            }),
        )
        .unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, ProgramError::CrossStageRegister { .. }));
    }

    #[test]
    fn same_stage_register_accepted() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        let r = b.add_register(RegisterSpec::new("r", 32, 16), 2);
        let t = b.add_table(TableSpec::exact("t", vec![f], 4), 2);
        b.add_exact_entry(
            t,
            vec![1],
            Action::new("bump").with(Primitive::RegRmw {
                reg: r,
                index: Source::Const(0),
                op: AluOp::Add,
                operand: Source::Const(1),
                out: None,
            }),
        )
        .unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.stages().len(), 3);
        assert_eq!(p.stages()[2].tables.len(), 1);
        assert_eq!(p.stages()[2].registers.len(), 1);
    }

    #[test]
    fn standard_fields_idempotent() {
        let mut b = ProgramBuilder::new();
        let f1 = b.standard_fields();
        let f2 = b.standard_fields();
        assert_eq!(f1.ipv4_src, f2.ipv4_src);
    }

    #[test]
    fn tcam_entry_count() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        let t1 = b.add_table(TableSpec::ternary("t1", vec![f], 8), 0);
        let t2 = b.add_table(TableSpec::exact("t2", vec![f], 8), 0);
        b.add_ternary_entry(t1, vec![Ternary::ANY], 0, Action::nop()).unwrap();
        b.add_ternary_entry(t1, vec![Ternary::exact(1, 8)], 1, Action::nop()).unwrap();
        b.add_exact_entry(t2, vec![1], Action::nop()).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.tcam_entries(), 2);
    }
}
