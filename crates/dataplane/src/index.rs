//! Compiled per-table match indexes: sub-linear lookup structures built
//! once by the [`ExecPlan`](crate::plan::ExecPlan) when the pipeline is
//! instantiated.
//!
//! SpliDT's compiled programs lean on two table shapes whose reference
//! lookup ([`Table::lookup_linear`]) is an O(n) scan over every installed
//! entry: **Range** tables (feature thresholds → elementary ranges) and
//! **Ternary** tables (range marks expanded via prefix cross products,
//! hundreds-to-thousands of entries). A [`MatchIndex`] replaces that scan
//! on the plan-driven hot path:
//!
//! * **Exact** — keys of ≤ 2 components pack into a `u128` hashed with
//!   FxHash (one multiply per word, no per-process random state; table
//!   contents are control-plane installed, so DoS-resistant hashing buys
//!   nothing here). Wider keys keep a `Vec<u64>`-keyed map, still FxHash.
//! * **Range** — decision-tree thresholds partition each field's domain,
//!   so the index cuts every field into *elementary intervals* (reusing
//!   `splidt_ranging::elementary_cuts`) resolved by binary search.
//!   Single-field tables precompute the winning entry per interval —
//!   lookup is one `partition_point`. Multi-field tables store a
//!   fixed-width entry bitmask per interval; candidate sets intersect
//!   with `u64` words and the lowest surviving bit is the winner.
//! * **Ternary** — entries are ranked by descending priority (ties:
//!   lowest install index) so a scan can exit on the first match. Tables
//!   at or above [`TERNARY_FILTER_MIN`] entries additionally build
//!   per-field bucketed bitmaps: the bits **all** non-wildcard patterns
//!   care about (*exact-bits bucketing*) key a bucket map from masked
//!   value to candidate bitmask, with fully-wildcard entries in an
//!   always-on mask; per-field candidates intersect like the range index
//!   and survivors are verified in rank order.
//!
//! Bit `r` of every bitmask is the entry of **rank** `r` (priority
//! order), so the first set bit of an intersection is already the
//! highest-priority survivor — no per-candidate priority comparison.
//!
//! Every structure here is an over- or exactly-approximating *filter*
//! followed by (for ternary) a verifying match against the real pattern,
//! so index results equal the linear oracle bit-for-bit; the
//! `indexed_lookup_equals_linear` proptest holds the two paths equivalent
//! over random table contents, priorities (including ties) and key
//! streams.
//!
//! [`Table::lookup_linear`]: crate::table::Table::lookup_linear

use crate::table::{EntryKey, MatchKind, Table};
use crate::tcam::Ternary;
use rustc_hash::FxHashMap;
use splidt_ranging::{elementary_cuts, interval_of};
use std::cmp::Reverse;

/// Sentinel for "no entry" in precomputed winner arrays.
const NONE: u32 = u32::MAX;

/// Ternary tables below this entry count skip the bucketed-bitmap
/// prefilter: a rank-ordered early-exit scan already beats the filter's
/// per-field hash + word intersection at very small n. Above it the
/// filter pays for itself fastest on **misses** — compiled SpliDT
/// programs are full of state-gated tables (window boundary, partition
/// id) that miss for the vast majority of packets, and the filter turns
/// each of those misses from a full rank × field scan into a couple of
/// hash probes that zero the candidate word.
pub const TERNARY_FILTER_MIN: usize = 4;

/// Multi-field range tables below this entry count use a rank-ordered
/// early-exit scan instead of per-field interval bitmasks, for the same
/// reason as [`TERNARY_FILTER_MIN`]. (Single-field range tables always
/// take the precomputed-winner binary search — it wins at any size.)
pub const RANGE_BITMAP_MIN: usize = 32;

/// A compiled lookup index for one table. See the module docs for the
/// structure per [`MatchKind`].
#[derive(Debug, Clone)]
pub enum MatchIndex {
    /// Exact keys of ≤ 2 components, packed into a `u128`.
    ExactPacked {
        /// Key component count (1 or 2).
        fields: usize,
        /// Packed key → entry index.
        map: FxHashMap<u128, u32>,
    },
    /// Exact keys wider than 2 components.
    ExactWide {
        /// Key values → entry index.
        map: FxHashMap<Vec<u64>, u32>,
    },
    /// Ternary entries in priority-rank order, with optional per-field
    /// bucketed-bitmap prefilters.
    Ternary(TernaryIndex),
    /// Range entries over elementary intervals.
    Range(RangeIndex),
}

/// Priority-ranked ternary index. `entry_of`, `patterns` and every bitmask
/// are rank-major: rank 0 is the entry the linear oracle would prefer over
/// all others it ties or beats.
#[derive(Debug, Clone)]
pub struct TernaryIndex {
    n_fields: usize,
    /// Bitmask width in `u64` words (⌈n_entries / 64⌉).
    words: usize,
    /// Rank → original entry index (what the pipeline hit-counts).
    entry_of: Vec<u32>,
    /// Rank-major flattened patterns (`n_fields` per rank) for
    /// verification.
    patterns: Vec<Ternary>,
    /// All-ranks mask (top word trimmed), the intersection's identity.
    full: Vec<u64>,
    /// Per-field prefilters (only fields where bucketing can narrow).
    filters: Vec<TernaryFieldFilter>,
}

/// One field's exact-bits bucket filter.
#[derive(Debug, Clone)]
struct TernaryFieldFilter {
    /// Key component this filter reads.
    field: usize,
    /// The bits every non-wildcard pattern of this field cares about.
    mask: u64,
    /// Ranks fully wildcard on this field — candidates for every value.
    always_on: Vec<u64>,
    /// `value & mask` → offset into `bucket_masks` (in words).
    buckets: FxHashMap<u64, u32>,
    /// Flattened candidate bitmasks, `words` per bucket.
    bucket_masks: Vec<u64>,
}

/// Elementary-interval range index.
#[derive(Debug, Clone)]
pub enum RangeIndex {
    /// One key field: the winner of every elementary interval is
    /// precomputed, lookup is a single binary search.
    Single {
        /// Elementary cut points (`splidt_ranging::elementary_cuts`).
        cuts: Vec<u64>,
        /// Interval → winning entry index (`u32::MAX` = miss);
        /// `cuts.len() + 1` long.
        winners: Vec<u32>,
    },
    /// Multiple key fields, few entries: rank-ordered early-exit scan
    /// over flattened bounds.
    Scan {
        /// Key width in fields.
        n_fields: usize,
        /// Rank → original entry index.
        entry_of: Vec<u32>,
        /// Rank-major flattened `(lo, hi)` bounds, `n_fields` per rank.
        bounds: Vec<(u64, u64)>,
    },
    /// Multiple key fields: per-field interval bitmasks intersected via
    /// fixed-width `u64` words.
    Multi {
        /// Bitmask width in words.
        words: usize,
        /// Rank → original entry index.
        entry_of: Vec<u32>,
        /// Per key field, in match order.
        fields: Vec<RangeFieldIntervals>,
    },
}

/// One field's elementary intervals and their candidate bitmasks.
#[derive(Debug, Clone)]
pub struct RangeFieldIntervals {
    cuts: Vec<u64>,
    /// `(cuts.len() + 1) * words`, interval-major.
    masks: Vec<u64>,
}

impl MatchIndex {
    /// Compiles the index for `table`'s current entries.
    pub fn build(table: &Table) -> Self {
        match table.spec().kind {
            MatchKind::Exact => build_exact(table),
            MatchKind::Ternary => MatchIndex::Ternary(TernaryIndex::build(table)),
            MatchKind::Range => MatchIndex::Range(RangeIndex::build(table)),
        }
    }

    /// Looks up pre-materialized key values (one per key field, in match
    /// order). Returns the winning entry index under the same semantics
    /// as [`Table::lookup_linear_key`](crate::table::Table::lookup_linear_key):
    /// highest priority, ties to the lowest install index.
    ///
    /// `scratch` is the caller's reusable intersection buffer (only
    /// touched by multi-field range and filtered ternary lookups); size
    /// it with [`MatchIndex::mask_words`] to keep the call
    /// allocation-free.
    #[inline]
    pub fn lookup(&self, key: &[u64], scratch: &mut Vec<u64>) -> Option<usize> {
        match self {
            MatchIndex::ExactPacked { fields, map } => {
                debug_assert_eq!(key.len(), *fields);
                let packed = pack_key(key);
                map.get(&packed).map(|&i| i as usize)
            }
            MatchIndex::ExactWide { map } => map.get(key).map(|&i| i as usize),
            MatchIndex::Ternary(t) => t.lookup(key, scratch),
            MatchIndex::Range(r) => r.lookup(key, scratch),
        }
    }

    /// Words of intersection scratch this index needs (0 when the lookup
    /// never touches the scratch buffer).
    pub fn mask_words(&self) -> usize {
        match self {
            MatchIndex::ExactPacked { .. } | MatchIndex::ExactWide { .. } => 0,
            MatchIndex::Ternary(t) => {
                if t.filters.is_empty() {
                    0
                } else {
                    t.words
                }
            }
            MatchIndex::Range(r) => match r {
                RangeIndex::Single { .. } | RangeIndex::Scan { .. } => 0,
                RangeIndex::Multi { words, .. } => *words,
            },
        }
    }
}

/// Packs ≤ 2 key components into a `u128` (64 bits per lane, so packing
/// never changes equality semantics vs the `Vec<u64>` representation).
#[inline]
fn pack_key(key: &[u64]) -> u128 {
    let mut packed = key[0] as u128;
    if key.len() == 2 {
        packed |= (key[1] as u128) << 64;
    }
    packed
}

fn build_exact(table: &Table) -> MatchIndex {
    let fields = table.spec().key.len();
    // 0-field keys (the always-hit / default-only idiom) take the wide
    // path, whose empty-slice map probe is well-defined; pack_key would
    // index key[0].
    if (1..=2).contains(&fields) {
        let mut map = FxHashMap::default();
        for (i, e) in table.entries().iter().enumerate() {
            let EntryKey::Exact(v) = &e.key else { unreachable!("exact table") };
            map.insert(pack_key(v), i as u32);
        }
        MatchIndex::ExactPacked { fields, map }
    } else {
        let mut map = FxHashMap::default();
        for (i, e) in table.entries().iter().enumerate() {
            let EntryKey::Exact(v) = &e.key else { unreachable!("exact table") };
            map.insert(v.clone(), i as u32);
        }
        MatchIndex::ExactWide { map }
    }
}

/// Entry indices sorted into rank (preference) order: priority
/// descending, install index ascending.
fn rank_order(priorities: &[u32]) -> Vec<u32> {
    let mut ranks: Vec<u32> = (0..priorities.len() as u32).collect();
    ranks.sort_by_key(|&i| (Reverse(priorities[i as usize]), i));
    ranks
}

/// The all-ones mask over `n` rank bits, trimmed in the top word.
fn full_mask(n: usize, words: usize) -> Vec<u64> {
    let mut full = vec![!0u64; words];
    if !n.is_multiple_of(64) {
        full[words - 1] = (1u64 << (n % 64)) - 1;
    }
    full
}

impl TernaryIndex {
    fn build(table: &Table) -> Self {
        let n_fields = table.spec().key.len();
        let entries = table.entries();
        let n = entries.len();
        let priorities: Vec<u32> = entries
            .iter()
            .map(|e| match &e.key {
                EntryKey::Ternary { priority, .. } => *priority,
                _ => unreachable!("ternary table"),
            })
            .collect();
        let entry_of = rank_order(&priorities);
        let mut patterns = Vec::with_capacity(n * n_fields);
        for &i in &entry_of {
            let EntryKey::Ternary { fields, .. } = &entries[i as usize].key else {
                unreachable!("ternary table")
            };
            patterns.extend_from_slice(fields);
        }
        let words = n.div_ceil(64);
        let full = if n == 0 { Vec::new() } else { full_mask(n, words) };

        let mut filters = Vec::new();
        if n >= TERNARY_FILTER_MIN {
            for field in 0..n_fields {
                let pat = |rank: usize| patterns[rank * n_fields + field];
                // The bits shared by every non-wildcard pattern: each such
                // pattern's mask contains this AND, so its value over these
                // bits is fixed and the entry lands in exactly one bucket.
                let mut any_nonwild = false;
                let mut mask = u64::MAX;
                for r in 0..n {
                    let m = pat(r).mask;
                    if m != 0 {
                        any_nonwild = true;
                        mask &= m;
                    }
                }
                if !any_nonwild || mask == 0 {
                    // All-wildcard field, or the non-wildcard patterns
                    // share no care bit — the field cannot narrow
                    // candidates.
                    continue;
                }
                let mut always_on = vec![0u64; words];
                let mut grouped: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
                for r in 0..n {
                    let p = pat(r);
                    if p.mask == 0 {
                        always_on[r / 64] |= 1 << (r % 64);
                    } else {
                        grouped.entry(p.value & mask).or_insert_with(|| vec![0u64; words])
                            [r / 64] |= 1 << (r % 64);
                    }
                }
                let mut buckets = FxHashMap::default();
                let mut bucket_masks = Vec::with_capacity(grouped.len() * words);
                for (v, bits) in grouped {
                    buckets.insert(v, bucket_masks.len() as u32);
                    bucket_masks.extend_from_slice(&bits);
                }
                filters.push(TernaryFieldFilter { field, mask, always_on, buckets, bucket_masks });
            }
        }
        Self { n_fields, words, entry_of, patterns, full, filters }
    }

    #[inline]
    fn verify(&self, rank: usize, key: &[u64]) -> bool {
        let pats = &self.patterns[rank * self.n_fields..(rank + 1) * self.n_fields];
        pats.iter().zip(key).all(|(t, &v)| t.matches(v))
    }

    #[inline]
    fn lookup(&self, key: &[u64], scratch: &mut Vec<u64>) -> Option<usize> {
        let n = self.entry_of.len();
        if n == 0 {
            return None;
        }
        if self.filters.is_empty() {
            // Small table: rank-ordered scan, first match wins.
            for rank in 0..n {
                if self.verify(rank, key) {
                    return Some(self.entry_of[rank] as usize);
                }
            }
            return None;
        }
        if self.words == 1 {
            // ≤ 64 entries: the candidate set is one machine word on the
            // stack, and a zeroed word exits before the remaining filters
            // — the common case for state-gated tables most packets miss.
            let mut cand = self.full[0];
            for f in &self.filters {
                let masked = key[f.field] & f.mask;
                cand &= match f.buckets.get(&masked) {
                    Some(&off) => f.always_on[0] | f.bucket_masks[off as usize],
                    None => f.always_on[0],
                };
                if cand == 0 {
                    return None;
                }
            }
            while cand != 0 {
                let rank = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                if self.verify(rank, key) {
                    return Some(self.entry_of[rank] as usize);
                }
            }
            return None;
        }
        scratch.clear();
        scratch.extend_from_slice(&self.full);
        for f in &self.filters {
            let masked = key[f.field] & f.mask;
            match f.buckets.get(&masked) {
                Some(&off) => {
                    let bucket = &f.bucket_masks[off as usize..off as usize + self.words];
                    for (s, (&a, &b)) in scratch.iter_mut().zip(f.always_on.iter().zip(bucket)) {
                        *s &= a | b;
                    }
                }
                None => {
                    for (s, &a) in scratch.iter_mut().zip(&f.always_on) {
                        *s &= a;
                    }
                }
            }
        }
        // Survivors in rank order; the first that verifies is the
        // highest-priority true match.
        for (w, &word) in scratch.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let rank = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.verify(rank, key) {
                    return Some(self.entry_of[rank] as usize);
                }
            }
        }
        None
    }
}

impl RangeIndex {
    fn build(table: &Table) -> Self {
        let n_fields = table.spec().key.len();
        let entries = table.entries();
        let n = entries.len();
        let priorities: Vec<u32> = entries
            .iter()
            .map(|e| match &e.key {
                EntryKey::Range { priority, .. } => *priority,
                _ => unreachable!("range table"),
            })
            .collect();
        let entry_of = rank_order(&priorities);
        let field_range = |entry: usize, field: usize| -> (u64, u64) {
            let EntryKey::Range { fields, .. } = &entries[entry].key else {
                unreachable!("range table")
            };
            fields[field]
        };
        // Interval start of elementary interval `i` over `cuts`.
        let start_of = |cuts: &[u64], i: usize| if i == 0 { 0 } else { cuts[i - 1] };

        if n_fields == 1 {
            let cuts = elementary_cuts((0..n).map(|e| field_range(e, 0)));
            let winners = (0..=cuts.len())
                .map(|i| {
                    let s = start_of(&cuts, i);
                    entry_of
                        .iter()
                        .copied()
                        .find(|&e| {
                            let (lo, hi) = field_range(e as usize, 0);
                            lo <= s && s <= hi
                        })
                        .unwrap_or(NONE)
                })
                .collect();
            return RangeIndex::Single { cuts, winners };
        }

        if n < RANGE_BITMAP_MIN {
            let mut bounds = Vec::with_capacity(n * n_fields);
            for &e in &entry_of {
                for f in 0..n_fields {
                    bounds.push(field_range(e as usize, f));
                }
            }
            return RangeIndex::Scan { n_fields, entry_of, bounds };
        }

        let words = n.div_ceil(64);
        let fields = (0..n_fields)
            .map(|f| {
                let cuts = elementary_cuts((0..n).map(|e| field_range(e, f)));
                let mut masks = vec![0u64; (cuts.len() + 1) * words];
                for i in 0..=cuts.len() {
                    let s = start_of(&cuts, i);
                    let iv = &mut masks[i * words..(i + 1) * words];
                    for (rank, &e) in entry_of.iter().enumerate() {
                        let (lo, hi) = field_range(e as usize, f);
                        // Elementary intervals never straddle an entry
                        // boundary, so covering the start covers it all.
                        if lo <= s && s <= hi {
                            iv[rank / 64] |= 1 << (rank % 64);
                        }
                    }
                }
                RangeFieldIntervals { cuts, masks }
            })
            .collect();
        RangeIndex::Multi { words, entry_of, fields }
    }

    #[inline]
    fn lookup(&self, key: &[u64], scratch: &mut Vec<u64>) -> Option<usize> {
        match self {
            RangeIndex::Single { cuts, winners } => {
                let w = winners[interval_of(cuts, key[0])];
                (w != NONE).then_some(w as usize)
            }
            RangeIndex::Scan { n_fields, entry_of, bounds } => {
                for (rank, &e) in entry_of.iter().enumerate() {
                    let bs = &bounds[rank * n_fields..(rank + 1) * n_fields];
                    if bs.iter().zip(key).all(|(&(lo, hi), &v)| lo <= v && v <= hi) {
                        return Some(e as usize);
                    }
                }
                None
            }
            RangeIndex::Multi { words, entry_of, fields } => {
                if entry_of.is_empty() {
                    return None;
                }
                let i0 = interval_of(&fields[0].cuts, key[0]);
                scratch.clear();
                scratch.extend_from_slice(&fields[0].masks[i0 * words..(i0 + 1) * words]);
                for (f, &v) in fields[1..].iter().zip(&key[1..]) {
                    let i = interval_of(&f.cuts, v);
                    let iv = &f.masks[i * words..(i + 1) * words];
                    for (s, &m) in scratch.iter_mut().zip(iv) {
                        *s &= m;
                    }
                }
                // Interval membership is exact per field, so the
                // intersection needs no verification: lowest rank bit is
                // the winner.
                for (w, &word) in scratch.iter().enumerate() {
                    if word != 0 {
                        let rank = w * 64 + word.trailing_zeros() as usize;
                        return Some(entry_of[rank] as usize);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::phv::PhvLayout;
    use crate::table::TableSpec;

    fn layout2() -> (PhvLayout, crate::phv::FieldId, crate::phv::FieldId) {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 16);
        let b = l.add_field("b", 16);
        (l, a, b)
    }

    /// Indexed lookup must agree with the linear oracle for every probe.
    fn assert_equivalent(t: &Table, probes: impl Iterator<Item = Vec<u64>>) {
        let idx = MatchIndex::build(t);
        let mut scratch = Vec::new();
        for key in probes {
            assert_eq!(idx.lookup(&key, &mut scratch), t.lookup_linear_key(&key), "key {key:?}");
        }
    }

    #[test]
    fn exact_packed_and_wide() {
        let (_l, a, b) = layout2();
        // 2 fields → packed path.
        let mut t = Table::new(TableSpec::exact("p", vec![a, b], 64));
        for i in 0..20u64 {
            t.install(EntryKey::Exact(vec![i, i * 3]), Action::new("e")).unwrap();
        }
        assert!(matches!(MatchIndex::build(&t), MatchIndex::ExactPacked { .. }));
        assert_equivalent(&t, (0..25u64).flat_map(|i| [vec![i, i * 3], vec![i, i]]));

        // 3 fields → wide path.
        let mut l = PhvLayout::new();
        let ks: Vec<_> = (0..3).map(|i| l.add_field(format!("k{i}"), 16)).collect();
        let mut t = Table::new(TableSpec::exact("w", ks, 64));
        for i in 0..20u64 {
            t.install(EntryKey::Exact(vec![i, i + 1, i + 2]), Action::new("e")).unwrap();
        }
        assert!(matches!(MatchIndex::build(&t), MatchIndex::ExactWide { .. }));
        assert_equivalent(&t, (0..25u64).flat_map(|i| [vec![i, i + 1, i + 2], vec![i, i, i]]));
    }

    #[test]
    fn ternary_priority_ties_keep_lowest_install_index() {
        let (_l, a, _b) = layout2();
        let mut t = Table::new(TableSpec::ternary("t", vec![a], 8));
        t.install(EntryKey::Ternary { fields: vec![Ternary::ANY], priority: 5 }, Action::new("x"))
            .unwrap();
        t.install(EntryKey::Ternary { fields: vec![Ternary::ANY], priority: 5 }, Action::new("y"))
            .unwrap();
        t.install(
            EntryKey::Ternary { fields: vec![Ternary::exact(7, 16)], priority: 5 },
            Action::new("z"),
        )
        .unwrap();
        let idx = MatchIndex::build(&t);
        let mut s = Vec::new();
        // All three tie at priority 5 on key 7; entry 0 wins.
        assert_eq!(idx.lookup(&[7], &mut s), Some(0));
        assert_equivalent(&t, (0..16u64).map(|v| vec![v]));
    }

    #[test]
    fn ternary_all_wildcard_entries() {
        let (_l, a, b) = layout2();
        let mut t = Table::new(TableSpec::ternary("t", vec![a, b], 8));
        for p in [1u32, 9, 4] {
            t.install(
                EntryKey::Ternary { fields: vec![Ternary::ANY, Ternary::ANY], priority: p },
                Action::new("w"),
            )
            .unwrap();
        }
        let idx = MatchIndex::build(&t);
        let mut s = Vec::new();
        // Highest priority (9) is entry 1, for any key at all.
        assert_eq!(idx.lookup(&[0, 0], &mut s), Some(1));
        assert_eq!(idx.lookup(&[u64::MAX, 12345], &mut s), Some(1));
    }

    #[test]
    fn ternary_bucketed_filter_kicks_in_at_scale() {
        let (_l, a, b) = layout2();
        let mut t = Table::new(TableSpec::ternary("t", vec![a, b], TERNARY_FILTER_MIN * 4));
        // Exact-on-low-byte patterns plus a few wildcards — the exact-bits
        // AND keeps the low byte, so bucketing activates.
        for i in 0..(TERNARY_FILTER_MIN * 2) as u64 {
            let fields = if i % 17 == 0 {
                vec![Ternary::ANY, Ternary::exact(i % 7, 16)]
            } else {
                vec![Ternary::new(i % 251, 0xFF), Ternary::ANY]
            };
            t.install(EntryKey::Ternary { fields, priority: (i % 11) as u32 }, Action::new("e"))
                .unwrap();
        }
        let idx = MatchIndex::build(&t);
        match &idx {
            MatchIndex::Ternary(ti) => {
                assert!(!ti.filters.is_empty(), "large table must build prefilters")
            }
            _ => panic!("ternary index expected"),
        }
        assert_equivalent(&t, (0..600u64).map(|v| vec![v % 259, v % 13]));
    }

    #[test]
    fn range_single_field_binary_search() {
        let (_l, a, _b) = layout2();
        let mut t = Table::new(TableSpec::range("t", vec![a], 8));
        t.install(EntryKey::Range { fields: vec![(10, 20)], priority: 1 }, Action::new("lo"))
            .unwrap();
        t.install(EntryKey::Range { fields: vec![(15, 30)], priority: 2 }, Action::new("hi"))
            .unwrap();
        let idx = MatchIndex::build(&t);
        assert!(matches!(&idx, MatchIndex::Range(RangeIndex::Single { .. })));
        let mut s = Vec::new();
        assert_eq!(idx.lookup(&[9], &mut s), None);
        assert_eq!(idx.lookup(&[12], &mut s), Some(0));
        assert_eq!(idx.lookup(&[15], &mut s), Some(1), "overlap resolves by priority");
        assert_eq!(idx.lookup(&[30], &mut s), Some(1));
        assert_eq!(idx.lookup(&[31], &mut s), None);
        assert_equivalent(&t, (0..40u64).map(|v| vec![v]));
    }

    #[test]
    fn range_degenerate_single_point() {
        let (_l, a, b) = layout2();
        let mut t = Table::new(TableSpec::range("t", vec![a, b], 8));
        // A degenerate [v, v] point range and an enclosing lower-priority
        // box.
        t.install(
            EntryKey::Range { fields: vec![(7, 7), (3, 3)], priority: 9 },
            Action::new("point"),
        )
        .unwrap();
        t.install(
            EntryKey::Range { fields: vec![(0, 100), (0, 100)], priority: 1 },
            Action::new("box"),
        )
        .unwrap();
        let idx = MatchIndex::build(&t);
        let mut s = Vec::new();
        assert_eq!(idx.lookup(&[7, 3], &mut s), Some(0));
        assert_eq!(idx.lookup(&[7, 4], &mut s), Some(1));
        assert_eq!(idx.lookup(&[101, 3], &mut s), None);
        assert_equivalent(&t, (0..110u64).flat_map(|v| [vec![v, 3], vec![7, v]]));
    }

    #[test]
    fn range_multi_field_intersection() {
        let (_l, a, b) = layout2();
        let mut t = Table::new(TableSpec::range("t", vec![a, b], 128));
        for i in 0..100u64 {
            t.install(
                EntryKey::Range {
                    fields: vec![(i, i + 10), (i * 2, i * 2 + 5)],
                    priority: (i % 7) as u32,
                },
                Action::new("e"),
            )
            .unwrap();
        }
        assert_equivalent(&t, (0..240u64).map(|v| vec![v / 2, v]));
    }

    #[test]
    fn exact_empty_key_table() {
        // A keyless exact table (always-hit idiom): every lookup resolves
        // to the single installable entry; no panic packing a 0-wide key.
        let mut t = Table::new(TableSpec::exact("t", vec![], 4));
        let idx = MatchIndex::build(&t);
        let mut s = Vec::new();
        assert_eq!(idx.lookup(&[], &mut s), None);
        t.install(EntryKey::Exact(vec![]), Action::new("always")).unwrap();
        let idx = MatchIndex::build(&t);
        assert_eq!(idx.lookup(&[], &mut s), Some(0));
        assert_eq!(t.lookup_linear_key(&[]), Some(0));
    }

    #[test]
    fn empty_tables_always_miss() {
        let (_l, a, b) = layout2();
        let mut s = Vec::new();
        for spec in [
            TableSpec::exact("e", vec![a], 4),
            TableSpec::ternary("t", vec![a], 4),
            TableSpec::range("r", vec![a], 4),
            TableSpec::range("r2", vec![a, b], 4),
        ] {
            let t = Table::new(spec);
            let idx = MatchIndex::build(&t);
            assert_eq!(idx.lookup(&[0, 0][..t.spec().key.len()], &mut s), None);
        }
    }

    #[test]
    fn mask_words_sizes_scratch() {
        let (_l, a, b) = layout2();
        let mut t = Table::new(TableSpec::range("t", vec![a, b], 256));
        for i in 0..130u64 {
            t.install(
                EntryKey::Range { fields: vec![(i, i), (0, i)], priority: 0 },
                Action::new("e"),
            )
            .unwrap();
        }
        let idx = MatchIndex::build(&t);
        assert_eq!(idx.mask_words(), 3, "130 entries need 3 words");
    }
}
