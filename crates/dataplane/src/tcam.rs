//! Ternary match values and range→ternary utilities used by TCAM tables.
//!
//! A [`Ternary`] is a `(value, mask)` pair: a packet field `v` matches when
//! `v & mask == value & mask`. Ranges over unsigned integer domains are
//! matched in TCAMs via prefix expansion; the canonical algorithm lives in
//! `splidt-ranging`, but the primitive matcher lives here with the tables.

use serde::{Deserialize, Serialize};

/// A ternary (value/mask) match over one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ternary {
    /// Match value (bits outside `mask` are ignored).
    pub value: u64,
    /// Care mask: 1-bits must match.
    pub mask: u64,
}

impl Ternary {
    /// A ternary that matches exactly `value` on a `bits`-wide field.
    pub fn exact(value: u64, bits: u8) -> Self {
        let mask = width_mask(bits);
        Self { value: value & mask, mask }
    }

    /// A ternary that matches anything.
    pub const ANY: Ternary = Ternary { value: 0, mask: 0 };

    /// A raw value/mask pair.
    pub fn new(value: u64, mask: u64) -> Self {
        Self { value: value & mask, mask }
    }

    /// Whether `v` matches.
    pub fn matches(&self, v: u64) -> bool {
        v & self.mask == self.value
    }

    /// Number of care bits (TCAM cost heuristic).
    pub fn care_bits(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// Mask covering the low `bits` bits.
pub fn width_mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_only_value() {
        let t = Ternary::exact(5, 8);
        assert!(t.matches(5));
        assert!(!t.matches(4));
        // high bits outside the width are ignored at construction
        let t2 = Ternary::exact(0x105, 8);
        assert!(t2.matches(0x05));
    }

    #[test]
    fn any_matches_everything() {
        assert!(Ternary::ANY.matches(0));
        assert!(Ternary::ANY.matches(u64::MAX));
        assert_eq!(Ternary::ANY.care_bits(), 0);
    }

    #[test]
    fn masked_match() {
        // match high nibble = 0xA
        let t = Ternary::new(0xA0, 0xF0);
        assert!(t.matches(0xA5));
        assert!(t.matches(0xAF));
        assert!(!t.matches(0xB0));
        assert_eq!(t.care_bits(), 4);
    }

    #[test]
    fn width_masks() {
        assert_eq!(width_mask(1), 1);
        assert_eq!(width_mask(8), 0xFF);
        assert_eq!(width_mask(64), u64::MAX);
    }
}
