//! Hardware resource model: per-stage SRAM/TCAM block budgets and the
//! feasibility check that plays the role of BF-SDE's allocator.
//!
//! Budgets follow the publicly known Tofino1 shape the paper evaluates
//! against: 12 MAU stages per pipe; per stage 80 SRAM blocks of 128 Kb and
//! 24 TCAM blocks of 512 × 44 b (≈ 6.4 Mb TCAM per pipe, matching Table 3's
//! caption). A register array must fit within one stage, exact tables
//! consume SRAM blocks, and ternary tables consume TCAM blocks in
//! (width-unit × depth-unit) tiles — the granularities that create the
//! paper's flows-vs-features trade-off.

use crate::program::Program;
use crate::table::MatchKind;
use serde::{Deserialize, Serialize};

/// A hardware target's resource budgets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetSpec {
    /// Target name.
    pub name: String,
    /// Number of match-action stages.
    pub n_stages: usize,
    /// SRAM blocks per stage.
    pub sram_blocks_per_stage: usize,
    /// Bits per SRAM block.
    pub sram_block_bits: u64,
    /// TCAM blocks per stage.
    pub tcam_blocks_per_stage: usize,
    /// Entries per TCAM block.
    pub tcam_block_entries: usize,
    /// Match width (bits) per TCAM block.
    pub tcam_block_width_bits: usize,
    /// Maximum logical tables per stage.
    pub max_tables_per_stage: usize,
    /// Maximum key width (bits) of any single table.
    pub max_key_bits: usize,
    /// Recirculation/resubmission bandwidth in Gb/s.
    pub recirc_gbps: f64,
    /// Line rate in Gb/s (total pipe throughput).
    pub line_rate_gbps: f64,
    /// Independent pipeline instances (pipes); stateful register capacity
    /// scales with pipes because flows shard across them by port.
    pub pipes: u32,
}

impl TargetSpec {
    /// Tofino1-class budgets (the paper's primary target).
    pub fn tofino1() -> Self {
        Self {
            name: "tofino1".into(),
            n_stages: 12,
            sram_blocks_per_stage: 80,
            sram_block_bits: 128 * 1024,
            tcam_blocks_per_stage: 24,
            tcam_block_entries: 512,
            tcam_block_width_bits: 44,
            max_tables_per_stage: 16,
            max_key_bits: 512,
            recirc_gbps: 100.0,
            line_rate_gbps: 3200.0,
            pipes: 2,
        }
    }

    /// Tofino2-class budgets (20 stages, more memory) — used by ablations.
    pub fn tofino2() -> Self {
        Self {
            name: "tofino2".into(),
            n_stages: 20,
            sram_blocks_per_stage: 100,
            sram_block_bits: 128 * 1024,
            tcam_blocks_per_stage: 24,
            tcam_block_entries: 512,
            tcam_block_width_bits: 44,
            max_tables_per_stage: 16,
            max_key_bits: 512,
            recirc_gbps: 200.0,
            line_rate_gbps: 6400.0,
            pipes: 4,
        }
    }

    /// A Pensando-DPU-like SmartNIC: fewer stages and less memory (the
    /// paper's footnote 1 reports ~64 K flows at k = 4 on this class).
    pub fn smartnic_dpu() -> Self {
        Self {
            name: "smartnic-dpu".into(),
            n_stages: 8,
            sram_blocks_per_stage: 48,
            sram_block_bits: 128 * 1024,
            tcam_blocks_per_stage: 12,
            tcam_block_entries: 512,
            tcam_block_width_bits: 44,
            max_tables_per_stage: 16,
            max_key_bits: 512,
            recirc_gbps: 50.0,
            line_rate_gbps: 400.0,
            pipes: 1,
        }
    }

    /// Total TCAM bits across all stages.
    pub fn total_tcam_bits(&self) -> u64 {
        (self.n_stages
            * self.tcam_blocks_per_stage
            * self.tcam_block_entries
            * self.tcam_block_width_bits) as u64
    }

    /// Total SRAM bits across all stages.
    pub fn total_sram_bits(&self) -> u64 {
        self.n_stages as u64 * self.sram_blocks_per_stage as u64 * self.sram_block_bits
    }

    /// SRAM blocks needed by a register array of `total_bits`.
    pub fn sram_blocks_for_register(&self, total_bits: u64) -> usize {
        total_bits.div_ceil(self.sram_block_bits) as usize
    }

    /// SRAM blocks for an exact table of `entries` with `key_bits` keys
    /// (plus a fixed 32-bit action-data overhead per entry).
    pub fn sram_blocks_for_exact(&self, entries: usize, key_bits: usize) -> usize {
        let bits = entries as u64 * (key_bits as u64 + 32);
        bits.div_ceil(self.sram_block_bits) as usize
    }

    /// TCAM blocks for a ternary table: width units × depth units.
    pub fn tcam_blocks_for_ternary(&self, entries: usize, key_bits: usize) -> usize {
        let width_units = key_bits.div_ceil(self.tcam_block_width_bits).max(1);
        let depth_units = entries.div_ceil(self.tcam_block_entries).max(1);
        width_units * depth_units
    }
}

/// Resource usage of one stage.
#[derive(Debug, Clone, Default)]
pub struct StageUsage {
    /// SRAM blocks consumed.
    pub sram_blocks: usize,
    /// TCAM blocks consumed.
    pub tcam_blocks: usize,
    /// Logical tables placed.
    pub tables: usize,
}

/// Outcome of fitting a program onto a target.
#[derive(Debug, Clone)]
pub struct ResourceReport {
    /// Per-stage usage (indexed by stage).
    pub per_stage: Vec<StageUsage>,
    /// Total installed TCAM entries.
    pub tcam_entries: usize,
    /// Total TCAM bits consumed (blocks × block size).
    pub tcam_bits: u64,
    /// Total SRAM bits consumed (blocks × block size).
    pub sram_bits: u64,
    /// Human-readable constraint violations (empty = feasible).
    pub violations: Vec<String>,
}

impl ResourceReport {
    /// True when the program fits the target.
    pub fn feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Fits `program` onto `target`, reporting per-stage usage and violations.
pub fn check(program: &Program, target: &TargetSpec) -> ResourceReport {
    let mut per_stage = vec![StageUsage::default(); program.stages().len().max(target.n_stages)];
    let mut violations = Vec::new();

    if program.stages().len() > target.n_stages {
        violations.push(format!(
            "program uses {} stages, target {} has {}",
            program.stages().len(),
            target.name,
            target.n_stages
        ));
    }

    for (s, alloc) in program.stages().iter().enumerate() {
        let usage = &mut per_stage[s];
        for &rid in &alloc.registers {
            let spec = &program.registers()[rid.index()];
            usage.sram_blocks += target.sram_blocks_for_register(spec.total_bits());
        }
        for &tid in &alloc.tables {
            let table = program.table(tid);
            let key_bits = table.key_bits(program.layout());
            if key_bits > target.max_key_bits {
                violations.push(format!(
                    "table {} key {} bits exceeds max {}",
                    table.spec().name,
                    key_bits,
                    target.max_key_bits
                ));
            }
            usage.tables += 1;
            match table.spec().kind {
                MatchKind::Exact => {
                    usage.sram_blocks +=
                        target.sram_blocks_for_exact(table.spec().max_entries, key_bits);
                }
                MatchKind::Ternary | MatchKind::Range => {
                    usage.tcam_blocks +=
                        target.tcam_blocks_for_ternary(table.spec().max_entries, key_bits);
                }
            }
        }
        if usage.sram_blocks > target.sram_blocks_per_stage {
            violations.push(format!(
                "stage {s}: {} SRAM blocks exceed budget {}",
                usage.sram_blocks, target.sram_blocks_per_stage
            ));
        }
        if usage.tcam_blocks > target.tcam_blocks_per_stage {
            violations.push(format!(
                "stage {s}: {} TCAM blocks exceed budget {}",
                usage.tcam_blocks, target.tcam_blocks_per_stage
            ));
        }
        if usage.tables > target.max_tables_per_stage {
            violations.push(format!(
                "stage {s}: {} tables exceed budget {}",
                usage.tables, target.max_tables_per_stage
            ));
        }
    }

    let tcam_bits = per_stage.iter().map(|u| u.tcam_blocks as u64).sum::<u64>()
        * (target.tcam_block_entries * target.tcam_block_width_bits) as u64;
    let sram_bits =
        per_stage.iter().map(|u| u.sram_blocks as u64).sum::<u64>() * target.sram_block_bits;

    ResourceReport {
        per_stage,
        tcam_entries: program.tcam_entries(),
        tcam_bits,
        sram_bits,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::register::RegisterSpec;
    use crate::table::TableSpec;

    #[test]
    fn tofino1_budgets() {
        let t = TargetSpec::tofino1();
        // ≈6.48 Mb of TCAM, as cited in the paper's Table 3 caption.
        let mbits = t.total_tcam_bits() as f64 / 1e6;
        assert!((6.0..7.0).contains(&mbits), "tcam {mbits} Mb");
        assert_eq!(t.n_stages, 12);
    }

    #[test]
    fn register_block_math() {
        let t = TargetSpec::tofino1();
        // 65536 × 32 b = 2 Mb = 16 blocks of 128 Kb
        assert_eq!(t.sram_blocks_for_register(65536 * 32), 16);
        assert_eq!(t.sram_blocks_for_register(1), 1);
    }

    #[test]
    fn ternary_block_math() {
        let t = TargetSpec::tofino1();
        // 100 entries of 40 bits: 1 width unit × 1 depth unit.
        assert_eq!(t.tcam_blocks_for_ternary(100, 40), 1);
        // 600 entries of 90 bits: 3 width units × 2 depth units.
        assert_eq!(t.tcam_blocks_for_ternary(600, 90), 6);
    }

    #[test]
    fn small_program_fits() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 16);
        b.add_register(RegisterSpec::new("r", 32, 1024), 0);
        b.add_table(TableSpec::ternary("t", vec![f], 256), 0);
        let p = b.build().unwrap();
        let report = check(&p, &TargetSpec::tofino1());
        assert!(report.feasible(), "{:?}", report.violations);
        assert_eq!(report.per_stage[0].sram_blocks, 1);
        assert_eq!(report.per_stage[0].tcam_blocks, 1);
    }

    #[test]
    fn oversized_register_violates() {
        let mut b = ProgramBuilder::new();
        let _f = b.add_meta("f", 16);
        // 2^25 × 64 b = 2 Gb in one stage: far beyond 80 × 128 Kb.
        b.add_register(RegisterSpec::new("huge", 64, 1 << 25), 0);
        let p = b.build().unwrap();
        let report = check(&p, &TargetSpec::tofino1());
        assert!(!report.feasible());
        assert!(report.violations[0].contains("SRAM"));
    }

    #[test]
    fn too_many_stages_violates() {
        let mut b = ProgramBuilder::new();
        let f = b.add_meta("f", 8);
        b.add_table(TableSpec::exact("t", vec![f], 4), 15); // stage 15 > 11
        let p = b.build().unwrap();
        let report = check(&p, &TargetSpec::tofino1());
        assert!(!report.feasible());
        assert!(report.violations.iter().any(|v| v.contains("stages")));
    }

    #[test]
    fn wide_key_violates() {
        let mut b = ProgramBuilder::new();
        let keys: Vec<_> = (0..10).map(|i| b.add_meta(format!("k{i}"), 64)).collect();
        b.add_table(TableSpec::ternary("wide", keys, 4), 0);
        let p = b.build().unwrap();
        let report = check(&p, &TargetSpec::tofino1());
        assert!(!report.feasible());
        assert!(report.violations.iter().any(|v| v.contains("key")));
    }

    #[test]
    fn targets_are_ordered_by_capacity() {
        let t1 = TargetSpec::tofino1();
        let t2 = TargetSpec::tofino2();
        let nic = TargetSpec::smartnic_dpu();
        assert!(t2.total_sram_bits() > t1.total_sram_bits());
        assert!(nic.total_sram_bits() < t1.total_sram_bits());
    }
}
