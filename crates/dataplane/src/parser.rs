//! The programmable parser: packet bytes → PHV fields.
//!
//! Mirrors a P4 parser for the header stack produced by
//! [`crate::packet::PacketBuilder`]: Ethernet, optional flow-size shim,
//! IPv4, then TCP or UDP. Parsed values land in the [`StandardFields`]
//! registered on the program's [`PhvLayout`].

use crate::packet::{ETHERTYPE_IPV4, FLOW_SHIM_ETHERTYPE, IPPROTO_TCP, IPPROTO_UDP};
use crate::phv::{FieldId, Phv, PhvLayout};

/// Field ids of the standard parsed headers plus intrinsic metadata.
///
/// `ts_us` (ingress timestamp, microseconds) and `is_resubmit` are intrinsic
/// metadata set by the pipeline, not the parser.
#[derive(Debug, Clone, Copy)]
pub struct StandardFields {
    /// IPv4 source address.
    pub ipv4_src: FieldId,
    /// IPv4 destination address.
    pub ipv4_dst: FieldId,
    /// IPv4 protocol.
    pub ip_proto: FieldId,
    /// IPv4 total length (bytes).
    pub ip_len: FieldId,
    /// IPv4 TTL.
    pub ttl: FieldId,
    /// L4 source port.
    pub sport: FieldId,
    /// L4 destination port.
    pub dport: FieldId,
    /// TCP flags (0 for UDP).
    pub tcp_flags: FieldId,
    /// Flow size in packets from the shim header (0 when absent).
    pub flow_size: FieldId,
    /// Ingress timestamp in microseconds (intrinsic metadata).
    pub ts_us: FieldId,
    /// 1 when the PHV re-enters via resubmission (intrinsic metadata).
    pub is_resubmit: FieldId,
    /// Frame length in bytes (intrinsic metadata).
    pub frame_len: FieldId,
}

impl StandardFields {
    /// Registers the standard fields on a layout.
    pub fn register(layout: &mut PhvLayout) -> Self {
        Self {
            ipv4_src: layout.add_field("ipv4.src", 32),
            ipv4_dst: layout.add_field("ipv4.dst", 32),
            ip_proto: layout.add_field("ipv4.proto", 8),
            ip_len: layout.add_field("ipv4.len", 16),
            ttl: layout.add_field("ipv4.ttl", 8),
            sport: layout.add_field("l4.sport", 16),
            dport: layout.add_field("l4.dport", 16),
            tcp_flags: layout.add_field("tcp.flags", 8),
            flow_size: layout.add_field("shim.flow_size", 16),
            ts_us: layout.add_field("ig.ts_us", 48),
            is_resubmit: layout.add_field("ig.is_resubmit", 1),
            frame_len: layout.add_field("ig.frame_len", 16),
        }
    }
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The frame ended before a header could be read.
    TooShort {
        /// Which header was being parsed.
        header: &'static str,
    },
    /// EtherType is neither IPv4 nor the flow-size shim.
    UnsupportedEtherType(u16),
    /// IP protocol is neither TCP nor UDP.
    UnsupportedProtocol(u8),
    /// IPv4 IHL below the 20-byte minimum: the L4 offset it implies would
    /// fall *inside* the IP header, so the ports read there would be
    /// header bytes, not ports. Always rejected — untrusted input must
    /// never steer on garbage.
    BadIpHeaderLen(u8),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::TooShort { header } => write!(f, "frame too short parsing {header}"),
            ParseError::UnsupportedEtherType(e) => write!(f, "unsupported ethertype {e:#06x}"),
            ParseError::UnsupportedProtocol(p) => write!(f, "unsupported ip protocol {p}"),
            ParseError::BadIpHeaderLen(ihl) => write!(f, "ipv4 header length {ihl} below minimum"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A frame's 5-tuple read without building a PHV — for pre-pipeline
/// dispatch (batch shard routing) that must agree with the full parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTupleView {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// L4 source port.
    pub sport: u16,
    /// L4 destination port.
    pub dport: u16,
    /// IPv4 protocol.
    pub proto: u8,
}

/// Reads a frame's 5-tuple with the same header walk (and the same
/// errors) as [`parse`], but touching only the tuple bytes.
pub fn peek_flow_tuple(frame: &[u8]) -> Result<FlowTupleView, ParseError> {
    if frame.len() < 14 {
        return Err(ParseError::TooShort { header: "ethernet" });
    }
    let mut off = 12;
    let mut ethertype = be16(frame, off);
    off += 2;
    if ethertype == FLOW_SHIM_ETHERTYPE {
        if frame.len() < off + 4 {
            return Err(ParseError::TooShort { header: "flow shim" });
        }
        ethertype = be16(frame, off + 2);
        off += 4;
    }
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::UnsupportedEtherType(ethertype));
    }
    if frame.len() < off + 20 {
        return Err(ParseError::TooShort { header: "ipv4" });
    }
    let ihl = (frame[off] & 0x0F) as usize * 4;
    if ihl < 20 {
        return Err(ParseError::BadIpHeaderLen((frame[off] & 0x0F) * 4));
    }
    let proto = frame[off + 9];
    let src_ip = be32(frame, off + 12);
    let dst_ip = be32(frame, off + 16);
    let l4 = off + ihl;
    let l4_min = match proto {
        IPPROTO_TCP => 20,
        IPPROTO_UDP => 8,
        other => return Err(ParseError::UnsupportedProtocol(other)),
    };
    if frame.len() < l4 + l4_min {
        return Err(ParseError::TooShort {
            header: if proto == IPPROTO_TCP { "tcp" } else { "udp" },
        });
    }
    Ok(FlowTupleView { src_ip, dst_ip, sport: be16(frame, l4), dport: be16(frame, l4 + 2), proto })
}

fn be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

fn be32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// Parses a frame into a fresh PHV using the standard field set.
///
/// Allocates the returned PHV; batch loops reuse one via [`parse_into`].
pub fn parse(frame: &[u8], layout: &PhvLayout, fields: &StandardFields) -> Result<Phv, ParseError> {
    let mut phv = layout.new_phv();
    parse_into(frame, layout, fields, &mut phv)?;
    Ok(phv)
}

/// Parses a frame into a caller-provided PHV (zeroed first) — the
/// allocation-free path for packet batch loops. The PHV must come from
/// `layout` (same field count). On error the PHV is left zeroed/partially
/// filled; callers treat its contents as unspecified.
pub fn parse_into(
    frame: &[u8],
    layout: &PhvLayout,
    fields: &StandardFields,
    phv: &mut Phv,
) -> Result<(), ParseError> {
    debug_assert_eq!(phv.len(), layout.n_fields(), "PHV does not match layout");
    phv.zero();
    if frame.len() < 14 {
        return Err(ParseError::TooShort { header: "ethernet" });
    }
    let mut off = 12;
    let mut ethertype = be16(frame, off);
    off += 2;
    if ethertype == FLOW_SHIM_ETHERTYPE {
        if frame.len() < off + 4 {
            return Err(ParseError::TooShort { header: "flow shim" });
        }
        phv.set(fields.flow_size, be16(frame, off) as u64);
        ethertype = be16(frame, off + 2);
        off += 4;
    }
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::UnsupportedEtherType(ethertype));
    }
    if frame.len() < off + 20 {
        return Err(ParseError::TooShort { header: "ipv4" });
    }
    let ihl = (frame[off] & 0x0F) as usize * 4;
    if ihl < 20 {
        return Err(ParseError::BadIpHeaderLen((frame[off] & 0x0F) * 4));
    }
    phv.set(fields.ip_len, be16(frame, off + 2) as u64);
    phv.set(fields.ttl, frame[off + 8] as u64);
    let proto = frame[off + 9];
    phv.set(fields.ip_proto, proto as u64);
    phv.set(fields.ipv4_src, be32(frame, off + 12) as u64);
    phv.set(fields.ipv4_dst, be32(frame, off + 16) as u64);
    let l4 = off + ihl;
    match proto {
        IPPROTO_TCP => {
            if frame.len() < l4 + 20 {
                return Err(ParseError::TooShort { header: "tcp" });
            }
            phv.set(fields.sport, be16(frame, l4) as u64);
            phv.set(fields.dport, be16(frame, l4 + 2) as u64);
            phv.set(fields.tcp_flags, frame[l4 + 13] as u64);
        }
        IPPROTO_UDP => {
            if frame.len() < l4 + 8 {
                return Err(ParseError::TooShort { header: "udp" });
            }
            phv.set(fields.sport, be16(frame, l4) as u64);
            phv.set(fields.dport, be16(frame, l4 + 2) as u64);
        }
        other => return Err(ParseError::UnsupportedProtocol(other)),
    }
    phv.set(fields.frame_len, frame.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, TcpFlags};

    fn layout() -> (PhvLayout, StandardFields) {
        let mut l = PhvLayout::new();
        let f = StandardFields::register(&mut l);
        (l, f)
    }

    #[test]
    fn parses_tcp_with_shim() {
        let (l, f) = layout();
        let frame = PacketBuilder::tcp(0x0a000001, 0x0a000002, 4321, 443)
            .flags(TcpFlags::SYN | TcpFlags::ACK)
            .payload(64)
            .flow_size(100)
            .build();
        let phv = parse(&frame, &l, &f).unwrap();
        assert_eq!(phv.get(f.ipv4_src), 0x0a000001);
        assert_eq!(phv.get(f.ipv4_dst), 0x0a000002);
        assert_eq!(phv.get(f.sport), 4321);
        assert_eq!(phv.get(f.dport), 443);
        assert_eq!(phv.get(f.tcp_flags), (TcpFlags::SYN | TcpFlags::ACK) as u64);
        assert_eq!(phv.get(f.flow_size), 100);
        assert_eq!(phv.get(f.ip_len), 20 + 20 + 64);
        assert_eq!(phv.get(f.frame_len), frame.len() as u64);
    }

    #[test]
    fn parses_udp_without_shim() {
        let (l, f) = layout();
        let frame = PacketBuilder::udp(1, 2, 53, 5353).payload(32).build();
        let phv = parse(&frame, &l, &f).unwrap();
        assert_eq!(phv.get(f.ip_proto), 17);
        assert_eq!(phv.get(f.flow_size), 0);
        assert_eq!(phv.get(f.tcp_flags), 0);
        assert_eq!(phv.get(f.sport), 53);
    }

    #[test]
    fn peek_agrees_with_full_parse() {
        let (l, f) = layout();
        for frame in [
            PacketBuilder::tcp(0x0a000001, 0x0a000002, 4321, 443).flow_size(9).build(),
            PacketBuilder::udp(7, 8, 53, 5353).payload(16).build(),
        ] {
            let phv = parse(&frame, &l, &f).unwrap();
            let t = peek_flow_tuple(&frame).unwrap();
            assert_eq!(t.src_ip as u64, phv.get(f.ipv4_src));
            assert_eq!(t.dst_ip as u64, phv.get(f.ipv4_dst));
            assert_eq!(t.sport as u64, phv.get(f.sport));
            assert_eq!(t.dport as u64, phv.get(f.dport));
            assert_eq!(t.proto as u64, phv.get(f.ip_proto));
        }
        assert!(peek_flow_tuple(&[0u8; 6]).is_err());
    }

    #[test]
    fn short_frame_rejected() {
        let (l, f) = layout();
        assert_eq!(parse(&[0u8; 10], &l, &f), Err(ParseError::TooShort { header: "ethernet" }));
    }

    #[test]
    fn truncated_tcp_rejected() {
        let (l, f) = layout();
        let frame = PacketBuilder::tcp(1, 2, 3, 4).build();
        let cut = &frame[..frame.len() - 10];
        assert_eq!(parse(cut, &l, &f), Err(ParseError::TooShort { header: "tcp" }));
    }

    #[test]
    fn unknown_ethertype_rejected() {
        let (l, f) = layout();
        let mut frame = PacketBuilder::udp(1, 2, 3, 4).build().to_vec();
        frame[12] = 0x86; // 0x86DD = IPv6
        frame[13] = 0xDD;
        assert_eq!(parse(&frame, &l, &f), Err(ParseError::UnsupportedEtherType(0x86DD)));
    }

    #[test]
    fn short_ihl_rejected_by_both_walks() {
        let (l, f) = layout();
        let mut frame = PacketBuilder::tcp(1, 2, 3, 4).payload(40).build().to_vec();
        frame[14] = 0x42; // version 4, IHL 2 (8 bytes) — below the 20-byte minimum
        assert_eq!(parse(&frame, &l, &f), Err(ParseError::BadIpHeaderLen(8)));
        assert_eq!(peek_flow_tuple(&frame), Err(ParseError::BadIpHeaderLen(8)));
    }

    #[test]
    fn unknown_protocol_rejected() {
        let (l, f) = layout();
        let mut frame = PacketBuilder::udp(1, 2, 3, 4).build().to_vec();
        frame[14 + 9] = 1; // ICMP
        assert_eq!(parse(&frame, &l, &f), Err(ParseError::UnsupportedProtocol(1)));
    }
}
