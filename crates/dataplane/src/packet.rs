//! Byte-level packet construction: Ethernet / flow-size shim / IPv4 / TCP|UDP.
//!
//! SpliDT assumes a datacenter transport that carries the flow's total size
//! in a header (Homa \[52\] and NDP \[37\] both do), so the switch can derive
//! window boundaries without buffering. We model this as a 4-byte shim
//! between Ethernet and IPv4 — structurally a VLAN-style tag with a local
//! experimental EtherType — carrying the flow size in packets.
//!
//! ```text
//! | Ethernet (14B) | shim: ethertype 0x88B5, flow_size:u16 | IPv4 | TCP/UDP | payload |
//! ```

use bytes::{BufMut, BytesMut};

/// EtherType of the flow-size shim (IEEE 802 local experimental).
pub const FLOW_SHIM_ETHERTYPE: u16 = 0x88B5;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IPv4 protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IPv4 protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;
    /// URG flag.
    pub const URG: u8 = 0x20;

    /// True when all bits in `mask` are set.
    pub fn has(self, mask: u8) -> bool {
        self.0 & mask == mask
    }
}

/// Builder for test and trace packets.
///
/// Produces a fully formed frame; lengths and header fields are consistent,
/// checksums are zeroed (the simulator does not verify them, like most
/// switch pipelines which delegate to MAC blocks).
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    proto: u8,
    tcp_flags: u8,
    ttl: u8,
    payload_len: u16,
    flow_size: Option<u16>,
}

impl PacketBuilder {
    /// Starts a TCP packet for the given 5-tuple.
    pub fn tcp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: IPPROTO_TCP,
            tcp_flags: TcpFlags::ACK,
            ttl: 64,
            payload_len: 0,
            flow_size: None,
        }
    }

    /// Starts a UDP packet for the given 5-tuple.
    pub fn udp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: IPPROTO_UDP,
            tcp_flags: 0,
            ttl: 64,
            payload_len: 0,
            flow_size: None,
        }
    }

    /// Sets TCP flags (ignored for UDP).
    pub fn flags(mut self, flags: u8) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Sets the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the payload length in bytes.
    pub fn payload(mut self, len: u16) -> Self {
        self.payload_len = len;
        self
    }

    /// Attaches the flow-size shim declaring the flow's total packet count.
    pub fn flow_size(mut self, packets: u16) -> Self {
        self.flow_size = Some(packets);
        self
    }

    /// Serializes the frame.
    pub fn build(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(self.frame_len());
        self.serialize(&mut buf);
        buf
    }

    /// Serializes the frame into a reusable buffer (cleared first). After
    /// the buffer has grown to the largest frame in a batch, subsequent
    /// calls allocate nothing — the hot-loop companion to [`Self::build`].
    pub fn build_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.frame_len());
        self.serialize(out);
    }

    fn serialize<B: BufMut>(&self, buf: &mut B) {
        let l4_len: u16 = match self.proto {
            IPPROTO_TCP => 20,
            IPPROTO_UDP => 8,
            _ => 0,
        };
        let ip_total = 20 + l4_len + self.payload_len;
        // Ethernet
        buf.put_slice(&[0x02, 0, 0, 0, 0, 0x01]); // dst MAC
        buf.put_slice(&[0x02, 0, 0, 0, 0, 0x02]); // src MAC
        if let Some(fs) = self.flow_size {
            buf.put_u16(FLOW_SHIM_ETHERTYPE);
            buf.put_u16(fs);
        }
        buf.put_u16(ETHERTYPE_IPV4);
        // IPv4 (no options)
        buf.put_u8(0x45);
        buf.put_u8(0);
        buf.put_u16(ip_total);
        buf.put_u16(0); // id
        buf.put_u16(0); // flags/frag
        buf.put_u8(self.ttl);
        buf.put_u8(self.proto);
        buf.put_u16(0); // checksum (unverified)
        buf.put_u32(self.src_ip);
        buf.put_u32(self.dst_ip);
        // L4
        match self.proto {
            IPPROTO_TCP => {
                buf.put_u16(self.src_port);
                buf.put_u16(self.dst_port);
                buf.put_u32(0); // seq
                buf.put_u32(0); // ack
                buf.put_u8(5 << 4); // data offset
                buf.put_u8(self.tcp_flags);
                buf.put_u16(0xFFFF); // window
                buf.put_u16(0); // checksum
                buf.put_u16(0); // urgent
            }
            IPPROTO_UDP => {
                buf.put_u16(self.src_port);
                buf.put_u16(self.dst_port);
                buf.put_u16(8 + self.payload_len);
                buf.put_u16(0); // checksum
            }
            _ => {}
        }
        buf.put_bytes(0, self.payload_len as usize);
    }

    /// Total frame length this builder will produce.
    pub fn frame_len(&self) -> usize {
        let l4: usize = if self.proto == IPPROTO_TCP { 20 } else { 8 };
        14 + if self.flow_size.is_some() { 4 } else { 0 } + 20 + l4 + self.payload_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_frame_shape() {
        let pkt = PacketBuilder::tcp(0x0a000001, 0x0a000002, 1234, 80)
            .flags(TcpFlags::SYN)
            .payload(100)
            .flow_size(32)
            .build();
        assert_eq!(pkt.len(), 14 + 4 + 20 + 20 + 100);
        // shim ethertype at offset 12
        assert_eq!(u16::from_be_bytes([pkt[12], pkt[13]]), FLOW_SHIM_ETHERTYPE);
        assert_eq!(u16::from_be_bytes([pkt[14], pkt[15]]), 32);
        assert_eq!(u16::from_be_bytes([pkt[16], pkt[17]]), ETHERTYPE_IPV4);
        // proto at IPv4 offset 9 (headers start at 18)
        assert_eq!(pkt[18 + 9], IPPROTO_TCP);
    }

    #[test]
    fn udp_without_shim() {
        let pkt = PacketBuilder::udp(1, 2, 53, 53).build();
        assert_eq!(pkt.len(), 14 + 20 + 8);
        assert_eq!(u16::from_be_bytes([pkt[12], pkt[13]]), ETHERTYPE_IPV4);
        assert_eq!(pkt[14 + 9], IPPROTO_UDP);
    }

    #[test]
    fn frame_len_matches_build() {
        let b = PacketBuilder::tcp(1, 2, 3, 4).payload(7).flow_size(9);
        assert_eq!(b.frame_len(), b.build().len());
        let b = PacketBuilder::udp(1, 2, 3, 4).payload(11);
        assert_eq!(b.frame_len(), b.build().len());
    }

    #[test]
    fn flags_helpers() {
        let f = TcpFlags(TcpFlags::SYN | TcpFlags::ACK);
        assert!(f.has(TcpFlags::SYN));
        assert!(f.has(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.has(TcpFlags::FIN));
    }
}
