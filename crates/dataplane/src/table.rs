//! Match-action tables: exact (SRAM), ternary (TCAM) and range matching.
//!
//! Tables are declared with a [`TableSpec`] (name, match kind, key fields,
//! capacity) and populated with entries. Ternary entries carry priorities;
//! lookup returns the highest-priority match (ties broken by insertion
//! order, as TCAM physical order does). Hit counters per entry support the
//! paper's rule-count accounting and debugging.

use crate::action::Action;
use crate::phv::{FieldId, Phv};
use crate::tcam::Ternary;
use rustc_hash::FxHashSet;

/// Identifier of a table within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub(crate) u16);

impl TableId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A sentinel id for builder scaffolding; never valid to dereference.
    pub fn invalid() -> Self {
        TableId(u16::MAX)
    }
}

/// How a table matches its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact match (SRAM hash tables).
    Exact,
    /// Ternary value/mask match with priorities (TCAM).
    Ternary,
    /// Closed-interval range match per key component with priorities
    /// (modelled on range-capable TCAM blocks; used only by tests and
    /// utilities — SpliDT's compiler emits prefix-expanded ternary).
    Range,
}

/// Declaration of a table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Name (unique within a program).
    pub name: String,
    /// Match kind.
    pub kind: MatchKind,
    /// Key fields, in match order.
    pub key: Vec<FieldId>,
    /// Maximum number of entries (resource model input).
    pub max_entries: usize,
}

impl TableSpec {
    /// Shorthand for an exact-match table.
    pub fn exact(name: impl Into<String>, key: Vec<FieldId>, max_entries: usize) -> Self {
        Self { name: name.into(), kind: MatchKind::Exact, key, max_entries }
    }

    /// Shorthand for a ternary (TCAM) table.
    pub fn ternary(name: impl Into<String>, key: Vec<FieldId>, max_entries: usize) -> Self {
        Self { name: name.into(), kind: MatchKind::Ternary, key, max_entries }
    }

    /// Shorthand for a range table.
    pub fn range(name: impl Into<String>, key: Vec<FieldId>, max_entries: usize) -> Self {
        Self { name: name.into(), kind: MatchKind::Range, key, max_entries }
    }
}

/// Entry key variants (must agree with the table's [`MatchKind`]).
#[derive(Debug, Clone)]
pub enum EntryKey {
    /// Exact values, one per key field.
    Exact(Vec<u64>),
    /// Ternary patterns, one per key field, plus priority (higher wins).
    Ternary {
        /// Per-field value/mask patterns.
        fields: Vec<Ternary>,
        /// Priority; higher wins, ties broken by insertion order.
        priority: u32,
    },
    /// Closed intervals `[lo, hi]`, one per key field, plus priority.
    Range {
        /// Per-field inclusive ranges.
        fields: Vec<(u64, u64)>,
        /// Priority; higher wins.
        priority: u32,
    },
}

/// An installed entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Key.
    pub key: EntryKey,
    /// Action on hit.
    pub action: Action,
    /// Hit counter.
    pub hits: u64,
}

/// Errors installing entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Entry key arity or kind does not match the table.
    KeyMismatch {
        /// Table name.
        table: String,
    },
    /// Table is at `max_entries`.
    Full {
        /// Table name.
        table: String,
        /// Configured capacity.
        capacity: usize,
    },
    /// An exact entry with this key is already installed. (Silently
    /// shadowing the old entry used to leave it in `entries` — consuming
    /// capacity, unreachable, its hit counter frozen — while the lookup
    /// index pointed at the new one.)
    DuplicateKey {
        /// Table name.
        table: String,
        /// The already-installed key values.
        key: Vec<u64>,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::KeyMismatch { table } => write!(f, "key mismatch for table {table}"),
            TableError::Full { table, capacity } => {
                write!(f, "table {table} full (capacity {capacity})")
            }
            TableError::DuplicateKey { table, key } => {
                write!(f, "duplicate exact key {key:?} in table {table}")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A match-action table instance.
///
/// The table itself resolves lookups by the **linear reference scan**
/// ([`Table::lookup_linear`]); the packet hot path goes through the
/// compiled [`MatchIndex`](crate::index::MatchIndex) the
/// [`ExecPlan`](crate::plan::ExecPlan) builds per table, which is held
/// equivalent to the scan by the `indexed_lookup_equals_linear` proptest.
#[derive(Debug, Clone)]
pub struct Table {
    spec: TableSpec,
    entries: Vec<Entry>,
    /// Installed exact keys, for O(1) duplicate rejection at install time
    /// (never consulted by lookups — the linear scan stays the oracle and
    /// the compiled index the hot path).
    exact_keys: FxHashSet<Vec<u64>>,
    /// Default action on miss.
    default_action: Action,
    /// Miss counter.
    misses: u64,
}

impl Table {
    /// Creates an empty table with a no-op default action.
    pub fn new(spec: TableSpec) -> Self {
        Self {
            spec,
            entries: Vec::new(),
            exact_keys: FxHashSet::default(),
            default_action: Action::nop(),
            misses: 0,
        }
    }

    /// The table's declaration.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Sets the default (miss) action.
    pub fn set_default(&mut self, action: Action) {
        self.default_action = action;
    }

    /// The default (miss) action.
    pub fn default_action(&self) -> &Action {
        &self.default_action
    }

    /// Installed entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of installed entries.
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Installs an entry.
    pub fn install(&mut self, key: EntryKey, action: Action) -> Result<(), TableError> {
        let arity_ok = match (&self.spec.kind, &key) {
            (MatchKind::Exact, EntryKey::Exact(v)) => v.len() == self.spec.key.len(),
            (MatchKind::Ternary, EntryKey::Ternary { fields, .. }) => {
                fields.len() == self.spec.key.len()
            }
            (MatchKind::Range, EntryKey::Range { fields, .. }) => {
                fields.len() == self.spec.key.len()
            }
            _ => false,
        };
        if !arity_ok {
            return Err(TableError::KeyMismatch { table: self.spec.name.clone() });
        }
        if self.entries.len() >= self.spec.max_entries {
            return Err(TableError::Full {
                table: self.spec.name.clone(),
                capacity: self.spec.max_entries,
            });
        }
        if let EntryKey::Exact(v) = &key {
            if !self.exact_keys.insert(v.clone()) {
                return Err(TableError::DuplicateKey {
                    table: self.spec.name.clone(),
                    key: v.clone(),
                });
            }
        }
        self.entries.push(Entry { key, action, hits: 0 });
        Ok(())
    }

    /// Looks up the PHV with the **linear reference scan**; returns the
    /// matched entry index (for hit counting) or `None` on miss. Does
    /// **not** bump counters — the pipeline does, so read-only lookups
    /// stay cheap. Allocates a key buffer per call; loops use
    /// [`Table::lookup_linear_into`] with a reusable buffer.
    ///
    /// This walk over every installed entry is the semantic oracle the
    /// compiled [`MatchIndex`](crate::index::MatchIndex) is tested
    /// against; the plan-driven hot path never calls it.
    pub fn lookup_linear(&self, phv: &Phv) -> Option<usize> {
        let mut key_vals = Vec::with_capacity(self.spec.key.len());
        self.lookup_linear_into(phv, &mut key_vals)
    }

    /// Allocation-free linear lookup: the key is materialized into
    /// `key_scratch` (cleared first), so a caller-held buffer is reused
    /// across lookups. Semantics are identical to
    /// [`Table::lookup_linear`].
    pub fn lookup_linear_into(&self, phv: &Phv, key_scratch: &mut Vec<u64>) -> Option<usize> {
        key_scratch.clear();
        key_scratch.extend(self.spec.key.iter().map(|&f| phv.get(f)));
        self.lookup_linear_key(key_scratch)
    }

    /// The linear scan over pre-materialized key values (one per key
    /// field, in match order). Highest priority wins; ties keep the
    /// lowest install index.
    pub fn lookup_linear_key(&self, key_vals: &[u64]) -> Option<usize> {
        match self.spec.kind {
            MatchKind::Exact => self
                .entries
                .iter()
                .position(|e| matches!(&e.key, EntryKey::Exact(v) if v.as_slice() == key_vals)),
            MatchKind::Ternary => {
                let mut best: Option<(u32, usize)> = None;
                for (i, e) in self.entries.iter().enumerate() {
                    if let EntryKey::Ternary { fields, priority } = &e.key {
                        if fields.iter().zip(key_vals).all(|(t, &v)| t.matches(v)) {
                            let better = match best {
                                None => true,
                                Some((bp, _)) => *priority > bp,
                            };
                            if better {
                                best = Some((*priority, i));
                            }
                        }
                    }
                }
                best.map(|(_, i)| i)
            }
            MatchKind::Range => {
                let mut best: Option<(u32, usize)> = None;
                for (i, e) in self.entries.iter().enumerate() {
                    if let EntryKey::Range { fields, priority } = &e.key {
                        if fields.iter().zip(key_vals).all(|(&(lo, hi), &v)| lo <= v && v <= hi) {
                            let better = match best {
                                None => true,
                                Some((bp, _)) => *priority > bp,
                            };
                            if better {
                                best = Some((*priority, i));
                            }
                        }
                    }
                }
                best.map(|(_, i)| i)
            }
        }
    }

    /// Carries hit/miss statistics over from another table — used by the
    /// live model swap to keep lifecycle counters continuous across the
    /// flip. The two tables must hold the same number of entries, installed
    /// in the same order (true for the lifecycle MAT: its entries are
    /// determined by the compile-time policy, not the model).
    pub fn carry_stats_from(&mut self, old: &Table) {
        assert_eq!(
            self.entries.len(),
            old.entries.len(),
            "cannot carry stats across tables with different entry counts"
        );
        for (e, o) in self.entries.iter_mut().zip(&old.entries) {
            e.hits = o.hits;
        }
        self.misses = old.misses;
    }

    /// Zeroes hit/miss statistics (fresh-session reset; entries stay).
    pub fn reset_stats(&mut self) {
        self.misses = 0;
        for e in &mut self.entries {
            e.hits = 0;
        }
    }

    /// Bumps the hit counter of entry `i`.
    pub(crate) fn record_hit(&mut self, i: usize) {
        self.entries[i].hits += 1;
    }

    /// Bumps the miss counter.
    pub(crate) fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Key width in bits given a PHV layout (resource accounting).
    pub fn key_bits(&self, layout: &crate::phv::PhvLayout) -> usize {
        self.spec.key.iter().map(|&f| layout.spec(f).bits() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Primitive;
    use crate::phv::PhvLayout;

    fn setup() -> (PhvLayout, FieldId, FieldId) {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 16);
        let b = l.add_field("b", 16);
        (l, a, b)
    }

    #[test]
    fn exact_lookup() {
        let (l, a, b) = setup();
        let mut t = Table::new(TableSpec::exact("t", vec![a, b], 8));
        t.install(EntryKey::Exact(vec![1, 2]), Action::new("x")).unwrap();
        let mut phv = l.new_phv();
        phv.set(a, 1);
        phv.set(b, 2);
        assert_eq!(t.lookup_linear(&phv), Some(0));
        phv.set(b, 3);
        assert_eq!(t.lookup_linear(&phv), None);
    }

    #[test]
    fn ternary_priority_wins() {
        let (l, a, _b) = setup();
        let mut t = Table::new(TableSpec::ternary("t", vec![a], 8));
        t.install(
            EntryKey::Ternary { fields: vec![Ternary::ANY], priority: 1 },
            Action::new("low"),
        )
        .unwrap();
        t.install(
            EntryKey::Ternary { fields: vec![Ternary::exact(7, 16)], priority: 10 },
            Action::new("high"),
        )
        .unwrap();
        let mut phv = l.new_phv();
        phv.set(a, 7);
        let hit = t.lookup_linear(&phv).unwrap();
        assert_eq!(t.entries()[hit].action.name, "high");
        phv.set(a, 8);
        let hit = t.lookup_linear(&phv).unwrap();
        assert_eq!(t.entries()[hit].action.name, "low");
    }

    #[test]
    fn ternary_tie_keeps_first_installed() {
        let (l, a, _b) = setup();
        let mut t = Table::new(TableSpec::ternary("t", vec![a], 8));
        t.install(
            EntryKey::Ternary { fields: vec![Ternary::ANY], priority: 5 },
            Action::new("first"),
        )
        .unwrap();
        t.install(
            EntryKey::Ternary { fields: vec![Ternary::ANY], priority: 5 },
            Action::new("second"),
        )
        .unwrap();
        let phv = l.new_phv();
        let hit = t.lookup_linear(&phv).unwrap();
        assert_eq!(t.entries()[hit].action.name, "first");
    }

    #[test]
    fn range_lookup() {
        let (l, a, _b) = setup();
        let mut t = Table::new(TableSpec::range("t", vec![a], 8));
        t.install(EntryKey::Range { fields: vec![(10, 20)], priority: 1 }, Action::new("in"))
            .unwrap();
        let mut phv = l.new_phv();
        for (v, hit) in [(9u64, false), (10, true), (15, true), (20, true), (21, false)] {
            phv.set(a, v);
            assert_eq!(t.lookup_linear(&phv).is_some(), hit, "value {v}");
        }
    }

    #[test]
    fn capacity_enforced() {
        let (_l, a, _b) = setup();
        let mut t = Table::new(TableSpec::exact("t", vec![a], 1));
        t.install(EntryKey::Exact(vec![1]), Action::nop()).unwrap();
        let err = t.install(EntryKey::Exact(vec![2]), Action::nop()).unwrap_err();
        assert!(matches!(err, TableError::Full { capacity: 1, .. }));
    }

    #[test]
    fn duplicate_exact_key_rejected() {
        // Regression: duplicates used to shadow silently — the old entry
        // stayed installed (consuming capacity, unreachable) while the
        // exact index pointed at the new one.
        let (l, a, b) = setup();
        let mut t = Table::new(TableSpec::exact("t", vec![a, b], 8));
        t.install(EntryKey::Exact(vec![1, 2]), Action::new("first")).unwrap();
        let err = t.install(EntryKey::Exact(vec![1, 2]), Action::new("second")).unwrap_err();
        assert!(matches!(&err, TableError::DuplicateKey { key, .. } if key == &vec![1, 2]));
        assert_eq!(t.n_entries(), 1, "rejected entry must not consume capacity");
        let mut phv = l.new_phv();
        phv.set(a, 1);
        phv.set(b, 2);
        let hit = t.lookup_linear(&phv).unwrap();
        assert_eq!(t.entries()[hit].action.name, "first");
        // A different key still installs fine.
        t.install(EntryKey::Exact(vec![1, 3]), Action::new("other")).unwrap();
    }

    #[test]
    fn kind_mismatch_rejected() {
        let (_l, a, _b) = setup();
        let mut t = Table::new(TableSpec::exact("t", vec![a], 4));
        let err = t
            .install(EntryKey::Ternary { fields: vec![Ternary::ANY], priority: 0 }, Action::nop())
            .unwrap_err();
        assert!(matches!(err, TableError::KeyMismatch { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (_l, a, b) = setup();
        let mut t = Table::new(TableSpec::exact("t", vec![a, b], 4));
        assert!(t.install(EntryKey::Exact(vec![1]), Action::nop()).is_err());
    }

    #[test]
    fn key_bits_accounting() {
        let (l, a, b) = setup();
        let t = Table::new(TableSpec::ternary("t", vec![a, b], 4));
        assert_eq!(t.key_bits(&l), 32);
    }

    #[test]
    fn default_action_settable() {
        let (_l, a, _b) = setup();
        let mut t = Table::new(TableSpec::exact("t", vec![a], 4));
        t.set_default(Action::new("fallback").with(Primitive::Drop));
        assert_eq!(t.default_action().name, "fallback");
    }
}
