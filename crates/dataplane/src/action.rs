//! Action primitives executed on a table hit.
//!
//! Actions are short straight-line programs over PHV fields and register
//! arrays, mirroring what a single RMT stage's VLIW action engine plus
//! stateful ALUs can do: move/arith on fields, one read-modify-write per
//! register array, and the two pipeline-control effects SpliDT relies on —
//! **resubmit** (the in-band control channel) and **digest** (verdict
//! export to the controller).

use crate::phv::FieldId;
use crate::register::{RegAluOp, RegId};
use serde::{Deserialize, Serialize};

/// An operand: a constant or a PHV field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// Immediate constant.
    Const(u64),
    /// Read a PHV field.
    Field(FieldId),
}

/// Which value a register RMW exports to the PHV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOut {
    /// The value before the update.
    Old,
    /// The value after the update.
    New,
}

/// Re-export of the register ALU op for action declarations.
pub type AluOp = RegAluOp;

/// What an [`Primitive::OwnerUpdate`] does to the slot's ownership lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OwnerMode {
    /// First-pass admission probe: classify the packet against the lane
    /// (owner / claim / takeover / live collision) and claim or refresh
    /// the lane accordingly. A mismatching *live* lane is left untouched.
    /// With `claim = false` (the protocol-aware policy's non-SYN entries)
    /// the probe never claims: a packet that would have admitted a flow
    /// is exported as [`SlotState::Unsolicited`] instead.
    Probe,
    /// Verdict pass: mark the lane decided (keeping the fingerprint) so
    /// trailing owner packets stay inert and any other flow may reclaim
    /// the slot immediately. The verdict class and the policy's pinned
    /// flag are written into the lane; with `release = true` (FIN/RST
    /// entries of the TCP-aware policy) an unpinned lane is freed
    /// outright instead of parked decided. No-op unless the fingerprint
    /// still matches.
    Decide,
}

/// Outcome of an ownership-lane probe, exported to a PHV metadata field.
/// The numeric codes are what match keys and the lifecycle table see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotState {
    /// Fingerprint matched a live lane — the packet belongs to the owner.
    Owner = 0,
    /// The lane was free; the flow claimed it (first-ever admission).
    ClaimFree = 1,
    /// The lane's owner idled past the timeout; the flow took the slot
    /// over and must reset the slot's flow state in-pass.
    TakeoverIdle = 2,
    /// The lane's owner already received a verdict; immediate takeover.
    TakeoverDecided = 3,
    /// The lane belongs to a *live* other flow: the packet must not touch
    /// shared state — it is counted and dispositioned, never merged.
    LiveCollision = 4,
    /// Fingerprint matched a decided lane — a trailing packet of a flow
    /// that already has its verdict; fully inert.
    OwnerDecided = 5,
    /// The lane was claimable (free, idle or decided) but the probe ran
    /// without claim permission: under the TCP-aware policy a non-SYN
    /// packet of an unknown flow — scan/backscatter traffic — is counted,
    /// never admitted.
    Unsolicited = 6,
    /// Decide pass on a FIN/RST verdict packet: the lane was released
    /// in-band (freed without waiting for the controller's digest drain).
    OwnerRelease = 7,
    /// A decided-but-**pinned** lane idled past `pinned_timeout_us` and
    /// was finally taken over.
    TakeoverPinned = 8,
    /// A decided-but-pinned lane inside its pinned timeout defended the
    /// slot: the colliding packet is suppressed like a live collision.
    PinnedDefended = 9,
}

impl SlotState {
    /// The numeric code carried in the PHV state field.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Bits needed by the PHV state field.
    pub const BITS: u8 = 4;
}

/// One action primitive.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Primitive {
    /// `dst = src` (masked to `dst` width).
    Set {
        /// Destination field.
        dst: FieldId,
        /// Source operand.
        src: Source,
    },
    /// `dst = a + b` (wrapping, masked to `dst` width).
    Add {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Source,
        /// Right operand.
        b: Source,
    },
    /// `dst = a - b` (wrapping, masked to `dst` width).
    Sub {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Source,
        /// Right operand.
        b: Source,
    },
    /// `dst = min(a, b)` (masked to `dst` width). Used to cap operands
    /// before they feed saturating feature registers.
    Min {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Source,
        /// Right operand.
        b: Source,
    },
    /// `dst = max(a, b)` (masked to `dst` width).
    Max {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Source,
        /// Right operand.
        b: Source,
    },
    /// `dst = a / divisor` (integer division by a compile-time constant).
    ///
    /// Hardware realizes small-constant division with a multiply-shift in
    /// the ALU or a compact lookup table; SpliDT needs exactly one of these
    /// — `window_len = flow_size / p` — per packet (see DESIGN.md).
    DivConst {
        /// Destination field.
        dst: FieldId,
        /// Dividend.
        a: Source,
        /// Compile-time divisor (> 0).
        divisor: u64,
    },
    /// CRC32 hash of the canonicalized 5-tuple into `dst`, masked by
    /// `mask` (a power-of-two-minus-one selecting the register index
    /// range). Canonicalization orders (src, dst) so both directions of a
    /// flow hash identically — the P4 original does the same with min/max
    /// comparisons before the hash extern. A nonzero `salt` selects a
    /// second, independently seeded hash engine (used for the
    /// ownership-lane fingerprint, which must not correlate with the
    /// register index).
    HashFlow {
        /// Destination field (flow index metadata).
        dst: FieldId,
        /// Index mask (`slots - 1`).
        mask: u64,
        /// Hash-engine seed; 0 = the canonical index hash.
        salt: u64,
    },
    /// One predicated read-modify-write on a slot's **ownership lane**
    /// (see [`crate::register::owner_lane`] for the cell layout): the
    /// dual-ALU compare-and-update shape Tofino SALUs provide and pForest
    /// leans on for register reuse. In [`OwnerMode::Probe`] the primitive
    /// compares `fp` against the stored fingerprint, checks idleness
    /// (`now − last_seen > idle_timeout_us`) and the decided flag, claims
    /// or refreshes the lane, and exports the resulting [`SlotState`]
    /// code; in [`OwnerMode::Decide`] it sets the decided flag if the
    /// fingerprint still matches.
    OwnerUpdate {
        /// The ownership-lane register array (64-bit cells).
        reg: RegId,
        /// Element index source (the flow-hash metadata field).
        index: Source,
        /// The packet's flow fingerprint (24 bits, nonzero).
        fp: Source,
        /// Current time (µs; truncated to 32 bits in the lane).
        now: Source,
        /// Idle threshold in µs beyond which a live owner is evictable.
        idle_timeout_us: u64,
        /// Idle threshold in µs beyond which even a **pinned** decided
        /// lane is evictable (≥ `idle_timeout_us`).
        pinned_timeout_us: u64,
        /// Probe (first pass) or Decide (verdict pass).
        mode: OwnerMode,
        /// Probe: whether this entry's packets may claim a claimable lane
        /// (free / idle / decided). The TCP-aware policy grants claim only
        /// to SYN entries; refused claims export
        /// [`SlotState::Unsolicited`].
        claim: bool,
        /// In-band FIN/RST release. On Decide: free the lane outright
        /// instead of parking it decided (ignored when `pin` is set —
        /// pinned verdicts always keep their lane). On Probe: an owner
        /// packet meeting its own unpinned *decided* lane frees it — the
        /// early-exit flow's trailing FIN. Exports
        /// [`SlotState::OwnerRelease`] either way.
        release: bool,
        /// Decide: mark the lane pinned (class-aware eviction resistance).
        pin: bool,
        /// Decide: the verdict class stored in the lane's class bits.
        class: Source,
        /// PHV field receiving the [`SlotState`] code.
        state_out: FieldId,
    },
    /// Read-modify-write on a register array element.
    RegRmw {
        /// Target register array.
        reg: RegId,
        /// Element index source (e.g. the flow-hash metadata field).
        index: Source,
        /// ALU operation.
        op: AluOp,
        /// ALU operand.
        operand: Source,
        /// Optionally export old/new value into a PHV field.
        out: Option<(FieldId, AluOut)>,
    },
    /// Mark the packet for resubmission (recirculation) after this pass.
    Resubmit,
    /// Emit a digest (the program's digest field set) to the controller.
    Digest,
    /// Drop the packet at the end of the pass.
    Drop,
}

impl Primitive {
    /// Shorthand: `dst = const`.
    pub fn set_const(dst: FieldId, v: u64) -> Self {
        Primitive::Set { dst, src: Source::Const(v) }
    }

    /// Shorthand: `dst = field`.
    pub fn set_field(dst: FieldId, src: FieldId) -> Self {
        Primitive::Set { dst, src: Source::Field(src) }
    }
}

/// A named action: a sequence of primitives executed on a hit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action {
    /// Name (for debugging and rule dumps).
    pub name: String,
    /// Primitives, executed in order.
    pub prims: Vec<Primitive>,
}

impl Action {
    /// An action with no primitives.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), prims: Vec::new() }
    }

    /// No-op action (the default for most tables).
    pub fn nop() -> Self {
        Self::new("nop")
    }

    /// Appends a primitive (builder style).
    pub fn with(mut self, p: Primitive) -> Self {
        self.prims.push(p);
        self
    }

    /// The register arrays this action touches.
    pub fn regs_touched(&self) -> Vec<RegId> {
        self.prims
            .iter()
            .filter_map(|p| match p {
                Primitive::RegRmw { reg, .. } | Primitive::OwnerUpdate { reg, .. } => Some(*reg),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::PhvLayout;

    #[test]
    fn builder_and_shorthands() {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 8);
        let b = l.add_field("b", 8);
        let act = Action::new("t")
            .with(Primitive::set_const(a, 5))
            .with(Primitive::set_field(b, a))
            .with(Primitive::Resubmit);
        assert_eq!(act.prims.len(), 3);
        assert_eq!(act.name, "t");
        assert!(act.regs_touched().is_empty());
    }

    #[test]
    fn regs_touched_lists_rmws() {
        let mut l = PhvLayout::new();
        let idx = l.add_field("idx", 16);
        let act = Action::new("r").with(Primitive::RegRmw {
            reg: RegId(3),
            index: Source::Field(idx),
            op: AluOp::Add,
            operand: Source::Const(1),
            out: None,
        });
        assert_eq!(act.regs_touched(), vec![RegId(3)]);
    }
}
