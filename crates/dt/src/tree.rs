//! Decision-tree representation and traversal.
//!
//! Trees are stored as flat node arenas. Split semantics follow CART (and the
//! SpliDT paper's TCAM encoding): a sample goes **left** when
//! `x[feature] <= threshold`, **right** otherwise. Leaves carry the majority
//! class, the training sample count, and a stable *leaf index* used by
//! SpliDT's Algorithm 1 to route samples to next-partition subtrees and by
//! the Range-Marking rule generator to emit one TCAM rule per leaf.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Index of a node within a [`Tree`]'s arena.
pub type NodeId = u32;

/// A single tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Internal split node: `x[feature] <= threshold` goes to `left`.
    Split {
        /// Feature (column) index tested by this node.
        feature: usize,
        /// Split threshold; `<=` goes left.
        threshold: f32,
        /// Left child (condition true).
        left: NodeId,
        /// Right child (condition false).
        right: NodeId,
    },
    /// Leaf node.
    Leaf {
        /// Majority class at this leaf.
        label: u16,
        /// Number of training samples that reached the leaf.
        n_samples: u32,
        /// Dense per-tree leaf index (`0..n_leaves`), assigned in
        /// construction order.
        leaf_index: u32,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
    n_leaves: u32,
    n_features: usize,
}

impl Tree {
    /// Creates a tree from a node arena. `root` must be a valid index and the
    /// arena must form a proper tree (checked with debug assertions by
    /// [`Tree::validate`]).
    pub fn from_arena(nodes: Vec<Node>, root: NodeId, n_features: usize) -> Self {
        let n_leaves = nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count() as u32;
        let t = Self { nodes, root, n_leaves, n_features };
        debug_assert!(t.validate().is_ok(), "invalid tree: {:?}", t.validate());
        t
    }

    /// A single-leaf tree that always predicts `label`.
    pub fn leaf(label: u16, n_samples: u32, n_features: usize) -> Self {
        Self {
            nodes: vec![Node::Leaf { label, n_samples, leaf_index: 0 }],
            root: 0,
            n_leaves: 1,
            n_features,
        }
    }

    /// Structural sanity check: indices in range, every leaf_index unique and
    /// dense, no node reachable twice.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.nodes.len()];
        let mut leaf_idx = BTreeSet::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let i = id as usize;
            if i >= self.nodes.len() {
                return Err(format!("node id {id} out of range"));
            }
            if seen[i] {
                return Err(format!("node {id} reachable twice"));
            }
            seen[i] = true;
            match &self.nodes[i] {
                Node::Split { left, right, feature, .. } => {
                    if *feature >= self.n_features {
                        return Err(format!("feature {feature} out of range"));
                    }
                    stack.push(*left);
                    stack.push(*right);
                }
                Node::Leaf { leaf_index, .. } => {
                    if !leaf_idx.insert(*leaf_index) {
                        return Err(format!("duplicate leaf_index {leaf_index}"));
                    }
                }
            }
        }
        if leaf_idx.len() as u32 != self.n_leaves {
            return Err("leaf count mismatch".into());
        }
        if let Some(&max) = leaf_idx.iter().next_back() {
            if max + 1 != self.n_leaves {
                return Err("leaf indices not dense".into());
            }
        }
        Ok(())
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// All nodes (arena order).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> u32 {
        self.n_leaves
    }

    /// Number of features of the training matrix (columns), not the number
    /// of *distinct* features used — see [`Tree::features_used`].
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Maximum root-to-leaf edge count. A single leaf has depth 0.
    pub fn depth(&self) -> usize {
        fn go(t: &Tree, id: NodeId) -> usize {
            match t.node(id) {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + go(t, *left).max(go(t, *right)),
            }
        }
        go(self, self.root)
    }

    /// The set of distinct features referenced by split nodes.
    pub fn features_used(&self) -> BTreeSet<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                Node::Leaf { .. } => None,
            })
            .collect()
    }

    /// Sorted distinct thresholds used for `feature`.
    pub fn thresholds_for(&self, feature: usize) -> Vec<f32> {
        let mut ts: Vec<f32> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature: f, threshold, .. } if *f == feature => Some(*threshold),
                _ => None,
            })
            .collect();
        ts.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
        ts.dedup();
        ts
    }

    /// Predicted class for a feature row.
    pub fn predict(&self, row: &[f32]) -> u16 {
        match self.node(self.leaf_of(row)) {
            Node::Leaf { label, .. } => *label,
            Node::Split { .. } => unreachable!("leaf_of returns a leaf"),
        }
    }

    /// The node id of the leaf a row lands in.
    pub fn leaf_of(&self, row: &[f32]) -> NodeId {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Leaf { .. } => return id,
                Node::Split { feature, threshold, left, right } => {
                    id = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// The dense leaf index (`0..n_leaves`) a row lands in.
    pub fn leaf_index_of(&self, row: &[f32]) -> u32 {
        match self.node(self.leaf_of(row)) {
            Node::Leaf { leaf_index, .. } => *leaf_index,
            Node::Split { .. } => unreachable!(),
        }
    }

    /// Iterates over `(leaf_index, label, n_samples, path)` for every leaf.
    ///
    /// `path` is the list of `(feature, threshold, went_left)` decisions from
    /// the root — exactly the predicate the Range-Marking encoder turns into
    /// a single TCAM rule.
    pub fn leaves(&self) -> Vec<LeafInfo> {
        let mut out = Vec::with_capacity(self.n_leaves as usize);
        let mut stack: Vec<(NodeId, Vec<PathStep>)> = vec![(self.root, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            match self.node(id) {
                Node::Leaf { label, n_samples, leaf_index } => out.push(LeafInfo {
                    leaf_index: *leaf_index,
                    node: id,
                    label: *label,
                    n_samples: *n_samples,
                    path,
                }),
                Node::Split { feature, threshold, left, right } => {
                    let mut lp = path.clone();
                    lp.push(PathStep { feature: *feature, threshold: *threshold, went_left: true });
                    let mut rp = path;
                    rp.push(PathStep {
                        feature: *feature,
                        threshold: *threshold,
                        went_left: false,
                    });
                    stack.push((*left, lp));
                    stack.push((*right, rp));
                }
            }
        }
        out.sort_by_key(|l| l.leaf_index);
        out
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// One root-to-leaf decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Feature tested.
    pub feature: usize,
    /// Threshold tested (`<=` goes left).
    pub threshold: f32,
    /// Whether the path took the left (`<=`) branch.
    pub went_left: bool,
}

/// A leaf together with its root-to-leaf predicate.
#[derive(Debug, Clone)]
pub struct LeafInfo {
    /// Dense per-tree leaf index.
    pub leaf_index: u32,
    /// Arena node id of the leaf.
    pub node: NodeId,
    /// Majority class at the leaf.
    pub label: u16,
    /// Training samples that reached the leaf.
    pub n_samples: u32,
    /// Root-to-leaf decisions.
    pub path: Vec<PathStep>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Depth-2 tree:  f0<=5 ? (f1<=2 ? L0:c0 : L1:c1) : L2:c2
    fn sample_tree() -> Tree {
        let nodes = vec![
            Node::Split { feature: 0, threshold: 5.0, left: 1, right: 4 },
            Node::Split { feature: 1, threshold: 2.0, left: 2, right: 3 },
            Node::Leaf { label: 0, n_samples: 3, leaf_index: 0 },
            Node::Leaf { label: 1, n_samples: 2, leaf_index: 1 },
            Node::Leaf { label: 2, n_samples: 5, leaf_index: 2 },
        ];
        Tree::from_arena(nodes, 0, 2)
    }

    #[test]
    fn predict_and_leaf_index() {
        let t = sample_tree();
        assert_eq!(t.predict(&[4.0, 1.0]), 0);
        assert_eq!(t.predict(&[4.0, 3.0]), 1);
        assert_eq!(t.predict(&[6.0, 0.0]), 2);
        // boundary: <= goes left
        assert_eq!(t.predict(&[5.0, 2.0]), 0);
        assert_eq!(t.leaf_index_of(&[6.0, 9.0]), 2);
    }

    #[test]
    fn shape_queries() {
        let t = sample_tree();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.features_used().into_iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(t.thresholds_for(0), vec![5.0]);
        assert_eq!(t.thresholds_for(1), vec![2.0]);
        assert!(t.thresholds_for(7).is_empty());
    }

    #[test]
    fn leaf_paths() {
        let t = sample_tree();
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 3);
        let l0 = &leaves[0];
        assert_eq!(l0.label, 0);
        assert_eq!(l0.path.len(), 2);
        assert!(l0.path[0].went_left && l0.path[1].went_left);
        let l2 = &leaves[2];
        assert_eq!(l2.path.len(), 1);
        assert!(!l2.path[0].went_left);
    }

    #[test]
    fn single_leaf_tree() {
        let t = Tree::leaf(7, 10, 4);
        assert_eq!(t.predict(&[0.0; 4]), 7);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.n_leaves(), 1);
        assert!(t.features_used().is_empty());
    }

    #[test]
    fn validate_catches_duplicate_leaf_index() {
        let nodes = vec![
            Node::Split { feature: 0, threshold: 1.0, left: 1, right: 2 },
            Node::Leaf { label: 0, n_samples: 1, leaf_index: 0 },
            Node::Leaf { label: 1, n_samples: 1, leaf_index: 0 },
        ];
        let t = Tree { nodes, root: 0, n_leaves: 2, n_features: 1 };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_out_of_range_feature() {
        let nodes = vec![
            Node::Split { feature: 5, threshold: 1.0, left: 1, right: 2 },
            Node::Leaf { label: 0, n_samples: 1, leaf_index: 0 },
            Node::Leaf { label: 1, n_samples: 1, leaf_index: 1 },
        ];
        let t = Tree { nodes, root: 0, n_leaves: 2, n_features: 1 };
        assert!(t.validate().is_err());
    }
}
