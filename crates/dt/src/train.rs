//! CART training (Gini impurity) with SpliDT's distinct-feature budget.
//!
//! Besides the standard `max_depth` / `min_samples` knobs, the trainer
//! supports two constraints central to the paper:
//!
//! * [`TrainParams::allowed_features`] — restrict splits to a feature subset
//!   (used by the top-k baselines, NetBeacon \[85\] and Leo \[43\]).
//! * [`TrainParams::feature_budget`] — a budget `k` on the number of
//!   **distinct** features the whole (sub)tree may reference. This is the
//!   feature-slot constraint of SpliDT §2.2: each subtree must fit in `k`
//!   stateful registers. The budget is enforced greedily during growth: once
//!   `k` distinct features are in use, further splits may only reuse them.
//!
//! Thresholds are chosen at midpoints between consecutive observed values.
//! With integer-valued features (all SpliDT features are), midpoints are
//! `x.5` values, so `v <= t` is equivalent to `v <= floor(t)` — which is how
//! the Range-Marking rule generator maps them onto integer TCAM ranges.

use crate::dataset::{Dataset, DatasetView};
use crate::tree::{Node, NodeId, Tree};
use std::collections::BTreeSet;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainParams {
    /// Maximum tree depth (root at depth 0). Depth 0 forces a single leaf.
    pub max_depth: usize,
    /// Do not split nodes with fewer samples than this.
    pub min_samples_split: usize,
    /// Every child must keep at least this many samples.
    pub min_samples_leaf: usize,
    /// Budget on distinct features used by the tree (SpliDT's `k`).
    pub feature_budget: Option<usize>,
    /// If set, only these features may be used at all.
    pub allowed_features: Option<Vec<usize>>,
    /// Cap on candidate thresholds per feature per node; `0` means exact
    /// search over all midpoints. Sub-sampling uses evenly spaced quantiles,
    /// which mirrors the bounded threshold precision of TCAM rules.
    pub max_thresholds_per_feature: usize,
    /// Cap on **distinct thresholds per feature across the whole tree**
    /// (`None` = unbounded). Range-Marking assigns one mark bit per
    /// distinct threshold, so this budget directly bounds TCAM match-key
    /// width; once a feature exhausts it, further splits on that feature
    /// must reuse existing thresholds (greedy, like the feature budget).
    pub threshold_budget_per_feature: Option<usize>,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            feature_budget: None,
            allowed_features: None,
            max_thresholds_per_feature: 64,
            threshold_budget_per_feature: Some(31),
        }
    }
}

/// Trains a classification tree on the full dataset.
pub fn train_classifier(data: &Dataset, params: &TrainParams) -> Tree {
    train_classifier_on(&data.view(), params)
}

/// Trains a classification tree on a dataset view (row subset).
pub fn train_classifier_on(view: &DatasetView<'_>, params: &TrainParams) -> Tree {
    assert!(!view.is_empty(), "cannot train on an empty view");
    let candidates: Vec<usize> = match &params.allowed_features {
        Some(fs) => {
            let mut fs = fs.clone();
            fs.sort_unstable();
            fs.dedup();
            assert!(fs.iter().all(|&f| f < view.n_features()), "allowed feature out of range");
            fs
        }
        None => (0..view.n_features()).collect(),
    };
    let mut b = Builder {
        n_classes: view.n_classes(),
        params,
        candidates,
        used: BTreeSet::new(),
        used_thresholds: std::collections::BTreeMap::new(),
        nodes: Vec::new(),
        n_leaves: 0,
    };
    let positions: Vec<usize> = (0..view.len()).collect();
    let root = b.grow(view, &positions, 0);
    Tree::from_arena(b.nodes, root, view.n_features())
}

struct Builder<'p> {
    n_classes: usize,
    params: &'p TrainParams,
    candidates: Vec<usize>,
    used: BTreeSet<usize>,
    /// Distinct thresholds committed per feature (bit patterns of f32, so
    /// the set is ordered and exact).
    used_thresholds: std::collections::BTreeMap<usize, BTreeSet<u32>>,
    nodes: Vec<Node>,
    n_leaves: u32,
}

/// Result of a split search.
#[derive(Debug, Clone, Copy)]
struct BestSplit {
    feature: usize,
    threshold: f32,
    /// Weighted Gini of the two children (lower is better).
    score: f64,
}

impl Builder<'_> {
    fn grow(&mut self, view: &DatasetView<'_>, positions: &[usize], depth: usize) -> NodeId {
        let counts = class_counts(view, positions, self.n_classes);
        let total: usize = positions.len();
        let majority = majority(&counts);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;

        if depth >= self.params.max_depth || total < self.params.min_samples_split || pure {
            return self.push_leaf(majority, total as u32);
        }

        let split = self.find_best_split(view, positions, &counts);
        let Some(split) = split else {
            return self.push_leaf(majority, total as u32);
        };

        let (left_pos, right_pos): (Vec<usize>, Vec<usize>) =
            positions.iter().partition(|&&p| view.row(p)[split.feature] <= split.threshold);
        if left_pos.len() < self.params.min_samples_leaf
            || right_pos.len() < self.params.min_samples_leaf
        {
            return self.push_leaf(majority, total as u32);
        }

        self.used.insert(split.feature);
        self.used_thresholds.entry(split.feature).or_default().insert(split.threshold.to_bits());
        let node_id = self.nodes.len() as NodeId;
        // Reserve the slot so children get consecutive ids after it.
        self.nodes.push(Node::Leaf { label: 0, n_samples: 0, leaf_index: u32::MAX });
        let left = self.grow(view, &left_pos, depth + 1);
        let right = self.grow(view, &right_pos, depth + 1);
        self.nodes[node_id as usize] =
            Node::Split { feature: split.feature, threshold: split.threshold, left, right };
        node_id
    }

    fn push_leaf(&mut self, label: u16, n_samples: u32) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node::Leaf { label, n_samples, leaf_index: self.n_leaves });
        self.n_leaves += 1;
        id
    }

    /// Features currently eligible under the distinct-feature budget.
    fn eligible(&self) -> Vec<usize> {
        match self.params.feature_budget {
            Some(k) if self.used.len() >= k => {
                self.candidates.iter().copied().filter(|f| self.used.contains(f)).collect()
            }
            _ => self.candidates.clone(),
        }
    }

    fn find_best_split(
        &self,
        view: &DatasetView<'_>,
        positions: &[usize],
        parent_counts: &[usize],
    ) -> Option<BestSplit> {
        let total = positions.len() as f64;
        let parent_gini = gini(parent_counts, positions.len());
        let mut best: Option<BestSplit> = None;

        for &feature in &self.eligible() {
            // Gather (value, label) pairs and sort by value.
            let mut pairs: Vec<(f32, u16)> =
                positions.iter().map(|&p| (view.row(p)[feature], view.label(p))).collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite feature values"));
            if pairs.first().map(|p| p.0) == pairs.last().map(|p| p.0) {
                continue; // constant feature on this node
            }

            // Candidate boundaries: positions i where value changes between
            // pairs[i-1] and pairs[i]; optionally sub-sampled to quantiles.
            let boundaries = candidate_boundaries(&pairs, self.params.max_thresholds_per_feature);

            let mut left_counts = vec![0usize; self.n_classes];
            let mut cursor = 0usize;
            for &b in &boundaries {
                while cursor < b {
                    left_counts[pairs[cursor].1 as usize] += 1;
                    cursor += 1;
                }
                let n_left = b;
                let n_right = pairs.len() - b;
                let mut right_counts = vec![0usize; self.n_classes];
                for c in 0..self.n_classes {
                    right_counts[c] = parent_counts[c] - left_counts[c];
                }
                let score = (n_left as f64 / total) * gini(&left_counts, n_left)
                    + (n_right as f64 / total) * gini(&right_counts, n_right);
                if score + 1e-12 >= parent_gini {
                    continue; // no impurity decrease
                }
                let threshold = midpoint(pairs[b - 1].0, pairs[b].0);
                if let Some(budget) = self.params.threshold_budget_per_feature {
                    let used = self.used_thresholds.get(&feature);
                    let n_used = used.map(|s| s.len()).unwrap_or(0);
                    let is_reuse = used.is_some_and(|s| s.contains(&threshold.to_bits()));
                    if n_used >= budget && !is_reuse {
                        continue;
                    }
                }
                let better = match &best {
                    None => true,
                    Some(cur) => {
                        score < cur.score - 1e-12
                            || (score < cur.score + 1e-12
                                && (feature, threshold) < (cur.feature, cur.threshold))
                    }
                };
                if better {
                    best = Some(BestSplit { feature, threshold, score });
                }
            }
        }
        best
    }
}

/// Candidate split boundaries: indices `b` such that the split is
/// `pairs[..b] | pairs[b..]`, restricted to value-change points and (when
/// `max > 0`) sub-sampled to at most `max` evenly spaced quantiles.
fn candidate_boundaries(pairs: &[(f32, u16)], max: usize) -> Vec<usize> {
    let mut change_points = Vec::new();
    for i in 1..pairs.len() {
        if pairs[i].0 > pairs[i - 1].0 {
            change_points.push(i);
        }
    }
    if max == 0 || change_points.len() <= max {
        return change_points;
    }
    // Evenly spaced quantile subsample, always keeping the extremes' nearest
    // change points so the full value range stays splittable.
    let mut out = Vec::with_capacity(max);
    for j in 0..max {
        let idx = j * (change_points.len() - 1) / (max - 1);
        out.push(change_points[idx]);
    }
    out.dedup();
    out
}

fn midpoint(lo: f32, hi: f32) -> f32 {
    let m = lo + (hi - lo) / 2.0;
    // Guard against midpoint rounding onto `hi` for adjacent f32 values:
    // `v <= m` must keep `lo` left and `hi` right.
    if m >= hi {
        lo
    } else {
        m
    }
}

fn class_counts(view: &DatasetView<'_>, positions: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &p in positions {
        counts[view.label(p) as usize] += 1;
    }
    counts
}

fn majority(counts: &[usize]) -> u16 {
    let mut best = 0usize;
    for (c, &n) in counts.iter().enumerate() {
        if n > counts[best] {
            best = c;
        }
    }
    best as u16
}

/// Gini impurity of a class histogram with `n` total samples.
fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn grid_dataset() -> Dataset {
        // 2-D grid, class = quadrant (4 classes), 100 points.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push(vec![i as f32, j as f32]);
                let c = (u16::from(i >= 5) << 1) | u16::from(j >= 5);
                labels.push(c);
            }
        }
        Dataset::from_rows(&rows, &labels, None).unwrap()
    }

    #[test]
    fn learns_quadrants_perfectly() {
        let ds = grid_dataset();
        let tree = train_classifier(&ds, &TrainParams { max_depth: 2, ..Default::default() });
        for i in 0..ds.n_samples() {
            assert_eq!(tree.predict(ds.row(i)), ds.label(i));
        }
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.n_leaves(), 4);
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let ds = grid_dataset();
        let tree = train_classifier(&ds, &TrainParams { max_depth: 0, ..Default::default() });
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn max_depth_is_respected() {
        let ds = grid_dataset();
        for d in 0..5 {
            let tree = train_classifier(&ds, &TrainParams { max_depth: d, ..Default::default() });
            assert!(tree.depth() <= d, "depth {} exceeds max {}", tree.depth(), d);
        }
    }

    #[test]
    fn feature_budget_limits_distinct_features() {
        // 3 informative features; budget of 1 must use exactly one.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let a = (i % 2) as f32;
            let b = ((i / 2) % 2) as f32;
            let c = ((i / 4) % 2) as f32;
            rows.push(vec![a, b, c]);
            labels.push(((a as u16) << 2 | (b as u16) << 1 | c as u16) % 4);
        }
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(
            &ds,
            &TrainParams { max_depth: 6, feature_budget: Some(1), ..Default::default() },
        );
        assert!(tree.features_used().len() <= 1);
        let tree2 = train_classifier(
            &ds,
            &TrainParams { max_depth: 6, feature_budget: Some(2), ..Default::default() },
        );
        assert!(tree2.features_used().len() <= 2);
    }

    #[test]
    fn allowed_features_is_respected() {
        let ds = grid_dataset();
        let tree = train_classifier(
            &ds,
            &TrainParams { max_depth: 4, allowed_features: Some(vec![1]), ..Default::default() },
        );
        assert!(tree.features_used().iter().all(|&f| f == 1));
    }

    #[test]
    fn min_samples_leaf_respected() {
        let ds = grid_dataset();
        let tree = train_classifier(
            &ds,
            &TrainParams { max_depth: 10, min_samples_leaf: 10, ..Default::default() },
        );
        for leaf in tree.leaves() {
            assert!(leaf.n_samples >= 10, "leaf with {} samples", leaf.n_samples);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let ds = grid_dataset();
        let p = TrainParams { max_depth: 5, ..Default::default() };
        let t1 = train_classifier(&ds, &p);
        let t2 = train_classifier(&ds, &p);
        assert_eq!(t1.nodes(), t2.nodes());
    }

    #[test]
    fn threshold_subsampling_still_learns() {
        let ds = grid_dataset();
        let tree = train_classifier(
            &ds,
            &TrainParams { max_depth: 2, max_thresholds_per_feature: 3, ..Default::default() },
        );
        // With only 3 candidate thresholds the tree may be slightly worse but
        // must still beat the 25% majority baseline by a wide margin.
        let correct =
            (0..ds.n_samples()).filter(|&i| tree.predict(ds.row(i)) == ds.label(i)).count();
        assert!(correct >= 75, "only {correct}/100 correct");
    }

    #[test]
    fn pure_node_stops_early() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![1, 1, 1, 1];
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(&ds, &TrainParams::default());
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[9.0]), 1);
    }

    #[test]
    fn gini_math() {
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert!((gini(&[10, 0], 10) - 0.0).abs() < 1e-12);
        assert!(gini(&[0, 0], 0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_never_reaches_hi() {
        let cases = [(0.0f32, 1.0f32), (1.0, 1.0f32.next_up()), (-3.0, (-3.0f32).next_up())];
        for (lo, hi) in cases {
            let m = midpoint(lo, hi);
            assert!(m >= lo && m < hi, "midpoint({lo},{hi}) = {m}");
        }
    }
}
