//! Streaming decision-tree training over per-feature fixed-width histograms.
//!
//! This is the SPDT construction ("Finding Decision Tree Splits in Streaming
//! Models"): instead of sorting the full sample matrix, every growing leaf
//! keeps one fixed-width histogram per candidate feature, updated in O(1)
//! per sample. [`StreamTree::best_split`] scans histogram bin boundaries the
//! way the batch trainer scans sorted value change-points, and a leaf splits
//! in place once enough evidence accumulates. [`StreamTree::grow`] snapshots
//! the result into the exact same [`Tree`] the batch trainer emits, so every
//! downstream consumer — the SpliDT partition compiler included — is reused
//! unchanged.
//!
//! Bin ranges are **frozen** after a warmup prefix of the stream: the first
//! [`StreamParams::warmup`] samples are buffered, their per-feature min/max
//! fixes `[lo, hi]` for the whole tree (children inherit the parent's
//! ranges), and the buffer is replayed into the root's histograms.
//! Out-of-range values observed later clamp to the edge bins. Thresholds are
//! placed *just below* a bin edge so `v <= t` routes exactly the samples the
//! left prefix of the histogram counted.
//!
//! The trainer honours the same SpliDT constraints as the batch path: a
//! distinct-feature budget `k` enforced greedily tree-wide, and an optional
//! allowed-feature set. Everything is deterministic — no sampling, no RNG —
//! so the same stream always yields the same tree.

use crate::tree::{Node, NodeId, Tree};
use std::collections::BTreeSet;

/// Hyper-parameters for streaming growth.
#[derive(Debug, Clone)]
pub struct StreamParams {
    /// Bins per feature histogram. More bins = finer thresholds, more memory.
    pub bins: usize,
    /// Maximum tree depth (root at depth 0). Depth 0 never splits.
    pub max_depth: usize,
    /// A leaf must hold at least this many samples before it may split.
    pub min_samples_split: usize,
    /// Both children of a split must keep at least this many samples.
    pub min_samples_leaf: usize,
    /// Budget on distinct features used by the whole tree (SpliDT's `k`),
    /// enforced greedily like the batch trainer.
    pub feature_budget: Option<usize>,
    /// If set, only these features may be used at all.
    pub allowed_features: Option<Vec<usize>>,
    /// Samples buffered before bin ranges freeze and growth starts.
    pub warmup: usize,
    /// A leaf re-attempts a split only every `split_period` fresh samples,
    /// amortizing the boundary scan over the stream.
    pub split_period: usize,
}

impl Default for StreamParams {
    fn default() -> Self {
        Self {
            bins: 32,
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            feature_budget: None,
            allowed_features: None,
            warmup: 64,
            split_period: 32,
        }
    }
}

/// A candidate split found by scanning histogram boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// Feature (column) index to test.
    pub feature: usize,
    /// Threshold; `<=` goes left, placed just below a bin edge.
    pub threshold: f32,
    /// Weighted Gini of the two children (lower is better).
    pub score: f64,
}

/// Per-feature fixed-width class histogram at one growing leaf.
#[derive(Debug, Clone)]
struct Hist {
    /// `bins * n_classes` counts, indexed `bin * n_classes + class`.
    counts: Vec<u32>,
}

impl Hist {
    fn new(bins: usize, n_classes: usize) -> Self {
        Self { counts: vec![0; bins * n_classes] }
    }
}

/// Bookkeeping for a leaf that is still growing.
#[derive(Debug, Clone)]
struct LeafStats {
    depth: usize,
    /// Label to emit if this leaf never sees a sample (inherited from the
    /// parent's majority on this side of the split).
    fallback: u16,
    n: u64,
    class_counts: Vec<u64>,
    /// One histogram per candidate feature (parallel to `candidates`).
    hists: Vec<Hist>,
    /// Fresh samples since the last split attempt.
    since_attempt: usize,
}

#[derive(Debug, Clone)]
enum SNode {
    Split { feature: usize, threshold: f32, left: NodeId, right: NodeId },
    Leaf(LeafStats),
}

/// An incrementally grown decision tree over histogram sketches.
#[derive(Debug, Clone)]
pub struct StreamTree {
    params: StreamParams,
    n_features: usize,
    n_classes: usize,
    /// Candidate features (allowed set, sorted, deduped).
    candidates: Vec<usize>,
    /// Distinct features committed so far (budget enforcement).
    used: BTreeSet<usize>,
    /// Frozen per-feature `(lo, bin_width)`; width 0 marks a feature that was
    /// constant during warmup (unsplittable — everything lands in bin 0).
    ranges: Vec<(f32, f32)>,
    /// Warmup buffer; `None` once ranges are frozen.
    buffer: Option<Vec<(Vec<f32>, u16)>>,
    nodes: Vec<SNode>,
    n_observed: u64,
}

impl StreamTree {
    /// Creates an empty tree for `n_features`-wide rows and `n_classes`
    /// labels.
    pub fn new(n_features: usize, n_classes: usize, params: StreamParams) -> Self {
        assert!(n_features > 0, "need at least one feature");
        assert!(n_classes > 0, "need at least one class");
        assert!(params.bins >= 2, "need at least two bins");
        let candidates: Vec<usize> = match &params.allowed_features {
            Some(fs) => {
                let mut fs = fs.clone();
                fs.sort_unstable();
                fs.dedup();
                assert!(fs.iter().all(|&f| f < n_features), "allowed feature out of range");
                fs
            }
            None => (0..n_features).collect(),
        };
        Self {
            params,
            n_features,
            n_classes,
            candidates,
            used: BTreeSet::new(),
            ranges: Vec::new(),
            buffer: Some(Vec::new()),
            nodes: Vec::new(),
            n_observed: 0,
        }
    }

    /// Total samples observed (warmup buffer included).
    pub fn n_observed(&self) -> u64 {
        self.n_observed
    }

    /// Current number of leaves (1 while still in warmup).
    pub fn n_leaves(&self) -> usize {
        if self.nodes.is_empty() {
            1
        } else {
            self.nodes.iter().filter(|n| matches!(n, SNode::Leaf(_))).count()
        }
    }

    /// Feeds one labeled sample. O(depth + n_candidates) after warmup.
    pub fn update(&mut self, row: &[f32], label: u16) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert!((label as usize) < self.n_classes, "label out of range");
        self.n_observed += 1;
        if let Some(buf) = &mut self.buffer {
            buf.push((row.to_vec(), label));
            if buf.len() >= self.params.warmup {
                self.freeze_and_replay();
            }
            return;
        }
        self.observe_routed(row, label);
    }

    /// Scans the histogram bin boundaries of leaf `id` for the best Gini
    /// split, honouring the feature budget and `min_samples_leaf`. Returns
    /// `None` for split nodes, under-populated leaves, or when no boundary
    /// improves on the parent impurity.
    pub fn best_split(&self, id: NodeId) -> Option<SplitCandidate> {
        let SNode::Leaf(stats) = self.nodes.get(id as usize)? else {
            return None;
        };
        if stats.n < self.params.min_samples_split as u64 {
            return None;
        }
        let parent_gini = gini(&stats.class_counts, stats.n);
        let total = stats.n as f64;
        let mut best: Option<(SplitCandidate, usize)> = None;
        for (ci, &feature) in self.candidates.iter().enumerate() {
            if !self.feature_eligible(feature) {
                continue;
            }
            let (lo, width) = self.ranges[feature];
            if width <= 0.0 {
                continue;
            }
            let hist = &stats.hists[ci];
            let mut left = vec![0u64; self.n_classes];
            let mut n_left = 0u64;
            for b in 1..self.params.bins {
                let base = (b - 1) * self.n_classes;
                for (c, l) in left.iter_mut().enumerate() {
                    let v = u64::from(hist.counts[base + c]);
                    *l += v;
                    n_left += v;
                }
                let n_right = stats.n - n_left;
                if n_left < self.params.min_samples_leaf as u64
                    || n_right < self.params.min_samples_leaf as u64
                {
                    continue;
                }
                let mut right = vec![0u64; self.n_classes];
                for c in 0..self.n_classes {
                    right[c] = stats.class_counts[c] - left[c];
                }
                let score = (n_left as f64 / total) * gini(&left, n_left)
                    + (n_right as f64 / total) * gini(&right, n_right);
                if score + 1e-12 >= parent_gini {
                    continue;
                }
                // Threshold just below the bin edge: `v <= t` captures
                // exactly the samples binned strictly left of boundary `b`.
                let threshold = (lo + b as f32 * width).next_down();
                let better = match &best {
                    None => true,
                    Some((cur, cur_b)) => {
                        score < cur.score - 1e-12
                            || (score < cur.score + 1e-12 && (feature, b) < (cur.feature, *cur_b))
                    }
                };
                if better {
                    best = Some((SplitCandidate { feature, threshold, score }, b));
                }
            }
        }
        best.map(|(c, _)| c)
    }

    /// Snapshots the current sketch into the batch [`Tree`] type. Leaves
    /// that saw samples predict their majority class; empty leaves fall back
    /// to the label inherited from their parent. Flushes a partial warmup
    /// buffer first, so short streams still produce their majority vote.
    pub fn grow(&mut self) -> Tree {
        if self.buffer.as_ref().is_some_and(|b| !b.is_empty()) {
            self.freeze_and_replay();
        }
        if self.nodes.is_empty() {
            return Tree::leaf(0, 0, self.n_features);
        }
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut leaf_index = 0u32;
        for node in &self.nodes {
            out.push(match node {
                SNode::Split { feature, threshold, left, right } => Node::Split {
                    feature: *feature,
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                },
                SNode::Leaf(stats) => {
                    let label =
                        if stats.n > 0 { majority(&stats.class_counts) } else { stats.fallback };
                    let idx = leaf_index;
                    leaf_index += 1;
                    Node::Leaf {
                        label,
                        n_samples: stats.n.min(u64::from(u32::MAX)) as u32,
                        leaf_index: idx,
                    }
                }
            });
        }
        Tree::from_arena(out, 0, self.n_features)
    }

    /// Discards all observations and histograms, returning to the warmup
    /// state with the same parameters (used when the label distribution is
    /// known to have shifted and old evidence would poison the retrain).
    pub fn reset(&mut self) {
        self.used.clear();
        self.ranges.clear();
        self.buffer = Some(Vec::new());
        self.nodes.clear();
        self.n_observed = 0;
    }

    fn feature_eligible(&self, feature: usize) -> bool {
        match self.params.feature_budget {
            Some(k) if self.used.len() >= k => self.used.contains(&feature),
            _ => true,
        }
    }

    /// Freezes bin ranges from the buffered prefix and replays it.
    fn freeze_and_replay(&mut self) {
        let buf = self.buffer.take().expect("warmup buffer present");
        let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); self.n_features];
        for (row, _) in &buf {
            for (f, &v) in row.iter().enumerate() {
                let r = &mut ranges[f];
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
        }
        self.ranges = ranges
            .into_iter()
            .map(|(lo, hi)| {
                if hi > lo {
                    (lo, (hi - lo) / self.params.bins as f32)
                } else {
                    (if lo.is_finite() { lo } else { 0.0 }, 0.0)
                }
            })
            .collect();
        self.nodes.push(SNode::Leaf(self.new_leaf(0, 0)));
        for (row, label) in buf {
            self.observe_routed(&row, label);
        }
    }

    fn new_leaf(&self, depth: usize, fallback: u16) -> LeafStats {
        LeafStats {
            depth,
            fallback,
            n: 0,
            class_counts: vec![0; self.n_classes],
            hists: self
                .candidates
                .iter()
                .map(|_| Hist::new(self.params.bins, self.n_classes))
                .collect(),
            since_attempt: 0,
        }
    }

    fn bin_of(&self, feature: usize, v: f32) -> usize {
        let (lo, width) = self.ranges[feature];
        if width <= 0.0 {
            return 0;
        }
        let b = ((v - lo) / width) as isize;
        b.clamp(0, self.params.bins as isize - 1) as usize
    }

    /// Routes a post-warmup sample to its leaf, updates the histograms, and
    /// attempts a split when the leaf is due.
    fn observe_routed(&mut self, row: &[f32], label: u16) {
        let mut id = 0usize;
        while let SNode::Split { feature, threshold, left, right } = &self.nodes[id] {
            id = if row[*feature] <= *threshold { *left as usize } else { *right as usize };
        }
        let bins: Vec<usize> = self.candidates.iter().map(|&f| self.bin_of(f, row[f])).collect();
        let n_classes = self.n_classes;
        let (due, depth_ok) = {
            let SNode::Leaf(stats) = &mut self.nodes[id] else { unreachable!() };
            stats.n += 1;
            stats.class_counts[label as usize] += 1;
            for (ci, &bin) in bins.iter().enumerate() {
                stats.hists[ci].counts[bin * n_classes + label as usize] += 1;
            }
            stats.since_attempt += 1;
            (
                stats.since_attempt >= self.params.split_period
                    && stats.n >= self.params.min_samples_split as u64,
                stats.depth < self.params.max_depth,
            )
        };
        if due {
            let SNode::Leaf(stats) = &mut self.nodes[id] else { unreachable!() };
            stats.since_attempt = 0;
            if depth_ok {
                self.try_split(id as NodeId);
            }
        }
    }

    /// Splits leaf `id` in place if [`Self::best_split`] finds a winner. The
    /// children start with empty histograms: evidence restarts below the
    /// split, which is what keeps per-leaf memory bounded in SPDT.
    fn try_split(&mut self, id: NodeId) {
        let Some(cand) = self.best_split(id) else {
            return;
        };
        let SNode::Leaf(stats) = &self.nodes[id as usize] else {
            return;
        };
        let depth = stats.depth;
        // Child fallbacks: the majority on each side of the split according
        // to the parent's histogram for the chosen feature.
        let ci = self.candidates.iter().position(|&f| f == cand.feature).expect("candidate");
        let boundary = self.bin_of(cand.feature, cand.threshold) + 1;
        let hist = &stats.hists[ci];
        let mut left_counts = vec![0u64; self.n_classes];
        for b in 0..boundary {
            for (c, lc) in left_counts.iter_mut().enumerate() {
                *lc += u64::from(hist.counts[b * self.n_classes + c]);
            }
        }
        let right_counts: Vec<u64> =
            stats.class_counts.iter().zip(&left_counts).map(|(&t, &l)| t - l).collect();
        let left_fb = majority(&left_counts);
        let right_fb = majority(&right_counts);

        self.used.insert(cand.feature);
        let left = self.nodes.len() as NodeId;
        let right = left + 1;
        self.nodes.push(SNode::Leaf(self.new_leaf(depth + 1, left_fb)));
        self.nodes.push(SNode::Leaf(self.new_leaf(depth + 1, right_fb)));
        self.nodes[id as usize] =
            SNode::Split { feature: cand.feature, threshold: cand.threshold, left, right };
    }
}

fn majority(counts: &[u64]) -> u16 {
    let mut best = 0usize;
    for (c, &n) in counts.iter().enumerate() {
        if n > counts[best] {
            best = c;
        }
    }
    best as u16
}

/// Gini impurity of a class histogram with `n` total samples.
fn gini(counts: &[u64], n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Streams the 10x10 quadrant grid (class = quadrant) `epochs` times in
    /// a fixed interleaved order.
    fn stream_grid(tree: &mut StreamTree, epochs: usize) {
        for e in 0..epochs {
            for s in 0..100usize {
                // Stride by a unit coprime to 100 so each epoch interleaves
                // classes instead of streaming them in blocks.
                let i = (s * 37 + e * 13) % 100;
                let (x, y) = ((i / 10) as f32, (i % 10) as f32);
                let label = (u16::from(x >= 5.0) << 1) | u16::from(y >= 5.0);
                tree.update(&[x, y], label);
            }
        }
    }

    fn grid_params() -> StreamParams {
        StreamParams {
            bins: 16,
            max_depth: 4,
            warmup: 50,
            split_period: 16,
            ..StreamParams::default()
        }
    }

    #[test]
    fn learns_quadrants_from_stream() {
        let mut st = StreamTree::new(2, 4, grid_params());
        stream_grid(&mut st, 4);
        let tree = st.grow();
        let mut correct = 0;
        for i in 0..100usize {
            let (x, y) = ((i / 10) as f32, (i % 10) as f32);
            let label = (u16::from(x >= 5.0) << 1) | u16::from(y >= 5.0);
            if tree.predict(&[x, y]) == label {
                correct += 1;
            }
        }
        assert!(correct >= 95, "only {correct}/100 correct");
        assert!(tree.depth() <= 4);
    }

    #[test]
    fn max_depth_is_respected() {
        for d in 0..4 {
            let mut st = StreamTree::new(2, 4, StreamParams { max_depth: d, ..grid_params() });
            stream_grid(&mut st, 3);
            let tree = st.grow();
            assert!(tree.depth() <= d, "depth {} exceeds max {}", tree.depth(), d);
        }
    }

    #[test]
    fn feature_budget_limits_distinct_features() {
        let mut st =
            StreamTree::new(2, 4, StreamParams { feature_budget: Some(1), ..grid_params() });
        stream_grid(&mut st, 4);
        let tree = st.grow();
        assert!(tree.features_used().len() <= 1, "used {:?}", tree.features_used());
    }

    #[test]
    fn allowed_features_is_respected() {
        let mut st = StreamTree::new(
            2,
            4,
            StreamParams { allowed_features: Some(vec![1]), ..grid_params() },
        );
        stream_grid(&mut st, 4);
        let tree = st.grow();
        assert!(tree.features_used().iter().all(|&f| f == 1));
    }

    #[test]
    fn deterministic_given_same_stream() {
        let mut a = StreamTree::new(2, 4, grid_params());
        let mut b = StreamTree::new(2, 4, grid_params());
        stream_grid(&mut a, 3);
        stream_grid(&mut b, 3);
        assert_eq!(a.grow().nodes(), b.grow().nodes());
    }

    #[test]
    fn empty_stream_grows_single_leaf() {
        let mut st = StreamTree::new(3, 2, StreamParams::default());
        let tree = st.grow();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn short_stream_flushes_warmup_buffer() {
        // Fewer samples than warmup: grow() must still vote the majority.
        let mut st = StreamTree::new(1, 2, StreamParams { warmup: 1000, ..Default::default() });
        for _ in 0..10 {
            st.update(&[1.0], 1);
        }
        st.update(&[0.0], 0);
        let tree = st.grow();
        assert_eq!(tree.predict(&[0.5]), 1);
        assert_eq!(st.n_observed(), 11);
    }

    #[test]
    fn best_split_exposes_root_candidate() {
        let mut st = StreamTree::new(2, 4, grid_params());
        stream_grid(&mut st, 1);
        // Root may already have split; find any growing leaf and check the
        // API contract on a split node (None) and valid bounds on leaves.
        let cand = st.best_split(0);
        if let Some(c) = cand {
            assert!(c.feature < 2);
            assert!(c.score >= 0.0 && c.score < 1.0);
        }
        assert!(st.best_split(9999).is_none());
    }

    #[test]
    fn reset_returns_to_fresh_state() {
        let mut st = StreamTree::new(2, 4, grid_params());
        stream_grid(&mut st, 2);
        st.reset();
        assert_eq!(st.n_observed(), 0);
        assert_eq!(st.n_leaves(), 1);
        let mut fresh = StreamTree::new(2, 4, grid_params());
        stream_grid(&mut st, 2);
        stream_grid(&mut fresh, 2);
        assert_eq!(st.grow().nodes(), fresh.grow().nodes());
    }

    #[test]
    fn constant_feature_never_splits() {
        let mut st = StreamTree::new(2, 2, StreamParams { warmup: 8, ..Default::default() });
        for i in 0..200 {
            // Feature 0 constant, feature 1 informative.
            st.update(&[3.0, (i % 10) as f32], u16::from(i % 10 >= 5));
        }
        let tree = st.grow();
        assert!(tree.features_used().iter().all(|&f| f == 1));
        assert!(tree.predict(&[3.0, 9.0]) == 1 && tree.predict(&[3.0, 0.0]) == 0);
    }

    #[test]
    fn thresholds_route_consistently_with_bins() {
        // A threshold emitted at bin boundary b must send exactly the values
        // binned below b to the left.
        let mut st = StreamTree::new(
            1,
            2,
            StreamParams { bins: 8, warmup: 16, split_period: 8, ..Default::default() },
        );
        for i in 0..160 {
            let v = (i % 16) as f32;
            st.update(&[v], u16::from(v >= 8.0));
        }
        let tree = st.grow();
        for v in 0..16 {
            assert_eq!(tree.predict(&[v as f32]), u16::from(v >= 8), "v={v}");
        }
    }
}
