//! Evaluation metrics: confusion matrix, accuracy and macro-F1.
//!
//! The SpliDT paper reports **macro-averaged F1** throughout (Figures 2 and
//! 6–9, Table 3); classes absent from the ground truth are excluded from the
//! average, matching scikit-learn's `f1_score(average="macro")` behaviour on
//! the label set actually present.

/// A `n_classes × n_classes` confusion matrix; rows = truth, cols = predicted.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    n_classes: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel truth/prediction slices.
    pub fn new(truth: &[u16], pred: &[u16], n_classes: usize) -> Self {
        assert_eq!(truth.len(), pred.len(), "truth/pred length mismatch");
        let mut counts = vec![0usize; n_classes * n_classes];
        for (&t, &p) in truth.iter().zip(pred) {
            assert!((t as usize) < n_classes && (p as usize) < n_classes, "label out of range");
            counts[t as usize * n_classes + p as usize] += 1;
        }
        Self { counts, n_classes }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count of samples with truth `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.n_classes + p]
    }

    /// True positives for class `c`.
    pub fn tp(&self, c: usize) -> usize {
        self.count(c, c)
    }

    /// False positives for class `c` (predicted `c`, truth differs).
    pub fn fp(&self, c: usize) -> usize {
        (0..self.n_classes).filter(|&t| t != c).map(|t| self.count(t, c)).sum()
    }

    /// False negatives for class `c` (truth `c`, predicted differently).
    pub fn fn_(&self, c: usize) -> usize {
        (0..self.n_classes).filter(|&p| p != c).map(|p| self.count(c, p)).sum()
    }

    /// Samples whose true class is `c`.
    pub fn support(&self, c: usize) -> usize {
        (0..self.n_classes).map(|p| self.count(c, p)).sum()
    }

    /// Precision of class `c` (0 when nothing was predicted as `c`).
    pub fn precision(&self, c: usize) -> f64 {
        let tp = self.tp(c);
        let denom = tp + self.fp(c);
        if denom == 0 {
            0.0
        } else {
            tp as f64 / denom as f64
        }
    }

    /// Recall of class `c` (0 when the class has no support).
    pub fn recall(&self, c: usize) -> f64 {
        let tp = self.tp(c);
        let denom = tp + self.fn_(c);
        if denom == 0 {
            0.0
        } else {
            tp as f64 / denom as f64
        }
    }

    /// Per-class F1 (harmonic mean of precision and recall; 0 when both are 0).
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-F1 over classes **present in the ground truth**.
    pub fn macro_f1(&self) -> f64 {
        let present: Vec<usize> = (0..self.n_classes).filter(|&c| self.support(c) > 0).collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.f1(c)).sum::<f64>() / present.len() as f64
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n_classes).map(|c| self.tp(c)).sum();
        correct as f64 / total as f64
    }
}

/// Convenience: macro-F1 from raw slices.
pub fn macro_f1(truth: &[u16], pred: &[u16], n_classes: usize) -> f64 {
    ConfusionMatrix::new(truth, pred, n_classes).macro_f1()
}

/// Convenience: accuracy from raw slices.
pub fn accuracy(truth: &[u16], pred: &[u16], n_classes: usize) -> f64 {
    ConfusionMatrix::new(truth, pred, n_classes).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = vec![0, 1, 2, 1, 0];
        let cm = ConfusionMatrix::new(&y, &y, 3);
        assert!((cm.macro_f1() - 1.0).abs() < 1e-12);
        assert!((cm.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_wrong() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![1, 1, 0, 0];
        let cm = ConfusionMatrix::new(&truth, &pred, 2);
        assert_eq!(cm.macro_f1(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn known_values() {
        // truth: [0,0,0,1,1], pred: [0,0,1,1,0]
        // class0: tp=2 fp=1 fn=1 -> p=2/3 r=2/3 f1=2/3
        // class1: tp=1 fp=1 fn=1 -> p=1/2 r=1/2 f1=1/2
        let truth = vec![0, 0, 0, 1, 1];
        let pred = vec![0, 0, 1, 1, 0];
        let cm = ConfusionMatrix::new(&truth, &pred, 2);
        assert!((cm.f1(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(1) - 0.5).abs() < 1e-12);
        assert!((cm.macro_f1() - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn absent_class_excluded_from_macro() {
        // Class 2 never occurs in truth; macro-F1 averages classes 0 and 1.
        let truth = vec![0, 1];
        let pred = vec![0, 1];
        let cm = ConfusionMatrix::new(&truth, &pred, 3);
        assert!((cm.macro_f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_predicted_counts_as_fp() {
        // Truth has classes {0,1}; a prediction of 2 hurts class 1 recall.
        let truth = vec![0, 1, 1];
        let pred = vec![0, 2, 1];
        let cm = ConfusionMatrix::new(&truth, &pred, 3);
        // class0: perfect. class1: tp=1, fn=1 -> r=0.5, p=1 -> f1=2/3.
        assert!((cm.macro_f1() - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn counts_and_support() {
        let truth = vec![0, 0, 1];
        let pred = vec![1, 0, 1];
        let cm = ConfusionMatrix::new(&truth, &pred, 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.support(0), 2);
        assert_eq!(cm.tp(1), 1);
        assert_eq!(cm.fp(1), 1);
        assert_eq!(cm.fn_(0), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ConfusionMatrix::new(&[0], &[0, 1], 2);
    }

    #[test]
    fn empty_is_zero() {
        let cm = ConfusionMatrix::new(&[], &[], 2);
        assert_eq!(cm.macro_f1(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }
}
