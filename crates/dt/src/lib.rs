//! # splidt-dt — decision trees for SpliDT
//!
//! A from-scratch decision-tree library tailored to the needs of
//! [SpliDT (SIGCOMM 2025)](https://arxiv.org/abs/2509.00397):
//!
//! * **CART classification trees** (Gini impurity) with the two constraints
//!   SpliDT's training relies on: a maximum depth *and* a budget on the number
//!   of **distinct features** a (sub)tree may reference (the `k` feature-slot
//!   constraint of the paper's §2.2).
//! * **Regression trees** (variance reduction) and **bagged random forests**
//!   with predictive variance, used as the Bayesian-optimization surrogate in
//!   `splidt-search`.
//! * **Impurity-based feature importance**, used to derive the `top-k` feature
//!   sets of the NetBeacon and Leo baselines.
//! * **Evaluation metrics** (macro-F1 — the paper's headline metric —
//!   accuracy, confusion matrices).
//!
//! The library is deliberately free of external ML dependencies: every
//! algorithm is implemented here so the whole SpliDT reproduction is
//! self-contained.
//!
//! ## Quick example
//!
//! ```
//! use splidt_dt::{Dataset, TrainParams, train_classifier, metrics::macro_f1};
//!
//! // Tiny AND-ish dataset: class = (x0 > 0.5) & (x1 > 0.5)
//! let rows = vec![
//!     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
//! ];
//! let labels = vec![0, 0, 0, 1];
//! let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
//! let tree = train_classifier(&ds, &TrainParams { max_depth: 2, ..TrainParams::default() });
//! let preds: Vec<u16> = rows.iter().map(|r| tree.predict(r)).collect();
//! assert_eq!(preds, labels);
//! assert!((macro_f1(&labels, &preds, 2) - 1.0).abs() < 1e-9);
//! ```

pub mod dataset;
pub mod forest;
pub mod importance;
pub mod metrics;
pub mod regress;
pub mod stream;
pub mod train;
pub mod tree;

pub use dataset::{Dataset, DatasetView};
pub use forest::{ForestClassifier, ForestParams, ForestRegressor};
pub use importance::{feature_importance, top_k_features};
pub use regress::{train_regressor, RegressionTree};
pub use stream::{SplitCandidate, StreamParams, StreamTree};
pub use train::{train_classifier, train_classifier_on, TrainParams};
pub use tree::{Node, NodeId, Tree};
