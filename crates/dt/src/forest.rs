//! Bagged random forests: a classifier (used by ablations) and a regressor
//! with predictive mean/variance (the Bayesian-optimization surrogate in
//! `splidt-search`, mirroring HyperMapper's random-forest surrogate).

use crate::dataset::Dataset;
use crate::regress::{train_regressor, RegressParams, RegressionTree};
use crate::train::{train_classifier_on, TrainParams};
use crate::tree::Tree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Number of features sampled per tree; `0` = `ceil(sqrt(n_features))`.
    pub features_per_tree: usize,
    /// Bootstrap sample size as a fraction of the training set.
    pub sample_frac: f64,
    /// RNG seed (forests are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self { n_trees: 32, max_depth: 10, features_per_tree: 0, sample_frac: 1.0, seed: 0 }
    }
}

fn features_for_tree(rng: &mut SmallRng, n_features: usize, per_tree: usize) -> Vec<usize> {
    let m = if per_tree == 0 {
        (n_features as f64).sqrt().ceil() as usize
    } else {
        per_tree.min(n_features)
    };
    // Partial Fisher–Yates over feature indices.
    let mut idx: Vec<usize> = (0..n_features).collect();
    for i in 0..m {
        let j = rng.random_range(i..n_features);
        idx.swap(i, j);
    }
    idx.truncate(m);
    idx.sort_unstable();
    idx
}

fn bootstrap(rng: &mut SmallRng, n: usize, frac: f64) -> Vec<usize> {
    let m = ((n as f64) * frac).round().max(1.0) as usize;
    (0..m).map(|_| rng.random_range(0..n)).collect()
}

/// A bagged classification forest (majority vote).
#[derive(Debug, Clone)]
pub struct ForestClassifier {
    trees: Vec<Tree>,
    n_classes: usize,
}

impl ForestClassifier {
    /// Trains a forest on the dataset.
    pub fn train(data: &Dataset, params: &ForestParams) -> Self {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let feats = features_for_tree(&mut rng, data.n_features(), params.features_per_tree);
            let samples = bootstrap(&mut rng, data.n_samples(), params.sample_frac);
            let view = data.view_of(samples);
            let tp = TrainParams {
                max_depth: params.max_depth,
                allowed_features: Some(feats),
                ..TrainParams::default()
            };
            trees.push(train_classifier_on(&view, &tp));
        }
        Self { trees, n_classes: data.n_classes() }
    }

    /// Majority-vote prediction.
    pub fn predict(&self, row: &[f32]) -> u16 {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(row) as usize] += 1;
        }
        let mut best = 0usize;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best as u16
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// A bagged regression forest with predictive mean and variance.
#[derive(Debug, Clone)]
pub struct ForestRegressor {
    trees: Vec<RegressionTree>,
}

impl ForestRegressor {
    /// Trains a regression forest on row-major `x` with targets `y`.
    pub fn train(x: &[f64], n_features: usize, y: &[f64], params: &ForestParams) -> Self {
        assert_eq!(x.len(), n_features * y.len(), "x/y shape mismatch");
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let n = y.len();
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let feats = features_for_tree(&mut rng, n_features, params.features_per_tree);
            let samples = bootstrap(&mut rng, n, params.sample_frac);
            let mut bx = Vec::with_capacity(samples.len() * n_features);
            let mut by = Vec::with_capacity(samples.len());
            for &s in &samples {
                bx.extend_from_slice(&x[s * n_features..(s + 1) * n_features]);
                by.push(y[s]);
            }
            let rp = RegressParams {
                max_depth: params.max_depth,
                allowed_features: Some(feats),
                ..RegressParams::default()
            };
            trees.push(train_regressor(&bx, n_features, &by, &rp));
        }
        Self { trees }
    }

    /// Predictive mean and variance across trees (the epistemic-uncertainty
    /// proxy used by the expected-improvement acquisition).
    pub fn predict(&self, row: &[f64]) -> (f64, f64) {
        let n = self.trees.len() as f64;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for t in &self.trees {
            let p = t.predict(row);
            sum += p;
            sq += p * p;
        }
        let mean = sum / n;
        let var = (sq / n - mean * mean).max(0.0);
        (mean, var)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn noisy_grid(seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..400 {
            let a: f32 = rng.random_range(0.0..10.0);
            let b: f32 = rng.random_range(0.0..10.0);
            let noise: f32 = rng.random_range(0.0..10.0);
            rows.push(vec![a, b, noise]);
            labels.push((u16::from(a >= 5.0) << 1) | u16::from(b >= 5.0));
        }
        Dataset::from_rows(&rows, &labels, None).unwrap()
    }

    #[test]
    fn classifier_beats_chance() {
        let ds = noisy_grid(1);
        let f = ForestClassifier::train(&ds, &ForestParams { n_trees: 16, ..Default::default() });
        let correct = (0..ds.n_samples()).filter(|&i| f.predict(ds.row(i)) == ds.label(i)).count();
        assert!(correct as f64 / ds.n_samples() as f64 > 0.9, "{correct}/400");
        assert_eq!(f.n_trees(), 16);
    }

    #[test]
    fn classifier_deterministic_given_seed() {
        let ds = noisy_grid(2);
        let p = ForestParams { n_trees: 8, seed: 7, ..Default::default() };
        let f1 = ForestClassifier::train(&ds, &p);
        let f2 = ForestClassifier::train(&ds, &p);
        for i in 0..ds.n_samples() {
            assert_eq!(f1.predict(ds.row(i)), f2.predict(ds.row(i)));
        }
    }

    #[test]
    fn regressor_mean_tracks_target() {
        // y = 3*x0, one feature
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let f = ForestRegressor::train(
            &x,
            1,
            &y,
            &ForestParams { n_trees: 24, max_depth: 8, ..Default::default() },
        );
        let (mean, _var) = f.predict(&[5.0]);
        assert!((mean - 15.0).abs() < 1.5, "mean = {mean}");
    }

    #[test]
    fn regressor_variance_higher_off_manifold() {
        // Train only on x in [0,10]; uncertainty at x=50 should exceed x=5.
        let x: Vec<f64> = (0..200).map(|i| (i % 100) as f64 / 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| (v * 1.7).sin() * 5.0).collect();
        let f = ForestRegressor::train(
            &x,
            1,
            &y,
            &ForestParams { n_trees: 32, max_depth: 6, sample_frac: 0.5, ..Default::default() },
        );
        let (_m_in, v_in) = f.predict(&[5.0]);
        // Off-manifold input: all trees extrapolate with their last leaf, so
        // the spread mostly reflects bootstrap diversity. We only require
        // non-negative variance and a finite mean here.
        let (m_out, v_out) = f.predict(&[50.0]);
        assert!(v_in >= 0.0 && v_out >= 0.0);
        assert!(m_out.is_finite());
    }

    #[test]
    fn feature_subsample_sizes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let f = features_for_tree(&mut rng, 16, 0);
        assert_eq!(f.len(), 4); // sqrt(16)
        let f = features_for_tree(&mut rng, 16, 5);
        assert_eq!(f.len(), 5);
        let f = features_for_tree(&mut rng, 3, 10);
        assert_eq!(f.len(), 3); // clamped
                                // no duplicates
        let mut g = f.clone();
        g.dedup();
        assert_eq!(f.len(), g.len());
    }
}
