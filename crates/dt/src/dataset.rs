//! Dense, row-major datasets for tree training.
//!
//! A [`Dataset`] owns its feature matrix; a [`DatasetView`] is a borrowed
//! subset of rows (sample indices into a dataset), which is how SpliDT's
//! partitioned training (Algorithm 1 of the paper) routes leaf subsets to the
//! next partition's subtree without copying the matrix.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Errors produced when constructing or splitting datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Rows have inconsistent lengths or do not match the label count.
    ShapeMismatch {
        /// What was expected (human-readable).
        expected: String,
        /// What was found.
        found: String,
    },
    /// The dataset contains no samples.
    Empty,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::ShapeMismatch { expected, found } => {
                write!(f, "dataset shape mismatch: expected {expected}, found {found}")
            }
            DatasetError::Empty => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A dense, row-major labelled dataset.
///
/// Feature values are stored as `f32` (all SpliDT features are integer-valued
/// accumulator readings that fit `f32` exactly up to 2^24; wider counters are
/// quantized identically on the software and data-plane paths, see
/// `splidt-flow`). Labels are class indices in `0..n_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Vec<f32>,
    n_features: usize,
    labels: Vec<u16>,
    n_classes: usize,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Builds a dataset from per-sample rows.
    ///
    /// `n_classes` is inferred as `max(label) + 1` — every class index in
    /// `0..n_classes` is considered valid even if absent from `labels`.
    /// `feature_names` defaults to `f0, f1, …` when `None`.
    pub fn from_rows(
        rows: &[Vec<f32>],
        labels: &[u16],
        feature_names: Option<Vec<String>>,
    ) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::ShapeMismatch {
                expected: format!("{} labels", rows.len()),
                found: format!("{} labels", labels.len()),
            });
        }
        let n_features = rows[0].len();
        let mut x = Vec::with_capacity(rows.len() * n_features);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_features {
                return Err(DatasetError::ShapeMismatch {
                    expected: format!("{n_features} features"),
                    found: format!("{} features in row {i}", row.len()),
                });
            }
            x.extend_from_slice(row);
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
        let feature_names =
            feature_names.unwrap_or_else(|| (0..n_features).map(|i| format!("f{i}")).collect());
        if feature_names.len() != n_features {
            return Err(DatasetError::ShapeMismatch {
                expected: format!("{n_features} feature names"),
                found: format!("{}", feature_names.len()),
            });
        }
        Ok(Self { x, n_features, labels: labels.to_vec(), n_classes, feature_names })
    }

    /// Builds a dataset from an already-flat row-major matrix.
    pub fn from_flat(
        x: Vec<f32>,
        n_features: usize,
        labels: Vec<u16>,
        feature_names: Option<Vec<String>>,
    ) -> Result<Self, DatasetError> {
        if n_features == 0 || labels.is_empty() {
            return Err(DatasetError::Empty);
        }
        if x.len() != n_features * labels.len() {
            return Err(DatasetError::ShapeMismatch {
                expected: format!("{} values", n_features * labels.len()),
                found: format!("{}", x.len()),
            });
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
        let feature_names =
            feature_names.unwrap_or_else(|| (0..n_features).map(|i| format!("f{i}")).collect());
        if feature_names.len() != n_features {
            return Err(DatasetError::ShapeMismatch {
                expected: format!("{n_features} feature names"),
                found: format!("{}", feature_names.len()),
            });
        }
        Ok(Self { x, n_features, labels, n_classes, feature_names })
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.labels.len()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes (`max(label) + 1` at construction time).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Forces the class count (useful when a subset is missing some classes).
    pub fn set_n_classes(&mut self, n: usize) {
        assert!(
            n > self.labels.iter().copied().max().unwrap_or(0) as usize,
            "n_classes must exceed the maximum label"
        );
        self.n_classes = n;
    }

    /// Feature names, index-aligned with columns.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The label of sample `i`.
    pub fn label(&self, i: usize) -> u16 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// The feature row of sample `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Value of feature `f` for sample `i`.
    pub fn value(&self, i: usize, f: usize) -> f32 {
        self.x[i * self.n_features + f]
    }

    /// A view over all samples.
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView { data: self, indices: (0..self.n_samples()).collect() }
    }

    /// A view over the given sample indices.
    pub fn view_of(&self, indices: Vec<usize>) -> DatasetView<'_> {
        debug_assert!(indices.iter().all(|&i| i < self.n_samples()));
        DatasetView { data: self, indices }
    }

    /// Deterministic shuffled train/test split. `test_frac` in `(0, 1)`.
    ///
    /// Returns `(train, test)` views. The split is stratified per class so
    /// rare classes appear on both sides whenever they have ≥ 2 samples.
    pub fn split(&self, test_frac: f64, seed: u64) -> (DatasetView<'_>, DatasetView<'_>) {
        assert!(test_frac > 0.0 && test_frac < 1.0, "test_frac must be in (0,1)");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for i in 0..self.n_samples() {
            per_class[self.labels[i] as usize].push(i);
        }
        let mut train = Vec::new();
        let mut test = Vec::new();
        for mut idxs in per_class {
            idxs.shuffle(&mut rng);
            let n_test = ((idxs.len() as f64) * test_frac).round() as usize;
            // Keep at least one sample on each side when the class has ≥ 2.
            let n_test = if idxs.len() >= 2 { n_test.clamp(1, idxs.len() - 1) } else { 0 };
            test.extend_from_slice(&idxs[..n_test]);
            train.extend_from_slice(&idxs[n_test..]);
        }
        train.sort_unstable();
        test.sort_unstable();
        (self.view_of(train), self.view_of(test))
    }
}

/// A borrowed subset of a [`Dataset`]'s rows.
#[derive(Debug, Clone)]
pub struct DatasetView<'a> {
    data: &'a Dataset,
    indices: Vec<usize>,
}

impl<'a> DatasetView<'a> {
    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.data
    }

    /// Sample indices (into the underlying dataset) in this view.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of samples in the view.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.data.n_features()
    }

    /// Number of classes of the underlying dataset.
    pub fn n_classes(&self) -> usize {
        self.data.n_classes()
    }

    /// Feature row of the `i`-th sample *of the view*.
    pub fn row(&self, i: usize) -> &[f32] {
        self.data.row(self.indices[i])
    }

    /// Label of the `i`-th sample *of the view*.
    pub fn label(&self, i: usize) -> u16 {
        self.data.label(self.indices[i])
    }

    /// Class histogram of the view.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.data.n_classes()];
        for &i in &self.indices {
            counts[self.data.label(i) as usize] += 1;
        }
        counts
    }

    /// Majority class (ties broken toward the smaller class index).
    pub fn majority_class(&self) -> u16 {
        let counts = self.class_counts();
        let mut best = 0usize;
        for (c, &n) in counts.iter().enumerate() {
            if n > counts[best] {
                best = c;
            }
        }
        best as u16
    }

    /// A sub-view keeping the view-relative positions in `keep`.
    pub fn subview(&self, keep: &[usize]) -> DatasetView<'a> {
        DatasetView { data: self.data, indices: keep.iter().map(|&p| self.indices[p]).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let rows = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
            vec![5.0, 50.0],
            vec![6.0, 60.0],
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        Dataset::from_rows(&rows, &labels, None).unwrap()
    }

    #[test]
    fn shape_accessors() {
        let ds = toy();
        assert_eq!(ds.n_samples(), 6);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.row(2), &[3.0, 30.0]);
        assert_eq!(ds.value(4, 1), 50.0);
        assert_eq!(ds.feature_names(), &["f0".to_string(), "f1".to_string()]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        let err = Dataset::from_rows(&rows, &[0, 1], None).unwrap_err();
        assert!(matches!(err, DatasetError::ShapeMismatch { .. }));
    }

    #[test]
    fn label_count_mismatch_rejected() {
        let rows = vec![vec![1.0], vec![2.0]];
        assert!(Dataset::from_rows(&rows, &[0], None).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(Dataset::from_rows(&[], &[], None), Err(DatasetError::Empty)));
    }

    #[test]
    fn from_flat_roundtrip() {
        let ds = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2, vec![0, 1], None).unwrap();
        assert_eq!(ds.row(0), &[1.0, 2.0]);
        assert_eq!(ds.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn view_subsetting() {
        let ds = toy();
        let v = ds.view_of(vec![0, 3, 5]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.label(1), 1);
        assert_eq!(v.row(0), &[1.0, 10.0]);
        assert_eq!(v.class_counts(), vec![1, 2]);
        assert_eq!(v.majority_class(), 1);
        let sub = v.subview(&[0, 2]);
        assert_eq!(sub.indices(), &[0, 5]);
    }

    #[test]
    fn split_is_stratified_and_deterministic() {
        let ds = toy();
        let (tr1, te1) = ds.split(0.34, 42);
        let (tr2, te2) = ds.split(0.34, 42);
        assert_eq!(tr1.indices(), tr2.indices());
        assert_eq!(te1.indices(), te2.indices());
        assert_eq!(tr1.len() + te1.len(), ds.n_samples());
        // Each class keeps at least one sample on each side.
        for side in [&tr1, &te1] {
            let counts = side.class_counts();
            assert!(counts[0] >= 1 && counts[1] >= 1);
        }
        // No overlap between train and test.
        for i in te1.indices() {
            assert!(!tr1.indices().contains(i));
        }
    }

    #[test]
    fn majority_tie_breaks_low() {
        let ds = toy();
        let v = ds.view_of(vec![0, 3]);
        assert_eq!(v.majority_class(), 0);
    }
}
