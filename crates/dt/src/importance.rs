//! Impurity-based feature importance and top-k selection.
//!
//! NetBeacon \[85\] and Leo \[43\] pick a single global `top-k` feature set for
//! the whole tree — the constraint SpliDT removes. We reproduce their
//! selection the standard way: train an unconstrained reference tree (or
//! forest), accumulate the Gini impurity decrease attributed to each feature,
//! and keep the `k` features with the largest totals.

use crate::dataset::{Dataset, DatasetView};
use crate::train::{train_classifier_on, TrainParams};
use crate::tree::{Node, Tree};

/// Computes normalized Gini-importance per feature for a trained tree, using
/// the dataset it was trained on to recover per-node class distributions.
///
/// Returns a vector of length `n_features` summing to 1 (all zeros if the
/// tree is a single leaf).
pub fn feature_importance(tree: &Tree, data: &DatasetView<'_>) -> Vec<f64> {
    let n_features = tree.n_features();
    let mut imp = vec![0.0f64; n_features];
    // Route every sample down the tree, recording per-node class histograms.
    let n_classes = data.n_classes();
    let mut node_counts: Vec<Vec<usize>> = vec![vec![0; n_classes]; tree.n_nodes()];
    for i in 0..data.len() {
        let row = data.row(i);
        let label = data.label(i) as usize;
        let mut id = tree.root();
        loop {
            node_counts[id as usize][label] += 1;
            match tree.node(id) {
                Node::Leaf { .. } => break,
                Node::Split { feature, threshold, left, right } => {
                    id = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
    let total = data.len() as f64;
    if total == 0.0 {
        return imp;
    }
    for (id, node) in tree.nodes().iter().enumerate() {
        if let Node::Split { feature, left, right, .. } = node {
            let n = node_counts[id].iter().sum::<usize>();
            let nl = node_counts[*left as usize].iter().sum::<usize>();
            let nr = node_counts[*right as usize].iter().sum::<usize>();
            if n == 0 {
                continue;
            }
            let g = gini(&node_counts[id], n);
            let gl = gini(&node_counts[*left as usize], nl);
            let gr = gini(&node_counts[*right as usize], nr);
            let decrease = (n as f64 / total)
                * (g - (nl as f64 / n as f64) * gl - (nr as f64 / n as f64) * gr);
            imp[*feature] += decrease.max(0.0);
        }
    }
    let sum: f64 = imp.iter().sum();
    if sum > 0.0 {
        for v in &mut imp {
            *v /= sum;
        }
    }
    imp
}

/// Selects the global top-k features the way the baselines do: train a
/// reference tree of depth `ref_depth` restricted to `allowed` (or all
/// features), rank by Gini importance, return the best `k` (sorted by
/// feature index).
pub fn top_k_features(
    data: &Dataset,
    k: usize,
    ref_depth: usize,
    allowed: Option<&[usize]>,
) -> Vec<usize> {
    let view = data.view();
    let params = TrainParams {
        max_depth: ref_depth,
        allowed_features: allowed.map(|a| a.to_vec()),
        ..TrainParams::default()
    };
    let tree = train_classifier_on(&view, &params);
    let imp = feature_importance(&tree, &view);
    let mut order: Vec<usize> = (0..imp.len()).collect();
    // Sort by importance descending; ties broken by feature index for
    // determinism.
    order.sort_by(|&a, &b| imp[b].partial_cmp(&imp[a]).expect("finite importance").then(a.cmp(&b)));
    let mut top: Vec<usize> = order.into_iter().take(k).collect();
    top.sort_unstable();
    top
}

fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::train_classifier;

    /// Feature 0 fully determines the class; 1 is weak; 2 is pure noise.
    fn dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200u32 {
            let strong = (i % 2) as f32;
            let weak = if i % 10 < 6 { strong } else { 1.0 - strong };
            let noise = ((i * 7919) % 13) as f32;
            rows.push(vec![strong, weak, noise]);
            labels.push((i % 2) as u16);
        }
        Dataset::from_rows(&rows, &labels, None).unwrap()
    }

    #[test]
    fn strong_feature_dominates() {
        let ds = dataset();
        let tree = train_classifier(&ds, &TrainParams { max_depth: 4, ..Default::default() });
        let imp = feature_importance(&tree, &ds.view());
        assert!(imp[0] > 0.9, "importance {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_picks_strong_then_weak() {
        let ds = dataset();
        let top1 = top_k_features(&ds, 1, 6, None);
        assert_eq!(top1, vec![0]);
        let top2 = top_k_features(&ds, 2, 6, None);
        assert_eq!(top2.len(), 2);
        assert!(top2.contains(&0));
    }

    #[test]
    fn top_k_respects_allowed() {
        let ds = dataset();
        let top = top_k_features(&ds, 1, 6, Some(&[1, 2]));
        assert_eq!(top, vec![1], "weak feature beats noise");
    }

    #[test]
    fn single_leaf_tree_zero_importance() {
        let ds = dataset();
        let tree = Tree::leaf(0, 10, ds.n_features());
        let imp = feature_importance(&tree, &ds.view());
        assert!(imp.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn top_k_larger_than_features_returns_all() {
        let ds = dataset();
        let top = top_k_features(&ds, 10, 4, None);
        assert!(top.len() <= 3);
    }
}
