//! Regression trees (variance-reduction CART).
//!
//! Used by `splidt-search` as the building block of the random-forest
//! surrogate model that drives Bayesian optimization (the paper uses
//! HyperMapper \[53\], whose default surrogate is also a random forest).

/// A regression-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum RegNode {
    /// Internal split: `x[feature] <= threshold` goes to `left`.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Threshold; `<=` goes left.
        threshold: f64,
        /// Left child index.
        left: u32,
        /// Right child index.
        right: u32,
    },
    /// Leaf holding the mean target of its training samples.
    Leaf {
        /// Mean target value.
        value: f64,
        /// Training sample count.
        n: u32,
    },
}

/// A trained regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<RegNode>,
    n_features: usize,
}

/// Hyper-parameters for regression-tree training.
#[derive(Debug, Clone)]
pub struct RegressParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per child.
    pub min_samples_leaf: usize,
    /// Restrict splits to these features (used for per-tree feature
    /// subsampling in forests). `None` = all features.
    pub allowed_features: Option<Vec<usize>>,
}

impl Default for RegressParams {
    fn default() -> Self {
        Self { max_depth: 10, min_samples_split: 4, min_samples_leaf: 2, allowed_features: None }
    }
}

/// Trains a regression tree on rows `x` (row-major, `n_features` wide) with
/// targets `y`.
pub fn train_regressor(
    x: &[f64],
    n_features: usize,
    y: &[f64],
    params: &RegressParams,
) -> RegressionTree {
    assert!(n_features > 0, "n_features must be positive");
    assert_eq!(x.len(), n_features * y.len(), "x/y shape mismatch");
    assert!(!y.is_empty(), "cannot train on empty data");
    let candidates: Vec<usize> = match &params.allowed_features {
        Some(fs) => fs.clone(),
        None => (0..n_features).collect(),
    };
    let mut b = RegBuilder { x, n_features, y, params, candidates, nodes: Vec::new() };
    let idx: Vec<usize> = (0..y.len()).collect();
    b.grow(&idx, 0);
    RegressionTree { nodes: b.nodes, n_features }
}

impl RegressionTree {
    /// Predicted value for a feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features);
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                RegNode::Leaf { value, .. } => return *value,
                RegNode::Split { feature, threshold, left, right } => {
                    id = if row[*feature] <= *threshold { *left as usize } else { *right as usize };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of feature columns expected by [`RegressionTree::predict`].
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

struct RegBuilder<'a> {
    x: &'a [f64],
    n_features: usize,
    y: &'a [f64],
    params: &'a RegressParams,
    candidates: Vec<usize>,
    nodes: Vec<RegNode>,
}

impl RegBuilder<'_> {
    fn val(&self, sample: usize, feature: usize) -> f64 {
        self.x[sample * self.n_features + feature]
    }

    fn grow(&mut self, idx: &[usize], depth: usize) -> u32 {
        let n = idx.len();
        let mean = idx.iter().map(|&i| self.y[i]).sum::<f64>() / n as f64;
        if depth >= self.params.max_depth || n < self.params.min_samples_split {
            return self.push_leaf(mean, n as u32);
        }
        let sse_parent: f64 = idx.iter().map(|&i| (self.y[i] - mean).powi(2)).sum();
        if sse_parent <= 1e-12 {
            return self.push_leaf(mean, n as u32);
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &feature in &self.candidates {
            let mut pairs: Vec<(f64, f64)> =
                idx.iter().map(|&i| (self.val(i, feature), self.y[i])).collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
            // Prefix sums for O(1) SSE of both sides at every boundary.
            let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
            let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();
            let mut lsum = 0.0;
            let mut lsq = 0.0;
            for b in 1..pairs.len() {
                lsum += pairs[b - 1].1;
                lsq += pairs[b - 1].1 * pairs[b - 1].1;
                if pairs[b].0 <= pairs[b - 1].0 {
                    continue; // not a value change point
                }
                let nl = b as f64;
                let nr = (pairs.len() - b) as f64;
                if (b < self.params.min_samples_leaf)
                    || (pairs.len() - b < self.params.min_samples_leaf)
                {
                    continue;
                }
                let rsum = total_sum - lsum;
                let rsq = total_sq - lsq;
                let sse = (lsq - lsum * lsum / nl) + (rsq - rsum * rsum / nr);
                let threshold = pairs[b - 1].0 + (pairs[b].0 - pairs[b - 1].0) / 2.0;
                let better = match &best {
                    None => sse < sse_parent - 1e-12,
                    Some((bf, bt, bs)) => {
                        let (bf, bt, bs) = (*bf, *bt, *bs);
                        sse < bs - 1e-12 || (sse < bs + 1e-12 && (feature, threshold) < (bf, bt))
                    }
                };
                if better {
                    best = Some((feature, threshold, sse));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return self.push_leaf(mean, n as u32);
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| self.val(i, feature) <= threshold);
        if li.is_empty() || ri.is_empty() {
            return self.push_leaf(mean, n as u32);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(RegNode::Leaf { value: 0.0, n: 0 });
        let left = self.grow(&li, depth + 1);
        let right = self.grow(&ri, depth + 1);
        self.nodes[id as usize] = RegNode::Split { feature, threshold, left, right };
        id
    }

    fn push_leaf(&mut self, value: f64, n: u32) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(RegNode::Leaf { value, n });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_step_function() {
        // y = 10 for x<5, y = 20 for x>=5
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 5 { 10.0 } else { 20.0 }).collect();
        let t = train_regressor(&x, 1, &y, &RegressParams::default());
        assert!((t.predict(&[2.0]) - 10.0).abs() < 1e-9);
        assert!((t.predict(&[9.0]) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fits_two_feature_interaction() {
        // y = x0 + 10*x1 on a grid; tree should approximate well.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                x.push(i as f64);
                x.push(j as f64);
                y.push(i as f64 + 10.0 * j as f64);
            }
        }
        let t = train_regressor(
            &x,
            2,
            &y,
            &RegressParams {
                max_depth: 8,
                min_samples_split: 2,
                min_samples_leaf: 1,
                ..Default::default()
            },
        );
        let mut max_err: f64 = 0.0;
        for i in 0..8 {
            for j in 0..8 {
                let pred = t.predict(&[i as f64, j as f64]);
                max_err = max_err.max((pred - (i as f64 + 10.0 * j as f64)).abs());
            }
        }
        assert!(max_err < 1.0, "max_err = {max_err}");
    }

    #[test]
    fn constant_target_single_leaf() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y = vec![3.5; 10];
        let t = train_regressor(&x, 1, &y, &RegressParams::default());
        assert_eq!(t.n_nodes(), 1);
        assert!((t.predict(&[100.0]) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn depth_limit_respected() {
        let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        let t = train_regressor(&x, 1, &y, &RegressParams { max_depth: 2, ..Default::default() });
        // depth 2 => at most 4 leaves => at most 7 nodes
        assert!(t.n_nodes() <= 7);
    }

    #[test]
    fn allowed_features_restricts_splits() {
        // Feature 0 is informative, feature 1 is noise; force splits on 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..16 {
            x.push(i as f64);
            x.push((i % 3) as f64);
            y.push(if i < 8 { 0.0 } else { 1.0 });
        }
        let t = train_regressor(
            &x,
            2,
            &y,
            &RegressParams { allowed_features: Some(vec![1]), ..Default::default() },
        );
        // With only the noise feature available the fit must be poor:
        // prediction for any input stays near the global mean on at least
        // one side.
        let p = t.predict(&[0.0, 0.0]);
        assert!(p > 0.05 && p < 0.95, "noise-only tree should not fit, got {p}");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        train_regressor(&[1.0, 2.0, 3.0], 2, &[1.0], &RegressParams::default());
    }
}
