//! Property-based invariants of the tree library.

use proptest::prelude::*;
use splidt_dt::metrics::{accuracy, macro_f1, ConfusionMatrix};
use splidt_dt::{train_classifier, Dataset, TrainParams};

fn arb_dataset() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<u16>)> {
    (2usize..5, 30usize..150, any::<u64>()).prop_map(|(nf, n, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> =
            (0..n).map(|_| (0..nf).map(|_| rng.random_range(0..200) as f32).collect()).collect();
        let labels: Vec<u16> =
            rows.iter().map(|r| (u16::from(r[0] > 100.0) + u16::from(r[1] > 60.0)) % 3).collect();
        (rows, labels)
    })
}

proptest! {
    /// Leaves partition the sample space: every training row lands in
    /// exactly one leaf, and leaf sample counts sum to the training size.
    #[test]
    fn leaves_partition_samples((rows, labels) in arb_dataset()) {
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(&ds, &TrainParams { max_depth: 5, ..Default::default() });
        let total: u32 = tree.leaves().iter().map(|l| l.n_samples).sum();
        prop_assert_eq!(total as usize, rows.len());
        // routing a row yields a leaf index within range
        for r in &rows {
            prop_assert!(tree.leaf_index_of(r) < tree.n_leaves());
        }
    }

    /// Deeper budgets never reduce training accuracy (growth is greedy but
    /// monotone in the hypothesis space).
    #[test]
    fn deeper_trees_fit_no_worse((rows, labels) in arb_dataset()) {
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let acc = |d: usize| {
            let t = train_classifier(&ds, &TrainParams { max_depth: d, ..Default::default() });
            let preds: Vec<u16> = rows.iter().map(|r| t.predict(r)).collect();
            accuracy(&labels, &preds, ds.n_classes())
        };
        prop_assert!(acc(6) + 1e-9 >= acc(2));
        prop_assert!(acc(2) + 1e-9 >= acc(0));
    }

    /// Every leaf path is consistent: replaying the path conditions on any
    /// row that reaches the leaf must hold.
    #[test]
    fn leaf_paths_consistent((rows, labels) in arb_dataset()) {
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(&ds, &TrainParams { max_depth: 4, ..Default::default() });
        let leaves = tree.leaves();
        for r in rows.iter().take(40) {
            let li = tree.leaf_index_of(r);
            let leaf = leaves.iter().find(|l| l.leaf_index == li).unwrap();
            for step in &leaf.path {
                let lhs = r[step.feature] <= step.threshold;
                prop_assert_eq!(lhs, step.went_left);
            }
        }
    }

    /// Metric bounds: macro-F1 and accuracy always land in [0, 1], and
    /// per-class precision/recall are consistent with the confusion matrix.
    #[test]
    fn metric_bounds(truth in proptest::collection::vec(0u16..4, 1..80),
                     pred_seed in any::<u64>()) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(pred_seed);
        let pred: Vec<u16> = truth.iter().map(|_| rng.random_range(0..4)).collect();
        let f1 = macro_f1(&truth, &pred, 4);
        let acc = accuracy(&truth, &pred, 4);
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!((0.0..=1.0).contains(&acc));
        let cm = ConfusionMatrix::new(&truth, &pred, 4);
        for c in 0..4 {
            prop_assert_eq!(cm.tp(c) + cm.fn_(c), cm.support(c));
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
        }
    }

    /// Threshold budget bounds distinct thresholds per feature tree-wide.
    #[test]
    fn threshold_budget_bounds_marks((rows, labels) in arb_dataset(), budget in 1usize..6) {
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(
            &ds,
            &TrainParams {
                max_depth: 8,
                threshold_budget_per_feature: Some(budget),
                ..Default::default()
            },
        );
        for f in tree.features_used() {
            prop_assert!(tree.thresholds_for(f).len() <= budget);
        }
    }
}
