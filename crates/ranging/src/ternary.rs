//! Range → ternary (prefix) expansion for TCAM installation.
//!
//! TCAMs match value/mask patterns, not ranges; an integer interval
//! `[lo, hi]` over a `bits`-wide domain is covered by a minimal set of
//! *prefixes* (patterns whose mask selects a contiguous high-bit region).
//! This is the classic expansion used by every range-matching compiler —
//! worst case `2·bits − 2` prefixes per range.

/// A prefix pattern over a `bits`-wide integer domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Match value (low `bits` significant).
    pub value: u64,
    /// Care mask (always a high-bit-contiguous prefix mask).
    pub mask: u64,
}

impl Prefix {
    /// Whether `v` matches this prefix.
    pub fn matches(&self, v: u64) -> bool {
        v & self.mask == self.value
    }
}

/// Minimal prefix cover of the inclusive range `[lo, hi]` over `bits`.
///
/// # Panics
/// Panics if `lo > hi` or `hi` does not fit in `bits`.
pub fn range_to_prefixes(lo: u64, hi: u64, bits: u8) -> Vec<Prefix> {
    assert!((1..=64).contains(&bits), "bits out of range");
    let domain_max = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    assert!(lo <= hi, "lo {lo} > hi {hi}");
    assert!(hi <= domain_max, "hi {hi} exceeds {bits}-bit domain");

    let mut out = Vec::new();
    let mut cur = lo;
    loop {
        // Largest aligned block starting at `cur` that stays within `hi`.
        let max_align = if cur == 0 { bits as u32 } else { cur.trailing_zeros().min(bits as u32) };
        let mut k = max_align;
        // shrink while block end exceeds hi
        loop {
            let block = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
            let end = cur.saturating_add(block);
            if end <= hi {
                break;
            }
            k -= 1;
        }
        let mask = if k >= 64 { 0 } else { (domain_max >> k) << k } & domain_max;
        out.push(Prefix { value: cur & mask, mask });
        let block = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
        let end = cur.saturating_add(block);
        if end >= hi {
            break;
        }
        cur = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covered(prefixes: &[Prefix], bits: u8) -> Vec<u64> {
        let max = (1u64 << bits) - 1;
        (0..=max).filter(|&v| prefixes.iter().any(|p| p.matches(v))).collect()
    }

    #[test]
    fn full_domain_single_prefix() {
        let p = range_to_prefixes(0, 255, 8);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].mask, 0);
    }

    #[test]
    fn single_value() {
        let p = range_to_prefixes(7, 7, 8);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].value, 7);
        assert_eq!(p[0].mask, 0xFF);
    }

    #[test]
    fn classic_worst_case() {
        // [1, 254] over 8 bits needs 14 prefixes (2·8 − 2).
        let p = range_to_prefixes(1, 254, 8);
        assert_eq!(p.len(), 14);
        assert_eq!(covered(&p, 8), (1..=254).collect::<Vec<_>>());
    }

    #[test]
    fn exact_cover_exhaustive_small_domain() {
        for lo in 0u64..32 {
            for hi in lo..32 {
                let p = range_to_prefixes(lo, hi, 5);
                let want: Vec<u64> = (lo..=hi).collect();
                assert_eq!(covered(&p, 5), want, "[{lo},{hi}]");
                // prefixes must be disjoint
                for v in 0..32u64 {
                    let hits = p.iter().filter(|x| x.matches(v)).count();
                    assert!(hits <= 1, "value {v} hit {hits} prefixes for [{lo},{hi}]");
                }
            }
        }
    }

    #[test]
    fn top_of_domain() {
        let p = range_to_prefixes(250, 255, 8);
        assert_eq!(covered(&p, 8), (250..=255).collect::<Vec<_>>());
    }

    #[test]
    fn wide_domain_no_overflow() {
        let p = range_to_prefixes(0, u64::MAX, 64);
        assert_eq!(p.len(), 1);
        let p = range_to_prefixes(u64::MAX - 3, u64::MAX, 64);
        assert!(p.iter().any(|x| x.matches(u64::MAX)));
        assert!(!p.iter().any(|x| x.matches(u64::MAX - 4)));
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn inverted_range_panics() {
        range_to_prefixes(5, 4, 8);
    }
}
