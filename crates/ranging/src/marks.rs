//! The Range-Marking encoding (NetBeacon \[85\], adopted by SpliDT §3.2.1).
//!
//! For a feature with sorted distinct thresholds `t_0 < t_1 < … < t_{m−1}`,
//! the *range mark* of a value `v` is an `m`-bit thermometer code: bit `j`
//! is 1 iff `v > t_j`. Two properties make this the right TCAM encoding:
//!
//! 1. every decision-tree predicate `v ≤ t_j` / `v > t_j` is a single-bit
//!    ternary constraint on the mark, so **each leaf's conjunction is one
//!    TCAM rule** (no rule explosion);
//! 2. the value → mark translation table has exactly `m + 1` entries (one
//!    per elementary range), each installable as a handful of prefixes.

use crate::ternary::{range_to_prefixes, Prefix};

/// Thermometer encoder for one feature within one subtree.
#[derive(Debug, Clone)]
pub struct ThermometerEncoder {
    thresholds: Vec<u64>,
    domain_bits: u8,
}

/// One bit constraint on a mark: `(bit index, required value)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitConstraint {
    /// Which mark bit.
    pub bit: u8,
    /// Required bit value (`v > t_bit`?).
    pub value: bool,
}

/// An elementary range of the feature domain with its mark.
#[derive(Debug, Clone)]
pub struct ElementaryRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Thermometer mark for values in the range.
    pub mark: u64,
    /// Prefix expansion of `[lo, hi]`.
    pub prefixes: Vec<Prefix>,
}

impl ThermometerEncoder {
    /// Builds an encoder from integer thresholds (deduplicated and sorted
    /// internally) over a `domain_bits`-wide value domain.
    ///
    /// Thresholds at or above the domain maximum are dropped: `v ≤ max` is
    /// always true and would waste a mark bit.
    pub fn new(mut thresholds: Vec<u64>, domain_bits: u8) -> Self {
        assert!((1..=64).contains(&domain_bits));
        let max = if domain_bits == 64 { u64::MAX } else { (1u64 << domain_bits) - 1 };
        thresholds.retain(|&t| t < max);
        thresholds.sort_unstable();
        thresholds.dedup();
        assert!(thresholds.len() <= 63, "too many thresholds for one feature");
        Self { thresholds, domain_bits }
    }

    /// Number of mark bits (= number of thresholds).
    pub fn mark_bits(&self) -> u8 {
        self.thresholds.len() as u8
    }

    /// The sorted thresholds.
    pub fn thresholds(&self) -> &[u64] {
        &self.thresholds
    }

    /// Value domain width.
    pub fn domain_bits(&self) -> u8 {
        self.domain_bits
    }

    /// The thermometer mark of a value: bit `j` set iff `value > t_j`.
    pub fn mark_of(&self, value: u64) -> u64 {
        let mut m = 0u64;
        for (j, &t) in self.thresholds.iter().enumerate() {
            if value > t {
                m |= 1 << j;
            }
        }
        m
    }

    /// The single-bit constraint for a tree predicate on threshold `t`.
    ///
    /// `went_left` means the path took `v ≤ t`. Returns `None` when `t`
    /// was dropped (≥ domain max and `went_left`: always true).
    pub fn constraint(&self, threshold: u64, went_left: bool) -> Option<BitConstraint> {
        match self.thresholds.binary_search(&threshold) {
            Ok(j) => Some(BitConstraint { bit: j as u8, value: !went_left }),
            Err(_) => None,
        }
    }

    /// The `m + 1` elementary ranges with marks and prefix expansions.
    pub fn elementary_ranges(&self) -> Vec<ElementaryRange> {
        let max = if self.domain_bits == 64 { u64::MAX } else { (1u64 << self.domain_bits) - 1 };
        let mut out = Vec::with_capacity(self.thresholds.len() + 1);
        let mut lo = 0u64;
        for (i, &t) in self.thresholds.iter().enumerate() {
            let mark = if i == 0 { 0 } else { (1u64 << i) - 1 };
            out.push(ElementaryRange {
                lo,
                hi: t,
                mark,
                prefixes: range_to_prefixes(lo, t, self.domain_bits),
            });
            lo = t + 1;
        }
        let mark = if self.thresholds.is_empty() { 0 } else { (1u64 << self.thresholds.len()) - 1 };
        out.push(ElementaryRange {
            lo,
            hi: max,
            mark,
            prefixes: range_to_prefixes(lo, max, self.domain_bits),
        });
        out
    }

    /// Total TCAM entries needed by this feature's translation table.
    pub fn table_entries(&self) -> usize {
        self.elementary_ranges().iter().map(|r| r.prefixes.len()).sum()
    }
}

/// Elementary cut points of a set of closed intervals: the sorted, distinct
/// values at which interval membership can change (`lo` of each range plus
/// `hi + 1`, when in domain). Between consecutive cuts — and before the
/// first / after the last — every input range either fully covers or fully
/// misses the elementary interval, so per-interval matching decisions can
/// be precomputed once and resolved by binary search ([`interval_of`]).
///
/// This is the same decomposition [`ThermometerEncoder::elementary_ranges`]
/// performs for threshold sets, generalized to arbitrary (possibly
/// overlapping) `[lo, hi]` ranges; the dataplane's compiled range index is
/// built on it.
pub fn elementary_cuts(ranges: impl IntoIterator<Item = (u64, u64)>) -> Vec<u64> {
    let mut cuts = Vec::new();
    for (lo, hi) in ranges {
        if lo > 0 {
            cuts.push(lo);
        }
        if let Some(after) = hi.checked_add(1) {
            cuts.push(after);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Index of the elementary interval containing `v`, for `cuts` produced by
/// [`elementary_cuts`]: interval `i` spans `[cuts[i-1], cuts[i])` (with
/// virtual endpoints `0` and `u64::MAX + 1`).
pub fn interval_of(cuts: &[u64], v: u64) -> usize {
    cuts.partition_point(|&c| c <= v)
}

/// Converts a CART threshold (`f32`, `v ≤ t` goes left) into the integer
/// threshold with identical semantics on integer-valued features.
pub fn integer_threshold(t: f32) -> u64 {
    if t <= 0.0 {
        0
    } else {
        t.floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_thermometer_codes() {
        let e = ThermometerEncoder::new(vec![10, 20, 30], 8);
        assert_eq!(e.mark_bits(), 3);
        assert_eq!(e.mark_of(5), 0b000);
        assert_eq!(e.mark_of(10), 0b000);
        assert_eq!(e.mark_of(11), 0b001);
        assert_eq!(e.mark_of(20), 0b001);
        assert_eq!(e.mark_of(25), 0b011);
        assert_eq!(e.mark_of(31), 0b111);
    }

    #[test]
    fn dedup_and_sort() {
        let e = ThermometerEncoder::new(vec![30, 10, 10, 20], 8);
        assert_eq!(e.thresholds(), &[10, 20, 30]);
    }

    #[test]
    fn constraints_match_predicates() {
        let e = ThermometerEncoder::new(vec![10, 20], 8);
        let c = e.constraint(10, true).unwrap();
        assert_eq!((c.bit, c.value), (0, false)); // v ≤ 10 → bit0 = 0
        let c = e.constraint(20, false).unwrap();
        assert_eq!((c.bit, c.value), (1, true)); // v > 20 → bit1 = 1
        assert!(e.constraint(15, true).is_none(), "unknown threshold");
    }

    #[test]
    fn elementary_ranges_partition_domain() {
        let e = ThermometerEncoder::new(vec![10, 200], 8);
        let rs = e.elementary_ranges();
        assert_eq!(rs.len(), 3);
        assert_eq!((rs[0].lo, rs[0].hi, rs[0].mark), (0, 10, 0b00));
        assert_eq!((rs[1].lo, rs[1].hi, rs[1].mark), (11, 200, 0b01));
        assert_eq!((rs[2].lo, rs[2].hi, rs[2].mark), (201, 255, 0b11));
        // every domain value falls in exactly one range with matching mark
        for v in 0u64..=255 {
            let hits: Vec<_> = rs.iter().filter(|r| r.lo <= v && v <= r.hi).collect();
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].mark, e.mark_of(v), "value {v}");
            // prefix expansion agrees
            assert!(hits[0].prefixes.iter().any(|p| p.matches(v)));
        }
    }

    #[test]
    fn threshold_at_domain_max_dropped() {
        let e = ThermometerEncoder::new(vec![255], 8);
        assert_eq!(e.mark_bits(), 0);
        assert_eq!(e.elementary_ranges().len(), 1);
    }

    #[test]
    fn no_thresholds_single_range() {
        let e = ThermometerEncoder::new(vec![], 16);
        assert_eq!(e.mark_bits(), 0);
        let rs = e.elementary_ranges();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].hi, 0xFFFF);
        assert_eq!(e.table_entries(), 1);
    }

    #[test]
    fn elementary_cuts_decompose_overlapping_ranges() {
        // Ranges [5,10], [8,20], [0,3]: membership changes at 4, 5, 8, 11, 21.
        let cuts = elementary_cuts([(5, 10), (8, 20), (0, 3)]);
        assert_eq!(cuts, vec![4, 5, 8, 11, 21]);
        // Every value in an elementary interval has the same membership set.
        for v in 0u64..40 {
            let idx = interval_of(&cuts, v);
            for (lo, hi) in [(5, 10), (8, 20), (0, 3)] {
                let start = if idx == 0 { 0 } else { cuts[idx - 1] };
                let inside_start = lo <= start && start <= hi;
                let inside_v = lo <= v && v <= hi;
                assert_eq!(inside_start, inside_v, "v={v} idx={idx}");
            }
        }
    }

    #[test]
    fn elementary_cuts_handle_domain_extremes() {
        // hi = u64::MAX must not overflow; lo = 0 adds no leading cut.
        let cuts = elementary_cuts([(0, u64::MAX)]);
        assert!(cuts.is_empty());
        assert_eq!(interval_of(&cuts, 0), 0);
        assert_eq!(interval_of(&cuts, u64::MAX), 0);
        // Degenerate single-point range.
        let cuts = elementary_cuts([(7, 7)]);
        assert_eq!(cuts, vec![7, 8]);
        assert_eq!(interval_of(&cuts, 6), 0);
        assert_eq!(interval_of(&cuts, 7), 1);
        assert_eq!(interval_of(&cuts, 8), 2);
    }

    #[test]
    fn integer_threshold_floor_semantics() {
        // CART midpoints are x.5 on integer data: v ≤ 10.5 ⟺ v ≤ 10.
        assert_eq!(integer_threshold(10.5), 10);
        assert_eq!(integer_threshold(10.0), 10);
        assert_eq!(integer_threshold(-3.0), 0);
        assert_eq!(integer_threshold(0.4), 0);
    }
}
