//! Rule generation: a trained decision (sub)tree → feature-table entries
//! (value → mark) and model-table entries (marks → verdict), exactly the
//! two TCAM rule sets of the paper's "Subtree Rule Generation" (§3.2.1).

use crate::marks::{integer_threshold, ThermometerEncoder};
use crate::ternary::Prefix;
use splidt_dt::Tree;
use std::collections::BTreeMap;

/// One feature-table entry: value prefix → mark constant.
#[derive(Debug, Clone)]
pub struct FeatureRule {
    /// Value prefix over the feature domain.
    pub prefix: Prefix,
    /// Mark written on hit.
    pub mark: u64,
}

/// The complete mark-translation table of one feature within one subtree.
#[derive(Debug, Clone)]
pub struct FeatureTable {
    /// Feature (column) index.
    pub feature: usize,
    /// The thermometer encoder (thresholds, widths).
    pub encoder: ThermometerEncoder,
    /// TCAM entries.
    pub rules: Vec<FeatureRule>,
}

/// One model-table entry: per-feature ternary mark patterns → leaf verdict.
#[derive(Debug, Clone)]
pub struct ModelRule {
    /// Dense leaf index within the subtree.
    pub leaf_index: u32,
    /// Leaf label (class — or, in SpliDT's intermediate partitions, the
    /// next-subtree selector; the compiler decides the interpretation).
    pub label: u16,
    /// `(value, mask)` over each feature's mark bits, ordered like
    /// [`SubtreeRules::features`].
    pub mark_patterns: Vec<(u64, u64)>,
}

/// All rules for one subtree.
#[derive(Debug, Clone)]
pub struct SubtreeRules {
    /// Features used by the subtree (sorted; defines mark-pattern order).
    pub features: Vec<usize>,
    /// Per-feature translation tables (same order as `features`).
    pub feature_tables: Vec<FeatureTable>,
    /// Model-table entries, one per leaf.
    pub model: Vec<ModelRule>,
}

impl SubtreeRules {
    /// Total TCAM entries (feature tables + model table) — the paper's
    /// "#TCAM Entries" accounting unit.
    pub fn tcam_entries(&self) -> usize {
        self.feature_tables.iter().map(|t| t.rules.len()).sum::<usize>() + self.model.len()
    }

    /// Total mark bits (= model-table key width contributed by features).
    pub fn mark_bits(&self) -> usize {
        self.feature_tables.iter().map(|t| t.encoder.mark_bits() as usize).sum()
    }

    /// Classifies a feature row through the generated rules (reference
    /// implementation used by tests to prove rules ≡ tree).
    pub fn classify(&self, row: &[f32]) -> Option<u16> {
        // 1. feature tables: value → mark
        let marks: Vec<u64> = self
            .feature_tables
            .iter()
            .map(|t| {
                let v = row[t.feature] as u64;
                t.rules
                    .iter()
                    .find(|r| r.prefix.matches(v))
                    .map(|r| r.mark)
                    .expect("feature tables cover the domain")
            })
            .collect();
        // 2. model table: marks → verdict
        self.model
            .iter()
            .find(|m| {
                m.mark_patterns.iter().zip(&marks).all(|(&(val, mask), &mk)| mk & mask == val)
            })
            .map(|m| m.label)
    }
}

/// Generates Range-Marking rules for a subtree over a `feature_bits`-wide
/// integer feature domain.
pub fn generate_rules(tree: &Tree, feature_bits: u8) -> SubtreeRules {
    // Collect integer thresholds per feature.
    let mut thresholds: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for &f in &tree.features_used() {
        let ts: Vec<u64> = tree.thresholds_for(f).into_iter().map(integer_threshold).collect();
        thresholds.insert(f, ts);
    }
    let features: Vec<usize> = thresholds.keys().copied().collect();
    let feature_tables: Vec<FeatureTable> = features
        .iter()
        .map(|&f| {
            let encoder = ThermometerEncoder::new(thresholds[&f].clone(), feature_bits);
            let rules = encoder
                .elementary_ranges()
                .into_iter()
                .flat_map(|r| {
                    r.prefixes.into_iter().map(move |prefix| FeatureRule { prefix, mark: r.mark })
                })
                .collect();
            FeatureTable { feature: f, encoder, rules }
        })
        .collect();

    let index_of: BTreeMap<usize, usize> =
        features.iter().enumerate().map(|(i, &f)| (f, i)).collect();

    let model = tree
        .leaves()
        .into_iter()
        .map(|leaf| {
            let mut patterns = vec![(0u64, 0u64); features.len()];
            for step in &leaf.path {
                let fi = index_of[&step.feature];
                let enc = &feature_tables[fi].encoder;
                let t = integer_threshold(step.threshold);
                if let Some(c) = enc.constraint(t, step.went_left) {
                    let bit = 1u64 << c.bit;
                    patterns[fi].1 |= bit;
                    if c.value {
                        patterns[fi].0 |= bit;
                    } else {
                        patterns[fi].0 &= !bit;
                    }
                }
            }
            ModelRule { leaf_index: leaf.leaf_index, label: leaf.label, mark_patterns: patterns }
        })
        .collect();

    SubtreeRules { features, feature_tables, model }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splidt_dt::{train_classifier, Dataset, TrainParams};

    fn integer_dataset(seed: u64, n: usize, n_features: usize) -> Dataset {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let row: Vec<f32> = (0..n_features).map(|_| rng.random_range(0..1000) as f32).collect();
            // nontrivial label rule over integer features
            let y = (u16::from(row[0] > 300.0)
                + u16::from(row[1] > 600.0) * 2
                + u16::from(row[2] > 100.0 && row[2] <= 500.0))
                % 4;
            rows.push(row);
            labels.push(y);
        }
        Dataset::from_rows(&rows, &labels, None).unwrap()
    }

    #[test]
    fn rules_reproduce_tree_exactly() {
        let ds = integer_dataset(1, 600, 4);
        let tree = train_classifier(&ds, &TrainParams { max_depth: 6, ..Default::default() });
        let rules = generate_rules(&tree, 24);
        for i in 0..ds.n_samples() {
            let row = ds.row(i);
            assert_eq!(
                rules.classify(row),
                Some(tree.predict(row)),
                "row {i}: rules disagree with tree"
            );
        }
    }

    #[test]
    fn rules_agree_on_unseen_values() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let ds = integer_dataset(2, 400, 3);
        let tree = train_classifier(&ds, &TrainParams { max_depth: 5, ..Default::default() });
        let rules = generate_rules(&tree, 24);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let row: Vec<f32> = (0..3).map(|_| rng.random_range(0..(1 << 24)) as f32).collect();
            assert_eq!(rules.classify(&row), Some(tree.predict(&row)));
        }
    }

    #[test]
    fn one_model_rule_per_leaf() {
        let ds = integer_dataset(3, 500, 4);
        let tree = train_classifier(&ds, &TrainParams { max_depth: 7, ..Default::default() });
        let rules = generate_rules(&tree, 24);
        assert_eq!(rules.model.len(), tree.n_leaves() as usize);
        // exactly one model rule matches any input (leaves partition space)
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..500 {
            let row: Vec<f32> = (0..4).map(|_| rng.random_range(0..100000) as f32).collect();
            let marks: Vec<u64> = rules
                .feature_tables
                .iter()
                .map(|t| {
                    let v = row[t.feature] as u64;
                    t.rules.iter().find(|r| r.prefix.matches(v)).unwrap().mark
                })
                .collect();
            let hits = rules
                .model
                .iter()
                .filter(|m| {
                    m.mark_patterns.iter().zip(&marks).all(|(&(val, mask), &mk)| mk & mask == val)
                })
                .count();
            assert_eq!(hits, 1);
        }
    }

    #[test]
    fn single_leaf_tree_rules() {
        let tree = Tree::leaf(5, 10, 3);
        let rules = generate_rules(&tree, 24);
        assert!(rules.features.is_empty());
        assert_eq!(rules.model.len(), 1);
        assert_eq!(rules.classify(&[1.0, 2.0, 3.0]), Some(5));
        assert_eq!(rules.tcam_entries(), 1);
    }

    #[test]
    fn entry_and_bit_accounting() {
        let ds = integer_dataset(4, 500, 4);
        let tree = train_classifier(&ds, &TrainParams { max_depth: 6, ..Default::default() });
        let rules = generate_rules(&tree, 24);
        let expected_entries: usize =
            rules.feature_tables.iter().map(|t| t.rules.len()).sum::<usize>() + rules.model.len();
        assert_eq!(rules.tcam_entries(), expected_entries);
        let expected_bits: usize =
            rules.feature_tables.iter().map(|t| t.encoder.mark_bits() as usize).sum();
        assert_eq!(rules.mark_bits(), expected_bits);
        assert!(rules.mark_bits() > 0);
    }
}
