//! # splidt-ranging — the Range-Marking algorithm
//!
//! SpliDT (like NetBeacon \[85\], whose algorithm this reproduces) encodes
//! decision trees into TCAM with *range marks*: per-feature thermometer
//! codes in which every tree threshold owns one bit. Each leaf then
//! becomes exactly one ternary rule over the concatenated marks — the
//! encoding that avoids rule explosion and whose per-feature mark bits are
//! what makes match-key width grow with feature count (the paper's §2.1
//! TCAM-pressure argument).
//!
//! * [`ternary`] — minimal prefix covers of integer ranges;
//! * [`marks`] — thermometer encoders and elementary ranges;
//! * [`rules`] — subtree → feature-table + model-table rule generation,
//!   with a reference classifier proving rules ≡ tree.

pub mod marks;
pub mod rules;
pub mod ternary;

pub use marks::{
    elementary_cuts, integer_threshold, interval_of, BitConstraint, ElementaryRange,
    ThermometerEncoder,
};
pub use rules::{generate_rules, FeatureRule, FeatureTable, ModelRule, SubtreeRules};
pub use ternary::{range_to_prefixes, Prefix};
