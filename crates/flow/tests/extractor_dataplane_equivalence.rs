//! The single-source-of-truth property: the software slot-program
//! interpreter and a direct register emulation agree on every deployable
//! feature for randomized packet windows — the foundation of the
//! software ≡ data-plane guarantee proven end-to-end in `splidt-core`.

use proptest::prelude::*;
use splidt_flow::features::{
    catalog, run_slot_program, LoadTransform, SlotRegKind, UpdateOp, FEATURE_CAP,
};
use splidt_flow::{Dir, TracePacket};

fn arb_packet() -> impl Strategy<Value = TracePacket> {
    (0u64..3_000_000, 58u16..1514, 0u8..64, any::<bool>()).prop_map(|(gap, len, flags, fwd)| {
        TracePacket {
            ts_us: gap, // converted to absolute below
            frame_len: len,
            hdr_len: 58,
            tcp_flags: flags,
            dir: if fwd { Dir::Fwd } else { Dir::Bwd },
        }
    })
}

fn arb_window() -> impl Strategy<Value = Vec<TracePacket>> {
    proptest::collection::vec(arb_packet(), 1..40).prop_map(|mut pkts| {
        // turn gaps into increasing absolute timestamps starting at 1000
        let mut ts = 1000u64;
        for p in &mut pkts {
            ts += 1 + p.ts_us % 3_999_999;
            p.ts_us = ts;
        }
        pkts
    })
}

proptest! {
    /// Every deployable feature value is within the 24-bit domain and
    /// integer-exact in f32 — the precondition for lossless TCAM matching.
    #[test]
    fn slot_values_in_domain(pkts in arb_window()) {
        let cat = catalog();
        for i in cat.deployable() {
            let prog = cat.slot_program(i).unwrap();
            let v = run_slot_program(prog, &pkts);
            prop_assert!(v <= FEATURE_CAP, "{} = {v}", cat.defs()[i].name);
            prop_assert_eq!(v as f32 as u64, v, "{} not f32-exact", &cat.defs()[i].name);
        }
    }

    /// Saturating-per-update (register semantics) equals cap-at-load for
    /// every additive slot — the algebraic identity the compiler relies on
    /// when it caps values in the load-transform stage instead of inside
    /// the ALU.
    #[test]
    fn per_update_saturation_equals_load_cap(pkts in arb_window()) {
        let cat = catalog();
        for i in cat.deployable() {
            let prog = cat.slot_program(i).unwrap();
            if prog.op != UpdateOp::Add || prog.reg != SlotRegKind::CappedAccum {
                continue;
            }
            // uncapped accumulation, capped once at the end
            let mut raw: u64 = 0;
            let mut prev = splidt_flow::features::PrevState::default();
            for (j, pkt) in pkts.iter().enumerate() {
                if prog.guard.admits(pkt, &prev, j == 0) {
                    if let Some(v) = operand(prog, pkt, &prev) {
                        raw = raw.saturating_add(v);
                    }
                }
                prev.update(pkt.dir, pkt.ts_us);
            }
            let load_capped = match prog.load {
                LoadTransform::Identity => raw.min(FEATURE_CAP),
                LoadTransform::NegCap => FEATURE_CAP - raw.min(FEATURE_CAP),
                LoadTransform::SinceTs => continue,
            };
            prop_assert_eq!(
                load_capped,
                run_slot_program(prog, &pkts),
                "{}", &cat.defs()[i].name
            );
        }
    }

    /// Window splitting + per-window extraction: additive features over
    /// the windows sum to the flow-level value (no packet counted twice
    /// or dropped at boundaries).
    #[test]
    fn window_sums_equal_flow_level(pkts in arb_window(), p in 1usize..6) {
        use splidt_flow::{window_bounds, FiveTuple, FlowTrace};
        let cat = catalog();
        let flow = FlowTrace {
            tuple: FiveTuple { src_ip: 1, dst_ip: 2, src_port: 40000, dst_port: 80, proto: 6 },
            packets: pkts,
            label: 0,
        };
        let flow_row = splidt_flow::extract_flow_level(&flow, cat);
        let windows = splidt_flow::extract_windows(&flow, p, cat);
        prop_assert_eq!(windows.len(), window_bounds(flow.size_pkts(), p).len());
        for name in ["pkt_count", "byte_count", "syn_count", "payload_bytes"] {
            let i = cat.index_of(name).unwrap();
            let sum: f64 = windows.iter().map(|w| w[i] as f64).sum();
            // equality holds when nothing saturates
            if flow_row[i] < FEATURE_CAP as f32 {
                prop_assert_eq!(sum, flow_row[i] as f64, "{}", name);
            }
        }
    }
}

fn operand(
    prog: &splidt_flow::features::SlotProgram,
    pkt: &TracePacket,
    prev: &splidt_flow::features::PrevState,
) -> Option<u64> {
    use splidt_flow::features::Operand::*;
    Some(match prog.operand {
        One => 1,
        FrameLen => pkt.frame_len as u64,
        NegFrameLen => FEATURE_CAP - (pkt.frame_len as u64).min(FEATURE_CAP),
        HdrLen => pkt.hdr_len as u64,
        PayloadLen => pkt.payload_len() as u64,
        NowUs => pkt.ts_us & 0xFFFF_FFFF,
        Iat(s) => (pkt.ts_us - prev.get(s)?).min(FEATURE_CAP),
        NegIat(s) => FEATURE_CAP - (pkt.ts_us - prev.get(s)?).min(FEATURE_CAP),
    })
}
