//! On-wire frame emission for flow traces: serializes trace packets into
//! the Ethernet + flow-size-shim + IPv4 + TCP frames the testbed
//! generator (MoonGen in the paper, `splidt-gen` here) would put on the
//! wire. This is the single source of truth for the frame format — the
//! engine's `frame_for` and the network traffic generator both call it,
//! so a frame built by the sender parses identically on the receiver.

use crate::flow::FlowTrace;
use splidt_dataplane::packet::PacketBuilder;

/// L2+L3+L4 header bytes of an emitted frame (Ethernet 14 + shim 4 +
/// IPv4 20 + TCP 20): payload length is `frame_len − FRAME_HDR_LEN`.
pub const FRAME_HDR_LEN: u16 = 58;

/// Serializes packet `j` of a flow into an on-wire frame, allocating the
/// returned buffer. Batch loops should reuse a buffer via
/// [`frame_for_into`].
pub fn frame_for(flow: &FlowTrace, j: usize) -> Vec<u8> {
    let mut out = Vec::new();
    frame_for_into(flow, j, &mut out);
    out
}

/// Like [`frame_for`], serializing into a reusable buffer (cleared first)
/// so batch loops allocate nothing per packet once the buffer is warm.
///
/// Direction matters: backward packets swap src/dst on the wire
/// ([`FlowTrace::wire_tuple`]), exactly as the responder's traffic would
/// appear at the switch.
pub fn frame_for_into(flow: &FlowTrace, j: usize, out: &mut Vec<u8>) {
    let p = &flow.packets[j];
    let wt = flow.wire_tuple(j);
    let payload = p.frame_len.saturating_sub(FRAME_HDR_LEN);
    PacketBuilder::tcp(wt.src_ip, wt.dst_ip, wt.src_port, wt.dst_port)
        .flags(p.tcp_flags)
        .payload(payload)
        .flow_size(flow.size_pkts() as u16)
        .build_into(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Dir, FiveTuple, TracePacket};

    fn two_way_flow() -> FlowTrace {
        FlowTrace {
            tuple: FiveTuple {
                src_ip: 0x0a00_0001,
                dst_ip: 0x0b00_0002,
                src_port: 40_000,
                dst_port: 443,
                proto: 6,
            },
            packets: vec![
                TracePacket {
                    ts_us: 0,
                    frame_len: 120,
                    hdr_len: 58,
                    tcp_flags: 0x02,
                    dir: Dir::Fwd,
                },
                TracePacket {
                    ts_us: 50,
                    frame_len: 90,
                    hdr_len: 58,
                    tcp_flags: 0x10,
                    dir: Dir::Bwd,
                },
            ],
            label: 0,
        }
    }

    #[test]
    fn emitted_frames_parse_back_to_the_wire_tuple() {
        let flow = two_way_flow();
        let mut buf = Vec::new();
        for j in 0..flow.packets.len() {
            frame_for_into(&flow, j, &mut buf);
            assert_eq!(buf.len() as u16, flow.packets[j].frame_len.max(FRAME_HDR_LEN));
            let t = splidt_dataplane::peek_flow_tuple(&buf).unwrap();
            let wt = flow.wire_tuple(j);
            assert_eq!(
                (t.src_ip, t.dst_ip, t.sport, t.dport),
                (wt.src_ip, wt.dst_ip, wt.src_port, wt.dst_port)
            );
        }
    }

    #[test]
    fn owned_and_into_variants_agree() {
        let flow = two_way_flow();
        let mut buf = vec![0xAA; 4]; // stale contents must be cleared
        frame_for_into(&flow, 0, &mut buf);
        assert_eq!(buf, frame_for(&flow, 0));
    }
}
