//! # splidt-flow — traffic substrate for the SpliDT reproduction
//!
//! Everything between raw packets and ML matrices:
//!
//! * [`flow`] — flows, 5-tuples and packet traces;
//! * [`window`] — the uniform per-flow packet windows SpliDT infers over;
//! * [`features`] — the ~70-feature catalogue (CICFlowMeter-style, modified
//!   for per-window extraction like the paper's §5 "Dataset Generation"),
//!   where every deployable feature is a register **slot program** shared
//!   verbatim with the data-plane compiler;
//! * [`synthetic`] — the D1–D7 dataset analogs (see DESIGN.md for the
//!   substitution rationale);
//! * [`dataset`] — windowed / flow-level / prefix / packet-level matrices;
//! * [`dcn`] — the Webserver & Hadoop datacenter environments used for
//!   recirculation-bandwidth and time-to-detection analyses.

pub mod dataset;
pub mod dcn;
pub mod features;
pub mod flow;
pub mod synthetic;
pub mod window;
pub mod wire;

pub use dataset::{
    flow_level_dataset, packet_level_dataset, prefix_dataset, quantize_dataset, select_flows,
    stratified_split, windowed_dataset, WindowedDataset,
};
pub use dcn::{recirc_mbps_analytic, simulate_recirc, Environment, RecircStats};
pub use features::{
    catalog, extract_flow_level, extract_packet, extract_prefix, extract_window, extract_windows,
    FeatureCatalog, FeatureDef, FeatureKind, SlotProgram, FEATURE_BITS, FEATURE_CAP,
};
pub use flow::{Dir, FiveTuple, FlowTrace, TracePacket};
pub use synthetic::{
    churn, generate, spec, ChurnConfig, ChurnSchedule, DatasetId, DatasetSpec, DriftProfile,
};
pub use window::{window_bounds, window_len};
pub use wire::{frame_for, frame_for_into, FRAME_HDR_LEN};
