//! Uniform packet windows over flows (paper §3.1, "SpliDT splits each flow
//! into uniform windows").
//!
//! With `p` partitions and a flow of `n` packets, the window length is
//! `w = max(n / p, 1)`. Boundaries fall after packets `w, 2w, …` and the
//! final boundary is always the end of the flow. Flows with `n ≥ p` yield
//! exactly `p` windows; shorter flows yield `n` single-packet windows (and
//! exit the partitioned tree early at inference — the same semantics the
//! data-plane program implements with its `win_count` register).

/// Window boundaries for a flow of `n_pkts` split into `p` partitions.
///
/// Returns half-open packet-index ranges `[start, end)`, in order. The last
/// window absorbs the remainder (`n mod p`).
pub fn window_bounds(n_pkts: usize, p: usize) -> Vec<(usize, usize)> {
    assert!(p >= 1, "at least one partition");
    if n_pkts == 0 {
        return Vec::new();
    }
    let w = (n_pkts / p).max(1);
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    for j in 0..p {
        if start >= n_pkts {
            break;
        }
        let end = if j == p - 1 { n_pkts } else { ((j + 1) * w).min(n_pkts) };
        // Guard: the final window always reaches the end of the flow.
        let end = end.max(start + 1).min(n_pkts);
        out.push((start, end));
        start = end;
    }
    if let Some(last) = out.last_mut() {
        last.1 = n_pkts;
    }
    out
}

/// The uniform window length `w = max(n / p, 1)` (what the data-plane
/// program computes with its `DivConst` step).
pub fn window_len(n_pkts: usize, p: usize) -> usize {
    assert!(p >= 1);
    (n_pkts / p).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        assert_eq!(window_bounds(12, 3), vec![(0, 4), (4, 8), (8, 12)]);
        assert_eq!(window_len(12, 3), 4);
    }

    #[test]
    fn remainder_goes_to_last_window() {
        assert_eq!(window_bounds(14, 4), vec![(0, 3), (3, 6), (6, 9), (9, 14)]);
    }

    #[test]
    fn single_partition_is_whole_flow() {
        assert_eq!(window_bounds(7, 1), vec![(0, 7)]);
    }

    #[test]
    fn short_flow_fewer_windows() {
        // 2 packets, 4 partitions: w = 1 → two single-packet windows.
        assert_eq!(window_bounds(2, 4), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn exactly_p_packets() {
        assert_eq!(window_bounds(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn empty_flow() {
        assert!(window_bounds(0, 3).is_empty());
    }

    #[test]
    fn windows_partition_the_flow() {
        for n in 1..60 {
            for p in 1..8 {
                let w = window_bounds(n, p);
                assert_eq!(w[0].0, 0);
                assert_eq!(w.last().unwrap().1, n, "n={n} p={p} w={w:?}");
                for pair in w.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "contiguous n={n} p={p}");
                    assert!(pair[0].0 < pair[0].1, "non-empty n={n} p={p}");
                }
                assert!(w.len() <= p);
                if n >= p {
                    assert_eq!(w.len(), p, "full windows when n>=p: n={n} p={p}");
                }
            }
        }
    }
}
