//! Datacenter workload models: the Webserver (WS) and Hadoop (HD)
//! environments of the paper's §5 (E1/E2, from Roy et al., "Inside the
//! Social Network's (Datacenter) Network", SIGCOMM 2015).
//!
//! Only two aspects of those traces enter the paper's results: the
//! **flow-churn rate** (how often a slot turns over to a new flow, which
//! sets recirculation bandwidth — one control packet per window boundary)
//! and the **flow-duration distribution** (which sets time-to-detection).
//! We model both with log-normal mixtures calibrated so the analytic
//! recirculation numbers land on the paper's Table 5 (e.g. D1/WS/100K ≈
//! 2.4 Mbps with 5 partitions; D7/HD/1M ≈ 60 Mbps with 6 partitions).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Size in bytes of a resubmitted control packet (minimum frame).
pub const CONTROL_PKT_BYTES: u64 = 64;

/// A datacenter traffic environment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Environment {
    /// Environment name ("webserver" / "hadoop").
    pub name: String,
    /// Mean flow duration in seconds (sets churn = flows / duration).
    pub mean_duration_s: f64,
    /// ln-space σ of the flow-duration distribution.
    pub duration_sigma: f64,
    /// ln-space mean of flow size in packets.
    pub size_mu: f64,
    /// ln-space σ of flow size.
    pub size_sigma: f64,
    /// Burstiness of the aggregate recirculation process (ln-space σ of
    /// the per-bin rate modulation).
    pub burstiness: f64,
}

impl Environment {
    /// WS (E1): many long-lived flows.
    pub fn webserver() -> Self {
        Self {
            name: "webserver".into(),
            mean_duration_s: 85.0,
            duration_sigma: 1.1,
            size_mu: (600.0f64).ln(),
            size_sigma: 1.2,
            burstiness: 0.45,
        }
    }

    /// HD (E2): short, bursty mice flows.
    pub fn hadoop() -> Self {
        Self {
            name: "hadoop".into(),
            mean_duration_s: 41.0,
            duration_sigma: 1.3,
            size_mu: (120.0f64).ln(),
            size_sigma: 1.4,
            burstiness: 0.40,
        }
    }

    /// Both environments in paper order (WS, HD).
    pub fn both() -> [Environment; 2] {
        [Self::webserver(), Self::hadoop()]
    }

    /// Samples a flow duration in seconds.
    pub fn sample_duration_s(&self, rng: &mut SmallRng) -> f64 {
        // ln-normal with mean `mean_duration_s`: µ = ln(m) − σ²/2.
        let mu = self.mean_duration_s.ln() - self.duration_sigma * self.duration_sigma / 2.0;
        lognormal(rng, mu, self.duration_sigma).clamp(0.001, 3600.0)
    }

    /// Samples a flow size in packets.
    pub fn sample_size_pkts(&self, rng: &mut SmallRng) -> u64 {
        (lognormal(rng, self.size_mu, self.size_sigma).round() as u64).clamp(2, 1_000_000)
    }
}

fn randn(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn lognormal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * randn(rng)).exp()
}

/// Analytic mean recirculation bandwidth in Mbps.
///
/// Each live flow crosses `partitions − 1` window boundaries over its
/// lifetime, each boundary resubmitting one control packet:
/// `rate = n_flows / mean_duration × (p − 1)` packets/s.
pub fn recirc_mbps_analytic(env: &Environment, n_flows: u64, partitions: usize) -> f64 {
    if partitions <= 1 {
        return 0.0;
    }
    let pkts_per_s = n_flows as f64 / env.mean_duration_s * (partitions as f64 - 1.0);
    pkts_per_s * (CONTROL_PKT_BYTES * 8) as f64 / 1e6
}

/// Binned-simulation recirculation statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecircStats {
    /// Mean bandwidth over bins (Mbps) — the headline number of Tables 1/5.
    pub mean_mbps: f64,
    /// Peak bin (Mbps).
    pub max_mbps: f64,
    /// Std-dev across bins (Mbps) — the "±" of Tables 1/5.
    pub std_mbps: f64,
}

/// Simulates the aggregate recirculation process over `bins` one-second
/// bins: a Poisson-scale base rate modulated by log-normal burstiness.
pub fn simulate_recirc(
    env: &Environment,
    n_flows: u64,
    partitions: usize,
    seed: u64,
    bins: usize,
) -> RecircStats {
    let base = recirc_mbps_analytic(env, n_flows, partitions);
    if base == 0.0 {
        return RecircStats { mean_mbps: 0.0, max_mbps: 0.0, std_mbps: 0.0 };
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1CE);
    // AR(1) log-modulation: bursts are correlated across neighbouring bins.
    let mut x = 0.0f64;
    let rho = 0.6f64;
    let mut vals = Vec::with_capacity(bins);
    for _ in 0..bins {
        x = rho * x + (1.0 - rho * rho).sqrt() * randn(&mut rng);
        // E[exp(σx)] = exp(σ²/2); divide it out so the mean stays `base`.
        let m = (env.burstiness * x - env.burstiness * env.burstiness / 2.0).exp();
        vals.push(base * m);
    }
    let mean = vals.iter().sum::<f64>() / bins as f64;
    let max = vals.iter().cloned().fold(0.0f64, f64::max);
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / bins as f64;
    RecircStats { mean_mbps: mean, max_mbps: max, std_mbps: var.sqrt() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_paper_anchors() {
        // D1 / WS / 100K flows / 5 partitions ≈ 2.4 Mbps (Table 5).
        let ws = Environment::webserver();
        let v = recirc_mbps_analytic(&ws, 100_000, 5);
        assert!((2.2..2.7).contains(&v), "WS anchor: {v}");
        // D7 / HD / 1M flows / 6 partitions ≈ 60 Mbps (Table 5).
        let hd = Environment::hadoop();
        let v = recirc_mbps_analytic(&hd, 1_000_000, 6);
        assert!((55.0..70.0).contains(&v), "HD anchor: {v}");
    }

    #[test]
    fn single_partition_no_recirc() {
        let ws = Environment::webserver();
        assert_eq!(recirc_mbps_analytic(&ws, 1_000_000, 1), 0.0);
        let st = simulate_recirc(&ws, 1_000_000, 1, 1, 100);
        assert_eq!(st.max_mbps, 0.0);
    }

    #[test]
    fn bandwidth_scales_linearly_with_flows_and_partitions() {
        let ws = Environment::webserver();
        let a = recirc_mbps_analytic(&ws, 100_000, 5);
        let b = recirc_mbps_analytic(&ws, 500_000, 5);
        assert!((b / a - 5.0).abs() < 1e-9);
        let c = recirc_mbps_analytic(&ws, 100_000, 3);
        assert!((a / c - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hadoop_churns_faster_than_webserver() {
        let ws = Environment::webserver();
        let hd = Environment::hadoop();
        assert!(
            recirc_mbps_analytic(&hd, 100_000, 4) > recirc_mbps_analytic(&ws, 100_000, 4) * 1.5
        );
    }

    #[test]
    fn simulation_mean_tracks_analytic() {
        let ws = Environment::webserver();
        let st = simulate_recirc(&ws, 500_000, 5, 42, 2000);
        let base = recirc_mbps_analytic(&ws, 500_000, 5);
        assert!((st.mean_mbps / base - 1.0).abs() < 0.15, "mean {} vs base {base}", st.mean_mbps);
        assert!(st.max_mbps > st.mean_mbps);
        assert!(st.std_mbps > 0.0);
        // well under the 100 Gbps recirculation budget
        assert!(st.max_mbps < 1000.0);
    }

    #[test]
    fn duration_sampling_mean() {
        let ws = Environment::webserver();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| ws.sample_duration_s(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean / ws.mean_duration_s - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn deterministic_simulation() {
        let hd = Environment::hadoop();
        let a = simulate_recirc(&hd, 100_000, 4, 5, 100);
        let b = simulate_recirc(&hd, 100_000, 4, 5, 100);
        assert_eq!(a, b);
    }
}
