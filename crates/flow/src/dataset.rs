//! ML matrices from flow traces: windowed (SpliDT), flow-level (Leo/ideal),
//! prefix (NetBeacon phases) and packet-level (per-packet baselines).
//!
//! This module plays the role of the paper's modified CICFlowMeter plus the
//! "dataset store" of Figure 5: given raw traces it materializes the
//! feature matrices each training strategy consumes.

use crate::features::{
    catalog, extract_flow_level, extract_packet, extract_prefix, extract_windows, quantize,
};
use crate::flow::FlowTrace;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use splidt_dt::Dataset;

/// Per-window feature matrices for partitioned training.
///
/// Row `i` of every window's matrix corresponds to the same flow
/// (`flow_idx[i]` into the source slice), so Algorithm 1 can route leaf
/// subsets from window `j` to window `j+1` by row index.
#[derive(Debug, Clone)]
pub struct WindowedDataset {
    /// One dataset per window (all with identical row order and labels).
    pub per_window: Vec<Dataset>,
    /// Ground-truth labels, row-aligned.
    pub labels: Vec<u16>,
    /// Row → index into the source flow slice.
    pub flow_idx: Vec<usize>,
    /// Class count.
    pub n_classes: usize,
}

impl WindowedDataset {
    /// Number of windows (= partitions `p` it was built for).
    pub fn n_windows(&self) -> usize {
        self.per_window.len()
    }

    /// Number of flows (rows).
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }
}

/// Builds per-window matrices for `p` partitions.
///
/// Flows shorter than `p` packets (which would yield fewer than `p`
/// windows) are skipped — the synthetic generators never produce them, but
/// real traces could.
pub fn windowed_dataset(flows: &[FlowTrace], p: usize, n_classes: usize) -> WindowedDataset {
    let cat = catalog();
    let names = Some(cat.names());
    let mut rows_per_window: Vec<Vec<f32>> = vec![Vec::new(); p];
    let mut labels = Vec::new();
    let mut flow_idx = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        let wins = extract_windows(f, p, cat);
        if wins.len() < p {
            continue;
        }
        for (j, w) in wins.into_iter().enumerate() {
            rows_per_window[j].extend_from_slice(&w);
        }
        labels.push(f.label);
        flow_idx.push(i);
    }
    let per_window = rows_per_window
        .into_iter()
        .map(|flat| {
            let mut ds = Dataset::from_flat(flat, cat.len(), labels.clone(), names.clone())
                .expect("consistent matrix");
            ds.set_n_classes(n_classes);
            ds
        })
        .collect();
    WindowedDataset { per_window, labels, flow_idx, n_classes }
}

/// Flow-level matrix: one row per flow, features over the entire flow.
pub fn flow_level_dataset(flows: &[FlowTrace], n_classes: usize) -> Dataset {
    let cat = catalog();
    let mut flat = Vec::with_capacity(flows.len() * cat.len());
    let mut labels = Vec::with_capacity(flows.len());
    for f in flows {
        flat.extend_from_slice(&extract_flow_level(f, cat));
        labels.push(f.label);
    }
    let mut ds =
        Dataset::from_flat(flat, cat.len(), labels, Some(cat.names())).expect("consistent");
    ds.set_n_classes(n_classes);
    ds
}

/// Prefix matrix over the first `prefix` packets (NetBeacon's phase `j`
/// dataset uses `prefix = 2^j`; state is retained from flow start).
pub fn prefix_dataset(flows: &[FlowTrace], prefix: usize, n_classes: usize) -> Dataset {
    let cat = catalog();
    let mut flat = Vec::with_capacity(flows.len() * cat.len());
    let mut labels = Vec::with_capacity(flows.len());
    for f in flows {
        flat.extend_from_slice(&extract_prefix(f, prefix, cat));
        labels.push(f.label);
    }
    let mut ds =
        Dataset::from_flat(flat, cat.len(), labels, Some(cat.names())).expect("consistent");
    ds.set_n_classes(n_classes);
    ds
}

/// Packet-level matrix for the stateless per-packet baselines. At most
/// `max_pkts_per_flow` packets per flow are sampled (head of flow) to bound
/// the matrix.
pub fn packet_level_dataset(
    flows: &[FlowTrace],
    n_classes: usize,
    max_pkts_per_flow: usize,
) -> Dataset {
    let cat = catalog();
    let mut flat = Vec::new();
    let mut labels = Vec::new();
    for f in flows {
        for i in 0..f.size_pkts().min(max_pkts_per_flow) {
            flat.extend_from_slice(&extract_packet(f, i, cat));
            labels.push(f.label);
        }
    }
    let mut ds =
        Dataset::from_flat(flat, cat.len(), labels, Some(cat.names())).expect("consistent");
    ds.set_n_classes(n_classes);
    ds
}

/// Stratified flow-index split: `(train, test)` indices into `flows`.
pub fn stratified_split(
    flows: &[FlowTrace],
    test_frac: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(test_frac > 0.0 && test_frac < 1.0);
    let n_classes = flows.iter().map(|f| f.label).max().unwrap_or(0) as usize + 1;
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, f) in flows.iter().enumerate() {
        per_class[f.label as usize].push(i);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut idxs in per_class {
        idxs.shuffle(&mut rng);
        let n_test = ((idxs.len() as f64) * test_frac).round() as usize;
        let n_test = if idxs.len() >= 2 { n_test.clamp(1, idxs.len() - 1) } else { 0 };
        test.extend_from_slice(&idxs[..n_test]);
        train.extend_from_slice(&idxs[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

/// Materializes a subset of flows by index.
pub fn select_flows(flows: &[FlowTrace], idx: &[usize]) -> Vec<FlowTrace> {
    idx.iter().map(|&i| flows[i].clone()).collect()
}

/// Quantizes every value of a dataset to `bits` of precision (Figure 12).
pub fn quantize_dataset(ds: &Dataset, bits: u8) -> Dataset {
    let n = ds.n_samples();
    let f = ds.n_features();
    let mut flat = Vec::with_capacity(n * f);
    for i in 0..n {
        for v in ds.row(i) {
            flat.push(quantize(*v, bits));
        }
    }
    let mut out =
        Dataset::from_flat(flat, f, ds.labels().to_vec(), Some(ds.feature_names().to_vec()))
            .expect("consistent");
    out.set_n_classes(ds.n_classes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, DatasetId};

    #[test]
    fn windowed_shapes() {
        let flows = generate(DatasetId::D2, 40, 1);
        let wd = windowed_dataset(&flows, 3, 4);
        assert_eq!(wd.n_windows(), 3);
        assert_eq!(wd.n_rows(), 40, "all synthetic flows have ≥ p windows");
        for w in &wd.per_window {
            assert_eq!(w.n_samples(), 40);
            assert_eq!(w.n_features(), catalog().len());
            assert_eq!(w.n_classes(), 4);
        }
        // labels row-aligned with source flows
        for (row, &fi) in wd.flow_idx.iter().enumerate() {
            assert_eq!(wd.labels[row], flows[fi].label);
        }
    }

    #[test]
    fn flow_level_shapes() {
        let flows = generate(DatasetId::D2, 25, 2);
        let ds = flow_level_dataset(&flows, 4);
        assert_eq!(ds.n_samples(), 25);
        assert_eq!(ds.n_classes(), 4);
    }

    #[test]
    fn windows_differ_from_flow_level() {
        let flows = generate(DatasetId::D2, 10, 3);
        let wd = windowed_dataset(&flows, 4, 4);
        let fl = flow_level_dataset(&flows, 4);
        let pc = catalog().index_of("pkt_count").unwrap();
        for row in 0..10 {
            let total: f32 = (0..4).map(|w| wd.per_window[w].value(row, pc)).sum();
            assert_eq!(total, fl.value(row, pc), "window pkt counts sum to flow count");
        }
    }

    #[test]
    fn prefix_monotone_pkt_count() {
        let flows = generate(DatasetId::D3, 10, 4);
        let p2 = prefix_dataset(&flows, 2, 13);
        let p8 = prefix_dataset(&flows, 8, 13);
        let pc = catalog().index_of("pkt_count").unwrap();
        for i in 0..10 {
            assert!(p2.value(i, pc) <= p8.value(i, pc));
            assert_eq!(p2.value(i, pc), 2.0);
        }
    }

    #[test]
    fn packet_level_caps_rows() {
        let flows = generate(DatasetId::D2, 5, 5);
        let ds = packet_level_dataset(&flows, 4, 6);
        assert!(ds.n_samples() <= 30);
        assert!(ds.n_samples() >= 5);
    }

    #[test]
    fn split_is_disjoint_and_stratified() {
        let flows = generate(DatasetId::D2, 200, 6);
        let (tr, te) = stratified_split(&flows, 0.25, 9);
        assert_eq!(tr.len() + te.len(), 200);
        for i in &te {
            assert!(!tr.contains(i));
        }
        // every class present on both sides
        for side in [&tr, &te] {
            let mut seen = [false; 4];
            for &i in side.iter() {
                seen[flows[i].label as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn quantize_preserves_shape_and_reduces_levels() {
        let flows = generate(DatasetId::D2, 10, 7);
        let ds = flow_level_dataset(&flows, 4);
        let q = quantize_dataset(&ds, 8);
        assert_eq!(q.n_samples(), ds.n_samples());
        for i in 0..q.n_samples() {
            for v in q.row(i) {
                assert!(*v <= 255.0);
            }
        }
    }
}
