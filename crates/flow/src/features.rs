//! The flow-feature catalogue and window feature extraction.
//!
//! This is the reproduction of the paper's (modified) CICFlowMeter: ~70
//! features computed **per window** with state reset at window boundaries.
//! Fidelity to the data plane is by construction: every *deployable*
//! stateful feature is defined as a [`SlotProgram`] — the exact register
//! update rule a SpliDT feature slot runs (guarded saturating
//! add/max/write over a 24-bit domain) plus a load transform applied when
//! the prediction phase reads the register. The software extractor in this
//! module *interprets the same programs*, so software-side training
//! matrices and data-plane register contents agree bit-for-bit (an
//! invariant the integration tests assert).
//!
//! Three availability classes (mirroring the landscape in the paper §2):
//! * **Stateless** — per-packet header fields; all the per-packet baselines
//!   (IIsy \[79\]/Planter \[84\]) may use.
//! * **Deployable stateful** — expressible as one register slot (+ shared
//!   dependency-chain registers): counts, sums, min/max, flag counts,
//!   IAT statistics, durations. NetBeacon/Leo/SpliDT models train on these.
//! * **Software-only** — means, deviations, rates and ratios requiring
//!   division/sqrt; only the unconstrained "ideal" baseline may use them.

use crate::flow::{Dir, FlowTrace, TracePacket};
use crate::window::window_bounds;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Bit width of the feature value domain.
///
/// 2^24 − 1 caps every feature value; the cap (a) matches a saturating
/// stateful-ALU configuration and (b) keeps every value exactly
/// representable in `f32`, which is what makes software training matrices
/// and data-plane integer matching consistent.
pub const FEATURE_BITS: u8 = 24;

/// Saturation cap for feature values: `2^24 − 1`.
pub const FEATURE_CAP: u64 = (1 << FEATURE_BITS) - 1;

/// Direction scope of a stateful feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scope {
    /// Both directions.
    All,
    /// Initiator → responder packets only.
    Fwd,
    /// Responder → initiator packets only.
    Bwd,
}

impl Scope {
    /// Whether a packet direction falls in this scope.
    pub fn admits(self, dir: Dir) -> bool {
        matches!((self, dir), (Scope::All, _) | (Scope::Fwd, Dir::Fwd) | (Scope::Bwd, Dir::Bwd))
    }

    /// Short name used in feature names.
    fn tag(self) -> &'static str {
        match self {
            Scope::All => "",
            Scope::Fwd => "fwd_",
            Scope::Bwd => "bwd_",
        }
    }
}

/// The value fed to a slot's ALU when its guard admits a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// Constant 1 (counting).
    One,
    /// Frame length in bytes.
    FrameLen,
    /// `FEATURE_CAP − frame length` (for negated minimum encodings).
    NegFrameLen,
    /// Header bytes.
    HdrLen,
    /// Payload bytes.
    PayloadLen,
    /// Ingress timestamp (µs, 32-bit domain — used only by `RawTs` slots).
    NowUs,
    /// Inter-arrival gap vs. the previous packet in `Scope`, capped.
    Iat(Scope),
    /// `FEATURE_CAP − Iat(scope)` (negated minimum encoding).
    NegIat(Scope),
}

/// The register update applied when the guard admits a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateOp {
    /// Saturating add.
    Add,
    /// Running maximum.
    Max,
    /// Overwrite.
    Write,
}

/// Which kind of register cell backs the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotRegKind {
    /// 32-bit cell saturating at [`FEATURE_CAP`] (the common case).
    CappedAccum,
    /// 32-bit raw timestamp cell (no cap; load transform caps the result).
    RawTs,
}

/// Admission predicate for a slot update — realized in hardware as extra
/// match fields on the operator-selection MATs (paper §3.1.1: "to update a
/// stateful feature only on SYN packets … the MATs can include TCP flags as
/// a match condition").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Guard {
    /// Direction filter.
    pub scope: Scope,
    /// All bits of this mask must be set in the packet's TCP flags
    /// (0 = no flag condition).
    pub flags_mask: u8,
    /// Inclusive frame-length range filter.
    pub len_range: Option<(u16, u16)>,
    /// Inclusive payload-length range filter.
    pub payload_range: Option<(u16, u16)>,
    /// Requires a previous packet in `Scope` within the window (IAT
    /// validity; realized by matching the dependency register ≠ 0).
    pub require_prev: Option<Scope>,
    /// Fires only on the first packet of the window (`win_count == 1`).
    pub win_first_only: bool,
}

impl Guard {
    /// A guard admitting every packet in `scope`.
    pub fn scope(scope: Scope) -> Self {
        Self {
            scope,
            flags_mask: 0,
            len_range: None,
            payload_range: None,
            require_prev: None,
            win_first_only: false,
        }
    }

    /// Whether the guard admits this packet. `prev_ts` carries the previous
    /// timestamps per scope (All/Fwd/Bwd), `win_first` whether this is the
    /// window's first packet.
    pub fn admits(&self, pkt: &TracePacket, prev: &PrevState, win_first: bool) -> bool {
        if !self.scope.admits(pkt.dir) {
            return false;
        }
        if self.flags_mask != 0 && pkt.tcp_flags & self.flags_mask != self.flags_mask {
            return false;
        }
        if let Some((lo, hi)) = self.len_range {
            if pkt.frame_len < lo || pkt.frame_len > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.payload_range {
            let p = pkt.payload_len();
            if p < lo || p > hi {
                return false;
            }
        }
        if let Some(scope) = self.require_prev {
            if prev.get(scope).is_none() {
                return false;
            }
        }
        if self.win_first_only && !win_first {
            return false;
        }
        true
    }
}

/// How the prediction phase converts the raw register value into the
/// feature value used as a match key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadTransform {
    /// Feature value = register value.
    Identity,
    /// Feature value = `FEATURE_CAP − register` (negated minimums).
    NegCap,
    /// Feature value = `min(now − register, FEATURE_CAP)` (durations; the
    /// register holds a raw timestamp).
    SinceTs,
}

/// A deployable stateful feature: one register slot's complete program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotProgram {
    /// Admission predicate.
    pub guard: Guard,
    /// ALU update.
    pub op: UpdateOp,
    /// ALU operand.
    pub operand: Operand,
    /// Register cell kind.
    pub reg: SlotRegKind,
    /// Read-side transform.
    pub load: LoadTransform,
}

impl SlotProgram {
    /// Dependency-chain registers this slot relies on (shared across
    /// slots; determines the paper's "dependency chain" depth).
    pub fn deps(&self) -> Vec<DepRegister> {
        let mut deps = Vec::new();
        let iat_scope = match self.operand {
            Operand::Iat(s) | Operand::NegIat(s) => Some(s),
            _ => None,
        };
        if let Some(s) = iat_scope {
            deps.push(DepRegister::LastTs(s));
        }
        if let Some(s) = self.guard.require_prev {
            let d = DepRegister::LastTs(s);
            if !deps.contains(&d) {
                deps.push(d);
            }
        }
        deps
    }

    /// Pipeline stages between the dependency registers and the slot
    /// update (the paper's dependency-chain depth; ≤ 3 in our catalogue,
    /// matching §3.1.1's observation).
    pub fn dep_chain_depth(&self) -> u8 {
        match self.operand {
            // last_ts RMW → iat subtraction (+cap) → slot update.
            Operand::Iat(_) | Operand::NegIat(_) => 3,
            // plain operand → slot update.
            _ => 1,
        }
    }
}

/// Shared dependency-chain registers (one 32-bit cell per flow each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DepRegister {
    /// Timestamp of the previous packet in scope.
    LastTs(Scope),
}

/// Stateless per-packet features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatelessKind {
    /// Frame length.
    FrameLen,
    /// IPv4 TTL (constant 64 in synthetic traces; kept for API parity).
    Ttl,
    /// Raw TCP flags byte.
    TcpFlags,
    /// Initiator port.
    SrcPort,
    /// Responder port.
    DstPort,
    /// IP protocol.
    Proto,
}

/// Software-only window statistics (require division/sqrt — not deployable
/// on the match-action substrate; used by the "ideal" baseline only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftwareKind {
    /// Mean frame length in scope.
    LenMean(Scope),
    /// Population std-dev of frame length (integer sqrt).
    LenStd,
    /// Population variance of frame length.
    LenVar,
    /// Mean inter-arrival gap in scope.
    IatMean(Scope),
    /// Population std-dev of inter-arrival gaps.
    IatStd,
    /// Population variance of inter-arrival gaps.
    IatVar,
    /// Bytes per second over the window.
    BytesPerSec,
    /// Packets per second over the window.
    PktsPerSec,
    /// `100 × bwd_bytes / fwd_bytes`.
    DownUpByteRatio,
    /// `100 × bwd_pkts / fwd_pkts`.
    DownUpPktRatio,
    /// Mean payload bytes per packet.
    PayloadMean,
}

/// A feature's computation class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Per-packet header field.
    Stateless(StatelessKind),
    /// Deployable register-slot program.
    Slot(SlotProgram),
    /// Software-only statistic.
    Software(SoftwareKind),
}

/// A named feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureDef {
    /// Stable feature name.
    pub name: String,
    /// Computation class.
    pub kind: FeatureKind,
}

/// The full feature catalogue (fixed order; column `i` of every dataset is
/// feature `i` of the catalogue).
#[derive(Debug, Clone)]
pub struct FeatureCatalog {
    defs: Vec<FeatureDef>,
}

/// TCP flag constants (duplicated from the dataplane crate to keep this
/// substrate free-standing).
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
    /// URG.
    pub const URG: u8 = 0x20;
}

fn slot(
    name: String,
    guard: Guard,
    op: UpdateOp,
    operand: Operand,
    reg: SlotRegKind,
    load: LoadTransform,
) -> FeatureDef {
    FeatureDef { name, kind: FeatureKind::Slot(SlotProgram { guard, op, operand, reg, load }) }
}

impl FeatureCatalog {
    /// Builds the standard catalogue (6 stateless + 45 deployable + 15
    /// software-only = 66 features).
    pub fn standard() -> Self {
        use FeatureKind::{Software, Stateless};
        use LoadTransform::{Identity, NegCap, SinceTs};
        use Operand::*;
        use SlotRegKind::{CappedAccum, RawTs};
        use UpdateOp::{Add, Max, Write};

        let mut defs: Vec<FeatureDef> = Vec::with_capacity(66);
        // --- stateless (6)
        for (n, k) in [
            ("pkt_len", StatelessKind::FrameLen),
            ("ttl", StatelessKind::Ttl),
            ("tcp_flags", StatelessKind::TcpFlags),
            ("src_port", StatelessKind::SrcPort),
            ("dst_port", StatelessKind::DstPort),
            ("proto", StatelessKind::Proto),
        ] {
            defs.push(FeatureDef { name: n.into(), kind: Stateless(k) });
        }
        // --- deployable stateful (45)
        for s in [Scope::All, Scope::Fwd, Scope::Bwd] {
            let t = s.tag();
            defs.push(slot(
                format!("{t}pkt_count"),
                Guard::scope(s),
                Add,
                One,
                CappedAccum,
                Identity,
            ));
            defs.push(slot(
                format!("{t}byte_count"),
                Guard::scope(s),
                Add,
                FrameLen,
                CappedAccum,
                Identity,
            ));
            defs.push(slot(
                format!("{t}len_max"),
                Guard::scope(s),
                Max,
                FrameLen,
                CappedAccum,
                Identity,
            ));
            defs.push(slot(
                format!("{t}len_min"),
                Guard::scope(s),
                Max,
                NegFrameLen,
                CappedAccum,
                NegCap,
            ));
            defs.push(slot(
                format!("{t}len_last"),
                Guard::scope(s),
                Write,
                FrameLen,
                CappedAccum,
                Identity,
            ));
            defs.push(slot(
                format!("{t}payload_bytes"),
                Guard::scope(s),
                Add,
                PayloadLen,
                CappedAccum,
                Identity,
            ));
            let gp = Guard { require_prev: Some(s), ..Guard::scope(s) };
            defs.push(slot(format!("{t}iat_max"), gp, Max, Iat(s), CappedAccum, Identity));
            defs.push(slot(format!("{t}iat_min"), gp, Max, NegIat(s), CappedAccum, NegCap));
            defs.push(slot(format!("{t}iat_sum"), gp, Add, Iat(s), CappedAccum, Identity));
        }
        // 27 so far in this block; directional header bytes (2)
        for s in [Scope::Fwd, Scope::Bwd] {
            defs.push(slot(
                format!("{}hdr_bytes", s.tag()),
                Guard::scope(s),
                Add,
                HdrLen,
                CappedAccum,
                Identity,
            ));
        }
        // first-packet length (1)
        defs.push(slot(
            "len_first".into(),
            Guard { win_first_only: true, ..Guard::scope(Scope::All) },
            Write,
            FrameLen,
            CappedAccum,
            Identity,
        ));
        // window duration (1): raw-ts register written on window-first.
        defs.push(slot(
            "duration_us".into(),
            Guard { win_first_only: true, ..Guard::scope(Scope::All) },
            Write,
            NowUs,
            RawTs,
            SinceTs,
        ));
        // flag counts (6 all-scope + 4 directional)
        for (n, m) in [
            ("syn_count", flags::SYN),
            ("ack_count", flags::ACK),
            ("fin_count", flags::FIN),
            ("rst_count", flags::RST),
            ("psh_count", flags::PSH),
            ("urg_count", flags::URG),
        ] {
            defs.push(slot(
                n.into(),
                Guard { flags_mask: m, ..Guard::scope(Scope::All) },
                Add,
                One,
                CappedAccum,
                Identity,
            ));
        }
        for (s, m, n) in [
            (Scope::Fwd, flags::PSH, "fwd_psh_count"),
            (Scope::Bwd, flags::PSH, "bwd_psh_count"),
            (Scope::Fwd, flags::URG, "fwd_urg_count"),
            (Scope::Bwd, flags::URG, "bwd_urg_count"),
        ] {
            defs.push(slot(
                n.into(),
                Guard { flags_mask: m, ..Guard::scope(s) },
                Add,
                One,
                CappedAccum,
                Identity,
            ));
        }
        // size-band counts (3) + zero-payload count (1)
        defs.push(slot(
            "small_pkt_count".into(),
            Guard { len_range: Some((0, 128)), ..Guard::scope(Scope::All) },
            Add,
            One,
            CappedAccum,
            Identity,
        ));
        defs.push(slot(
            "mid_pkt_count".into(),
            Guard { len_range: Some((129, 512)), ..Guard::scope(Scope::All) },
            Add,
            One,
            CappedAccum,
            Identity,
        ));
        defs.push(slot(
            "large_pkt_count".into(),
            Guard { len_range: Some((1024, u16::MAX)), ..Guard::scope(Scope::All) },
            Add,
            One,
            CappedAccum,
            Identity,
        ));
        defs.push(slot(
            "zero_payload_count".into(),
            Guard { payload_range: Some((0, 0)), ..Guard::scope(Scope::All) },
            Add,
            One,
            CappedAccum,
            Identity,
        ));
        // --- software-only (15)
        for (n, k) in [
            ("len_mean", SoftwareKind::LenMean(Scope::All)),
            ("fwd_len_mean", SoftwareKind::LenMean(Scope::Fwd)),
            ("bwd_len_mean", SoftwareKind::LenMean(Scope::Bwd)),
            ("len_std", SoftwareKind::LenStd),
            ("len_var", SoftwareKind::LenVar),
            ("iat_mean", SoftwareKind::IatMean(Scope::All)),
            ("fwd_iat_mean", SoftwareKind::IatMean(Scope::Fwd)),
            ("bwd_iat_mean", SoftwareKind::IatMean(Scope::Bwd)),
            ("iat_std", SoftwareKind::IatStd),
            ("iat_var", SoftwareKind::IatVar),
            ("bytes_per_sec", SoftwareKind::BytesPerSec),
            ("pkts_per_sec", SoftwareKind::PktsPerSec),
            ("down_up_byte_ratio", SoftwareKind::DownUpByteRatio),
            ("down_up_pkt_ratio", SoftwareKind::DownUpPktRatio),
            ("payload_mean", SoftwareKind::PayloadMean),
        ] {
            defs.push(FeatureDef { name: n.into(), kind: Software(k) });
        }
        Self { defs }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if the catalogue is empty (it never is for `standard`).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// All definitions, column-ordered.
    pub fn defs(&self) -> &[FeatureDef] {
        &self.defs
    }

    /// Feature names, column-ordered.
    pub fn names(&self) -> Vec<String> {
        self.defs.iter().map(|d| d.name.clone()).collect()
    }

    /// Index of a feature by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.defs.iter().position(|d| d.name == name)
    }

    /// Column indices of deployable (register-slot) features.
    pub fn deployable(&self) -> Vec<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d.kind, FeatureKind::Slot(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Column indices of stateless features.
    pub fn stateless(&self) -> Vec<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d.kind, FeatureKind::Stateless(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Column indices of deployable + stateless features (what NetBeacon,
    /// Leo and SpliDT models may train on).
    pub fn hardware_eligible(&self) -> Vec<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| !matches!(d.kind, FeatureKind::Software(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// The slot program of feature `i`, if deployable.
    pub fn slot_program(&self, i: usize) -> Option<&SlotProgram> {
        match &self.defs[i].kind {
            FeatureKind::Slot(p) => Some(p),
            _ => None,
        }
    }
}

/// The shared standard catalogue.
pub fn catalog() -> &'static FeatureCatalog {
    static CAT: OnceLock<FeatureCatalog> = OnceLock::new();
    CAT.get_or_init(FeatureCatalog::standard)
}

/// Previous-timestamp dependency state (per scope), window-local.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrevState {
    all: Option<u64>,
    fwd: Option<u64>,
    bwd: Option<u64>,
}

impl PrevState {
    /// Previous timestamp in scope, if any.
    pub fn get(&self, s: Scope) -> Option<u64> {
        match s {
            Scope::All => self.all,
            Scope::Fwd => self.fwd,
            Scope::Bwd => self.bwd,
        }
    }

    /// Records a packet's timestamp in all applicable scopes.
    pub fn update(&mut self, dir: Dir, ts: u64) {
        self.all = Some(ts);
        match dir {
            Dir::Fwd => self.fwd = Some(ts),
            Dir::Bwd => self.bwd = Some(ts),
        }
    }
}

/// Capped IAT against the previous packet of `scope`, exactly as the
/// data-plane computes it: `min(now − last_ts, FEATURE_CAP)`.
fn iat_value(scope: Scope, now: u64, prev: &PrevState) -> Option<u64> {
    prev.get(scope).map(|last| (now - last).min(FEATURE_CAP))
}

fn operand_value(op: Operand, pkt: &TracePacket, prev: &PrevState) -> Option<u64> {
    Some(match op {
        Operand::One => 1,
        Operand::FrameLen => pkt.frame_len as u64,
        Operand::NegFrameLen => FEATURE_CAP - (pkt.frame_len as u64).min(FEATURE_CAP),
        Operand::HdrLen => pkt.hdr_len as u64,
        Operand::PayloadLen => pkt.payload_len() as u64,
        Operand::NowUs => pkt.ts_us & 0xFFFF_FFFF,
        Operand::Iat(s) => iat_value(s, pkt.ts_us, prev)?,
        Operand::NegIat(s) => FEATURE_CAP - iat_value(s, pkt.ts_us, prev)?,
    })
}

/// Executes one slot program over a window of packets, mirroring the
/// register semantics (saturating 24-bit accumulators / raw 32-bit
/// timestamp cells) exactly.
pub fn run_slot_program(prog: &SlotProgram, pkts: &[TracePacket]) -> u64 {
    let mut reg: u64 = 0;
    let mut prev = PrevState::default();
    let cap = match prog.reg {
        SlotRegKind::CappedAccum => FEATURE_CAP,
        SlotRegKind::RawTs => 0xFFFF_FFFF,
    };
    for (i, pkt) in pkts.iter().enumerate() {
        if prog.guard.admits(pkt, &prev, i == 0) {
            if let Some(v) = operand_value(prog.operand, pkt, &prev) {
                reg = match prog.op {
                    UpdateOp::Add => reg.saturating_add(v).min(cap),
                    UpdateOp::Max => reg.max(v.min(cap)),
                    UpdateOp::Write => v.min(cap),
                };
            }
        }
        prev.update(pkt.dir, pkt.ts_us);
    }
    // Load transform at the window boundary (the boundary packet is the
    // window's last packet).
    match prog.load {
        LoadTransform::Identity => reg,
        LoadTransform::NegCap => FEATURE_CAP - reg.min(FEATURE_CAP),
        LoadTransform::SinceTs => {
            let now = pkts.last().map(|p| p.ts_us & 0xFFFF_FFFF).unwrap_or(0);
            now.saturating_sub(reg).min(FEATURE_CAP)
        }
    }
}

/// Window aggregates feeding the software-only statistics.
#[derive(Debug, Default, Clone)]
struct WindowStats {
    n: [u64; 3],
    len_sum: [u64; 3],
    len_sumsq: u64,
    iat_n: [u64; 3],
    iat_sum: [u64; 3],
    iat_sumsq: u64,
    payload_sum: u64,
    bytes: u64,
    duration_us: u64,
}

fn scope_idx(s: Scope) -> usize {
    match s {
        Scope::All => 0,
        Scope::Fwd => 1,
        Scope::Bwd => 2,
    }
}

fn window_stats(pkts: &[TracePacket]) -> WindowStats {
    let mut st = WindowStats::default();
    let mut prev = PrevState::default();
    for pkt in pkts {
        let len = pkt.frame_len as u64;
        let scopes: [usize; 2] = [0, if pkt.dir == Dir::Fwd { 1 } else { 2 }];
        for &s in &scopes {
            st.n[s] += 1;
            st.len_sum[s] += len;
        }
        st.len_sumsq += len * len;
        st.payload_sum += pkt.payload_len() as u64;
        st.bytes += len;
        for (s, scope) in [(0, Scope::All), (1, Scope::Fwd), (2, Scope::Bwd)] {
            if scope.admits(pkt.dir) {
                if let Some(iat) = iat_value(scope, pkt.ts_us, &prev) {
                    st.iat_n[s] += 1;
                    st.iat_sum[s] += iat;
                    if s == 0 {
                        st.iat_sumsq += iat * iat;
                    }
                }
            }
        }
        prev.update(pkt.dir, pkt.ts_us);
    }
    st.duration_us = match (pkts.first(), pkts.last()) {
        (Some(a), Some(b)) => b.ts_us - a.ts_us,
        _ => 0,
    };
    st
}

fn ratio(num: u64, den: u64) -> u64 {
    num.checked_div(den).unwrap_or(0)
}

fn software_value(kind: SoftwareKind, st: &WindowStats) -> u64 {
    let v = match kind {
        SoftwareKind::LenMean(s) => ratio(st.len_sum[scope_idx(s)], st.n[scope_idx(s)]),
        SoftwareKind::LenVar | SoftwareKind::LenStd => {
            let n = st.n[0];
            let var = match n {
                0 => 0,
                _ => {
                    let mean = st.len_sum[0] / n;
                    (st.len_sumsq / n).saturating_sub(mean * mean)
                }
            };
            if matches!(kind, SoftwareKind::LenVar) {
                var
            } else {
                var.isqrt()
            }
        }
        SoftwareKind::IatMean(s) => ratio(st.iat_sum[scope_idx(s)], st.iat_n[scope_idx(s)]),
        SoftwareKind::IatVar | SoftwareKind::IatStd => {
            let n = st.iat_n[0];
            let var = match n {
                0 => 0,
                _ => {
                    let mean = st.iat_sum[0] / n;
                    (st.iat_sumsq / n).saturating_sub(mean * mean)
                }
            };
            if matches!(kind, SoftwareKind::IatVar) {
                var
            } else {
                var.isqrt()
            }
        }
        SoftwareKind::BytesPerSec => {
            ratio(st.bytes.saturating_mul(1_000_000), st.duration_us.max(1))
        }
        SoftwareKind::PktsPerSec => ratio(st.n[0].saturating_mul(1_000_000), st.duration_us.max(1)),
        SoftwareKind::DownUpByteRatio => ratio(st.len_sum[2] * 100, st.len_sum[1].max(1)),
        SoftwareKind::DownUpPktRatio => ratio(st.n[2] * 100, st.n[1].max(1)),
        SoftwareKind::PayloadMean => ratio(st.payload_sum, st.n[0]),
    };
    v.min(FEATURE_CAP)
}

fn stateless_value(kind: StatelessKind, flow: &FlowTrace, pkt: &TracePacket) -> u64 {
    match kind {
        StatelessKind::FrameLen => pkt.frame_len as u64,
        StatelessKind::Ttl => 64,
        StatelessKind::TcpFlags => pkt.tcp_flags as u64,
        StatelessKind::SrcPort => flow.tuple.src_port as u64,
        StatelessKind::DstPort => flow.tuple.dst_port as u64,
        StatelessKind::Proto => flow.tuple.proto as u64,
    }
}

/// Extracts the full feature row for one window of a flow.
///
/// Stateless columns use the window's **last** packet (the boundary packet
/// — the one the prediction phase observes).
pub fn extract_window(flow: &FlowTrace, pkts: &[TracePacket], cat: &FeatureCatalog) -> Vec<f32> {
    let st = window_stats(pkts);
    let boundary = pkts.last();
    cat.defs()
        .iter()
        .map(|def| {
            let v = match &def.kind {
                FeatureKind::Stateless(k) => {
                    boundary.map(|p| stateless_value(*k, flow, p)).unwrap_or(0)
                }
                FeatureKind::Slot(p) => run_slot_program(p, pkts),
                FeatureKind::Software(k) => software_value(*k, &st),
            };
            v as f32
        })
        .collect()
}

/// Extracts feature rows for all windows of a flow under `p` partitions.
pub fn extract_windows(flow: &FlowTrace, p: usize, cat: &FeatureCatalog) -> Vec<Vec<f32>> {
    window_bounds(flow.size_pkts(), p)
        .into_iter()
        .map(|(a, b)| extract_window(flow, &flow.packets[a..b], cat))
        .collect()
}

/// Flow-level features: one window spanning the whole flow (what the
/// one-shot baselines — NetBeacon's final phase, Leo, ideal — consume).
pub fn extract_flow_level(flow: &FlowTrace, cat: &FeatureCatalog) -> Vec<f32> {
    extract_window(flow, &flow.packets, cat)
}

/// Features over the first `prefix` packets (NetBeacon's phase datasets:
/// state retained from the flow start).
pub fn extract_prefix(flow: &FlowTrace, prefix: usize, cat: &FeatureCatalog) -> Vec<f32> {
    let end = prefix.min(flow.size_pkts());
    extract_window(flow, &flow.packets[..end], cat)
}

/// Per-packet stateless row (full catalogue width; non-stateless columns
/// zero). The per-packet baseline restricts training to
/// [`FeatureCatalog::stateless`] columns.
pub fn extract_packet(flow: &FlowTrace, i: usize, cat: &FeatureCatalog) -> Vec<f32> {
    let pkt = &flow.packets[i];
    cat.defs()
        .iter()
        .map(|def| match &def.kind {
            FeatureKind::Stateless(k) => stateless_value(*k, flow, pkt) as f32,
            _ => 0.0,
        })
        .collect()
}

/// Quantizes a feature value to `bits` of precision (Figure 12's
/// experiment): keeps the top `bits` of the 24-bit domain.
pub fn quantize(v: f32, bits: u8) -> f32 {
    assert!((1..=FEATURE_BITS).contains(&bits));
    let shift = FEATURE_BITS - bits;
    (((v as u64).min(FEATURE_CAP)) >> shift) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;

    fn mk_flow(pkts: Vec<TracePacket>) -> FlowTrace {
        FlowTrace {
            tuple: FiveTuple { src_ip: 1, dst_ip: 2, src_port: 40000, dst_port: 80, proto: 6 },
            packets: pkts,
            label: 0,
        }
    }

    fn pkt(ts: u64, len: u16, flags: u8, dir: Dir) -> TracePacket {
        TracePacket { ts_us: ts, frame_len: len, hdr_len: 54, tcp_flags: flags, dir }
    }

    #[test]
    fn catalogue_shape() {
        let c = catalog();
        assert_eq!(c.len(), 66);
        assert_eq!(c.stateless().len(), 6);
        assert_eq!(c.deployable().len(), 45);
        assert_eq!(c.len() - c.hardware_eligible().len(), 15);
        // names unique
        let mut names = c.names();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 66);
    }

    #[test]
    fn counts_and_sums() {
        let c = catalog();
        let f = mk_flow(vec![
            pkt(0, 100, flags::SYN, Dir::Fwd),
            pkt(10, 200, flags::ACK, Dir::Bwd),
            pkt(30, 300, flags::ACK | flags::PSH, Dir::Fwd),
        ]);
        let row = extract_window(&f, &f.packets, c);
        let v = |n: &str| row[c.index_of(n).unwrap()] as u64;
        assert_eq!(v("pkt_count"), 3);
        assert_eq!(v("fwd_pkt_count"), 2);
        assert_eq!(v("bwd_pkt_count"), 1);
        assert_eq!(v("byte_count"), 600);
        assert_eq!(v("fwd_byte_count"), 400);
        assert_eq!(v("len_max"), 300);
        assert_eq!(v("len_min"), 100);
        assert_eq!(v("len_last"), 300);
        assert_eq!(v("len_first"), 100);
        assert_eq!(v("syn_count"), 1);
        assert_eq!(v("ack_count"), 2);
        assert_eq!(v("psh_count"), 1);
        assert_eq!(v("fwd_psh_count"), 1);
        assert_eq!(v("bwd_psh_count"), 0);
    }

    #[test]
    fn iat_semantics() {
        let c = catalog();
        let f = mk_flow(vec![
            pkt(0, 100, 0, Dir::Fwd),
            pkt(10, 100, 0, Dir::Bwd),
            pkt(40, 100, 0, Dir::Fwd),
            pkt(100, 100, 0, Dir::Fwd),
        ]);
        let row = extract_window(&f, &f.packets, c);
        let v = |n: &str| row[c.index_of(n).unwrap()] as u64;
        // gaps: 10, 30, 60 (all-scope)
        assert_eq!(v("iat_max"), 60);
        assert_eq!(v("iat_min"), 10);
        assert_eq!(v("iat_sum"), 100);
        // fwd gaps: 40 (0→40), 60 (40→100)
        assert_eq!(v("fwd_iat_max"), 60);
        assert_eq!(v("fwd_iat_min"), 40);
        // single bwd packet: no gap → min decodes to CAP, max/sum to 0
        assert_eq!(v("bwd_iat_max"), 0);
        assert_eq!(v("bwd_iat_min"), FEATURE_CAP);
        assert_eq!(v("duration_us"), 100);
    }

    #[test]
    fn min_with_no_packets_is_cap() {
        let c = catalog();
        let f = mk_flow(vec![pkt(0, 100, 0, Dir::Fwd)]);
        let row = extract_window(&f, &f.packets, c);
        let v = |n: &str| row[c.index_of(n).unwrap()] as u64;
        // no bwd packets at all → bwd_len_min decodes to CAP
        assert_eq!(v("bwd_len_min"), FEATURE_CAP);
        assert_eq!(v("bwd_pkt_count"), 0);
    }

    #[test]
    fn saturation_at_cap() {
        let prog = SlotProgram {
            guard: Guard::scope(Scope::All),
            op: UpdateOp::Add,
            operand: Operand::Iat(Scope::All),
            reg: SlotRegKind::CappedAccum,
            load: LoadTransform::Identity,
        };
        // huge gaps: each capped, then the sum saturates at CAP
        let pkts = vec![
            pkt(0, 100, 0, Dir::Fwd),
            pkt(20_000_000, 100, 0, Dir::Fwd),
            pkt(40_000_000, 100, 0, Dir::Fwd),
        ];
        // first gap is capped: min(20e6, CAP) = CAP → register saturates
        assert_eq!(run_slot_program(&prog, &pkts), FEATURE_CAP);
    }

    #[test]
    fn band_counts() {
        let c = catalog();
        let f = mk_flow(vec![
            pkt(0, 60, 0, Dir::Fwd),
            pkt(1, 128, 0, Dir::Fwd),
            pkt(2, 129, 0, Dir::Fwd),
            pkt(3, 512, 0, Dir::Fwd),
            pkt(4, 1024, 0, Dir::Fwd),
            pkt(5, 1514, 0, Dir::Fwd),
        ]);
        let row = extract_window(&f, &f.packets, c);
        let v = |n: &str| row[c.index_of(n).unwrap()] as u64;
        assert_eq!(v("small_pkt_count"), 2);
        assert_eq!(v("mid_pkt_count"), 2);
        assert_eq!(v("large_pkt_count"), 2);
        // hdr_len 54 → frames of 60 bytes have payload 6; none zero here
        assert_eq!(v("zero_payload_count"), 0);
    }

    #[test]
    fn software_stats() {
        let c = catalog();
        let f = mk_flow(vec![
            pkt(0, 100, 0, Dir::Fwd),
            pkt(500_000, 200, 0, Dir::Bwd),
            pkt(1_000_000, 300, 0, Dir::Fwd),
        ]);
        let row = extract_window(&f, &f.packets, c);
        let v = |n: &str| row[c.index_of(n).unwrap()] as u64;
        assert_eq!(v("len_mean"), 200);
        assert_eq!(v("fwd_len_mean"), 200);
        assert_eq!(v("bwd_len_mean"), 200);
        assert_eq!(v("iat_mean"), 500_000);
        // bytes/s: 600 bytes over 1 s
        assert_eq!(v("bytes_per_sec"), 600);
        assert_eq!(v("pkts_per_sec"), 3);
        // bwd 200 bytes / fwd 400 bytes → 50
        assert_eq!(v("down_up_byte_ratio"), 50);
        assert_eq!(v("down_up_pkt_ratio"), 50);
    }

    #[test]
    fn windows_reset_state() {
        let c = catalog();
        let f = mk_flow(vec![
            pkt(0, 1000, 0, Dir::Fwd),
            pkt(10, 1000, 0, Dir::Fwd),
            pkt(20, 60, 0, Dir::Fwd),
            pkt(30, 60, 0, Dir::Fwd),
        ]);
        let wins = extract_windows(&f, 2, c);
        assert_eq!(wins.len(), 2);
        let i = c.index_of("len_max").unwrap();
        assert_eq!(wins[0][i] as u64, 1000);
        assert_eq!(wins[1][i] as u64, 60, "window 2 must not see window 1's max");
        // IAT across the boundary (20µs gap between pkt1 and pkt2) must not
        // leak into window 2's gaps.
        let j = c.index_of("iat_max").unwrap();
        assert_eq!(wins[1][j] as u64, 10);
    }

    #[test]
    fn prefix_extraction_retains_state() {
        let c = catalog();
        let f = mk_flow(vec![
            pkt(0, 1000, 0, Dir::Fwd),
            pkt(10, 60, 0, Dir::Fwd),
            pkt(20, 60, 0, Dir::Fwd),
        ]);
        let p2 = extract_prefix(&f, 2, c);
        let p3 = extract_prefix(&f, 3, c);
        let i = c.index_of("pkt_count").unwrap();
        assert_eq!(p2[i] as u64, 2);
        assert_eq!(p3[i] as u64, 3);
        let m = c.index_of("len_max").unwrap();
        assert_eq!(p3[m] as u64, 1000);
    }

    #[test]
    fn packet_rows_are_stateless_only() {
        let c = catalog();
        let f = mk_flow(vec![pkt(0, 777, flags::SYN, Dir::Fwd)]);
        let row = extract_packet(&f, 0, c);
        assert_eq!(row[c.index_of("pkt_len").unwrap()] as u64, 777);
        assert_eq!(row[c.index_of("dst_port").unwrap()] as u64, 80);
        assert_eq!(row[c.index_of("pkt_count").unwrap()] as u64, 0);
    }

    #[test]
    fn quantization() {
        assert_eq!(quantize(FEATURE_CAP as f32, 24), FEATURE_CAP as f32);
        assert_eq!(quantize(255.0, 16), 0.0); // low 8 bits dropped
        assert_eq!(quantize(65536.0, 16), 256.0);
        assert_eq!(quantize(FEATURE_CAP as f32, 8), 255.0);
    }

    #[test]
    fn all_values_capped_and_f32_exact() {
        let c = catalog();
        let f =
            mk_flow((0..200).map(|i| pkt(i * 30_000_000, 1514, flags::ACK, Dir::Fwd)).collect());
        let row = extract_flow_level(&f, c);
        for (i, v) in row.iter().enumerate() {
            assert!(*v <= FEATURE_CAP as f32, "feature {} = {} exceeds cap", c.defs()[i].name, v);
            assert_eq!(*v, (*v as u64) as f32, "feature {} not integer-exact", c.defs()[i].name);
        }
    }

    #[test]
    fn dep_chain_depths() {
        let c = catalog();
        for i in c.deployable() {
            let p = c.slot_program(i).unwrap();
            assert!(p.dep_chain_depth() <= 3, "{}", c.defs()[i].name);
        }
        let iat = c.slot_program(c.index_of("iat_max").unwrap()).unwrap();
        assert_eq!(iat.dep_chain_depth(), 3);
        assert_eq!(iat.deps(), vec![DepRegister::LastTs(Scope::All)]);
    }
}
