//! Synthetic dataset generators: D1–D7 analogs.
//!
//! The paper evaluates on seven real traffic datasets (CIC-IoMT2024,
//! CIC-IoT2023-a/b, ISCX-VPN2016, CampusTraffic, CIC-IDS2017/2018) that we
//! cannot redistribute. These generators substitute synthetic analogs with
//! the *properties the paper's results rest on* (see DESIGN.md §1):
//!
//! 1. the same class counts (19, 4, 13, 11, 32, 10, 10);
//! 2. **phase-local signatures** — each class perturbs a sparse set of
//!    traffic knobs (packet sizes, gaps, flag rates, direction mix) in
//!    specific *phases* of the flow, so different windows carry different
//!    discriminative features (this is what makes window-based partitioned
//!    trees with per-subtree feature sets outperform one-shot top-k trees);
//! 3. per-subtree feature sparsity (≈10 % of the catalogue per subtree),
//!    which emerges from (2) and is verified empirically by the Table 1
//!    harness;
//! 4. graded difficulty (label noise + knob overlap) chosen so the F1
//!    bands land near the paper's per-dataset levels.
//!
//! Generation is fully deterministic: every flow derives its own RNG from
//! `(dataset seed, flow index)`.

use crate::flow::{Dir, FiveTuple, FlowTrace, TracePacket};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of behavioural phases a flow moves through (fixed; windows need
/// not align with phases — that is the point: partition search has to find
/// configurations whose windows capture the signal).
pub const PHASES: usize = 4;

/// The seven datasets of the paper's Table 2, as synthetic analogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// CIC-IoMT2024 analog: 19-class medical-IoT intrusion detection.
    D1,
    /// CIC-IoT2023-a analog: 4 coarse IoT traffic classes.
    D2,
    /// ISCX-VPN2016 analog: 13-class VPN/non-VPN detection.
    D3,
    /// CampusTraffic analog: 11 application types.
    D4,
    /// CIC-IoT2023-b analog: 32-class IoT threat taxonomy.
    D5,
    /// CIC-IDS2017 analog: 10-class intrusion detection.
    D6,
    /// CIC-IDS2018 analog: 10-class anomaly detection.
    D7,
}

impl DatasetId {
    /// All seven datasets in paper order.
    pub fn all() -> [DatasetId; 7] {
        use DatasetId::*;
        [D1, D2, D3, D4, D5, D6, D7]
    }

    /// Paper-aligned short id ("D1"…"D7").
    pub fn tag(self) -> &'static str {
        match self {
            DatasetId::D1 => "D1",
            DatasetId::D2 => "D2",
            DatasetId::D3 => "D3",
            DatasetId::D4 => "D4",
            DatasetId::D5 => "D5",
            DatasetId::D6 => "D6",
            DatasetId::D7 => "D7",
        }
    }
}

/// Generation parameters of one dataset analog.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper-aligned id.
    pub id: DatasetId,
    /// Descriptive name.
    pub name: String,
    /// Number of classes.
    pub n_classes: u16,
    /// Scale of class-signature knob perturbations (higher = easier).
    pub knob_spread: f64,
    /// Label-noise probability (higher = harder; caps attainable F1).
    pub label_noise: f64,
    /// Number of (phase, knob) signature perturbations per class.
    pub sig_knobs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// The spec for a dataset id.
pub fn spec(id: DatasetId) -> DatasetSpec {
    let (name, n_classes, knob_spread, label_noise, sig_knobs, seed) = match id {
        DatasetId::D1 => ("CIC-IoMT2024 analog", 19, 1.15, 0.08, 12, 101),
        DatasetId::D2 => ("CIC-IoT2023-a analog", 4, 1.30, 0.04, 6, 102),
        DatasetId::D3 => ("ISCX-VPN2016 analog", 13, 1.25, 0.04, 9, 103),
        DatasetId::D4 => ("CampusTraffic analog", 11, 1.05, 0.08, 8, 104),
        DatasetId::D5 => ("CIC-IoT2023-b analog", 32, 1.00, 0.10, 12, 105),
        DatasetId::D6 => ("CIC-IDS2017 analog", 10, 1.90, 0.008, 9, 106),
        DatasetId::D7 => ("CIC-IDS2018 analog", 10, 2.20, 0.003, 9, 107),
    };
    DatasetSpec { id, name: name.to_string(), n_classes, knob_spread, label_noise, sig_knobs, seed }
}

/// The per-phase traffic knobs a class signature perturbs.
#[derive(Debug, Clone, Copy)]
struct Knobs {
    /// ln-space mean of frame length.
    len_mu: f64,
    /// ln-space std of frame length.
    len_sigma: f64,
    /// ln-space mean of inter-arrival gap (µs).
    iat_mu: f64,
    /// ln-space std of gaps.
    iat_sigma: f64,
    /// PSH flag probability.
    psh_prob: f64,
    /// URG flag probability.
    urg_prob: f64,
    /// Fraction of forward-direction packets.
    fwd_frac: f64,
    /// Probability of a minimal (ACK-like, 60-byte) packet.
    small_prob: f64,
    /// Probability of a zero-payload packet.
    zero_payload_prob: f64,
}

const N_KNOBS: usize = 9;

impl Knobs {
    fn base() -> Self {
        Self {
            len_mu: (300.0f64).ln(),
            len_sigma: 0.6,
            iat_mu: (3000.0f64).ln(),
            iat_sigma: 0.9,
            psh_prob: 0.15,
            urg_prob: 0.02,
            fwd_frac: 0.55,
            small_prob: 0.25,
            zero_payload_prob: 0.10,
        }
    }

    /// Applies signature delta `d` (in [-1, 1] × spread) to knob `k`.
    fn perturb(&mut self, k: usize, d: f64) {
        match k {
            0 => self.len_mu += d * 0.9,
            1 => self.len_sigma = (self.len_sigma + d * 0.35).clamp(0.05, 1.5),
            2 => self.iat_mu += d * 1.2,
            3 => self.iat_sigma = (self.iat_sigma + d * 0.5).clamp(0.05, 2.0),
            4 => self.psh_prob = (self.psh_prob + d * 0.35).clamp(0.0, 0.95),
            5 => self.urg_prob = (self.urg_prob + d * 0.25).clamp(0.0, 0.9),
            6 => self.fwd_frac = (self.fwd_frac + d * 0.3).clamp(0.05, 0.95),
            7 => self.small_prob = (self.small_prob + d * 0.35).clamp(0.0, 0.95),
            8 => self.zero_payload_prob = (self.zero_payload_prob + d * 0.3).clamp(0.0, 0.9),
            _ => unreachable!(),
        }
    }
}

/// A class's behavioural signature: sparse per-phase knob perturbations
/// plus a small global shift.
#[derive(Debug, Clone)]
struct ClassProfile {
    /// (phase, knob, delta) perturbations.
    signature: Vec<(usize, usize, f64)>,
    /// Small global deltas (knob, delta) applied to every phase.
    global: Vec<(usize, f64)>,
    /// ln-space mean of flow size in packets.
    size_mu: f64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Standard normal via Box–Muller (rand_distr is outside the dependency
/// budget).
fn randn(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn lognormal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * randn(rng)).exp()
}

fn class_profiles(spec: &DatasetSpec) -> Vec<ClassProfile> {
    let mut rng = SmallRng::seed_from_u64(splitmix64(spec.seed));
    (0..spec.n_classes)
        .map(|_| {
            let signature = (0..spec.sig_knobs)
                .map(|_| {
                    let phase = rng.random_range(0..PHASES);
                    let knob = rng.random_range(0..N_KNOBS);
                    // Minimum magnitude 0.5×spread: a signature must rise
                    // above per-window sampling noise to be learnable.
                    let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                    let delta = sign * (0.5 + 0.5 * rng.random::<f64>()) * spec.knob_spread;
                    (phase, knob, delta)
                })
                .collect();
            let global = (0..2)
                .map(|_| {
                    let knob = rng.random_range(0..N_KNOBS);
                    // Global shifts are deliberately weak: one-shot top-k
                    // models can exploit them, phase signatures they cannot.
                    let delta = (rng.random::<f64>() * 2.0 - 1.0) * spec.knob_spread * 0.25;
                    (knob, delta)
                })
                .collect();
            let size_mu = (64.0f64).ln() + (rng.random::<f64>() - 0.5) * 0.6;
            ClassProfile { signature, global, size_mu }
        })
        .collect()
}

/// Well-known responder ports (uncorrelated with class, so ports alone
/// carry no label signal).
const SERVER_PORTS: [u16; 8] = [80, 443, 53, 22, 25, 123, 110, 993];

/// Generates `n_flows` labelled flows for dataset `id`. `seed` perturbs the
/// draw (class profiles stay fixed per dataset — they are the dataset).
pub fn generate(id: DatasetId, n_flows: usize, seed: u64) -> Vec<FlowTrace> {
    let spec = spec(id);
    let profiles = class_profiles(&spec);
    (0..n_flows).map(|i| generate_flow(&spec, &profiles, i, seed, None)).collect()
}

/// A concept-drift transform: how post-drift flows change behaviour while
/// keeping their labels.
///
/// The rotation remaps *which behavioural profile a label exhibits* — after
/// drift, flows labelled `c` are generated from class `(c + rotate) %
/// n_classes`'s signature. A model trained pre-drift therefore mispredicts
/// systematically (it reports the rotated class), while a model retrained on
/// post-drift digests learns the new mapping and recovers. `knob_shift`
/// optionally layers a global distribution shift (e.g. all packets larger)
/// on top. Applying a drift consumes no extra RNG draws, so pre-drift flows
/// are byte-identical with and without a configured drift.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftProfile {
    /// Post-drift flows labelled `c` behave like class `(c + rotate) %
    /// n_classes`. `0` disables the remap.
    pub rotate: u16,
    /// Extra `(knob, delta)` perturbations applied to every phase of every
    /// post-drift flow (see the knob indices in the module source).
    pub knob_shift: Vec<(usize, f64)>,
}

impl Default for DriftProfile {
    fn default() -> Self {
        Self { rotate: 1, knob_shift: Vec::new() }
    }
}

fn generate_flow(
    spec: &DatasetSpec,
    profiles: &[ClassProfile],
    flow_idx: usize,
    seed: u64,
    drift: Option<&DriftProfile>,
) -> FlowTrace {
    let mut rng =
        SmallRng::seed_from_u64(splitmix64(spec.seed ^ seed.rotate_left(17) ^ flow_idx as u64));
    // Balanced class assignment with deterministic per-flow noise.
    let true_class = (flow_idx % spec.n_classes as usize) as u16;
    let label = true_class;
    // Label noise: generate the flow from a *different* class's behaviour
    // while keeping the (now wrong) label — irreducible error, like
    // mislabelled real-world captures.
    let gen_class = if rng.random::<f64>() < spec.label_noise {
        rng.random_range(0..spec.n_classes)
    } else {
        true_class
    };
    // Concept drift: remap the behavioural profile *after* the noise draw so
    // the RNG stream (and thus every pre-drift flow) is unchanged.
    let gen_class = match drift {
        Some(d) => (gen_class + d.rotate) % spec.n_classes,
        None => gen_class,
    };
    let profile = &profiles[gen_class as usize];

    let size = lognormal(&mut rng, profile.size_mu, 0.55).round() as usize;
    let size = size.clamp(12, 512);

    // Per-phase knob tables for this flow's class.
    let mut phase_knobs: Vec<Knobs> = (0..PHASES)
        .map(|ph| {
            let mut k = Knobs::base();
            for &(knob, d) in &profile.global {
                k.perturb(knob, d);
            }
            for &(phase, knob, d) in &profile.signature {
                if phase == ph {
                    k.perturb(knob, d);
                }
            }
            k
        })
        .collect();
    if let Some(d) = drift {
        for k in &mut phase_knobs {
            for &(knob, delta) in &d.knob_shift {
                k.perturb(knob, delta);
            }
        }
    }
    // Tiny per-flow jitter so flows of a class are not identical.
    for k in &mut phase_knobs {
        k.len_mu += (rng.random::<f64>() - 0.5) * 0.1;
        k.iat_mu += (rng.random::<f64>() - 0.5) * 0.1;
    }

    let tuple = FiveTuple {
        src_ip: 0x0a00_0000 | (flow_idx as u32 & 0x00FF_FFFF),
        dst_ip: 0xc0a8_0000 | ((flow_idx as u32).wrapping_mul(2654435761) & 0xFFFF),
        src_port: 32768 + (splitmix64(flow_idx as u64 ^ spec.seed) % 28000) as u16,
        dst_port: SERVER_PORTS[rng.random_range(0..SERVER_PORTS.len())],
        proto: 6,
    };

    let mut packets = Vec::with_capacity(size);
    let mut ts: u64 = 0;
    for i in 0..size {
        let phase = (i * PHASES / size).min(PHASES - 1);
        let k = &phase_knobs[phase];
        let dir = if i == 0 {
            Dir::Fwd // initiator opens
        } else if i == 1 {
            Dir::Bwd // responder replies
        } else if rng.random::<f64>() < k.fwd_frac {
            Dir::Fwd
        } else {
            Dir::Bwd
        };
        // On-wire header: Ethernet(14) + flow-size shim(4) + IPv4(20) +
        // TCP(20) = 58 bytes; the serialized frames in the runtime match
        // this exactly, so frame/payload features agree bit-for-bit.
        let hdr_len: u16 = 58;
        let frame_len = if rng.random::<f64>() < k.small_prob {
            64
        } else if rng.random::<f64>() < k.zero_payload_prob {
            hdr_len
        } else {
            (lognormal(&mut rng, k.len_mu, k.len_sigma).round() as u16).clamp(64, 1514)
        };
        let mut flags = crate::features::flags::ACK;
        if i == 0 {
            flags = crate::features::flags::SYN;
        } else if i == 1 {
            flags = crate::features::flags::SYN | crate::features::flags::ACK;
        } else {
            if rng.random::<f64>() < k.psh_prob {
                flags |= crate::features::flags::PSH;
            }
            if rng.random::<f64>() < k.urg_prob {
                flags |= crate::features::flags::URG;
            }
            if i == size - 1 {
                flags |= crate::features::flags::FIN;
            }
        }
        if i > 0 {
            let gap = lognormal(&mut rng, k.iat_mu, k.iat_sigma).round() as u64;
            ts += gap.clamp(1, 4_000_000);
        }
        packets.push(TracePacket { ts_us: ts, frame_len, hdr_len, tcp_flags: flags, dir });
    }

    FlowTrace { tuple, packets, label }
}

// ------------------------------------------------------------------ churn

/// Configuration of a churn trace: overlapping flow arrivals and
/// departures, so a bounded-slot engine sees far more distinct flows than
/// it has register slots.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of distinct flows in the schedule.
    pub flows: usize,
    /// Mean gap between consecutive flow arrivals (µs); actual gaps are
    /// exponentially distributed around it, so arrivals are bursty the
    /// way real traffic is.
    pub mean_arrival_gap_us: u64,
    /// Multiplier applied to every intra-flow timestamp — the lifetime
    /// distribution knob (`< 1` compresses flows into shorter lives,
    /// `> 1` stretches them, raising concurrency).
    pub lifetime_scale: f64,
    /// Fraction of flows opening with a proper SYN / SYN-ACK handshake.
    /// The remainder are *mid-capture* flows — their first packets carry
    /// plain ACKs, the shape a capture that started after the handshake
    /// (or scan/backscatter traffic) presents to a SYN-gated admission
    /// policy. Default 1.0 (every flow opens with SYN).
    pub syn_open_frac: f64,
    /// Fraction of flows closing abortively with RST instead of FIN on
    /// their final packet. Default 0.0 (every flow closes with FIN).
    pub rst_close_frac: f64,
    /// Concept drift onset: flows with index `>= drift_at` (i.e. arriving
    /// after the first `drift_at` flows — arrival order follows flow index)
    /// are generated under [`ChurnConfig::drift_profile`]. `None` disables
    /// drift. Default `None`.
    pub drift_at: Option<usize>,
    /// The drift applied from `drift_at` onwards.
    pub drift_profile: DriftProfile,
    /// RNG seed for arrivals and per-flow draws.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            flows: 2048,
            mean_arrival_gap_us: 500,
            lifetime_scale: 0.05,
            syn_open_frac: 1.0,
            rst_close_frac: 0.0,
            drift_at: None,
            drift_profile: DriftProfile::default(),
            seed: 1,
        }
    }
}

/// A churn schedule: labelled flows plus their staggered arrival offsets.
/// Flow `i` starts at `starts[i]`; its packet `j` hits the wire at
/// `starts[i] + flows[i].packets[j].ts_us`.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    /// The distinct flows, lifetimes already scaled.
    pub flows: Vec<FlowTrace>,
    /// Arrival offset of each flow (µs), non-decreasing.
    pub starts: Vec<u64>,
}

impl ChurnSchedule {
    /// The merged packet timeline: `(ts_us, flow_idx, pkt_idx)` sorted by
    /// timestamp (ties by flow then packet, so the order is total and
    /// deterministic).
    pub fn events(&self) -> Vec<(u64, usize, usize)> {
        let mut ev = Vec::with_capacity(self.flows.iter().map(|f| f.size_pkts()).sum());
        for (i, (f, &base)) in self.flows.iter().zip(&self.starts).enumerate() {
            for (j, p) in f.packets.iter().enumerate() {
                ev.push((base + p.ts_us, i, j));
            }
        }
        ev.sort_unstable();
        ev
    }

    /// Timestamp of the last packet in the schedule.
    pub fn span_us(&self) -> u64 {
        self.flows
            .iter()
            .zip(&self.starts)
            .map(|(f, &base)| base + f.packets.last().map(|p| p.ts_us).unwrap_or(0))
            .max()
            .unwrap_or(0)
    }
}

/// Generates a churn schedule over dataset `id`: `cfg.flows` distinct
/// labelled flows (unique 5-tuples, same class balance as [`generate`])
/// arriving at exponential gaps, with intra-flow timestamps scaled by
/// `cfg.lifetime_scale` and TCP flag shapes (SYN-opened vs mid-capture,
/// FIN vs RST close) drawn per flow. Flows from `cfg.drift_at` onwards are
/// generated under `cfg.drift_profile` (labels unchanged, behaviour
/// remapped), so a model frozen before the drift point visibly decays.
/// Deterministic in `(id, cfg)`.
pub fn churn(id: DatasetId, cfg: &ChurnConfig) -> ChurnSchedule {
    let dspec = spec(id);
    let profiles = class_profiles(&dspec);
    let mut flows: Vec<FlowTrace> = (0..cfg.flows)
        .map(|i| {
            let drift = cfg.drift_at.filter(|&at| i >= at).map(|_| &cfg.drift_profile);
            generate_flow(&dspec, &profiles, i, cfg.seed, drift)
        })
        .collect();
    let mut shape_rng = SmallRng::seed_from_u64(splitmix64(cfg.seed ^ 0x7C9_F1A6));
    for f in &mut flows {
        for p in &mut f.packets {
            p.ts_us = ((p.ts_us as f64) * cfg.lifetime_scale).round() as u64;
        }
        // Scaling must not reorder (it cannot: monotone map), but it can
        // collapse gaps to zero — keep timestamps non-decreasing as-is.
        debug_assert!(f.is_time_ordered());
        // TCP flag shaping: strip the handshake from mid-capture flows
        // (their openers become plain ACKs — a SYN-gated admission policy
        // must refuse them), and close a slice abortively with RST.
        use crate::features::flags;
        if shape_rng.random::<f64>() >= cfg.syn_open_frac {
            for p in f.packets.iter_mut().take(2) {
                p.tcp_flags = flags::ACK;
            }
        }
        if shape_rng.random::<f64>() < cfg.rst_close_frac {
            if let Some(last) = f.packets.last_mut() {
                last.tcp_flags = flags::RST | flags::ACK;
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(splitmix64(cfg.seed ^ 0xC0FF_EE00));
    let mut starts = Vec::with_capacity(cfg.flows);
    let mut t = 1_000u64;
    for _ in 0..cfg.flows {
        starts.push(t);
        let u: f64 = rng.random::<f64>().max(1e-12);
        let gap = (-u.ln() * cfg.mean_arrival_gap_us as f64).round() as u64;
        t += gap.clamp(1, cfg.mean_arrival_gap_us.saturating_mul(20).max(1));
    }
    ChurnSchedule { flows, starts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(DatasetId::D2, 20, 7);
        let b = generate(DatasetId::D2, 20, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tuple, y.tuple);
            assert_eq!(x.packets, y.packets);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn different_seed_different_flows() {
        let a = generate(DatasetId::D2, 20, 7);
        let b = generate(DatasetId::D2, 20, 8);
        assert!(a.iter().zip(&b).any(|(x, y)| x.packets != y.packets));
    }

    #[test]
    fn class_counts_match_paper() {
        let expected = [19u16, 4, 13, 11, 32, 10, 10];
        for (id, want) in DatasetId::all().into_iter().zip(expected) {
            assert_eq!(spec(id).n_classes, want, "{}", id.tag());
        }
    }

    #[test]
    fn flows_are_well_formed() {
        for f in generate(DatasetId::D5, 50, 1) {
            assert!(f.size_pkts() >= 12 && f.size_pkts() <= 512);
            assert!(f.is_time_ordered());
            assert!(f.tuple.src_port >= 32768, "ephemeral initiator port");
            assert!(f.tuple.dst_port < 9000, "service responder port");
            assert_eq!(f.packets[0].dir, Dir::Fwd);
            assert!(f.packets[0].tcp_flags & crate::features::flags::SYN != 0);
            // labels within range
            assert!(f.label < 32);
            for p in &f.packets {
                assert!(p.frame_len >= 58 && p.frame_len <= 1514);
            }
        }
    }

    #[test]
    fn labels_are_balanced() {
        let spec = spec(DatasetId::D2);
        let flows = generate(DatasetId::D2, 400, 3);
        let mut counts = vec![0usize; spec.n_classes as usize];
        for f in &flows {
            counts[f.label as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 100);
        }
    }

    #[test]
    fn classes_are_behaviourally_distinct() {
        // Mean frame length should differ measurably across at least one
        // pair of classes (coarse sanity that signatures do something).
        let flows = generate(DatasetId::D2, 400, 9);
        let mut mean_len = [(0u64, 0u64); 4];
        for f in &flows {
            let e = &mut mean_len[f.label as usize];
            e.0 += f.total_bytes();
            e.1 += f.size_pkts() as u64;
        }
        let means: Vec<f64> =
            mean_len.iter().map(|(b, n)| *b as f64 / (*n).max(1) as f64).collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 20.0, "class mean-length spread too small: {means:?}");
    }

    #[test]
    fn churn_schedule_is_deterministic_and_overlapping() {
        let cfg = ChurnConfig { flows: 300, ..Default::default() };
        let a = churn(DatasetId::D2, &cfg);
        let b = churn(DatasetId::D2, &cfg);
        assert_eq!(a.starts, b.starts);
        assert_eq!(a.flows.len(), 300);
        assert!(a.starts.windows(2).all(|w| w[0] <= w[1]), "arrivals ordered");
        // Genuine churn: many flows are in flight at once somewhere in
        // the schedule (flow i still alive when flow i+8 arrives).
        let overlapping = a
            .flows
            .iter()
            .zip(&a.starts)
            .zip(a.starts.iter().skip(8))
            .filter(|((f, &s), &later)| s + f.packets.last().unwrap().ts_us > later)
            .count();
        assert!(overlapping > 50, "only {overlapping} overlapping flows");
        // events are globally time-sorted and cover every packet
        let ev = a.events();
        assert_eq!(ev.len(), a.flows.iter().map(|f| f.size_pkts()).sum::<usize>());
        assert!(ev.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(a.span_us() > *a.starts.last().unwrap());
    }

    #[test]
    fn churn_lifetime_scale_compresses_flows() {
        let slow = churn(DatasetId::D2, &ChurnConfig { flows: 50, ..Default::default() });
        let fast = churn(
            DatasetId::D2,
            &ChurnConfig { flows: 50, lifetime_scale: 0.01, ..Default::default() },
        );
        let dur = |s: &ChurnSchedule| s.flows.iter().map(|f| f.duration_us()).sum::<u64>();
        assert!(dur(&fast) < dur(&slow) / 2, "scaling must shorten lifetimes");
        for f in &fast.flows {
            assert!(f.is_time_ordered());
        }
    }

    #[test]
    fn churn_tcp_flag_shapes() {
        use crate::features::flags;
        let cfg = ChurnConfig {
            flows: 400,
            syn_open_frac: 0.75,
            rst_close_frac: 0.25,
            ..Default::default()
        };
        let s = churn(DatasetId::D2, &cfg);
        let syn_opened =
            s.flows.iter().filter(|f| f.packets[0].tcp_flags & flags::SYN != 0).count();
        let rst_closed = s
            .flows
            .iter()
            .filter(|f| f.packets.last().unwrap().tcp_flags & flags::RST != 0)
            .count();
        let fin_closed = s
            .flows
            .iter()
            .filter(|f| f.packets.last().unwrap().tcp_flags & flags::FIN != 0)
            .count();
        // The draws are random but deterministic; bound them loosely.
        assert!((200..=380).contains(&syn_opened), "syn_opened {syn_opened}");
        assert!((40..=180).contains(&rst_closed), "rst_closed {rst_closed}");
        assert_eq!(fin_closed + rst_closed, 400, "every flow closes with FIN or RST");
        // Mid-capture flows carry no SYN anywhere.
        for f in s.flows.iter().filter(|f| f.packets[0].tcp_flags & flags::SYN == 0) {
            assert!(f.packets.iter().all(|p| p.tcp_flags & flags::SYN == 0));
        }
        // Defaults preserve the original shapes: SYN open, FIN close.
        let plain = churn(DatasetId::D2, &ChurnConfig { flows: 50, ..Default::default() });
        for f in &plain.flows {
            assert!(f.packets[0].tcp_flags & flags::SYN != 0);
            assert!(f.packets.last().unwrap().tcp_flags & flags::FIN != 0);
        }
        // Deterministic in the config.
        let again = churn(DatasetId::D2, &cfg);
        for (a, b) in s.flows.iter().zip(&again.flows) {
            assert_eq!(a.packets, b.packets);
        }
    }

    #[test]
    fn drift_changes_only_post_drift_flows() {
        let base = ChurnConfig { flows: 200, ..Default::default() };
        let drifted = ChurnConfig { drift_at: Some(100), ..base.clone() };
        let a = churn(DatasetId::D2, &base);
        let b = churn(DatasetId::D2, &drifted);
        assert_eq!(a.starts, b.starts, "arrival schedule unaffected by drift");
        for i in 0..100 {
            assert_eq!(a.flows[i].packets, b.flows[i].packets, "pre-drift flow {i} changed");
        }
        let changed = (100..200).filter(|&i| a.flows[i].packets != b.flows[i].packets).count();
        assert!(changed > 60, "only {changed}/100 post-drift flows changed");
        // Labels are the point of drift: they stay put while behaviour moves.
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.tuple, y.tuple);
        }
        // Deterministic in the config.
        let again = churn(DatasetId::D2, &drifted);
        for (x, y) in b.flows.iter().zip(&again.flows) {
            assert_eq!(x.packets, y.packets);
        }
    }

    #[test]
    fn drift_rotates_class_behaviour() {
        // Post-drift flows labelled `c` should look like pre-drift flows of
        // class `c+1`: compare per-label mean frame lengths across the
        // boundary and against the rotated class's pre-drift mean.
        let cfg = ChurnConfig {
            flows: 800,
            drift_at: Some(400),
            drift_profile: DriftProfile { rotate: 1, knob_shift: Vec::new() },
            ..Default::default()
        };
        let s = churn(DatasetId::D2, &cfg);
        let mean_len = |flows: &[FlowTrace], label: u16| {
            let (bytes, pkts) = flows
                .iter()
                .filter(|f| f.label == label)
                .fold((0u64, 0u64), |(b, n), f| (b + f.total_bytes(), n + f.size_pkts() as u64));
            bytes as f64 / pkts.max(1) as f64
        };
        let mut max_shift = 0.0f64;
        for c in 0..4u16 {
            let pre = mean_len(&s.flows[..400], c);
            let post = mean_len(&s.flows[400..], c);
            let rotated_pre = mean_len(&s.flows[..400], (c + 1) % 4);
            max_shift = max_shift.max((post - pre).abs());
            // The post-drift behaviour of label c tracks class c+1's
            // pre-drift behaviour more closely than its own.
            assert!(
                (post - rotated_pre).abs() <= (post - pre).abs() + 15.0,
                "label {c}: post {post:.1} pre {pre:.1} rotated-pre {rotated_pre:.1}"
            );
        }
        assert!(max_shift > 10.0, "drift moved no label's mean length ({max_shift:.1})");
    }

    #[test]
    fn drift_knob_shift_applies() {
        let cfg = ChurnConfig {
            flows: 100,
            drift_at: Some(0),
            drift_profile: DriftProfile { rotate: 0, knob_shift: vec![(0, 1.0)] },
            ..Default::default()
        };
        let shifted = churn(DatasetId::D2, &cfg);
        let plain = churn(DatasetId::D2, &ChurnConfig { flows: 100, ..Default::default() });
        let total = |s: &ChurnSchedule| s.flows.iter().map(|f| f.total_bytes()).sum::<u64>();
        assert!(
            total(&shifted) > total(&plain) * 11 / 10,
            "len_mu +1.0 must inflate total bytes ({} vs {})",
            total(&shifted),
            total(&plain)
        );
    }

    #[test]
    fn unique_tuples() {
        let flows = generate(DatasetId::D3, 300, 5);
        let mut tuples: Vec<_> = flows.iter().map(|f| f.tuple).collect();
        tuples.sort_by_key(|t| (t.src_ip, t.src_port, t.dst_ip, t.dst_port));
        let n = tuples.len();
        tuples.dedup();
        assert_eq!(tuples.len(), n, "5-tuples must be unique per flow");
    }
}
