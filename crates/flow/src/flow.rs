//! Flows and packet traces.
//!
//! A [`FlowTrace`] is a labelled, bidirectional sequence of packets sharing
//! a canonical 5-tuple. Traces are what the synthetic dataset generators
//! produce, what the feature extractor consumes, and what the runtime
//! serializes into real frames for the data-plane simulator.

use serde::{Deserialize, Serialize};

/// Direction of a packet relative to the flow initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Initiator → responder (client → server).
    Fwd,
    /// Responder → initiator.
    Bwd,
}

/// The canonical 5-tuple identifying a flow, oriented initiator → responder.
///
/// By construction (and by the convention the data-plane direction table
/// relies on), the responder port is a well-known service port `< 1024` and
/// the initiator port is ephemeral `≥ 32768`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Initiator IPv4 address.
    pub src_ip: u32,
    /// Responder IPv4 address.
    pub dst_ip: u32,
    /// Initiator (ephemeral) port.
    pub src_port: u16,
    /// Responder (service) port.
    pub dst_port: u16,
    /// IP protocol (6 = TCP, 17 = UDP).
    pub proto: u8,
}

/// One packet of a flow trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracePacket {
    /// Timestamp in microseconds from trace epoch.
    pub ts_us: u64,
    /// Frame length in bytes (on-wire).
    pub frame_len: u16,
    /// L2+L3+L4 header bytes (payload = frame_len − hdr_len).
    pub hdr_len: u16,
    /// TCP flags (0 for UDP).
    pub tcp_flags: u8,
    /// Direction.
    pub dir: Dir,
}

impl TracePacket {
    /// Payload bytes carried by the packet.
    pub fn payload_len(&self) -> u16 {
        self.frame_len.saturating_sub(self.hdr_len)
    }
}

/// A labelled flow: its tuple, packets (time-ordered), and ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowTrace {
    /// Canonical 5-tuple.
    pub tuple: FiveTuple,
    /// Packets in timestamp order.
    pub packets: Vec<TracePacket>,
    /// Ground-truth class.
    pub label: u16,
}

impl FlowTrace {
    /// Flow size in packets (what the flow-size shim carries).
    pub fn size_pkts(&self) -> usize {
        self.packets.len()
    }

    /// Total bytes across both directions.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.frame_len as u64).sum()
    }

    /// Duration from first to last packet, in microseconds.
    pub fn duration_us(&self) -> u64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.ts_us - a.ts_us,
            _ => 0,
        }
    }

    /// Checks timestamps are non-decreasing (generator invariant).
    pub fn is_time_ordered(&self) -> bool {
        self.packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us)
    }

    /// The on-wire 5-tuple of packet `i`: Bwd packets swap src/dst.
    pub fn wire_tuple(&self, i: usize) -> FiveTuple {
        let t = self.tuple;
        match self.packets[i].dir {
            Dir::Fwd => t,
            Dir::Bwd => FiveTuple {
                src_ip: t.dst_ip,
                dst_ip: t.src_ip,
                src_port: t.dst_port,
                dst_port: t.src_port,
                proto: t.proto,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowTrace {
        FlowTrace {
            tuple: FiveTuple {
                src_ip: 0x0a000001,
                dst_ip: 0x0a000002,
                src_port: 40000,
                dst_port: 443,
                proto: 6,
            },
            packets: vec![
                TracePacket { ts_us: 0, frame_len: 100, hdr_len: 54, tcp_flags: 2, dir: Dir::Fwd },
                TracePacket { ts_us: 50, frame_len: 80, hdr_len: 54, tcp_flags: 18, dir: Dir::Bwd },
                TracePacket {
                    ts_us: 90,
                    frame_len: 1500,
                    hdr_len: 54,
                    tcp_flags: 16,
                    dir: Dir::Fwd,
                },
            ],
            label: 3,
        }
    }

    #[test]
    fn basic_accessors() {
        let f = flow();
        assert_eq!(f.size_pkts(), 3);
        assert_eq!(f.total_bytes(), 1680);
        assert_eq!(f.duration_us(), 90);
        assert!(f.is_time_ordered());
        assert_eq!(f.packets[0].payload_len(), 46);
    }

    #[test]
    fn wire_tuple_swaps_for_bwd() {
        let f = flow();
        let fwd = f.wire_tuple(0);
        let bwd = f.wire_tuple(1);
        assert_eq!(fwd.src_port, 40000);
        assert_eq!(bwd.src_port, 443);
        assert_eq!(bwd.dst_ip, f.tuple.src_ip);
        assert_eq!(bwd.proto, fwd.proto);
    }

    #[test]
    fn time_order_detects_violation() {
        let mut f = flow();
        f.packets[2].ts_us = 10;
        assert!(!f.is_time_ordered());
    }
}
