//! `splidt-serve` — the ingress receiver: trains the standard fixture
//! model, builds a sharded engine, then classifies live traffic from a
//! UDP socket (or a pcap file) through the per-shard ring ingress
//! service until the sender's stop sentinel (or the idle-exit backstop).
//!
//! ```text
//! splidt-serve [--addr 127.0.0.1:0] [--shards 2] [--flow-slots 256]
//!              [--time-scale 2.0] [--idle-exit-ms 5000]
//!              [--ring 1024] [--batch 256] [--expect-classified N]
//! splidt-serve --pcap churn.pcap [...]
//! ```
//!
//! Prints `READY listening on ADDR` once the socket is bound and the
//! model is trained — scripts wait for that line before starting
//! `splidt-gen`. Exits nonzero if the ingress accounting does not
//! reconcile or (with `--expect-classified`) too few flows classified.

use splidt_core::engine::EngineBuilder;
use splidt_core::{train_partitioned, LifecyclePolicy, SplidtConfig};
use splidt_flow::{catalog, generate, select_flows, stratified_split, windowed_dataset, DatasetId};
use splidt_net::pcap::PcapSource;
use splidt_net::service::{classified_flows, run_ingress, IngressConfig, IngressOutcome};
use splidt_net::source::UdpSource;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    pcap: Option<String>,
    shards: usize,
    flow_slots: usize,
    time_scale: f64,
    idle_exit_ms: u64,
    ring: usize,
    batch: usize,
    expect_classified: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        pcap: None,
        shards: 2,
        flow_slots: 256,
        time_scale: 2.0,
        idle_exit_ms: 5_000,
        ring: 1024,
        batch: 256,
        expect_classified: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--pcap" => args.pcap = Some(val("--pcap")),
            "--shards" => args.shards = val("--shards").parse().expect("numeric shard count"),
            "--flow-slots" => {
                args.flow_slots = val("--flow-slots").parse().expect("numeric slot count")
            }
            "--time-scale" => args.time_scale = val("--time-scale").parse().expect("numeric scale"),
            "--idle-exit-ms" => {
                args.idle_exit_ms = val("--idle-exit-ms").parse().expect("numeric ms")
            }
            "--ring" => args.ring = val("--ring").parse().expect("numeric ring capacity"),
            "--batch" => args.batch = val("--batch").parse().expect("numeric batch size"),
            "--expect-classified" => {
                args.expect_classified = Some(val("--expect-classified").parse().expect("numeric"))
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    // Standard fixture model (same recipe as the churn/hot-path smokes).
    let train = generate(DatasetId::D2, 220, 7);
    let (tr, _) = stratified_split(&train, 0.6, 2);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&select_flows(&train, &tr), 3, 4);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());

    // Lifecycle timeouts are calibrated against schedule time; the
    // generator stretches the wire timeline by its time-scale, so the
    // receiver stretches its timeouts to match.
    let idle_us = (100_000.0 * args.time_scale) as u64;
    let pinned_us = (150_000.0 * args.time_scale) as u64;
    let mut engine = EngineBuilder::new(&model)
        .flow_slots(args.flow_slots)
        .idle_timeout_us(idle_us)
        .lifecycle_policy(LifecyclePolicy::tcp().pin_class(3).pinned_timeout_us(pinned_us))
        .build_sharded(args.shards)
        .expect("fixture model compiles");

    let cfg = IngressConfig {
        ring_capacity: args.ring,
        max_frame: 2048,
        batch: args.batch,
        ..IngressConfig::default()
    };
    let outcome = if let Some(path) = &args.pcap {
        let source = match PcapSource::open(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("splidt-serve: opening {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("READY replaying {path}");
        run_ingress(&mut engine, source, &cfg)
    } else {
        let source = match UdpSource::bind(&args.addr) {
            Ok(s) => s.idle_exit(Duration::from_millis(args.idle_exit_ms)),
            Err(e) => {
                eprintln!("splidt-serve: binding {} failed: {e}", args.addr);
                return ExitCode::FAILURE;
            }
        };
        // The readiness line scripts grep for (stdout, flushed by \n).
        println!("READY listening on {}", source.local_addr().expect("bound socket has an addr"));
        run_ingress(&mut engine, source, &cfg)
    };

    let IngressOutcome { stats, batch, report } = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("splidt-serve: ingress failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let io = engine.engines()[0].io();
    let classified = classified_flows(io.digest_flow_idx, io.digest_fp, &batch.digests);
    println!(
        "ingress: received {} = steered {} + ring_full {} + malformed {} (consumed {}) — \
         reconciled: {}",
        stats.received,
        stats.steered,
        stats.dropped_ring_full,
        stats.dropped_malformed,
        stats.shards.iter().map(|s| s.consumed).sum::<u64>(),
        stats.reconciles(),
    );
    for (i, s) in stats.shards.iter().enumerate() {
        println!(
            "  shard {i}: steered {} ring_full {} consumed {}",
            s.steered, s.dropped_ring_full, s.consumed
        );
    }
    println!(
        "engine: {} packets, {} digests, {} distinct flows classified (lifecycle reconciled: {})",
        report.meters.packets,
        batch.digests.len(),
        classified,
        report.lifecycle.reconciles(),
    );

    if !stats.reconciles() {
        eprintln!("splidt-serve: ingress accounting did NOT reconcile");
        return ExitCode::FAILURE;
    }
    if let Some(floor) = args.expect_classified {
        if classified < floor {
            eprintln!("splidt-serve: classified {classified} < expected floor {floor}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
