//! `splidt-gen` — the loopback traffic generator (the paper testbed's
//! MoonGen stand-in). Builds the deterministic churn schedule from
//! `splidt_flow::synthetic` and either replays it as UDP datagrams
//! against a `splidt-serve` receiver or writes it out as a classic pcap
//! file for `splidt-serve --pcap`.
//!
//! ```text
//! splidt-gen --addr 127.0.0.1:9909 [--flows 4096] [--seed 11]
//!            [--time-scale 2.0] [--stop-repeats 8]
//! splidt-gen --pcap-out churn.pcap [--flows 4096] [--seed 11]
//! ```
//!
//! The schedule knobs (arrival gaps, lifetime scale, SYN/RST fractions)
//! are fixed to the churn-fixture values used by `churn_smoke`, so a
//! loopback run exercises exactly the workload the lifecycle gates were
//! calibrated against.

use splidt_flow::{churn, frame_for, ChurnConfig, DatasetId};
use splidt_net::gen::{replay_udp, GenConfig};
use splidt_net::pcap::write_pcap;
use std::net::SocketAddr;
use std::process::ExitCode;

struct Args {
    addr: Option<SocketAddr>,
    pcap_out: Option<String>,
    flows: usize,
    seed: u64,
    time_scale: f64,
    stop_repeats: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        pcap_out: None,
        flows: 4096,
        seed: 11,
        time_scale: 2.0,
        stop_repeats: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = Some(val("--addr").parse().expect("host:port")),
            "--pcap-out" => args.pcap_out = Some(val("--pcap-out")),
            "--flows" => args.flows = val("--flows").parse().expect("numeric flow count"),
            "--seed" => args.seed = val("--seed").parse().expect("numeric seed"),
            "--time-scale" => args.time_scale = val("--time-scale").parse().expect("numeric scale"),
            "--stop-repeats" => {
                args.stop_repeats = val("--stop-repeats").parse().expect("numeric count")
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    // Churn-fixture schedule shape (see splidt_bench::churn): only the
    // flow count and seed are adjustable from the command line.
    let schedule = churn(
        DatasetId::D2,
        &ChurnConfig {
            flows: args.flows,
            mean_arrival_gap_us: 500,
            lifetime_scale: 0.05,
            syn_open_frac: 0.95,
            rst_close_frac: 0.25,
            seed: args.seed,
            ..Default::default()
        },
    );
    let events = schedule.events();
    eprintln!(
        "splidt-gen: {} flows, {} packets, schedule span {:.2}s (time-scale {})",
        schedule.flows.len(),
        events.len(),
        schedule.span_us() as f64 / 1e6,
        args.time_scale,
    );

    if let Some(path) = &args.pcap_out {
        let frames: Vec<(Vec<u8>, u64)> =
            events.into_iter().map(|(ts, i, j)| (frame_for(&schedule.flows[i], j), ts)).collect();
        if let Err(e) = write_pcap(path, &frames) {
            eprintln!("splidt-gen: writing {path} failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("splidt-gen: wrote {} records to {path}", frames.len());
        return ExitCode::SUCCESS;
    }

    let Some(addr) = args.addr else {
        eprintln!("splidt-gen: need --addr HOST:PORT (or --pcap-out FILE)");
        return ExitCode::FAILURE;
    };
    let cfg = GenConfig {
        time_scale: args.time_scale,
        stop_repeats: args.stop_repeats,
        ..GenConfig::default()
    };
    match replay_udp(&schedule, addr, &cfg) {
        Ok(report) => {
            let secs = report.elapsed_us as f64 / 1e6;
            eprintln!(
                "splidt-gen: sent {} frames / {} bytes in {:.2}s ({:.0} pps) to {addr}",
                report.sent,
                report.bytes,
                secs,
                report.sent as f64 / secs.max(1e-9),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("splidt-gen: replay to {addr} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
