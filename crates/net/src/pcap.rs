//! Minimal classic-pcap (libpcap) file support: a streaming
//! [`PcapSource`] reader for ingress replay, and a writer so tests and
//! demos can produce captures without external tooling.
//!
//! Supported: the classic format only (not pcapng), both byte orders,
//! microsecond (`0xA1B2C3D4`) and nanosecond (`0xA1B23C4D`) timestamp
//! magics, link type Ethernet. Records longer than the reader's buffer
//! are truncated (snaplen semantics) — the parser then rejects them as
//! malformed, which is the honest outcome for a frame we cannot fully
//! see.

use crate::source::FrameSource;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC_US: u32 = 0xA1B2_C3D4;
const MAGIC_NS: u32 = 0xA1B2_3C4D;
/// LINKTYPE_ETHERNET.
const LINKTYPE_EN10MB: u32 = 1;
/// Upper bound on a record's stored length: anything bigger is a corrupt
/// header, not a frame (guards allocationless readers from garbage
/// `incl_len` values).
const MAX_RECORD: u32 = 1 << 20;

/// A streaming pcap reader implementing [`FrameSource`].
///
/// Timestamps are rebased to the first record (first frame = 0 µs), so a
/// capture replays on the same µs timeline the engine's idle/pinned
/// timeouts expect regardless of when it was taken.
pub struct PcapSource<R: Read> {
    rdr: R,
    swapped: bool,
    nanos: bool,
    first_ts: Option<u64>,
}

impl PcapSource<BufReader<File>> {
    /// Opens a capture file.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> PcapSource<R> {
    /// Wraps any byte stream positioned at the global header.
    pub fn new(mut rdr: R) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        rdr.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        let (swapped, nanos) = match magic {
            MAGIC_US => (false, false),
            MAGIC_NS => (false, true),
            m if m.swap_bytes() == MAGIC_US => (true, false),
            m if m.swap_bytes() == MAGIC_NS => (true, true),
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "not a classic pcap")),
        };
        Ok(Self { rdr, swapped, nanos, first_ts: None })
    }

    fn u32_at(&self, b: &[u8]) -> u32 {
        let v = u32::from_le_bytes(b.try_into().unwrap());
        if self.swapped {
            v.swap_bytes()
        } else {
            v
        }
    }
}

impl<R: Read> FrameSource for PcapSource<R> {
    fn next_frame(&mut self, buf: &mut [u8]) -> io::Result<Option<(usize, u64)>> {
        let mut rec = [0u8; 16];
        // EOF exactly at a record boundary is a clean end of capture.
        match self.rdr.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let sec = self.u32_at(&rec[0..4]) as u64;
        let sub = self.u32_at(&rec[4..8]) as u64;
        let incl = self.u32_at(&rec[8..12]);
        if incl > MAX_RECORD {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "pcap record too long"));
        }
        let abs = sec * 1_000_000 + if self.nanos { sub / 1_000 } else { sub };
        let first = *self.first_ts.get_or_insert(abs);
        let ts = abs.saturating_sub(first);
        let take = (incl as usize).min(buf.len());
        self.rdr.read_exact(&mut buf[..take])?;
        // Discard the tail of over-long records (snaplen truncation).
        let mut rest = incl as usize - take;
        let mut sink = [0u8; 256];
        while rest > 0 {
            let n = rest.min(sink.len());
            self.rdr.read_exact(&mut sink[..n])?;
            rest -= n;
        }
        Ok(Some((take, ts)))
    }
}

/// Writes `(frame, ts_us)` records as a little-endian microsecond classic
/// pcap (link type Ethernet).
pub fn write_pcap<P: AsRef<Path>>(path: P, frames: &[(Vec<u8>, u64)]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC_US.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65_535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_EN10MB.to_le_bytes())?;
    for (frame, ts_us) in frames {
        w.write_all(&((ts_us / 1_000_000) as u32).to_le_bytes())?;
        w.write_all(&((ts_us % 1_000_000) as u32).to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(frame)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frames: &[(Vec<u8>, u64)], bufsize: usize) -> Vec<(Vec<u8>, u64)> {
        let path = std::env::temp_dir().join(format!("splidt_pcap_{}.pcap", std::process::id()));
        write_pcap(&path, frames).unwrap();
        let mut src = PcapSource::open(&path).unwrap();
        let mut out = Vec::new();
        let mut buf = vec![0u8; bufsize];
        while let Some((n, ts)) = src.next_frame(&mut buf).unwrap() {
            out.push((buf[..n].to_vec(), ts));
        }
        std::fs::remove_file(&path).ok();
        out
    }

    #[test]
    fn write_read_roundtrip_rebases_timestamps() {
        let frames = vec![
            (vec![1u8; 60], 5_000_000),
            (vec![2u8; 100], 5_000_700),
            (vec![3u8; 1400], 6_500_000),
        ];
        let got = roundtrip(&frames, 2048);
        assert_eq!(got.len(), 3);
        // Bytes survive; timestamps are rebased to the first record.
        for ((gf, gt), (wf, wt)) in got.iter().zip(&frames) {
            assert_eq!(gf, wf);
            assert_eq!(*gt, wt - frames[0].1);
        }
    }

    #[test]
    fn overlong_records_truncate_to_snaplen_and_stream_continues() {
        let frames = vec![(vec![7u8; 300], 0), (vec![8u8; 40], 10)];
        let got = roundtrip(&frames, 128);
        assert_eq!(got[0].0.len(), 128, "record truncated to reader buffer");
        assert_eq!(got[1].0, frames[1].0, "next record still aligned");
    }

    #[test]
    fn garbage_header_is_rejected() {
        assert!(PcapSource::new(&b"not a pcap file at all....."[..]).is_err());
    }
}
