//! # splidt-net — the network ingress subsystem
//!
//! Everything between a wire and [`splidt_core`]'s engines: frame
//! sources (UDP socket, pcap replay, in-memory), per-shard bounded SPSC
//! rings with drop-and-count backpressure, run-to-completion shard
//! consumers, exact ingress accounting, and a loopback traffic
//! generator.
//!
//! ```text
//!  splidt-gen ──UDP loopback──▶ UdpSource ─▶ run_ingress ─▶ ShardedEngine
//!  (churn schedule replay)        │             │  per-shard SPSC rings,
//!  pcap file ──────────────▶ PcapSource ────────┘  backpressure, stats
//! ```
//!
//! The accounting invariant every run must satisfy (checked by
//! [`IngressStats::reconciles`](splidt_core::runtime::IngressStats::reconciles)):
//! `received == steered + dropped_ring_full + dropped_malformed`, and
//! every steered frame is consumed before the final report — graceful
//! shutdown drains, it does not discard.

pub mod gen;
pub mod pcap;
pub mod ring;
pub mod service;
pub mod source;

pub use gen::{replay_udp, GenConfig, GenReport};
pub use pcap::{write_pcap, PcapSource};
pub use ring::{ring, Consumer, Producer, PushError};
pub use service::{classified_flows, run_ingress, IngressConfig, IngressOutcome};
pub use source::{FrameBurst, FrameSource, ReplaySource, UdpSource, STOP_SENTINEL};
