//! Re-export of the SPSC frame ring, which moved to
//! [`splidt_core::ring`] so the engine's persistent shard workers (which
//! `splidt-core` owns) and this crate's ingress service share one
//! implementation. All `splidt_net::ring::*` paths keep working.

pub use splidt_core::ring::*;
