//! The loopback traffic generator: replays a [`ChurnSchedule`] as UDP
//! datagrams (one whole Ethernet frame per datagram — the testbed's
//! packet-in-packet transport) against an ingress receiver, pacing sends
//! by the schedule's own timestamps.
//!
//! This is the software stand-in for the paper's MoonGen sender: the
//! schedule provides arrival gaps and flow lifetimes, the generator
//! turns them into real wall-clock spacing so the receiver's idle/pinned
//! timeouts and slot churn behave as they would against replayed
//! captures. After the schedule it emits a burst of
//! [`STOP_SENTINEL`] datagrams so the
//! receiver shuts down gracefully without signal plumbing.

use crate::source::STOP_SENTINEL;
use splidt_flow::synthetic::ChurnSchedule;
use splidt_flow::wire::frame_for_into;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Generator pacing knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Wall-clock stretch applied to schedule timestamps: packet at
    /// schedule time `t` µs is sent at `t * time_scale` µs. Values > 1
    /// slow the replay down — useful on small hosts where sender,
    /// receiver, and consumers share cores and loopback socket buffers
    /// are shallow.
    pub time_scale: f64,
    /// Stop sentinels sent after the schedule (UDP may drop any one).
    pub stop_repeats: usize,
    /// Longest single sleep while pacing (keeps the sender responsive to
    /// clock skew without busy-waiting).
    pub tick: Duration,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self { time_scale: 2.0, stop_repeats: 8, tick: Duration::from_millis(1) }
    }
}

/// What a finished replay did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenReport {
    /// Schedule frames sent (excludes stop sentinels).
    pub sent: u64,
    /// Frame payload bytes sent.
    pub bytes: u64,
    /// Wall-clock replay duration in µs (schedule only, not sentinels).
    pub elapsed_us: u64,
}

/// Replays `schedule` against `target` over UDP from an ephemeral local
/// port, pacing each frame to its (scaled) schedule timestamp, then sends
/// the stop sentinels. The frame buffer is reused across sends, so the
/// replay loop allocates nothing per packet.
pub fn replay_udp(
    schedule: &ChurnSchedule,
    target: SocketAddr,
    cfg: &GenConfig,
) -> io::Result<GenReport> {
    let socket = UdpSocket::bind((target.ip(), 0))?;
    socket.connect(target)?;
    let mut buf = Vec::new();
    let mut sent = 0u64;
    let mut bytes = 0u64;
    let start = Instant::now();
    for (ts_us, i, j) in schedule.events() {
        let due = Duration::from_micros((ts_us as f64 * cfg.time_scale) as u64);
        loop {
            let now = start.elapsed();
            if now >= due {
                break;
            }
            std::thread::sleep((due - now).min(cfg.tick));
        }
        frame_for_into(&schedule.flows[i], j, &mut buf);
        socket.send(&buf)?;
        sent += 1;
        bytes += buf.len() as u64;
    }
    let elapsed_us = start.elapsed().as_micros() as u64;
    for _ in 0..cfg.stop_repeats {
        // A send error here means the receiver already shut down (the
        // first sentinel landed and its socket is gone, surfacing as
        // ICMP port-unreachable) — exactly the outcome sentinels exist
        // to produce, so it is success, not failure.
        if socket.send(STOP_SENTINEL).is_err() {
            break;
        }
        // Space the sentinels out: if the receiver's socket buffer is full
        // the kernel drops loopback datagrams silently, and a burst of
        // back-to-back sentinels would all share that fate.
        std::thread::sleep(Duration::from_millis(20));
    }
    Ok(GenReport { sent, bytes, elapsed_us })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splidt_flow::synthetic::{churn, ChurnConfig, DatasetId};
    use std::net::UdpSocket;

    #[test]
    fn replay_delivers_every_frame_then_sentinels() {
        let schedule = churn(
            DatasetId::D2,
            &ChurnConfig {
                flows: 6,
                mean_arrival_gap_us: 100,
                lifetime_scale: 0.001,
                syn_open_frac: 1.0,
                rst_close_frac: 0.0,
                seed: 3,
                ..Default::default()
            },
        );
        let expect: u64 = schedule.flows.iter().map(|f| f.size_pkts() as u64).sum();
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        let target = rx.local_addr().unwrap();
        // Pace the replay (~0.3s): an unpaced blast on a single-core host
        // starves the reader and overflows the socket's receive buffer —
        // the pacing sleeps are what yield the CPU to the receiver, here
        // and in real loopback runs.
        let cfg = GenConfig { time_scale: 300.0, stop_repeats: 2, ..GenConfig::default() };
        let stop_repeats = cfg.stop_repeats;
        let drain = std::thread::spawn(move || {
            let mut frames = 0u64;
            let mut sentinels = 0usize;
            let mut buf = [0u8; 2048];
            while let Ok(n) = rx.recv(&mut buf) {
                if buf[..n] == *STOP_SENTINEL {
                    sentinels += 1;
                    if sentinels == stop_repeats {
                        break;
                    }
                } else {
                    frames += 1;
                    splidt_dataplane::peek_flow_tuple(&buf[..n])
                        .expect("replayed frames parse on the wire");
                }
            }
            (frames, sentinels)
        });
        let report = replay_udp(&schedule, target, &cfg).unwrap();
        assert_eq!(report.sent, expect);
        let (frames, sentinels) = drain.join().unwrap();
        // Loopback with a live reader: expect no loss at this size.
        assert_eq!(frames, expect);
        assert_eq!(sentinels, cfg.stop_repeats);
    }
}
