//! Frame sources: where ingress frames come from.
//!
//! One trait, three implementations:
//!
//! * [`UdpSource`] — a bound UDP socket; each datagram payload is one
//!   whole Ethernet frame (packet-in-packet, the loopback testbed
//!   transport), timestamped with µs-since-bind at receive.
//! * [`PcapSource`](crate::pcap::PcapSource) — replays a capture file
//!   with its recorded (relative) timestamps.
//! * [`ReplaySource`] — an in-memory frame list, for deterministic tests
//!   and the allocation probes.
//!
//! A source pulls **one frame at a time into a caller-owned buffer**, so
//! the receive loop owns exactly one scratch buffer and the steady state
//! allocates nothing per frame.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The stop-sentinel datagram payload: a `splidt-gen` sender emits a few
/// of these after its schedule (UDP may lose any one of them) to tell the
/// receiver to shut down gracefully. Never counted as traffic.
pub const STOP_SENTINEL: &[u8] = b"SPLIDT-INGRESS-STOP-v1";

/// A reusable burst of received frames — the caller-owned buffer set
/// behind [`FrameSource::next_burst`]. All frame storage is allocated
/// once at construction (`capacity` slots of `max_frame` bytes), so the
/// receive loop's steady state allocates nothing per frame *or* per
/// burst.
pub struct FrameBurst {
    bufs: Vec<Box<[u8]>>,
    lens: Vec<usize>,
    ts_us: Vec<u64>,
    len: usize,
}

impl FrameBurst {
    /// Preallocates `capacity` frame slots of `max_frame` bytes each.
    pub fn new(capacity: usize, max_frame: usize) -> Self {
        assert!(capacity > 0, "burst capacity must be positive");
        Self {
            bufs: (0..capacity).map(|_| vec![0u8; max_frame].into_boxed_slice()).collect(),
            lens: vec![0; capacity],
            ts_us: vec![0; capacity],
            len: 0,
        }
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the burst holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every slot is filled (the burst can take no more frames).
    pub fn is_full(&self) -> bool {
        self.len == self.bufs.len()
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Borrows frame `i` as `(bytes, ts_us)`; `i < len()`.
    pub fn get(&self, i: usize) -> (&[u8], u64) {
        debug_assert!(i < self.len, "frame index past burst length");
        (&self.bufs[i][..self.lens[i]], self.ts_us[i])
    }

    /// Empties the burst (slot memory is retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The next free slot's buffer, for a source to receive into. Follow
    /// with [`FrameBurst::commit`] to make the frame visible; two `slot`
    /// calls without a `commit` between them return the same buffer.
    pub fn slot(&mut self) -> &mut [u8] {
        &mut self.bufs[self.len]
    }

    /// Publishes the frame last written into [`FrameBurst::slot`]
    /// (`n` bytes, received at `ts_us`).
    pub fn commit(&mut self, n: usize, ts_us: u64) {
        self.lens[self.len] = n;
        self.ts_us[self.len] = ts_us;
        self.len += 1;
    }
}

/// A blocking, pull-based frame source.
pub trait FrameSource {
    /// Copies the next frame into `buf` and returns `(len, ts_us)`, or
    /// `None` when the source is exhausted (file end, stop sentinel,
    /// stop flag, idle exit). Frames longer than `buf` are truncated to
    /// `buf.len()` (snaplen semantics); the parser then rejects them.
    fn next_frame(&mut self, buf: &mut [u8]) -> io::Result<Option<(usize, u64)>>;

    /// Fills `burst` with as many frames as are immediately available
    /// (at most its capacity) and returns whether the source may still
    /// produce more. `Ok(false)` means exhausted — but the burst may
    /// still hold frames received *before* the end-of-stream was seen
    /// (e.g. datagrams queued ahead of a stop sentinel); process them.
    ///
    /// The default implementation pulls [`FrameSource::next_frame`] in a
    /// loop, which is right for sources whose `next_frame` does not
    /// block mid-stream (replay lists, capture files). Live sources
    /// should override it to block only for the *first* frame — see
    /// [`UdpSource`]'s `recvmmsg`-style drain.
    fn next_burst(&mut self, burst: &mut FrameBurst) -> io::Result<bool> {
        burst.clear();
        while !burst.is_full() {
            match self.next_frame(burst.slot())? {
                Some((n, ts)) => burst.commit(n, ts),
                None => return Ok(false),
            }
        }
        Ok(true)
    }
}

// -------------------------------------------------------------------- udp

/// How often the UDP receive loop wakes up to check its stop flag and
/// idle deadline.
const UDP_POLL: Duration = Duration::from_millis(25);

/// A UDP socket frame source (one datagram = one frame).
///
/// Graceful shutdown has three triggers, any of which ends the stream:
/// a [`STOP_SENTINEL`] datagram (the two-process path — plain `std` has
/// no signal handling, so the sender tells the receiver it is done), the
/// in-process [`UdpSource::stop_handle`] flag, and an optional idle-exit
/// deadline (no traffic for the configured duration).
pub struct UdpSource {
    socket: UdpSocket,
    epoch: Instant,
    last_rx: Instant,
    idle_exit: Option<Duration>,
    stop: Arc<AtomicBool>,
}

impl UdpSource {
    /// Binds to `addr` (use port 0 for an OS-assigned port).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(UDP_POLL))?;
        let now = Instant::now();
        Ok(Self {
            socket,
            epoch: now,
            last_rx: now,
            idle_exit: None,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (to print, or to aim a generator at).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// End the stream after this long with no received traffic — the
    /// backstop for a lost stop sentinel.
    pub fn idle_exit(mut self, after: Duration) -> Self {
        self.idle_exit = Some(after);
        self
    }

    /// A flag another thread can set to end the stream at the next poll
    /// (the in-process equivalent of a shutdown signal).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }
}

impl FrameSource for UdpSource {
    fn next_frame(&mut self, buf: &mut [u8]) -> io::Result<Option<(usize, u64)>> {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Ok(None);
            }
            match self.socket.recv(buf) {
                Ok(n) => {
                    if buf[..n] == *STOP_SENTINEL {
                        return Ok(None);
                    }
                    self.last_rx = Instant::now();
                    let ts = self.epoch.elapsed().as_micros() as u64;
                    return Ok(Some((n, ts)));
                }
                // Both kinds appear for read timeouts, platform-dependent.
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if let Some(idle) = self.idle_exit {
                        if self.last_rx.elapsed() >= idle {
                            return Ok(None);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `recvmmsg`-style multi-datagram poll: block (in 25 ms poll
    /// slices, honouring the stop flag and idle deadline) only for the
    /// **first** datagram, then switch the socket nonblocking and drain
    /// whatever the kernel already queued — up to the burst's capacity —
    /// before handing the whole batch back in one call. One receive-loop
    /// wakeup per burst instead of per frame.
    fn next_burst(&mut self, burst: &mut FrameBurst) -> io::Result<bool> {
        burst.clear();
        // First frame: same blocking protocol as `next_frame`.
        match self.next_frame(burst.slot())? {
            Some((n, ts)) => burst.commit(n, ts),
            None => return Ok(false),
        }
        // Opportunistic drain: take what is already queued, never wait.
        self.socket.set_nonblocking(true)?;
        let mut more = true;
        while more && !burst.is_full() {
            match self.socket.recv(burst.slot()) {
                Ok(n) => {
                    if burst.slot()[..n] == *STOP_SENTINEL {
                        // Sentinel mid-burst: frames already committed
                        // stay valid; the stream ends after this burst.
                        more = false;
                    } else {
                        let ts = self.epoch.elapsed().as_micros() as u64;
                        burst.commit(n, ts);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => {
                    self.socket.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        // Back to blocking-with-timeout for the next burst's first frame
        // (the read timeout set at bind persists across this toggle).
        self.socket.set_nonblocking(false)?;
        self.last_rx = Instant::now();
        Ok(more)
    }
}

// ----------------------------------------------------------------- replay

/// An in-memory `(frame, ts_us)` list replayed in order — deterministic
/// input for tests and the zero-allocation probes (its steady state
/// allocates nothing: frames are copied into the caller's buffer).
pub struct ReplaySource {
    frames: Vec<(Vec<u8>, u64)>,
    cursor: usize,
}

impl ReplaySource {
    /// Wraps a pre-built frame list.
    pub fn new(frames: Vec<(Vec<u8>, u64)>) -> Self {
        Self { frames, cursor: 0 }
    }

    /// Frames not yet emitted.
    pub fn remaining(&self) -> usize {
        self.frames.len() - self.cursor
    }
}

impl FrameSource for ReplaySource {
    fn next_frame(&mut self, buf: &mut [u8]) -> io::Result<Option<(usize, u64)>> {
        let Some((frame, ts)) = self.frames.get(self.cursor) else {
            return Ok(None);
        };
        self.cursor += 1;
        let n = frame.len().min(buf.len());
        buf[..n].copy_from_slice(&frame[..n]);
        Ok(Some((n, *ts)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_emits_in_order_then_ends() {
        let mut src =
            ReplaySource::new(vec![(vec![1, 2, 3], 10), (vec![4], 20), (vec![5; 64], 30)]);
        let mut buf = [0u8; 16];
        assert_eq!(src.next_frame(&mut buf).unwrap(), Some((3, 10)));
        assert_eq!(&buf[..3], &[1, 2, 3]);
        assert_eq!(src.next_frame(&mut buf).unwrap(), Some((1, 20)));
        // Oversized frames truncate to the caller's buffer (snaplen).
        assert_eq!(src.next_frame(&mut buf).unwrap(), Some((16, 30)));
        assert_eq!(src.next_frame(&mut buf).unwrap(), None);
        assert_eq!(src.next_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn udp_source_receives_frames_and_stops_on_sentinel() {
        let src = UdpSource::bind("127.0.0.1:0").unwrap();
        let addr = src.local_addr().unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(&[0xAB; 60], addr).unwrap();
        tx.send_to(&[0xCD; 90], addr).unwrap();
        tx.send_to(STOP_SENTINEL, addr).unwrap();
        let mut src = src;
        let mut buf = [0u8; 2048];
        let (n1, t1) = src.next_frame(&mut buf).unwrap().unwrap();
        assert_eq!((n1, buf[0]), (60, 0xAB));
        let (n2, t2) = src.next_frame(&mut buf).unwrap().unwrap();
        assert_eq!((n2, buf[0]), (90, 0xCD));
        assert!(t2 >= t1, "receive timestamps are monotone");
        assert_eq!(src.next_frame(&mut buf).unwrap(), None, "sentinel ends the stream");
    }

    #[test]
    fn replay_default_burst_fills_then_reports_end() {
        let frames: Vec<(Vec<u8>, u64)> = (0..7u8).map(|i| (vec![i; 4], i as u64)).collect();
        let mut src = ReplaySource::new(frames);
        let mut burst = FrameBurst::new(3, 64);
        assert!(src.next_burst(&mut burst).unwrap());
        assert_eq!(burst.len(), 3);
        assert_eq!(burst.get(2), (&[2u8; 4][..], 2));
        assert!(src.next_burst(&mut burst).unwrap());
        assert_eq!(burst.get(0), (&[3u8; 4][..], 3));
        // Final call: partial burst + end-of-stream in one step.
        assert!(!src.next_burst(&mut burst).unwrap());
        assert_eq!(burst.len(), 1);
        assert_eq!(burst.get(0), (&[6u8; 4][..], 6));
        assert!(!src.next_burst(&mut burst).unwrap());
        assert!(burst.is_empty());
    }

    #[test]
    fn udp_source_bursts_drain_queued_datagrams_and_stop_mid_burst() {
        let src = UdpSource::bind("127.0.0.1:0").unwrap();
        let addr = src.local_addr().unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..5u8 {
            tx.send_to(&[i; 32], addr).unwrap();
        }
        tx.send_to(STOP_SENTINEL, addr).unwrap();
        // Give loopback delivery a moment so the drain sees everything.
        std::thread::sleep(Duration::from_millis(20));
        let mut src = src;
        let mut burst = FrameBurst::new(8, 2048);
        // One wakeup drains all five queued datagrams; the sentinel ends
        // the stream without invalidating the frames before it.
        let more = src.next_burst(&mut burst).unwrap();
        assert!(!more, "sentinel mid-burst ends the stream");
        assert_eq!(burst.len(), 5);
        for i in 0..5 {
            let (frame, _) = burst.get(i);
            assert_eq!(frame, &[i as u8; 32][..]);
        }
    }

    #[test]
    fn udp_source_stop_flag_ends_stream() {
        let mut src = UdpSource::bind("127.0.0.1:0").unwrap();
        src.stop_handle().store(true, Ordering::Relaxed);
        let mut buf = [0u8; 64];
        assert_eq!(src.next_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn udp_source_idle_exit_ends_stream() {
        let mut src = UdpSource::bind("127.0.0.1:0").unwrap().idle_exit(Duration::from_millis(30));
        let mut buf = [0u8; 64];
        let start = Instant::now();
        assert_eq!(src.next_frame(&mut buf).unwrap(), None);
        assert!(start.elapsed() >= Duration::from_millis(30));
    }
}
