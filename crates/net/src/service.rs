//! The ingress service: one receiver thread steering frames off a
//! [`FrameSource`] into per-shard SPSC rings, and one run-to-completion
//! consumer thread per shard draining its ring into the shard's engine.
//!
//! ```text
//!   FrameSource ──▶ receiver ──peek_flow_tuple──▶ ring[hash % N] ─▶ consumer N ─▶ Engine N
//!      (UDP/pcap)      │                              │ (bounded,       (ingest_batch,
//!                      │ malformed? drop+count        │  drop+count      digests, meters)
//!                      ▼                              ▼  when full)
//!                 dropped_malformed            dropped_ring_full
//! ```
//!
//! Invariants the service maintains (and [`IngressStats::reconciles`]
//! checks exactly, no slack):
//!
//! * every received frame is steered into exactly one ring **or** dropped
//!   for exactly one reason: `received == steered + dropped_ring_full +
//!   dropped_malformed`;
//! * shutdown is drain-complete: once the source ends, rings are closed,
//!   consumers drain every queued frame (`consumed == steered`), and the
//!   final digest drain runs before the report is assembled — no frame
//!   and no verdict is stranded in a queue;
//! * the receiver never blocks on a slow shard (rings refuse, never
//!   wait), and the consumer hot path performs zero steady-state heap
//!   allocations (frames are borrowed from ring slots straight into
//!   `Engine::ingest_batch`).
//!
//! Steering uses the same canonical-order flow hash as the data plane's
//! `HashFlow` primitive and `ShardedEngine::shard_of_frame`, so a flow's
//! packets always land on the shard that owns its register slot.

use crate::ring::{ring, Consumer, Producer, PushError};
use crate::source::{FrameBurst, FrameSource};
use splidt_core::engine::{BatchReport, Engine, ShardedEngine};
use splidt_core::runtime::{IngressShardStats, IngressStats, RuntimeReport};
use splidt_dataplane::hash::{canonical_order, flow_index};
use splidt_dataplane::peek_flow_tuple;
use splidt_dataplane::pipeline::{Digest, Meters};
use std::io;
use std::time::Duration;

/// Ingress service tuning.
#[derive(Debug, Clone)]
pub struct IngressConfig {
    /// Slots per shard ring.
    pub ring_capacity: usize,
    /// Largest acceptable frame (ring slot size; longer frames are
    /// counted malformed).
    pub max_frame: usize,
    /// Most frames a consumer feeds to `ingest_batch` per drain.
    pub batch: usize,
    /// Most frames the receiver pulls per [`FrameSource::next_burst`]
    /// call (the socket-side burst; `recvmmsg`-style drain for UDP).
    pub recv_burst: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        Self { ring_capacity: 1024, max_frame: 2048, batch: 256, recv_burst: 32 }
    }
}

/// Everything a finished ingress session produced.
#[derive(Debug, Clone)]
pub struct IngressOutcome {
    /// Front-end accounting (received/steered/dropped per shard).
    pub stats: IngressStats,
    /// Merged pipeline outcomes across shards (packets, drops, digests).
    pub batch: BatchReport,
    /// The engine's runtime report with [`RuntimeReport::ingress`] set.
    /// Flow-level scoring fields are empty — wire flows have no ground
    /// truth — but meters, lifecycle, and slot pressure are live.
    pub report: RuntimeReport,
}

/// How long an idle consumer sleeps before re-polling its ring. Sleeping
/// (rather than spinning) matters on small hosts: the receiver and the
/// consumers share cores with the sender in loopback runs.
const CONSUMER_IDLE: Duration = Duration::from_micros(200);

/// Runs one complete ingress session: receive and steer until `source`
/// ends (file exhausted, stop sentinel, stop flag, or idle exit), then
/// shut down gracefully — stop accepting, close rings, drain every
/// queued frame, final digest drain — and return the reconciled
/// accounting. Only source I/O can fail; a failure still closes the
/// rings and joins the consumers before returning.
pub fn run_ingress<S: FrameSource + Send>(
    engine: &mut ShardedEngine,
    mut source: S,
    cfg: &IngressConfig,
) -> io::Result<IngressOutcome> {
    let n = engine.n_shards();
    let flow_slots = engine.flow_slots();
    let mut producers = Vec::with_capacity(n);
    let mut consumers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = ring(cfg.ring_capacity, cfg.max_frame);
        producers.push(tx);
        consumers.push(rx);
    }

    let max_frame = cfg.max_frame;
    let batch = cfg.batch;
    let recv_burst = cfg.recv_burst.max(1);
    let (rx_out, shard_outs) = std::thread::scope(|s| {
        let receiver = s.spawn(move || {
            receiver_loop(&mut source, &mut producers, flow_slots, max_frame, recv_burst)
        });
        let workers: Vec<_> = engine
            .engines_mut()
            .iter_mut()
            .zip(consumers)
            .map(|(eng, cons)| s.spawn(move || consumer_loop(eng, cons, batch)))
            .collect();
        let rx_out = receiver.join().expect("ingress receiver panicked");
        let shard_outs: Vec<_> =
            workers.into_iter().map(|h| h.join().expect("shard consumer panicked")).collect();
        (rx_out, shard_outs)
    });

    let (io_result, received, dropped_malformed, steered, ring_full) = rx_out;
    io_result?;

    let mut stats = IngressStats {
        received,
        steered: steered.iter().sum(),
        dropped_ring_full: ring_full.iter().sum(),
        dropped_malformed,
        shards: Vec::with_capacity(n),
    };
    let mut batch_report = BatchReport::default();
    for (i, (report, consumed)) in shard_outs.into_iter().enumerate() {
        stats.shards.push(IngressShardStats {
            steered: steered[i],
            dropped_ring_full: ring_full[i],
            consumed,
        });
        batch_report.merge(report);
    }

    let mut meters = Meters::default();
    for e in engine.engines() {
        meters.merge(e.meters());
    }
    let report = RuntimeReport {
        f1: 0.0,
        software_agreement: 1.0,
        flows: Vec::new(),
        meters,
        recirc_per_flow: 0.0,
        collisions_skipped: 0,
        lifecycle: engine.lifecycle(),
        slot_pressure: engine.slot_pressure(),
        ingress: Some(stats.clone()),
        swaps: engine.engines().iter().map(|e| e.swaps()).sum(),
        staged_generation: engine
            .engines()
            .iter()
            .map(|e| e.staged_generation())
            .max()
            .unwrap_or(0),
    };
    Ok(IngressOutcome { stats, batch: batch_report, report })
}

/// The receiver: pull frames a **burst at a time** (one
/// [`FrameSource::next_burst`] wakeup covers every datagram the kernel
/// already queued), validate each with the steering peek, route by
/// canonical flow hash, push without blocking. Closes every ring on the
/// way out — source end *and* source error both drain the consumers.
#[allow(clippy::type_complexity)]
fn receiver_loop<S: FrameSource>(
    source: &mut S,
    producers: &mut [Producer],
    flow_slots: usize,
    max_frame: usize,
    recv_burst: usize,
) -> (io::Result<()>, u64, u64, Vec<u64>, Vec<u64>) {
    let n = producers.len();
    let mut burst = FrameBurst::new(recv_burst, max_frame);
    let mut received = 0u64;
    let mut dropped_malformed = 0u64;
    let mut steered = vec![0u64; n];
    let mut ring_full = vec![0u64; n];
    let result = loop {
        let more = match source.next_burst(&mut burst) {
            Ok(more) => more,
            Err(e) => break Err(e),
        };
        // An exhausted source can still hand back a final partial burst
        // (frames queued ahead of the stop sentinel): steer those too.
        for i in 0..burst.len() {
            let (frame, ts_us) = burst.get(i);
            received += 1;
            let shard = match peek_flow_tuple(frame) {
                Ok(t) => {
                    let (sip, dip, sp, dp) = canonical_order(t.src_ip, t.dst_ip, t.sport, t.dport);
                    flow_index(sip, dip, sp, dp, t.proto, flow_slots) % n
                }
                Err(_) => {
                    dropped_malformed += 1;
                    continue;
                }
            };
            match producers[shard].try_push(frame, ts_us) {
                Ok(()) => steered[shard] += 1,
                Err(PushError::Full) => ring_full[shard] += 1,
                // Unreachable with burst slots sized to `max_frame`, but
                // keep the accounting total if the invariant ever changes.
                Err(PushError::TooLong) => dropped_malformed += 1,
            }
        }
        if !more {
            break Ok(());
        }
    };
    for p in producers {
        p.close();
    }
    (result, received, dropped_malformed, steered, ring_full)
}

/// One shard's run-to-completion consumer: drain the ring in batches into
/// the shard engine's allocation-free path; exit only when the ring is
/// closed **and** empty (the graceful-shutdown drain).
fn consumer_loop(engine: &mut Engine, mut ring: Consumer, batch: usize) -> (BatchReport, u64) {
    let mut merged = BatchReport::default();
    let mut consumed = 0u64;
    loop {
        let avail = ring.readable();
        if avail == 0 {
            // Order matters: observe `closed` before re-checking
            // `readable`, so frames pushed before the close are seen.
            if ring.is_closed() && ring.readable() == 0 {
                break;
            }
            std::thread::sleep(CONSUMER_IDLE);
            continue;
        }
        let take = avail.min(batch);
        let report = engine
            .ingest_batch((0..take).map(|i| ring.peek(i)))
            .expect("ingest_batch counts malformed frames instead of failing");
        merged.merge(report);
        consumed += take as u64;
        ring.advance(take);
    }
    (merged, consumed)
}

/// Distinct flows that received a verdict digest, counted exactly as the
/// churn harness does: distinct `(canonical slot, fingerprint)` pairs.
/// `digest_flow_idx`/`digest_fp` come from the engine's compiled IO
/// (`Engine::io`).
pub fn classified_flows(digest_flow_idx: usize, digest_fp: usize, digests: &[Digest]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for d in digests {
        seen.insert((d.values[digest_flow_idx], d.values[digest_fp]));
    }
    seen.len()
}
