//! Compiler: a trained [`PartitionedTree`] → an executable data-plane
//! [`Program`] (the role the paper's P4 program + bfrt controller play).
//!
//! Pipeline layout (10 stages, within Tofino1's 12):
//!
//! | stage | contents |
//! |---|---|
//! | 0 | flow hash + fingerprint, direction, `window_len`, payload |
//! | 1 | the **ownership lane** register (fingerprint ‖ last-seen ‖ decided) |
//! | 2 | the lifecycle MAT (slot state → claim/alien bits + counters) |
//! | 3 | SID / packet-counter / window-counter registers |
//! | 4 | dependency-chain registers (`last_ts` per scope) |
//! | 5 | IAT arithmetic, validity bits, window-first, boundary detection |
//! | 6 | the `k` feature-slot registers + operator-selection MATs |
//! | 7 | per-SID load transforms (cap / negate / since-timestamp) |
//! | 8 | `k` match-key generator MATs (value → range mark) |
//! | 9 | the model MAT (marks → next SID / class), resubmit, digest |
//!
//! Register reuse via recirculation (paper §3.1.3): the model MAT marks the
//! boundary packet for resubmission with `next_sid` in metadata; on the
//! resubmitted pass every stateful table matches `is_resubmit = 1` and
//! resets its register (SID ← next_sid, counters/slots/deps ← 0).
//!
//! ## Flow-state lifecycle
//!
//! Flows are **learned on the wire**, not pre-admitted. Stage 1 probes the
//! slot's ownership lane (one dual-ALU [`Primitive::OwnerUpdate`] per
//! packet): a matching fingerprint refreshes recency; a free lane — or a
//! lane whose owner is idle past `idle_timeout_us` or already decided — is
//! claimed, and stage 2 raises the `m.claim` bit so every downstream
//! stateful table resets its cell and applies the first-packet update in
//! the same pass (fresh state = op(0, x), so claim entries run `Write x`).
//! A fingerprint mismatch against a *live* lane raises `m.alien` instead:
//! the packet's register updates and boundary detection are suppressed —
//! counted by the lifecycle MAT, never merged into the owner's state. At a
//! verdict (early exit *or* flow end) the model MAT resubmits with the
//! DONE sentinel; the decide pass marks the lane, making the slot
//! immediately reclaimable in-band and releasable by the controller (the
//! engine compare-and-releases lanes when it drains the verdict digest,
//! which carries the fingerprint). This is pForest's register-reuse
//! discipline (arXiv:1909.05680), compiled.

use crate::model::{LeafTarget, PartitionedTree};
use splidt_dataplane::action::{Action, AluOp, AluOut, OwnerMode, Primitive, SlotState, Source};
use splidt_dataplane::hash::{FP_BITS, FP_MASK, FP_SALT};
use splidt_dataplane::parser::StandardFields;
use splidt_dataplane::phv::FieldId;
use splidt_dataplane::program::{Program, ProgramBuilder, ProgramError};
use splidt_dataplane::register::{RegId, RegisterSpec};
use splidt_dataplane::table::{TableId, TableSpec};
use splidt_dataplane::tcam::Ternary;
use splidt_flow::features::{
    catalog, flags, DepRegister, FeatureKind, Guard, LoadTransform, Operand, Scope, SlotProgram,
    StatelessKind, UpdateOp, FEATURE_CAP,
};
use splidt_ranging::{generate_rules, range_to_prefixes, SubtreeRules};
use std::collections::BTreeMap;

/// Compile-time errors.
#[derive(Debug)]
pub enum CompileError {
    /// Program assembly failed.
    Program(ProgramError),
    /// The model is structurally invalid.
    InvalidModel(String),
    /// Unsupported configuration (e.g. k > 8 slots in one stage).
    Unsupported(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Program(e) => write!(f, "program error: {e}"),
            CompileError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            CompileError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ProgramError> for CompileError {
    fn from(e: ProgramError) -> Self {
        CompileError::Program(e)
    }
}

/// Rule-generation summary used by resource estimation (and Table 3 / Fig 9
/// accounting) without building a full program.
#[derive(Debug, Clone)]
pub struct RulesSummary {
    /// `(sid, rules)` per subtree.
    pub subtree_rules: Vec<(u16, SubtreeRules)>,
    /// Mark-field width in bits per slot (max over subtrees).
    pub slot_mark_bits: Vec<u8>,
    /// Canonical TCAM entry count: feature-table entries + one model entry
    /// per leaf (the paper's accounting).
    pub tcam_entries: usize,
    /// Feature-table entries only.
    pub feature_entries: usize,
    /// Model entries (= total leaves).
    pub model_entries: usize,
    /// Model-MAT key width: flags(2) + sid(8) + Σ slot mark bits.
    pub model_key_bits: usize,
}

/// Slot position of each feature within a subtree: features sorted
/// ascending, slot = rank.
pub fn slot_assignment(features: &[usize]) -> BTreeMap<usize, usize> {
    features.iter().enumerate().map(|(slot, &f)| (f, slot)).collect()
}

/// Generates Range-Marking rules for every subtree and aggregates the
/// accounting the paper reports.
pub fn model_rules(model: &PartitionedTree) -> RulesSummary {
    let bits = model.config.feature_bits;
    let mut subtree_rules = Vec::with_capacity(model.subtrees.len());
    let mut slot_mark_bits = vec![0u8; model.config.k];
    let mut feature_entries = 0usize;
    let mut model_entries = 0usize;
    for st in &model.subtrees {
        let rules = generate_rules(&st.tree, bits);
        let slots = slot_assignment(&rules.features);
        for ft in &rules.feature_tables {
            let slot = slots[&ft.feature];
            slot_mark_bits[slot] = slot_mark_bits[slot].max(ft.encoder.mark_bits());
            feature_entries += ft.rules.len();
        }
        model_entries += rules.model.len();
        subtree_rules.push((st.sid, rules));
    }
    let model_key_bits = 2 + 8 + slot_mark_bits.iter().map(|&b| b as usize).sum::<usize>();
    RulesSummary {
        subtree_rules,
        slot_mark_bits,
        tcam_entries: feature_entries + model_entries,
        feature_entries,
        model_entries,
        model_key_bits,
    }
}

/// Default owner idle timeout: a live flow silent this long (µs) forfeits
/// its slot to the next colliding arrival. Larger than any intra-flow gap
/// the synthetic traces produce (≤ 4 s), so only genuinely dead flows are
/// evicted under default settings.
pub const DEFAULT_IDLE_TIMEOUT_US: u64 = 5_000_000;

/// Default pinned timeout: how long a decided lane of a *pinned* verdict
/// class resists takeover (4× the idle timeout).
pub const DEFAULT_PINNED_TIMEOUT_US: u64 = 4 * DEFAULT_IDLE_TIMEOUT_US;

/// Protocol- and verdict-aware flow-lifecycle policy, fixed at compile
/// time: the admission/release MAT entries it generates are part of the
/// compiled program, exactly like the paper's P4 control installs them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecyclePolicy {
    /// TCP-aware admission and release. When set, a TCP packet may claim
    /// a slot **only when it carries SYN** — non-SYN packets of unknown
    /// flows (scans, backscatter, mid-capture tails) are counted as
    /// `unsolicited` and never admitted — and the verdict pass of a
    /// FIN/RST packet releases the lane **in-band**, without waiting for
    /// the controller's digest drain. Non-TCP traffic keeps flow-agnostic
    /// admission.
    pub tcp_aware: bool,
    /// Verdict classes (e.g. suspected-malicious) whose decided lanes are
    /// **pinned**: they resist takeover and in-band release until
    /// [`LifecyclePolicy::pinned_timeout_us`] of silence or an explicit
    /// operator release (`Engine::release_pinned`).
    pub pinned_classes: Vec<u16>,
    /// Idle threshold (µs) past which even a pinned lane is evictable.
    pub pinned_timeout_us: u64,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        Self::flow_agnostic()
    }
}

impl LifecyclePolicy {
    /// The policy PR 4 shipped: any packet of an unknown flow claims a
    /// slot, releases only via verdicts and the controller.
    pub fn flow_agnostic() -> Self {
        Self {
            tcp_aware: false,
            pinned_classes: Vec::new(),
            pinned_timeout_us: DEFAULT_PINNED_TIMEOUT_US,
        }
    }

    /// TCP-aware admission/release (SYN claims, FIN/RST in-band release).
    pub fn tcp() -> Self {
        Self { tcp_aware: true, ..Self::flow_agnostic() }
    }

    /// Marks a verdict class pinned (builder style).
    pub fn pin_class(mut self, class: u16) -> Self {
        if !self.pinned_classes.contains(&class) {
            self.pinned_classes.push(class);
            self.pinned_classes.sort_unstable();
        }
        self
    }

    /// Sets the pinned-lane idle threshold (builder style).
    pub fn pinned_timeout_us(mut self, us: u64) -> Self {
        self.pinned_timeout_us = us;
        self
    }
}

/// Compile-time knobs beyond the model itself.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Register depth (power of two).
    pub flow_slots: usize,
    /// Ownership-lane idle timeout in µs.
    pub idle_timeout_us: u64,
    /// Flow-lifecycle policy (admission, release, pinned eviction).
    pub policy: LifecyclePolicy,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            flow_slots: 1 << 16,
            idle_timeout_us: DEFAULT_IDLE_TIMEOUT_US,
            policy: LifecyclePolicy::default(),
        }
    }
}

/// Install order of the lifecycle MAT's first-pass entries — the entry
/// hit counters are the data plane's lifecycle counters, read back by the
/// engine through these indices.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleEntryIdx {
    /// Owner packets (fingerprint match, lane live).
    pub owner: usize,
    /// Free-lane claims (first admission of the slot).
    pub admit_free: usize,
    /// Takeovers of idle owners.
    pub takeover_idle: usize,
    /// Takeovers of decided owners.
    pub takeover_decided: usize,
    /// Suppressed packets of flows colliding with a live owner.
    pub live_collision: usize,
    /// Trailing packets of an already-decided owner.
    pub post_verdict: usize,
    /// Non-SYN packets of unknown flows refused admission (TCP policy).
    pub unsolicited: usize,
    /// Takeovers of pinned lanes past the pinned timeout.
    pub takeover_pinned: usize,
    /// Packets suppressed by a pinned lane inside its pinned timeout.
    pub pinned_defended: usize,
    /// In-band FIN/RST lane releases on the decide pass.
    pub released_fin: usize,
}

/// Handles into the compiled program the runtime needs.
#[derive(Debug, Clone)]
pub struct CompiledIo {
    /// Standard parsed fields.
    pub fields: StandardFields,
    /// Flow-slot count (register depth).
    pub flow_slots: usize,
    /// Ownership-lane idle timeout the program was compiled with (µs).
    pub idle_timeout_us: u64,
    /// The flow-lifecycle policy the program was compiled with.
    pub policy: LifecyclePolicy,
    /// Digest layout: `[ipv4.src, ipv4.dst, class, sid, flow_idx, fp]`.
    pub digest_src: usize,
    /// Index of class within digest values.
    pub digest_class: usize,
    /// Index of sid within digest values.
    pub digest_sid: usize,
    /// Index of the canonical register slot within digest values — the
    /// collation key the runtime uses to attribute digests to flows.
    pub digest_flow_idx: usize,
    /// Index of the flow fingerprint within digest values — what the
    /// controller compares before releasing a decided lane.
    pub digest_fp: usize,
    /// Index of the flow-end flag within digest values: 1 when the
    /// verdict came from the flow's final packet (safe to release the
    /// lane — no trailing traffic), 0 for early exits (the lane stays
    /// decided so trailing packets remain inert).
    pub digest_final: usize,
    /// The model table id (hit statistics).
    pub model_table: TableId,
    /// The ownership-lane register array.
    pub owner_reg: RegId,
    /// The per-slot pressure counter register (suppressed packets:
    /// live collisions + unsolicited + pinned-defended, per slot).
    pub pressure_reg: RegId,
    /// The lifecycle MAT (entry hit counters = lifecycle counters).
    pub lifecycle_table: TableId,
    /// Entry indices into the lifecycle MAT.
    pub lifecycle_entries: LifecycleEntryIdx,
}

/// A compiled model: executable program + IO handles + rule summary.
#[derive(Debug)]
pub struct CompiledModel {
    /// The data-plane program.
    pub program: Program,
    /// Runtime handles.
    pub io: CompiledIo,
    /// Rule accounting.
    pub summary: RulesSummary,
}

struct SlotMeta {
    fval: FieldId,
    mark: FieldId,
    table: TableId,
    reg: splidt_dataplane::register::RegId,
}

/// Per-(sid, slot) feature binding.
#[derive(Debug, Clone, Copy)]
struct Binding {
    feature: usize,
    kind: BindKind,
}

/// How a bound feature is materialized in its slot.
#[derive(Debug, Clone, Copy)]
enum BindKind {
    /// Stateful register-slot program.
    Slot(SlotProgram),
    /// Stateless header field: the slot register simply latches the
    /// (canonicalized) field on every packet, so the boundary packet's
    /// value is what the key generator matches — identical to the software
    /// extractor's "stateless = boundary packet" semantics.
    Stateless(StatelessKind),
}

const MAX_SLOT_TABLE_ENTRIES: usize = 4096;

/// Fixed (non-validity) fields of the slot-table key: `[is_resubmit,
/// claim, alien, sid, dir, tcp_flags, frame_len, payload, win_first]`.
const SLOT_KEY_FIXED: usize = 9;

/// Compiles a partitioned tree into a pipeline program with `flow_slots`
/// register entries (power of two) and the default idle timeout.
pub fn compile(model: &PartitionedTree, flow_slots: usize) -> Result<CompiledModel, CompileError> {
    compile_with(model, &CompileOptions { flow_slots, ..Default::default() })
}

/// Pipeline stage of each compiled layer (see the module docs).
mod stage {
    pub const PREP: usize = 0;
    pub const OWN: usize = 1;
    pub const LIFECYCLE: usize = 2;
    pub const STATE: usize = 3;
    pub const DEP: usize = 4;
    pub const COMPUTE: usize = 5;
    pub const SLOT: usize = 6;
    pub const LOAD: usize = 7;
    pub const KEYGEN: usize = 8;
    pub const MODEL: usize = 9;
}

/// Compiles a partitioned tree with explicit [`CompileOptions`].
pub fn compile_with(
    model: &PartitionedTree,
    opts: &CompileOptions,
) -> Result<CompiledModel, CompileError> {
    let flow_slots = opts.flow_slots;
    model.validate().map_err(CompileError::InvalidModel)?;
    if model.config.k > 8 {
        return Err(CompileError::Unsupported("k > 8 feature slots".into()));
    }
    if !flow_slots.is_power_of_two() {
        return Err(CompileError::Unsupported("flow_slots must be a power of two".into()));
    }
    let policy = &opts.policy;
    for &c in &policy.pinned_classes {
        // The lane stores the verdict class in CLASS_BITS bits; a pinned
        // class outside that range could never be recognized.
        if u64::from(c) > splidt_dataplane::register::owner_lane::CLASS_MASK {
            return Err(CompileError::Unsupported(format!(
                "pinned class {c} exceeds the lane's class field"
            )));
        }
        if usize::from(c) >= model.n_classes {
            return Err(CompileError::InvalidModel(format!(
                "pinned class {c} outside the model's {} classes",
                model.n_classes
            )));
        }
    }
    // Only meaningful when something is actually pinned — the default
    // policy must keep accepting any idle timeout, as it always has.
    if !policy.pinned_classes.is_empty() && policy.pinned_timeout_us < opts.idle_timeout_us {
        return Err(CompileError::Unsupported(
            "pinned_timeout_us must be >= idle_timeout_us (pinning may only strengthen)".into(),
        ));
    }
    let cat = catalog();
    let k = model.config.k;
    let p = model.n_partitions();
    let summary = model_rules(model);

    // (sid, slot) → binding
    let mut bindings: BTreeMap<(u16, usize), Binding> = BTreeMap::new();
    let mut deps: Vec<DepRegister> = Vec::new();
    for st in &model.subtrees {
        let feats = st.features();
        let slots = slot_assignment(&feats);
        for (&f, &slot) in &slots {
            let kind = match &cat.defs()[f].kind {
                FeatureKind::Slot(p) => {
                    for d in p.deps() {
                        if !deps.contains(&d) {
                            deps.push(d);
                        }
                    }
                    BindKind::Slot(*p)
                }
                FeatureKind::Stateless(k) => BindKind::Stateless(*k),
                FeatureKind::Software(_) => {
                    return Err(CompileError::InvalidModel(format!(
                        "feature {f} ({}) is software-only",
                        cat.defs()[f].name
                    )));
                }
            };
            bindings.insert((st.sid, slot), Binding { feature: f, kind });
        }
    }
    deps.sort();

    let mut b = ProgramBuilder::new();
    let fields = b.standard_fields();

    // --- metadata fields
    let slot_bits_log2 = flow_slots.trailing_zeros() as u8;
    let m_flow_idx = b.add_meta("m.flow_idx", slot_bits_log2.max(1));
    let m_fp = b.add_meta("m.fp", FP_BITS as u8);
    let m_state = b.add_meta("m.state", SlotState::BITS);
    let m_claim = b.add_meta("m.claim", 1);
    let m_alien = b.add_meta("m.alien", 1);
    let m_sid = b.add_meta("m.sid", 8);
    let m_next_sid = b.add_meta("m.next_sid", 8);
    let m_next_store = b.add_meta("m.next_sid_store", 8);
    let m_class = b.add_meta("m.class", 8);
    let m_pkt_count = b.add_meta("m.pkt_count", 24);
    let m_win_count = b.add_meta("m.win_count", 16);
    let m_window_len = b.add_meta("m.window_len", 16);
    let m_dir = b.add_meta("m.dir", 1);
    let m_now = b.add_meta("m.now", 32);
    let m_payload = b.add_meta("m.payload", 16);
    let m_win_first = b.add_meta("m.win_first", 1);
    let m_boundary = b.add_meta("m.boundary", 1);
    let m_final = b.add_meta("m.final", 1);
    let m_diff_win = b.add_meta("m.diff_win", 16);
    let m_diff_flow = b.add_meta("m.diff_flow", 24);
    let mut m_last = BTreeMap::new();
    let mut m_iat = BTreeMap::new();
    let mut m_neg_iat = BTreeMap::new();
    let mut m_valid = BTreeMap::new();
    for d in &deps {
        let DepRegister::LastTs(s) = d;
        let tag = scope_tag(*s);
        m_last.insert(*s, b.add_meta(format!("m.last_{tag}"), 32));
        m_iat.insert(*s, b.add_meta(format!("m.iat_{tag}"), 32));
        m_neg_iat.insert(*s, b.add_meta(format!("m.neg_iat_{tag}"), 32));
        m_valid.insert(*s, b.add_meta(format!("m.valid_{tag}"), 1));
    }
    let m_neg_len = b.add_meta("m.neg_len", 32);

    // --- registers
    let r_owner = b.add_register(RegisterSpec::new("r.owner", 64, flow_slots), stage::OWN);
    // Per-slot pressure counter: suppressed packets (live collisions,
    // unsolicited refusals, pinned defenses) per slot, bumped by the
    // lifecycle MAT in its own stage — the contention signal operators
    // size `flow_slots` from (`Engine::slot_pressure`).
    let r_pressure =
        b.add_register(RegisterSpec::new("r.pressure", 32, flow_slots), stage::LIFECYCLE);
    let r_sid = b.add_register(RegisterSpec::new("r.sid", 8, flow_slots), stage::STATE);
    let r_pkt = b.add_register(RegisterSpec::new("r.pkt_count", 24, flow_slots), stage::STATE);
    let r_win = b.add_register(RegisterSpec::new("r.win_count", 16, flow_slots), stage::STATE);
    let mut r_last = BTreeMap::new();
    for d in &deps {
        let DepRegister::LastTs(s) = d;
        let tag = scope_tag(*s);
        r_last.insert(
            *s,
            b.add_register(RegisterSpec::new(format!("r.last_{tag}"), 32, flow_slots), stage::DEP),
        );
    }

    // --- stage 0: prep + direction
    let t_prep = b.add_table(TableSpec::ternary("prep", vec![fields.is_resubmit], 2), stage::PREP);
    b.set_default(
        t_prep,
        Action::new("prep")
            .with(Primitive::HashFlow { dst: m_flow_idx, mask: (flow_slots - 1) as u64, salt: 0 })
            // The ownership fingerprint: an independently salted hash,
            // forced nonzero (0 means "lane free").
            .with(Primitive::HashFlow { dst: m_fp, mask: FP_MASK, salt: FP_SALT })
            .with(Primitive::Max { dst: m_fp, a: Source::Field(m_fp), b: Source::Const(1) })
            .with(Primitive::Set { dst: m_now, src: Source::Field(fields.ts_us) })
            .with(Primitive::DivConst {
                dst: m_window_len,
                a: Source::Field(fields.flow_size),
                divisor: p as u64,
            })
            .with(Primitive::Max {
                dst: m_window_len,
                a: Source::Field(m_window_len),
                b: Source::Const(1),
            })
            .with(Primitive::Sub {
                dst: m_payload,
                a: Source::Field(fields.ip_len),
                b: Source::Const(40),
            })
            .with(Primitive::Sub {
                dst: m_neg_len,
                a: Source::Const(FEATURE_CAP),
                b: Source::Field(fields.frame_len),
            })
            // The SID register stores `sid − 1` so that zero-initialized
            // flow slots start in subtree 1 without a per-flow init pass;
            // precompute the stored form of next_sid for resubmissions.
            .with(Primitive::Sub {
                dst: m_next_store,
                a: Source::Field(m_next_sid),
                b: Source::Const(1),
            }),
    );
    let m_csport = b.add_meta("m.csport", 16);
    let m_cdport = b.add_meta("m.cdport", 16);
    let t_dir = b.add_table(TableSpec::ternary("dir", vec![fields.dport], 4), stage::PREP);
    // dport < 1024 ⇒ toward the service ⇒ forward direction. Canonical
    // (initiator-oriented) ports are derived alongside.
    b.add_ternary_entry(
        t_dir,
        vec![Ternary::new(0, !0x3FFu64 & 0xFFFF)],
        1,
        Action::new("fwd")
            .with(Primitive::set_const(m_dir, 1))
            .with(Primitive::set_field(m_csport, fields.sport))
            .with(Primitive::set_field(m_cdport, fields.dport)),
    )?;
    b.set_default(
        t_dir,
        Action::new("bwd")
            .with(Primitive::set_const(m_dir, 0))
            .with(Primitive::set_field(m_csport, fields.dport))
            .with(Primitive::set_field(m_cdport, fields.sport)),
    );

    // --- stage 1: the ownership lane. One dual-ALU update per pass,
    // dispatched by the lifecycle policy's MAT entries: first passes
    // probe (claim permission per entry — the TCP-aware policy grants it
    // only to SYN packets), the DONE-sentinel resubmission decides (with
    // per-pinned-class and FIN/RST-release twins), other resubmitted
    // passes leave the lane alone.
    let own_capacity = 3 + policy.pinned_classes.len() + if policy.tcp_aware { 6 } else { 0 };
    // The flow-agnostic, nothing-pinned policy needs none of the policy
    // keys — keep the 2-field key so the default hot path pays nothing
    // for the policy machinery.
    let own_fields = if policy.tcp_aware || !policy.pinned_classes.is_empty() {
        vec![fields.is_resubmit, m_next_sid, m_class, fields.ip_proto, fields.tcp_flags]
    } else {
        vec![fields.is_resubmit, m_next_sid]
    };
    let own_key_len = own_fields.len();
    let t_own = b.add_table(TableSpec::ternary("own", own_fields, own_capacity), stage::OWN);
    let owner_update =
        |mode: OwnerMode, claim: bool, release: bool, pin: bool| Primitive::OwnerUpdate {
            reg: r_owner,
            index: Source::Field(m_flow_idx),
            fp: Source::Field(m_fp),
            now: Source::Field(m_now),
            idle_timeout_us: opts.idle_timeout_us,
            pinned_timeout_us: policy.pinned_timeout_us,
            mode,
            claim,
            release,
            pin,
            class: Source::Field(m_class),
            state_out: m_state,
        };
    let own_key =
        |resub: Ternary, next_sid: Ternary, class: Ternary, proto: Ternary, fl: Ternary| {
            let mut key = vec![resub, next_sid, class, proto, fl];
            key.truncate(own_key_len);
            key
        };
    // Pinned verdict classes: the decide pass writes the pinned flag so
    // the lane resists takeover (and in-band release) afterwards.
    for &c in &policy.pinned_classes {
        b.add_ternary_entry(
            t_own,
            own_key(
                Ternary::exact(1, 1),
                Ternary::exact(255, 8),
                Ternary::exact(c as u64, 8),
                Ternary::ANY,
                Ternary::ANY,
            ),
            12,
            Action::new(format!("decide_pin_{c}")).with(owner_update(
                OwnerMode::Decide,
                false,
                false,
                true,
            )),
        )?;
    }
    if policy.tcp_aware {
        // FIN/RST verdict packets release the lane in-band: the slot is
        // reclaimable the moment the flow ends, no digest drain needed.
        for (bit, name) in [(flags::FIN, "decide_fin"), (flags::RST, "decide_rst")] {
            b.add_ternary_entry(
                t_own,
                own_key(
                    Ternary::exact(1, 1),
                    Ternary::exact(255, 8),
                    Ternary::ANY,
                    Ternary::exact(6, 8),
                    Ternary::new(bit as u64, bit as u64),
                ),
                11,
                Action::new(name).with(owner_update(OwnerMode::Decide, false, true, false)),
            )?;
        }
    }
    b.add_ternary_entry(
        t_own,
        own_key(
            Ternary::exact(1, 1),
            Ternary::exact(255, 8),
            Ternary::ANY,
            Ternary::ANY,
            Ternary::ANY,
        ),
        10,
        Action::new("decide").with(owner_update(OwnerMode::Decide, false, false, false)),
    )?;
    b.add_ternary_entry(
        t_own,
        own_key(Ternary::exact(1, 1), Ternary::ANY, Ternary::ANY, Ternary::ANY, Ternary::ANY),
        5,
        Action::new("carry"),
    )?;
    if policy.tcp_aware {
        // First-pass FIN/RST packets release the owner's own *decided*
        // (unpinned) lane — the early-exit flow's trailing close. For
        // unknown flows these entries probe without claim permission like
        // any other non-SYN packet.
        for (bit, name) in [(flags::FIN, "probe_fin"), (flags::RST, "probe_rst")] {
            b.add_ternary_entry(
                t_own,
                own_key(
                    Ternary::exact(0, 1),
                    Ternary::ANY,
                    Ternary::ANY,
                    Ternary::exact(6, 8),
                    Ternary::new(bit as u64, bit as u64),
                ),
                5,
                Action::new(name).with(owner_update(OwnerMode::Probe, false, true, false)),
            )?;
        }
        // SYN packets may claim; any other TCP packet probes without
        // claim permission (unknown flows surface as `unsolicited`).
        b.add_ternary_entry(
            t_own,
            own_key(
                Ternary::exact(0, 1),
                Ternary::ANY,
                Ternary::ANY,
                Ternary::exact(6, 8),
                Ternary::new(flags::SYN as u64, flags::SYN as u64),
            ),
            4,
            Action::new("probe_syn").with(owner_update(OwnerMode::Probe, true, false, false)),
        )?;
        b.add_ternary_entry(
            t_own,
            own_key(
                Ternary::exact(0, 1),
                Ternary::ANY,
                Ternary::ANY,
                Ternary::exact(6, 8),
                Ternary::ANY,
            ),
            3,
            Action::new("probe_no_claim").with(owner_update(OwnerMode::Probe, false, false, false)),
        )?;
    }
    // Default (every first pass under the flow-agnostic policy; non-TCP
    // traffic under the TCP-aware one): probe with claim permission.
    b.set_default(
        t_own,
        Action::new("probe").with(owner_update(OwnerMode::Probe, true, false, false)),
    );

    // --- stage 2: lifecycle MAT — maps the probed slot state onto the
    // claim/alien metadata bits the stateful tables key on. Its per-entry
    // hit counters ARE the lifecycle counters (admissions, takeovers,
    // live collisions), read back by the engine through
    // `CompiledIo::lifecycle_entries`. Install order is fixed.
    let t_life = b.add_table(
        TableSpec::ternary("lifecycle", vec![fields.is_resubmit, m_state], 11),
        stage::LIFECYCLE,
    );
    let life_entry = |claim: u64, alien: u64, name: &str| {
        Action::new(name)
            .with(Primitive::set_const(m_claim, claim))
            .with(Primitive::set_const(m_alien, alien))
    };
    // Suppressed packets additionally bump the slot's pressure counter —
    // the entry hit counters aggregate, the register localizes.
    let pressure_bump = Primitive::RegRmw {
        reg: r_pressure,
        index: Source::Field(m_flow_idx),
        op: AluOp::Add,
        operand: Source::Const(1),
        out: None,
    };
    let lifecycle_states = [
        (SlotState::Owner, 0u64, 0u64, "owner"),
        (SlotState::ClaimFree, 1, 0, "admit_free"),
        (SlotState::TakeoverIdle, 1, 0, "takeover_idle"),
        (SlotState::TakeoverDecided, 1, 0, "takeover_decided"),
        (SlotState::LiveCollision, 0, 1, "live_collision"),
        (SlotState::OwnerDecided, 0, 0, "post_verdict"),
        (SlotState::Unsolicited, 0, 1, "unsolicited"),
        (SlotState::TakeoverPinned, 1, 0, "takeover_pinned"),
        (SlotState::PinnedDefended, 0, 1, "pinned_defended"),
    ];
    for (state, claim, alien, name) in lifecycle_states {
        let mut action = life_entry(claim, alien, name);
        if alien == 1 {
            action = action.with(pressure_bump.clone());
        }
        b.add_ternary_entry(
            t_life,
            vec![Ternary::exact(0, 1), Ternary::exact(state.code(), SlotState::BITS)],
            10,
            action,
        )?;
    }
    // In-band FIN/RST releases announce themselves through the state
    // field on either kind of pass: the decide pass of a flow-end verdict
    // riding a FIN/RST, or the first pass of an early-exit flow's
    // trailing close. One entry counts both. Every other resubmitted
    // pass is the owner's: clear both bits so the stage-keyed resubmit
    // entries below stay unambiguous.
    b.add_ternary_entry(
        t_life,
        vec![Ternary::ANY, Ternary::exact(SlotState::OwnerRelease.code(), SlotState::BITS)],
        8,
        life_entry(0, 0, "released_fin"),
    )?;
    b.add_ternary_entry(
        t_life,
        vec![Ternary::exact(1, 1), Ternary::ANY],
        5,
        life_entry(0, 0, "resubmit_clear"),
    )?;
    let lifecycle_entries = LifecycleEntryIdx {
        owner: 0,
        admit_free: 1,
        takeover_idle: 2,
        takeover_decided: 3,
        live_collision: 4,
        post_verdict: 5,
        unsolicited: 6,
        takeover_pinned: 7,
        pinned_defended: 8,
        released_fin: 9,
    };

    // --- stage 3: sid / counters. Keyed on [is_resubmit, claim(, alien)]:
    // claim packets write first-packet state in-pass (fresh = op(0, x)),
    // alien packets read without modifying.
    let t_sid =
        b.add_table(TableSpec::exact("sid", vec![fields.is_resubmit, m_claim], 4), stage::STATE);
    b.add_exact_entry(
        t_sid,
        vec![0, 0],
        Action::new("read_sid")
            .with(Primitive::RegRmw {
                reg: r_sid,
                index: Source::Field(m_flow_idx),
                op: AluOp::Read,
                operand: Source::Const(0),
                out: Some((m_sid, AluOut::Old)),
            })
            .with(Primitive::Add { dst: m_sid, a: Source::Field(m_sid), b: Source::Const(1) }),
    )?;
    // Claiming a (possibly recycled) slot restarts it in subtree 1: the
    // stored form is sid − 1, so write 0 and read back 1.
    b.add_exact_entry(
        t_sid,
        vec![0, 1],
        Action::new("claim_sid")
            .with(Primitive::RegRmw {
                reg: r_sid,
                index: Source::Field(m_flow_idx),
                op: AluOp::Write,
                operand: Source::Const(0),
                out: Some((m_sid, AluOut::New)),
            })
            .with(Primitive::Add { dst: m_sid, a: Source::Field(m_sid), b: Source::Const(1) }),
    )?;
    // Resubmitted passes always carry claim = 0 (the lifecycle MAT's
    // resubmit_clear entry), so [1, 0] is the only resubmit key.
    let write_sid = Action::new("write_sid")
        .with(Primitive::RegRmw {
            reg: r_sid,
            index: Source::Field(m_flow_idx),
            op: AluOp::Write,
            operand: Source::Field(m_next_store),
            out: Some((m_sid, AluOut::New)),
        })
        .with(Primitive::Add { dst: m_sid, a: Source::Field(m_sid), b: Source::Const(1) });
    b.add_exact_entry(t_sid, vec![1, 0], write_sid)?;
    let t_pkt = b.add_table(
        TableSpec::exact("pkt_count", vec![fields.is_resubmit, m_claim, m_alien], 4),
        stage::STATE,
    );
    b.add_exact_entry(
        t_pkt,
        vec![0, 0, 0],
        Action::new("inc").with(Primitive::RegRmw {
            reg: r_pkt,
            index: Source::Field(m_flow_idx),
            op: AluOp::Add,
            operand: Source::Const(1),
            out: Some((m_pkt_count, AluOut::New)),
        }),
    )?;
    b.add_exact_entry(
        t_pkt,
        vec![0, 1, 0],
        Action::new("claim").with(Primitive::RegRmw {
            reg: r_pkt,
            index: Source::Field(m_flow_idx),
            op: AluOp::Write,
            operand: Source::Const(1),
            out: Some((m_pkt_count, AluOut::New)),
        }),
    )?;
    let pkt_read = Action::new("read").with(Primitive::RegRmw {
        reg: r_pkt,
        index: Source::Field(m_flow_idx),
        op: AluOp::Read,
        operand: Source::Const(0),
        out: Some((m_pkt_count, AluOut::Old)),
    });
    b.add_exact_entry(t_pkt, vec![0, 0, 1], pkt_read.clone())?;
    b.add_exact_entry(t_pkt, vec![1, 0, 0], pkt_read)?;
    let t_win = b.add_table(
        TableSpec::exact("win_count", vec![fields.is_resubmit, m_claim, m_alien], 4),
        stage::STATE,
    );
    b.add_exact_entry(
        t_win,
        vec![0, 0, 0],
        Action::new("inc").with(Primitive::RegRmw {
            reg: r_win,
            index: Source::Field(m_flow_idx),
            op: AluOp::Add,
            operand: Source::Const(1),
            out: Some((m_win_count, AluOut::New)),
        }),
    )?;
    b.add_exact_entry(
        t_win,
        vec![0, 1, 0],
        Action::new("claim").with(Primitive::RegRmw {
            reg: r_win,
            index: Source::Field(m_flow_idx),
            op: AluOp::Write,
            operand: Source::Const(1),
            out: Some((m_win_count, AluOut::New)),
        }),
    )?;
    b.add_exact_entry(
        t_win,
        vec![0, 0, 1],
        Action::new("peek").with(Primitive::RegRmw {
            reg: r_win,
            index: Source::Field(m_flow_idx),
            op: AluOp::Read,
            operand: Source::Const(0),
            out: Some((m_win_count, AluOut::Old)),
        }),
    )?;
    b.add_exact_entry(
        t_win,
        vec![1, 0, 0],
        Action::new("reset").with(Primitive::RegRmw {
            reg: r_win,
            index: Source::Field(m_flow_idx),
            op: AluOp::Write,
            operand: Source::Const(0),
            out: None,
        }),
    )?;

    // --- stage 4: dependency registers. Claim packets overwrite the
    // (possibly stale) cell and export 0 — exactly what a pristine slot
    // would have exported — so validity bits downstream see a fresh flow;
    // alien packets read without modifying.
    for d in &deps {
        let DepRegister::LastTs(s) = d;
        let tag = scope_tag(*s);
        let reg = r_last[s];
        let out = m_last[s];
        let rmw = |op: AluOp, operand: Source, export: bool| Primitive::RegRmw {
            reg,
            index: Source::Field(m_flow_idx),
            op,
            operand,
            out: if export { Some((out, AluOut::Old)) } else { None },
        };
        match s {
            Scope::All => {
                let t = b.add_table(
                    TableSpec::exact(
                        format!("last_{tag}"),
                        vec![fields.is_resubmit, m_claim, m_alien],
                        4,
                    ),
                    stage::DEP,
                );
                b.add_exact_entry(
                    t,
                    vec![0, 0, 0],
                    Action::new("upd").with(rmw(AluOp::Write, Source::Field(m_now), true)),
                )?;
                b.add_exact_entry(
                    t,
                    vec![0, 1, 0],
                    Action::new("claim")
                        .with(rmw(AluOp::Write, Source::Field(m_now), false))
                        .with(Primitive::set_const(out, 0)),
                )?;
                b.add_exact_entry(
                    t,
                    vec![0, 0, 1],
                    Action::new("peek").with(rmw(AluOp::Read, Source::Const(0), true)),
                )?;
                b.add_exact_entry(
                    t,
                    vec![1, 0, 0],
                    Action::new("reset").with(rmw(AluOp::Write, Source::Const(0), false)),
                )?;
            }
            Scope::Fwd | Scope::Bwd => {
                let want = if *s == Scope::Fwd { 1u64 } else { 0 };
                let t = b.add_table(
                    TableSpec::exact(
                        format!("last_{tag}"),
                        vec![fields.is_resubmit, m_claim, m_alien, m_dir],
                        8,
                    ),
                    stage::DEP,
                );
                b.add_exact_entry(
                    t,
                    vec![0, 0, 0, want],
                    Action::new("upd").with(rmw(AluOp::Write, Source::Field(m_now), true)),
                )?;
                b.add_exact_entry(
                    t,
                    vec![0, 0, 0, 1 - want],
                    Action::new("read").with(rmw(AluOp::Read, Source::Const(0), true)),
                )?;
                b.add_exact_entry(
                    t,
                    vec![0, 1, 0, want],
                    Action::new("claim_upd")
                        .with(rmw(AluOp::Write, Source::Field(m_now), false))
                        .with(Primitive::set_const(out, 0)),
                )?;
                b.add_exact_entry(
                    t,
                    vec![0, 1, 0, 1 - want],
                    Action::new("claim_rst")
                        .with(rmw(AluOp::Write, Source::Const(0), false))
                        .with(Primitive::set_const(out, 0)),
                )?;
                for dirv in [0u64, 1] {
                    b.add_exact_entry(
                        t,
                        vec![0, 0, 1, dirv],
                        Action::new("peek").with(rmw(AluOp::Read, Source::Const(0), true)),
                    )?;
                    b.add_exact_entry(
                        t,
                        vec![1, 0, 0, dirv],
                        Action::new("reset").with(rmw(AluOp::Write, Source::Const(0), false)),
                    )?;
                }
            }
        }
    }

    // --- stage 5: arithmetic, validity, window-first, boundary
    let t_compute =
        b.add_table(TableSpec::ternary("compute", vec![fields.is_resubmit], 2), stage::COMPUTE);
    let mut compute = Action::new("compute")
        .with(Primitive::Sub {
            dst: m_diff_win,
            a: Source::Field(m_win_count),
            b: Source::Field(m_window_len),
        })
        .with(Primitive::Sub {
            dst: m_diff_flow,
            a: Source::Field(m_pkt_count),
            b: Source::Field(fields.flow_size),
        });
    for d in &deps {
        let DepRegister::LastTs(s) = d;
        compute = compute
            .with(Primitive::Sub {
                dst: m_iat[s],
                a: Source::Field(m_now),
                b: Source::Field(m_last[s]),
            })
            .with(Primitive::Min {
                dst: m_iat[s],
                a: Source::Field(m_iat[s]),
                b: Source::Const(FEATURE_CAP),
            })
            .with(Primitive::Sub {
                dst: m_neg_iat[s],
                a: Source::Const(FEATURE_CAP),
                b: Source::Field(m_iat[s]),
            });
    }
    b.set_default(t_compute, compute);
    for d in &deps {
        let DepRegister::LastTs(s) = d;
        let tag = scope_tag(*s);
        let t = b.add_table(
            TableSpec::ternary(format!("valid_{tag}"), vec![m_last[s]], 2),
            stage::COMPUTE,
        );
        b.add_ternary_entry(
            t,
            vec![Ternary::exact(0, 32)],
            1,
            Action::new("invalid").with(Primitive::set_const(m_valid[s], 0)),
        )?;
        b.set_default(t, Action::new("valid").with(Primitive::set_const(m_valid[s], 1)));
    }
    let t_first =
        b.add_table(TableSpec::ternary("win_first", vec![m_win_count], 2), stage::COMPUTE);
    b.add_ternary_entry(
        t_first,
        vec![Ternary::exact(1, 16)],
        1,
        Action::new("first").with(Primitive::set_const(m_win_first, 1)),
    )?;
    b.set_default(t_first, Action::new("not_first").with(Primitive::set_const(m_win_first, 0)));

    let t_boundary = b.add_table(
        TableSpec::ternary(
            "boundary",
            vec![fields.is_resubmit, m_alien, m_diff_win, m_diff_flow],
            5,
        ),
        stage::COMPUTE,
    );
    // Alien packets never reach the model MAT: their counters were not
    // advanced, so any boundary they would signal is the owner's, not
    // theirs.
    b.add_ternary_entry(
        t_boundary,
        vec![Ternary::ANY, Ternary::exact(1, 1), Ternary::ANY, Ternary::ANY],
        20,
        Action::new("alien_none")
            .with(Primitive::set_const(m_boundary, 0))
            .with(Primitive::set_const(m_final, 0)),
    )?;
    b.add_ternary_entry(
        t_boundary,
        vec![Ternary::exact(0, 1), Ternary::ANY, Ternary::ANY, Ternary::exact(0, 24)],
        10,
        Action::new("final")
            .with(Primitive::set_const(m_boundary, 1))
            .with(Primitive::set_const(m_final, 1)),
    )?;
    b.add_ternary_entry(
        t_boundary,
        vec![Ternary::exact(0, 1), Ternary::ANY, Ternary::exact(0, 16), Ternary::ANY],
        5,
        Action::new("window")
            .with(Primitive::set_const(m_boundary, 1))
            .with(Primitive::set_const(m_final, 0)),
    )?;
    b.set_default(
        t_boundary,
        Action::new("none")
            .with(Primitive::set_const(m_boundary, 0))
            .with(Primitive::set_const(m_final, 0)),
    );

    // --- stage 6: feature slots (registers + operator-selection MATs).
    // Key layout: `[is_resubmit, claim, alien, sid, dir, tcp_flags,
    // frame_len, payload, win_first, valid…]` (see `guard_keys`).
    let mut slot_key: Vec<FieldId> = vec![
        fields.is_resubmit,
        m_claim,
        m_alien,
        m_sid,
        m_dir,
        fields.tcp_flags,
        fields.frame_len,
        m_payload,
        m_win_first,
    ];
    for d in &deps {
        let DepRegister::LastTs(s) = d;
        slot_key.push(m_valid[s]);
    }
    let valid_pos: BTreeMap<Scope, usize> = deps
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let DepRegister::LastTs(s) = d;
            (*s, SLOT_KEY_FIXED + i)
        })
        .collect();

    // Pre-expand operator-selection entries so each slot table can be
    // declared with its exact capacity (TCAM allocation follows declared
    // capacity, like hardware).
    type PendingEntry = (Vec<Ternary>, u32, Action);
    let mut slot_entries: Vec<Vec<PendingEntry>> = vec![Vec::new(); k];

    let mut slots: Vec<SlotMeta> = Vec::with_capacity(k);
    for (slot, entries) in slot_entries.iter_mut().enumerate() {
        let fval = b.add_meta(format!("m.fval_{slot}"), 32);
        let mark_bits = summary.slot_mark_bits[slot].max(1);
        let mark = b.add_meta(format!("m.mark_{slot}"), mark_bits);
        let reg = b
            .add_register(RegisterSpec::new(format!("r.slot_{slot}"), 32, flow_slots), stage::SLOT);
        let reset = Action::new("reset").with(Primitive::RegRmw {
            reg,
            index: Source::Field(m_flow_idx),
            op: AluOp::Write,
            operand: Source::Const(0),
            out: None,
        });
        // reset on resubmission
        let mut key = vec![Ternary::ANY; slot_key.len()];
        key[0] = Ternary::exact(1, 1);
        entries.push((key, 1_000_000, reset));
        // alien packets must never run an operator: read-only load
        let mut key = vec![Ternary::ANY; slot_key.len()];
        key[0] = Ternary::exact(0, 1);
        key[2] = Ternary::exact(1, 1);
        entries.push((
            key,
            900_000,
            Action::new("alien_load").with(Primitive::RegRmw {
                reg,
                index: Source::Field(m_flow_idx),
                op: AluOp::Read,
                operand: Source::Const(0),
                out: Some((fval, AluOut::New)),
            }),
        ));
        // claim packets whose (sid = 1) operator guard does not fire still
        // reset the recycled cell to fresh state
        let mut key = vec![Ternary::ANY; slot_key.len()];
        key[0] = Ternary::exact(0, 1);
        key[1] = Ternary::exact(1, 1);
        entries.push((
            key,
            50,
            Action::new("claim_reset").with(Primitive::RegRmw {
                reg,
                index: Source::Field(m_flow_idx),
                op: AluOp::Write,
                operand: Source::Const(0),
                out: Some((fval, AluOut::New)),
            }),
        ));
        // table id assigned after entry counting; placeholder via push order
        slots.push(SlotMeta { fval, mark, table: TableId::invalid(), reg });
    }

    // operator-selection entries per (sid, slot)
    for ((sid, slot), binding) in &bindings {
        let meta = &slots[*slot];
        let (guard, op, operand) = match &binding.kind {
            BindKind::Slot(prog) => (
                prog.guard,
                match prog.op {
                    UpdateOp::Add => AluOp::Add,
                    UpdateOp::Max => AluOp::Max,
                    UpdateOp::Write => AluOp::Write,
                },
                operand_source(
                    prog.operand,
                    fields.frame_len,
                    m_payload,
                    m_neg_len,
                    m_now,
                    &m_iat,
                    &m_neg_iat,
                )?,
            ),
            BindKind::Stateless(k) => (
                Guard::scope(Scope::All),
                AluOp::Write,
                match k {
                    StatelessKind::FrameLen => Source::Field(fields.frame_len),
                    StatelessKind::Ttl => Source::Field(fields.ttl),
                    StatelessKind::TcpFlags => Source::Field(fields.tcp_flags),
                    StatelessKind::SrcPort => Source::Field(m_csport),
                    StatelessKind::DstPort => Source::Field(m_cdport),
                    StatelessKind::Proto => Source::Field(fields.ip_proto),
                },
            ),
        };
        let action = Action::new(format!("s{sid}_f{}", binding.feature)).with(Primitive::RegRmw {
            reg: meta.reg,
            index: Source::Field(m_flow_idx),
            op,
            operand,
            out: Some((meta.fval, AluOut::New)),
        });
        for key in guard_keys(&guard, *sid, slot_key.len(), &valid_pos) {
            slot_entries[*slot].push((key, 100, action.clone()));
        }
        // Claim packets land in subtree 1 over a just-reset cell, so the
        // first-packet update folds into one RMW: fresh = op(0, x) = x for
        // every slot operator (Add, Max, Write) ⇒ the claim twin writes
        // the operand outright.
        if *sid == 1 {
            let claim_action =
                Action::new(format!("claim_s{sid}_f{}", binding.feature)).with(Primitive::RegRmw {
                    reg: meta.reg,
                    index: Source::Field(m_flow_idx),
                    op: AluOp::Write,
                    operand,
                    out: Some((meta.fval, AluOut::New)),
                });
            for mut key in guard_keys(&guard, *sid, slot_key.len(), &valid_pos) {
                key[1] = Ternary::exact(1, 1);
                slot_entries[*slot].push((key, 200, claim_action.clone()));
            }
        }
    }

    for slot in 0..k {
        let n = slot_entries[slot].len().min(MAX_SLOT_TABLE_ENTRIES);
        let table = b.add_table(
            TableSpec::ternary(format!("slot_{slot}"), slot_key.clone(), n.max(1)),
            stage::SLOT,
        );
        b.set_default(
            table,
            Action::new("load").with(Primitive::RegRmw {
                reg: slots[slot].reg,
                index: Source::Field(m_flow_idx),
                op: AluOp::Read,
                operand: Source::Const(0),
                out: Some((slots[slot].fval, AluOut::New)),
            }),
        );
        for (key, prio, action) in slot_entries[slot].drain(..) {
            b.add_ternary_entry(table, key, prio, action)?;
        }
        slots[slot].table = table;
    }

    // --- stage 7: load transforms per (sid, slot)
    let load_tables: Vec<TableId> = (0..k)
        .map(|slot| {
            b.add_table(TableSpec::exact(format!("load_{slot}"), vec![m_sid], 512), stage::LOAD)
        })
        .collect();
    for ((sid, slot), binding) in &bindings {
        let meta = &slots[*slot];
        let fval = meta.fval;
        let load = match &binding.kind {
            BindKind::Slot(prog) => prog.load,
            BindKind::Stateless(_) => LoadTransform::Identity,
        };
        let action = match load {
            LoadTransform::Identity => Action::new("cap").with(Primitive::Min {
                dst: fval,
                a: Source::Field(fval),
                b: Source::Const(FEATURE_CAP),
            }),
            LoadTransform::NegCap => Action::new("negcap")
                .with(Primitive::Min {
                    dst: fval,
                    a: Source::Field(fval),
                    b: Source::Const(FEATURE_CAP),
                })
                .with(Primitive::Sub {
                    dst: fval,
                    a: Source::Const(FEATURE_CAP),
                    b: Source::Field(fval),
                }),
            LoadTransform::SinceTs => Action::new("since")
                .with(Primitive::Sub { dst: fval, a: Source::Field(m_now), b: Source::Field(fval) })
                .with(Primitive::Min {
                    dst: fval,
                    a: Source::Field(fval),
                    b: Source::Const(FEATURE_CAP),
                }),
        };
        b.add_exact_entry(load_tables[*slot], vec![*sid as u64], action)?;
    }

    // --- stage 8: match-key generators (value → range mark)
    let mut keygen_entries: Vec<Vec<PendingEntry>> = vec![Vec::new(); k];
    for (sid, rules) in &summary.subtree_rules {
        let assignment = slot_assignment(&rules.features);
        for ft in &rules.feature_tables {
            let slot = assignment[&ft.feature];
            for rule in &ft.rules {
                keygen_entries[slot].push((
                    vec![
                        Ternary::exact(*sid as u64, 8),
                        Ternary::new(rule.prefix.value, rule.prefix.mask),
                    ],
                    10,
                    Action::new("mark").with(Primitive::set_const(slots[slot].mark, rule.mark)),
                ));
            }
        }
    }
    for slot in 0..k {
        let t = b.add_table(
            TableSpec::ternary(
                format!("keygen_{slot}"),
                vec![m_sid, slots[slot].fval],
                keygen_entries[slot].len().max(1),
            ),
            stage::KEYGEN,
        );
        b.set_default(t, Action::new("zero").with(Primitive::set_const(slots[slot].mark, 0)));
        for (key, prio, action) in keygen_entries[slot].drain(..) {
            b.add_ternary_entry(t, key, prio, action)?;
        }
    }

    // --- stage 9: model MAT
    let mut model_key: Vec<FieldId> = vec![m_boundary, m_final, m_sid];
    for meta in &slots {
        model_key.push(meta.mark);
    }
    let mut model_entries: Vec<PendingEntry> = Vec::new();
    for (sid, rules) in &summary.subtree_rules {
        let st = model.subtree(*sid);
        let assignment = slot_assignment(&rules.features);
        let last_partition = st.partition + 1 == p;
        for mr in &rules.model {
            // build mark patterns positioned by slot
            let mut key_progress = vec![Ternary::ANY; 3 + k];
            key_progress[0] = Ternary::exact(1, 1); // boundary
            key_progress[1] = Ternary::exact(0, 1); // not final
            key_progress[2] = Ternary::exact(*sid as u64, 8);
            let mut key_final = vec![Ternary::ANY; 3 + k];
            key_final[1] = Ternary::exact(1, 1); // final
            key_final[2] = Ternary::exact(*sid as u64, 8);
            for (fi, &(val, mask)) in mr.mark_patterns.iter().enumerate() {
                let slot = assignment[&rules.features[fi]];
                key_progress[3 + slot] = Ternary::new(val, mask);
                key_final[3 + slot] = Ternary::new(val, mask);
            }
            let target = st.leaf_targets[mr.leaf_index as usize];
            // flow-end entry: digest the best-known class, then resubmit
            // with the DONE sentinel so the decide pass marks the
            // ownership lane (slot becomes reclaimable) and parks the SID
            // register on 255.
            let final_class = match target {
                LeafTarget::Class(c) => c,
                LeafTarget::Next { fallback, .. } => fallback,
            };
            model_entries.push((
                key_final,
                20,
                Action::new("flow_end")
                    .with(Primitive::set_const(m_class, final_class as u64))
                    .with(Primitive::Digest)
                    .with(Primitive::set_const(m_next_sid, 255))
                    .with(Primitive::Resubmit),
            ));
            // progress entry (skip for last partition: classification there
            // only happens at flow end)
            if !last_partition {
                let action = match target {
                    LeafTarget::Next { sid: next, fallback } => Action::new("advance")
                        .with(Primitive::set_const(m_next_sid, next as u64))
                        .with(Primitive::set_const(m_class, fallback as u64))
                        .with(Primitive::Resubmit),
                    LeafTarget::Class(c) => Action::new("early_exit")
                        .with(Primitive::set_const(m_class, c as u64))
                        .with(Primitive::Digest)
                        // DONE sentinel: stored 254 → sid 255, which no
                        // table entry matches.
                        .with(Primitive::set_const(m_next_sid, 255))
                        .with(Primitive::Resubmit),
                };
                model_entries.push((key_progress, 10, action));
            }
        }
    }
    let t_model = b.add_table(
        TableSpec::ternary("model", model_key, model_entries.len().max(1)),
        stage::MODEL,
    );
    for (key, prio, action) in model_entries {
        b.add_ternary_entry(t_model, key, prio, action)?;
    }

    // The canonical register slot (m.flow_idx) rides in the digest so the
    // controller can attribute verdicts exactly, even when initiator IPs
    // repeat across flows; the fingerprint (m.fp) and flow-end flag
    // (m.final) ride along so the controller can compare-and-release the
    // decided ownership lane when the flow is truly over.
    b.set_digest_fields(vec![
        fields.ipv4_src,
        fields.ipv4_dst,
        m_class,
        m_sid,
        m_flow_idx,
        m_fp,
        m_final,
    ]);
    b.set_resubmit_limit(4);

    let program = b.build()?;
    // Every compiled register is flow-indexed by the canonical slot hash,
    // so all of them must share the `flow_slots` domain — that is what
    // lets the execution plan coalesce the ownership lane, the pressure
    // counter and every per-partition state register into one
    // cache-line bank (one prefetch per packet). A register with a
    // different depth would silently fall out of the bank and resurrect
    // the split-array memory behaviour, so fail compilation instead.
    if let Some(spec) = program.registers().iter().find(|s| s.len != flow_slots) {
        return Err(CompileError::Unsupported(format!(
            "register '{}' has depth {} but the flow-slot domain is {flow_slots}; \
             all per-flow registers must share one slot domain to bank",
            spec.name, spec.len
        )));
    }
    Ok(CompiledModel {
        program,
        io: CompiledIo {
            fields,
            flow_slots,
            idle_timeout_us: opts.idle_timeout_us,
            policy: opts.policy.clone(),
            digest_src: 0,
            digest_class: 2,
            digest_sid: 3,
            digest_flow_idx: 4,
            digest_fp: 5,
            digest_final: 6,
            model_table: t_model,
            owner_reg: r_owner,
            pressure_reg: r_pressure,
            lifecycle_table: t_life,
            lifecycle_entries,
        },
        summary,
    })
}

fn scope_tag(s: Scope) -> &'static str {
    match s {
        Scope::All => "all",
        Scope::Fwd => "fwd",
        Scope::Bwd => "bwd",
    }
}

fn operand_source(
    op: Operand,
    f_len: FieldId,
    m_payload: FieldId,
    m_neg_len: FieldId,
    m_now: FieldId,
    m_iat: &BTreeMap<Scope, FieldId>,
    m_neg_iat: &BTreeMap<Scope, FieldId>,
) -> Result<Source, CompileError> {
    Ok(match op {
        Operand::One => Source::Const(1),
        Operand::FrameLen => Source::Field(f_len),
        Operand::NegFrameLen => Source::Field(m_neg_len),
        Operand::HdrLen => Source::Const(58), // fixed L2+shim+L3+L4 header
        Operand::PayloadLen => Source::Field(m_payload),
        Operand::NowUs => Source::Field(m_now),
        Operand::Iat(s) => Source::Field(
            *m_iat.get(&s).ok_or_else(|| CompileError::InvalidModel("missing iat dep".into()))?,
        ),
        Operand::NegIat(s) => Source::Field(
            *m_neg_iat
                .get(&s)
                .ok_or_else(|| CompileError::InvalidModel("missing neg iat dep".into()))?,
        ),
    })
}

/// Expands a slot guard into ternary keys over the slot-table key layout:
/// `[is_resubmit, claim, alien, sid, dir, tcp_flags, frame_len, payload,
/// win_first, valid…]`. Claim and alien are left wildcard — the lifecycle
/// catch entries (priorities 900 000 / 200 / 50) disambiguate.
fn guard_keys(
    guard: &Guard,
    sid: u16,
    key_len: usize,
    valid_pos: &BTreeMap<Scope, usize>,
) -> Vec<Vec<Ternary>> {
    let mut base = vec![Ternary::ANY; key_len];
    base[0] = Ternary::exact(0, 1);
    base[3] = Ternary::exact(sid as u64, 8);
    match guard.scope {
        Scope::All => {}
        Scope::Fwd => base[4] = Ternary::exact(1, 1),
        Scope::Bwd => base[4] = Ternary::exact(0, 1),
    }
    if guard.flags_mask != 0 {
        base[5] = Ternary::new(guard.flags_mask as u64, guard.flags_mask as u64);
    }
    if guard.win_first_only {
        base[8] = Ternary::exact(1, 1);
    }
    if let Some(s) = guard.require_prev {
        let pos = valid_pos[&s];
        base[pos] = Ternary::exact(1, 1);
    }
    // range guards expand into prefix cross products
    let len_prefixes = match guard.len_range {
        Some((lo, hi)) => range_to_prefixes(lo as u64, hi as u64, 16),
        None => vec![splidt_ranging::Prefix { value: 0, mask: 0 }],
    };
    let payload_prefixes = match guard.payload_range {
        Some((lo, hi)) => range_to_prefixes(lo as u64, hi as u64, 16),
        None => vec![splidt_ranging::Prefix { value: 0, mask: 0 }],
    };
    let mut out = Vec::with_capacity(len_prefixes.len() * payload_prefixes.len());
    for lp in &len_prefixes {
        for pp in &payload_prefixes {
            let mut key = base.clone();
            key[6] = Ternary::new(lp.value, lp.mask);
            key[7] = Ternary::new(pp.value, pp.mask);
            out.push(key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplidtConfig;
    use crate::train::train_partitioned;
    use splidt_flow::{
        generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId,
    };

    fn small_model() -> PartitionedTree {
        let flows = generate(DatasetId::D2, 300, 21);
        let (tr, _) = stratified_split(&flows, 0.3, 5);
        let wd =
            windowed_dataset(&select_flows(&flows, &tr), 3, spec(DatasetId::D2).n_classes as usize);
        let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
        train_partitioned(&wd, &cfg, &catalog().hardware_eligible())
    }

    #[test]
    fn compiles_and_fits_tofino1() {
        let model = small_model();
        let compiled = compile(&model, 1 << 14).expect("compiles");
        assert!(compiled.program.stages().len() <= 10);
        let report = splidt_dataplane::resources::check(
            &compiled.program,
            &splidt_dataplane::resources::TargetSpec::tofino1(),
        );
        assert!(report.feasible(), "violations: {:?}", report.violations);
        assert!(compiled.program.tcam_entries() > 0);
    }

    #[test]
    fn rules_summary_accounting() {
        let model = small_model();
        let s = model_rules(&model);
        assert_eq!(s.subtree_rules.len(), model.n_subtrees());
        assert_eq!(s.tcam_entries, s.feature_entries + s.model_entries);
        let total_leaves: usize = model.subtrees.iter().map(|st| st.tree.n_leaves() as usize).sum();
        assert_eq!(s.model_entries, total_leaves);
        assert!(s.model_key_bits >= 10);
    }

    #[test]
    fn rejects_bad_flow_slots() {
        let model = small_model();
        assert!(matches!(compile(&model, 1000), Err(CompileError::Unsupported(_))));
    }

    #[test]
    fn tcp_policy_compiles_and_fits() {
        let model = small_model();
        let opts = CompileOptions {
            flow_slots: 1 << 12,
            policy: LifecyclePolicy::tcp().pin_class(1).pin_class(3),
            ..Default::default()
        };
        let compiled = compile_with(&model, &opts).expect("compiles");
        assert_eq!(compiled.io.policy.pinned_classes, vec![1, 3]);
        assert!(compiled.io.policy.tcp_aware);
        assert!(compiled.program.stages().len() <= 10, "policy adds entries, not stages");
        let report = splidt_dataplane::resources::check(
            &compiled.program,
            &splidt_dataplane::resources::TargetSpec::tofino1(),
        );
        assert!(report.feasible(), "violations: {:?}", report.violations);
    }

    #[test]
    fn rejects_bad_lifecycle_policies() {
        let model = small_model();
        // Pinned class outside the model's class set.
        let opts =
            CompileOptions { policy: LifecyclePolicy::tcp().pin_class(200), ..Default::default() };
        assert!(matches!(compile_with(&model, &opts), Err(CompileError::Unsupported(_))));
        let opts = CompileOptions {
            policy: LifecyclePolicy::tcp().pin_class(model.n_classes as u16),
            ..Default::default()
        };
        assert!(matches!(compile_with(&model, &opts), Err(CompileError::InvalidModel(_))));
        // A pinned timeout weaker than the idle timeout is a policy bug —
        // but only once something is actually pinned; the flow-agnostic
        // default must keep accepting any idle timeout.
        let opts = CompileOptions {
            idle_timeout_us: 1_000_000,
            policy: LifecyclePolicy::flow_agnostic().pin_class(1).pinned_timeout_us(10),
            ..Default::default()
        };
        assert!(matches!(compile_with(&model, &opts), Err(CompileError::Unsupported(_))));
        let opts = CompileOptions {
            idle_timeout_us: 30_000_000, // above DEFAULT_PINNED_TIMEOUT_US
            policy: LifecyclePolicy::flow_agnostic(),
            ..Default::default()
        };
        assert!(compile_with(&model, &opts).is_ok(), "nothing pinned: any idle timeout is fine");
    }

    #[test]
    fn pin_class_dedupes_and_sorts() {
        let p = LifecyclePolicy::flow_agnostic().pin_class(3).pin_class(1).pin_class(3);
        assert_eq!(p.pinned_classes, vec![1, 3]);
    }

    #[test]
    fn guard_key_expansion() {
        let g = Guard {
            scope: Scope::Fwd,
            flags_mask: 0x08,
            len_range: Some((0, 128)),
            payload_range: None,
            require_prev: None,
            win_first_only: false,
        };
        let keys = guard_keys(&g, 3, 10, &BTreeMap::new());
        assert!(!keys.is_empty());
        for k in &keys {
            assert_eq!(k[0], Ternary::exact(0, 1), "first-pass only");
            assert_eq!(k[1], Ternary::ANY, "claim left to catch entries");
            assert_eq!(k[2], Ternary::ANY, "alien left to catch entries");
            assert_eq!(k[3], Ternary::exact(3, 8));
            assert_eq!(k[4], Ternary::exact(1, 1));
            assert_eq!(k[5], Ternary::new(0x08, 0x08));
        }
    }
}
