//! SpliDT's custom partitioned training — Algorithm 1 of the paper.
//!
//! Train one subtree for the first partition on all samples (window-1
//! features). For each leaf, take the sample subset that reached it and
//! train the corresponding next-partition subtree on the **next window's**
//! features of those samples. Leaves that are pure, too small, or in the
//! final partition become classification exits.

use crate::config::SplidtConfig;
use crate::model::{LeafTarget, PartitionedTree, Subtree};
use splidt_dt::{train_classifier_on, TrainParams};
use splidt_flow::WindowedDataset;
use std::collections::VecDeque;

/// Trains a partitioned tree on a windowed dataset.
///
/// `allowed_features` restricts splits (pass the hardware-eligible feature
/// columns; the ideal baseline passes everything). `wd` must have at least
/// `config.partitions.len()` windows.
pub fn train_partitioned(
    wd: &WindowedDataset,
    config: &SplidtConfig,
    allowed_features: &[usize],
) -> PartitionedTree {
    config.validate().expect("valid config");
    let p = config.n_partitions();
    assert!(
        wd.n_windows() >= p,
        "windowed dataset has {} windows, config needs {}",
        wd.n_windows(),
        p
    );
    assert!(wd.n_rows() > 0, "empty training set");

    struct Job {
        sid: u16,
        partition: usize,
        rows: Vec<usize>,
        /// (parent subtree index, leaf index) to patch once trained.
        parent: Option<(usize, usize)>,
    }

    let mut subtrees: Vec<Subtree> = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(Job { sid: 1, partition: 0, rows: (0..wd.n_rows()).collect(), parent: None });
    let mut next_sid: u16 = 2;

    while let Some(job) = queue.pop_front() {
        let ds = &wd.per_window[job.partition];
        let view = ds.view_of(job.rows.clone());
        let params = TrainParams {
            max_depth: config.partitions[job.partition],
            min_samples_split: (config.min_samples_leaf * 2).max(2),
            min_samples_leaf: config.min_samples_leaf,
            feature_budget: Some(config.k),
            allowed_features: Some(allowed_features.to_vec()),
            max_thresholds_per_feature: config.max_thresholds_per_feature,
            threshold_budget_per_feature: Some(15),
        };
        let tree = train_classifier_on(&view, &params);

        // Route this job's samples to leaves.
        let n_leaves = tree.n_leaves() as usize;
        let mut leaf_rows: Vec<Vec<usize>> = vec![Vec::new(); n_leaves];
        for &row in &job.rows {
            let leaf = tree.leaf_index_of(ds.row(row)) as usize;
            leaf_rows[leaf].push(row);
        }

        // Decide per-leaf targets; spawn child jobs.
        let leaves = tree.leaves();
        let mut targets = vec![LeafTarget::Class(0); n_leaves];
        for leaf in &leaves {
            let li = leaf.leaf_index as usize;
            let rows = &leaf_rows[li];
            let majority = leaf.label;
            let last_partition = job.partition + 1 >= p;
            let pure = {
                let mut labels = rows.iter().map(|&r| wd.labels[r]);
                match labels.next() {
                    None => true,
                    Some(first) => labels.all(|l| l == first),
                }
            };
            let can_spawn = !last_partition
                && !pure
                && rows.len() >= config.min_subtree_samples
                && (subtrees.len() + queue.len() + 2) <= config.max_subtrees;
            if can_spawn {
                let sid = next_sid;
                next_sid += 1;
                targets[li] = LeafTarget::Next { sid, fallback: majority };
                queue.push_back(Job {
                    sid,
                    partition: job.partition + 1,
                    rows: rows.clone(),
                    parent: None,
                });
            } else {
                targets[li] = LeafTarget::Class(majority);
            }
        }
        let _ = job.parent; // sid pre-assignment makes back-patching unnecessary
        subtrees.push(Subtree {
            sid: job.sid,
            partition: job.partition,
            tree,
            leaf_targets: targets,
        });
    }

    // Jobs are queued in BFS order and sids assigned on enqueue, so
    // subtrees arrive sorted by sid already.
    debug_assert!(subtrees.windows(2).all(|w| w[0].sid < w[1].sid));

    let model = PartitionedTree { config: config.clone(), subtrees, n_classes: wd.n_classes };
    debug_assert_eq!(model.validate(), Ok(()));
    model
}

/// Evaluates a partitioned tree on a windowed dataset, returning macro-F1.
pub fn evaluate_partitioned(model: &PartitionedTree, wd: &WindowedDataset) -> f64 {
    let p = model.n_partitions();
    let preds: Vec<u16> = (0..wd.n_rows())
        .map(|row| {
            let windows: Vec<Vec<f32>> =
                (0..p.min(wd.n_windows())).map(|w| wd.per_window[w].row(row).to_vec()).collect();
            model.predict(&windows).class
        })
        .collect();
    splidt_dt::metrics::macro_f1(&wd.labels, &preds, wd.n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splidt_flow::{
        catalog, generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId,
    };

    fn d2_windows(p: usize, n: usize) -> (WindowedDataset, WindowedDataset) {
        let flows = generate(DatasetId::D2, n, 11);
        let (tr, te) = stratified_split(&flows, 0.3, 5);
        let nc = spec(DatasetId::D2).n_classes as usize;
        (
            windowed_dataset(&select_flows(&flows, &tr), p, nc),
            windowed_dataset(&select_flows(&flows, &te), p, nc),
        )
    }

    #[test]
    fn trains_valid_model() {
        let (tr, _) = d2_windows(3, 600);
        let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
        let m = train_partitioned(&tr, &cfg, &catalog().hardware_eligible());
        assert_eq!(m.validate(), Ok(()));
        assert!(m.n_subtrees() >= 2, "should spawn child subtrees");
        assert!(m.max_features_per_subtree() <= 4);
        // subtrees exist in multiple partitions
        assert!(m.subtrees.iter().any(|s| s.partition > 0));
    }

    #[test]
    fn beats_majority_baseline() {
        let (tr, te) = d2_windows(3, 900);
        let cfg = SplidtConfig { partitions: vec![3, 3, 2], k: 4, ..Default::default() };
        let m = train_partitioned(&tr, &cfg, &catalog().hardware_eligible());
        let f1 = evaluate_partitioned(&m, &te);
        assert!(f1 > 0.5, "test F1 {f1}");
        // train F1 higher than test is expected; both well above chance
        let f1_train = evaluate_partitioned(&m, &tr);
        assert!(f1_train > f1 * 0.9);
    }

    #[test]
    fn total_features_exceed_k() {
        // The whole point of SpliDT: distinct features across subtrees can
        // exceed the per-subtree budget k.
        let (tr, _) = d2_windows(4, 900);
        let cfg = SplidtConfig { partitions: vec![3, 3, 3, 2], k: 3, ..Default::default() };
        let m = train_partitioned(&tr, &cfg, &catalog().hardware_eligible());
        assert!(m.max_features_per_subtree() <= 3);
        assert!(
            m.total_features().len() > 3,
            "total features {} should exceed k=3",
            m.total_features().len()
        );
    }

    #[test]
    fn respects_max_subtrees() {
        let (tr, _) = d2_windows(4, 900);
        let cfg = SplidtConfig {
            partitions: vec![3, 3, 3, 3],
            k: 4,
            max_subtrees: 5,
            min_subtree_samples: 4,
            ..Default::default()
        };
        let m = train_partitioned(&tr, &cfg, &catalog().hardware_eligible());
        assert!(m.n_subtrees() <= 5, "{} subtrees", m.n_subtrees());
    }

    #[test]
    fn single_partition_is_plain_tree() {
        let (tr, te) = d2_windows(1, 600);
        let cfg = SplidtConfig { partitions: vec![6], k: 4, ..Default::default() };
        let m = train_partitioned(&tr, &cfg, &catalog().hardware_eligible());
        assert_eq!(m.n_subtrees(), 1);
        assert!(m.subtrees[0].leaf_targets.iter().all(|t| matches!(t, LeafTarget::Class(_))));
        let f1 = evaluate_partitioned(&m, &te);
        assert!(f1 > 0.3);
    }

    #[test]
    fn deterministic_training() {
        let (tr, _) = d2_windows(2, 400);
        let cfg = SplidtConfig { partitions: vec![2, 2], k: 3, ..Default::default() };
        let a = train_partitioned(&tr, &cfg, &catalog().hardware_eligible());
        let b = train_partitioned(&tr, &cfg, &catalog().hardware_eligible());
        assert_eq!(a.n_subtrees(), b.n_subtrees());
        for (x, y) in a.subtrees.iter().zip(&b.subtrees) {
            assert_eq!(x.tree.nodes(), y.tree.nodes());
            assert_eq!(x.leaf_targets, y.leaf_targets);
        }
    }
}
