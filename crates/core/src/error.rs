//! Crate-level error type for the SpliDT runtime surfaces.
//!
//! The engine API is fallible end to end: compilation, packet parsing, and
//! model/config validation all report through [`SplidtError`] instead of
//! panicking (the old runtime `expect("well-formed frame")` in the packet
//! loop is now a recoverable [`SplidtError::Parse`]).

use crate::compile::CompileError;
use splidt_dataplane::parser::ParseError;
use splidt_dataplane::program::ProgramError;

/// Any error surfaced by the SpliDT engine and its wrappers.
#[derive(Debug)]
pub enum SplidtError {
    /// Model → pipeline compilation failed.
    Compile(CompileError),
    /// A frame could not be parsed by the pipeline's parser.
    Parse(ParseError),
    /// The model is structurally invalid for the requested operation.
    Model(String),
    /// The engine was configured inconsistently (e.g. zero shards).
    Config(String),
}

impl std::fmt::Display for SplidtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplidtError::Compile(e) => write!(f, "compile: {e}"),
            SplidtError::Parse(e) => write!(f, "parse: {e}"),
            SplidtError::Model(m) => write!(f, "model: {m}"),
            SplidtError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for SplidtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SplidtError::Compile(e) => Some(e),
            SplidtError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for SplidtError {
    fn from(e: CompileError) -> Self {
        SplidtError::Compile(e)
    }
}

impl From<ParseError> for SplidtError {
    fn from(e: ParseError) -> Self {
        SplidtError::Parse(e)
    }
}

impl From<ProgramError> for SplidtError {
    fn from(e: ProgramError) -> Self {
        SplidtError::Compile(CompileError::Program(e))
    }
}
